"""Searching a placement space far too large to materialise.

The paper's conclusion flags the combinatorial explosion of equivalent
implementations -- with ``k`` tasks and ``m`` devices there are ``m**k`` of
them -- and suggests applying the methodology "on a subset of possible
solutions".  This example takes the opposite route for the *selection* stage:
it sweeps the **entire** space of a 12-task chain over the 4-device edge
cluster (``4**12 = 16,777,216`` placements) through the streaming search
subsystem (`repro.search`), which

* executes the space chunk by chunk with the vectorized batch engine,
* filters each chunk against feasibility constraints (deadline, energy
  budget, offload bound),
* and keeps only bounded selection state: top-K winners per objective plus
  the incremental Pareto frontier -- never 16.7M profile objects.

Run with::

    python examples/huge_space_search.py            # full 16.7M sweep
    QUICK=1 python examples/huge_space_search.py    # 4**8 = 65,536 smoke run

Set ``WORKERS=<n>`` to shard the sweep across processes (the result is
identical for every worker count).
"""

from __future__ import annotations

import os
import time

from repro.devices import SimulatedExecutor, edge_cluster_platform
from repro.measurement.noise import NoNoise
from repro.search import (
    DeadlineConstraint,
    DecisionObjective,
    EnergyBudgetConstraint,
    MaxOffloadedConstraint,
    search_space,
)
from repro.selection import DecisionModel
from repro.tasks import RegularizedLeastSquaresTask, TaskChain


def build_chain(n_tasks: int) -> TaskChain:
    """A chain of dependent RLS solves with growing computational volume.

    The late tasks are heavy enough that offloading them (to the on-device
    NPU or the remote accelerators) pays on time/energy, so the objectives
    genuinely trade off and the Pareto frontier is non-trivial.
    """
    tasks = [
        RegularizedLeastSquaresTask(size=100 + 40 * i, iterations=6, name=f"L{i + 1}")
        for i in range(n_tasks)
    ]
    return TaskChain(tasks, name=f"rls-{n_tasks}")


def main() -> None:
    quick = os.environ.get("QUICK", "") not in ("", "0")
    n_tasks = 8 if quick else 12
    n_workers = int(os.environ.get("WORKERS", str(os.cpu_count() or 1)))

    platform = edge_cluster_platform()
    executor = SimulatedExecutor(platform, noise=NoNoise(), seed=0)
    chain = build_chain(n_tasks)
    m, k = len(platform.aliases), len(chain)
    print(
        f"platform {platform.name!r} ({', '.join(platform.aliases)}), "
        f"{k}-task chain -> {m}**{k} = {m**k:,} placements"
    )

    # Scalar objectives: raw time, raw energy, and the decision-model
    # objective (time + cost-weighted accelerator rent).
    objectives = ("time", "energy", DecisionObjective(DecisionModel(cost_weight=1000.0)))

    # Feasibility: meet a 1.5 s deadline, a 60 J energy budget, and offload at
    # most 8 tasks away from the smartphone host.
    constraints = (
        DeadlineConstraint(max_time_s=1.5),
        EnergyBudgetConstraint(max_energy_j=60.0),
        MaxOffloadedConstraint(max_offloaded=8),
    )

    start = time.perf_counter()
    result = search_space(
        executor,
        chain,
        objectives=objectives,
        top_k=10,
        constraints=constraints,
        n_workers=n_workers,
    )
    elapsed = time.perf_counter() - start

    print(
        f"swept {result.n_evaluated:,} placements in {elapsed:.1f} s "
        f"({result.n_evaluated / elapsed / 1e6:.2f} M placements/s, "
        f"{n_workers} worker{'s' if n_workers != 1 else ''}); "
        f"{result.n_feasible:,} feasible"
    )
    print()

    for name, selection in result.top.items():
        print(f"top {len(selection)} placements by {name}:")
        for label, value in zip(selection.labels, selection.values):
            print(f"  {label}  {value:.6g}")
        print()

    frontier = result.frontier
    print(
        f"Pareto frontier over {'/'.join(frontier.criteria)}: "
        f"{len(frontier)} non-dominated placements"
    )
    for label, row in list(zip(frontier.labels, frontier.values))[:15]:
        cells = ", ".join(f"{name}={value:.5g}" for name, value in zip(frontier.criteria, row))
        print(f"  {label}  {cells}")
    if len(frontier) > 15:
        print(f"  ... and {len(frontier) - 15} more")


if __name__ == "__main__":
    main()
