"""Edge offloading: which parts of a scientific code should move to the accelerator?

Reproduces the Table I workflow end to end with the public API:

1. describe the scientific code as a chain of MathTasks (Procedure 5);
2. enumerate every split of the chain between the edge device ``D`` and the
   accelerator ``A`` (the set of equivalent algorithms);
3. measure each split on the simulated CPU+GPU platform;
4. cluster the splits into performance classes;
5. select an algorithm under an operating-cost budget and under a FLOPs budget
   for the energy-constrained edge device.

Run with::

    python examples/edge_offloading.py
"""

from __future__ import annotations

from repro.devices import SimulatedExecutor, cpu_gpu_platform
from repro.experiments import default_analyzer
from repro.offload import enumerate_algorithms, measure_algorithms, profile_algorithms
from repro.reporting import cluster_table, measurement_summary_table
from repro.selection import DecisionModel, FlopsBudgetSelector
from repro.tasks import RegularizedLeastSquaresTask, TaskChain


def main() -> None:
    # 1) The scientific code: three dependent Regularised Least Squares loops
    #    with growing computational volume (Procedure 5 of the paper).
    chain = TaskChain(
        [
            RegularizedLeastSquaresTask(size=50, iterations=10, name="L1"),
            RegularizedLeastSquaresTask(size=75, iterations=10, name="L2"),
            RegularizedLeastSquaresTask(size=300, iterations=10, name="L3"),
        ],
        name="rls-code",
    )

    # 2) The platform and the algorithm space (2 devices ^ 3 tasks = 8 algorithms).
    platform = cpu_gpu_platform()
    algorithms = enumerate_algorithms(chain, platform)
    print(f"Equivalent algorithms: {', '.join(a.label for a in algorithms)}\n")

    # 3) Measure every algorithm 30 times on the simulated platform.
    executor = SimulatedExecutor(platform, seed=0)
    measurements = measure_algorithms(algorithms, executor, repetitions=30)
    print(measurement_summary_table(measurements), "\n")

    # 4) Cluster into performance classes (Table I).
    analyzer = default_analyzer(seed=0, repetitions=100, n_measurements=30)
    analysis = analyzer.analyze(measurements)
    print(cluster_table(analysis.final), "\n")

    # 5a) Selection under an operating-cost budget: if accelerator time is free,
    #     offload L3; if it is expensive, stay on the edge device.
    profiles = profile_algorithms(algorithms, executor)
    for weight, scenario in ((0.0, "latency-critical (cost ignored)"), (1e6, "cost-sensitive")):
        decision = DecisionModel(cost_weight=weight).decide(analysis.final, profiles)
        print(f"Decision [{scenario}]: {decision.summary()}")

    # 5b) Selection under a FLOPs budget on the edge device: keep at most 10% of
    #     the code's FLOPs on D, choosing the fastest class that satisfies it.
    budget = 0.10 * chain.total_flops
    selection = FlopsBudgetSelector(device=platform.host, budget_flops=budget).select(
        analysis.final, {a.label: a for a in algorithms}
    )
    print(
        f"\nFLOPs-budget selection (<= {budget:.2e} FLOPs on D): alg{selection.label} "
        f"from class C{selection.cluster} ({selection.device_flops:.2e} FLOPs on D)"
    )


if __name__ == "__main__":
    main()
