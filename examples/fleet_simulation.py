"""Fleet-scale simulation: placing one chain for a sampled user population.

A production service does not place a workload for *one* platform under
*one* condition point -- it places it for a fleet: thousands of users whose
link quality and host load are draws from segment distributions (office
Wi-Fi, congested cellular, loaded hosts).  This example runs the whole fleet
pipeline (`repro.fleet`):

* a weighted :class:`FleetSpec` is sampled into one weighted scenario per
  user (`sample_fleet`), and the resulting `ScenarioGrid` flows through the
  fused grid engine unchanged -- no per-user `Platform` objects, no loops;
* the streaming robust search ranks placements by the fleet's *tail*:
  the weighted p95 latency (`QuantileObjective`) and the fraction of user
  mass missing a deadline (`SLOObjective`);
* per-segment optima show why the fleet pick is a compromise: the placement
  the congested minority drags the p95 toward is not what the well-connected
  majority would choose for itself;
* `solve_contention` couples the users: everyone adopting the fleet-optimal
  placement loads its shared devices, and the fixed point reports what that
  sharing costs;
* population drift (`resample_users`) is a **delta rebuild** -- only the
  redrawn users' condition slices are recomputed.

Run with::

    python examples/fleet_simulation.py
"""

from __future__ import annotations

import time

from repro.devices import SimulatedExecutor, edge_cluster_platform
from repro.fleet import (
    ContentionModel,
    FleetSpec,
    NormalAxis,
    UniformAxis,
    UserSegment,
    sample_fleet,
    solve_contention,
)
from repro.scenarios import DeviceLoadFactor, LinkBandwidthScale, LinkLatencyScale
from repro.search import ExpectedValueObjective, QuantileObjective, SLOObjective, search_grid
from repro.tasks import RegularizedLeastSquaresTask, TaskChain

N_USERS = 20_000
SEED = 0


def build_chain(n_tasks: int = 3) -> TaskChain:
    tasks = [
        RegularizedLeastSquaresTask(
            size=60 + 70 * i, iterations=12, name=f"L{i + 1}", generate_on_host=False
        )
        for i in range(n_tasks)
    ]
    return TaskChain(tasks, name=f"fleet-{n_tasks}")


def build_spec() -> FleetSpec:
    """Three user segments with 6 : 3 : 1 population mass."""
    return FleetSpec(
        segments=(
            UserSegment(
                "office-wifi",
                weight=6.0,
                axes=(
                    UniformAxis(LinkBandwidthScale(), 0.8, 1.3),
                    UniformAxis(LinkLatencyScale(), 0.8, 1.5),
                ),
            ),
            UserSegment(
                "congested-cell",
                weight=3.0,
                axes=(
                    UniformAxis(LinkBandwidthScale(), 0.1, 0.45),
                    UniformAxis(LinkLatencyScale(), 2.0, 6.0),
                ),
            ),
            UserSegment(
                "loaded-host",
                weight=1.0,
                axes=(
                    NormalAxis(
                        DeviceLoadFactor(devices=("D",)),
                        mean=1.6, std=0.3, low=1.0, high=2.5,
                    ),
                ),
            ),
        )
    )


def main() -> None:
    platform = edge_cluster_platform()
    chain = build_chain()
    spec = build_spec()
    executor = SimulatedExecutor(platform, seed=SEED)

    fleet = sample_fleet(spec, N_USERS, seed=SEED)
    m, k = len(platform.aliases), len(chain)
    print(
        f"fleet of {fleet.n_users:,} users ({len(spec.segments)} segments) x "
        f"{m}**{k} = {m**k} placements = {fleet.n_users * m**k:,} (user, placement) pairs"
    )

    # -- fleet-optimal placement by tail objectives --------------------------
    start = time.perf_counter()
    result = search_grid(
        executor,
        chain,
        fleet.grid,
        objectives=(
            QuantileObjective(q=0.95),
            SLOObjective(budget=0.035),
            ExpectedValueObjective(),
        ),
        top_k=3,
    )
    print(f"swept the whole fleet in {time.perf_counter() - start:.2f} s\n")
    for name, selection in result.top.items():
        print(f"top {len(selection)} by {name}:")
        for label, value in zip(selection.labels, selection.values):
            print(f"  {label}  {value:.6g}")
        print()
    fleet_pick = result.top["p95-time"].labels[0]

    # -- per-segment optima: the fleet pick is a compromise ------------------
    print("per-segment expected-time optimum vs the fleet p95 pick:")
    for segment in spec.segments:
        own = search_grid(
            executor, chain, fleet.segment_grid(segment.name),
            objectives=(ExpectedValueObjective(),), top_k=1,
        ).top["expected-time"]
        marker = "  <- diverges" if own.labels[0] != fleet_pick else ""
        print(
            f"  {segment.name:<15} {own.labels[0]}  "
            f"{own.values[0] * 1e3:7.1f} ms{marker}"
        )
    print(f"  fleet p95 pick  {fleet_pick}\n")

    # -- multi-tenant contention at the fixed point --------------------------
    contention = solve_contention(
        executor,
        chain,
        fleet,
        ContentionModel(alpha=0.05),
        placements=fleet_pick,
    )
    print(contention.summary())

    # -- population drift is a delta rebuild ---------------------------------
    tables = executor.grid_cost_tables(chain, fleet.grid)
    drifted, replacements = fleet.resample_users(range(0, fleet.n_users, 50), seed=SEED + 1)
    start = time.perf_counter()
    executor.update_grid_tables(tables, replacements)
    print(
        f"\ndrifted {len(replacements):,}/{fleet.n_users:,} users: delta rebuild in "
        f"{time.perf_counter() - start:.3f} s (only the redrawn condition slices recomputed)"
    )


if __name__ == "__main__":
    main()
