"""Hierarchical object detection with energy-aware algorithm switching.

Second application scenario of the paper's introduction: an on-board detector
(cheap, low fidelity) must stay responsive on the edge device while an
expensive high-fidelity refinement pass can be offloaded.  Because the device
is battery/thermally constrained, the deployment switches between two
equivalent algorithms -- the all-on-device split and a mostly-offloaded split
-- whenever the edge energy budget is reached (Section IV of the paper).

Run with::

    python examples/object_detection_energy.py
"""

from __future__ import annotations

from repro.devices import SimulatedExecutor, cpu_gpu_platform
from repro.experiments import default_analyzer
from repro.measurement.noise import NoNoise, default_system_noise
from repro.offload import enumerate_algorithms, measure_algorithms, profile_algorithms
from repro.reporting import cluster_table, format_table
from repro.selection import EnergyAwareSwitcher, SwitchingPolicy
from repro.tasks import object_detection_chain


def main() -> None:
    # Per processed frame batch: a cheap detection loop and an expensive refinement loop.
    chain = object_detection_chain(low_fidelity=96, high_fidelity=768, frames=4)
    platform = cpu_gpu_platform()

    algorithms = enumerate_algorithms(chain, platform)
    executor = SimulatedExecutor(platform, noise=default_system_noise(), seed=0)
    measurements = measure_algorithms(algorithms, executor, repetitions=30)

    analyzer = default_analyzer(seed=0, repetitions=80, n_measurements=30)
    analysis = analyzer.analyze(measurements)
    print(cluster_table(analysis.final, title="Performance classes of the detection pipeline splits"))

    # Noise-free profiles drive the energy policy.
    profiles = profile_algorithms(algorithms, SimulatedExecutor(platform, noise=NoNoise(), seed=0))

    preferred = "DD"   # keep everything on the vehicle/drone
    cooldown = "DA"    # offload the heavy refinement pass while cooling down
    edge_energy = profiles[preferred].device_energy(platform.host)
    policy = SwitchingPolicy(
        preferred=preferred,
        cooldown=cooldown,
        device=platform.host,
        threshold_j=25.0 * edge_energy,     # allow ~25 back-to-back frame batches
        dissipation_j_per_invocation=2.0 * edge_energy,
    )
    switcher = EnergyAwareSwitcher(policy=policy, profiles=profiles)
    trace = switcher.simulate(n_invocations=300)
    comparison = switcher.compare_with_static(300)

    print(
        f"\nDuty cycle over 300 frame batches: {trace.n_switches} switches, "
        f"{trace.usage_fraction(preferred) * 100:.0f}% of batches fully on the edge device"
    )
    rows = [
        (name, f"{values['time_s']:.3f}", f"{values['device_energy_j']:.1f}")
        for name, values in comparison.items()
    ]
    print(format_table(("strategy", "total time [s]", "edge energy [J]"), rows))
    print(
        "\nThe switching policy keeps the edge device within its energy envelope at a"
        " small latency cost, exactly the trade-off discussed in Section IV of the paper."
    )


if __name__ == "__main__":
    main()
