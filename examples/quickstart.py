"""Quickstart: cluster a handful of equivalent algorithms into performance classes.

This example measures four *really executed* NumPy implementations of the same
computation (a small regularised least-squares solve) on the local machine,
and uses the relative-performance methodology to cluster them: algorithms
whose timing distributions overlap end up in the same class.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np
from scipy import linalg

from repro import RelativePerformanceAnalyzer
from repro.measurement import MeasurementRunner
from repro.reporting import cluster_table, distribution_report


def make_problem(n: int = 120, seed: int = 0):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    b = rng.standard_normal((n, n))
    return a, b


def solve_with_inverse(a: np.ndarray, b: np.ndarray, lam: float = 0.1) -> np.ndarray:
    """Textbook formula: explicitly invert the Gram matrix (wasteful)."""
    n = a.shape[0]
    return np.linalg.inv(a.T @ a + lam * np.eye(n)) @ (a.T @ b)


def solve_with_solve(a: np.ndarray, b: np.ndarray, lam: float = 0.1) -> np.ndarray:
    """Use a general LU solve instead of the inverse (equivalent, usually faster)."""
    n = a.shape[0]
    return np.linalg.solve(a.T @ a + lam * np.eye(n), a.T @ b)


def solve_with_cholesky(a: np.ndarray, b: np.ndarray, lam: float = 0.1) -> np.ndarray:
    """Exploit symmetry/positive-definiteness with a Cholesky solve."""
    n = a.shape[0]
    gram = a.T @ a
    gram.flat[:: n + 1] += lam
    return linalg.cho_solve(linalg.cho_factor(gram, lower=True), a.T @ b)


def solve_with_lstsq(a_aug_cache: tuple[np.ndarray, np.ndarray]) -> np.ndarray:
    """Solve the augmented least-squares system directly (mathematically equivalent)."""
    a_aug, b_aug = a_aug_cache
    return np.linalg.lstsq(a_aug, b_aug, rcond=None)[0]


def main() -> None:
    a, b = make_problem()
    lam = 0.1
    n = a.shape[0]
    a_aug = np.vstack([a, np.sqrt(lam) * np.eye(n)])
    b_aug = np.vstack([b, np.zeros((n, n))])

    # 1) Measure every algorithm N times (round-robin to spread machine drift).
    runner = MeasurementRunner(repetitions=25, warmup=2, schedule="round-robin")
    measurements = runner.collect(
        {
            "inverse": lambda: solve_with_inverse(a, b, lam),
            "lu-solve": lambda: solve_with_solve(a, b, lam),
            "cholesky": lambda: solve_with_cholesky(a, b, lam),
            "lstsq": lambda: solve_with_lstsq((a_aug, b_aug)),
        }
    )

    print("Measured execution-time distributions:")
    print(distribution_report(measurements.as_dict(), bins=14, width=30))

    # 2) Cluster the algorithms into performance classes.
    analyzer = RelativePerformanceAnalyzer(seed=0, repetitions=100)
    analysis = analyzer.analyze(measurements)
    print(cluster_table(analysis.final, title="Performance classes (1 = fastest)"))

    # 3) Use the clustering: any algorithm of the best class is a sound choice;
    #    secondary criteria (memory, numerical robustness, energy) can break the tie.
    best = analysis.best_algorithms()
    print(f"\nEquivalently fast algorithms: {', '.join(map(str, best))}")
    print("Pick any of them - or apply a secondary criterion, as in the paper's Section IV.")


if __name__ == "__main__":
    main()
