"""Planning a placement space no enumeration engine will ever touch.

``examples/huge_space_search.py`` sweeps the full ``4**12`` space of a
12-task chain in tens of seconds -- impressive, but still exponential: add a
task and the sweep costs 4x more.  For single-scalar *additive* objectives
the exact planner (`repro.search.planner`) sidesteps enumeration entirely
with a Viterbi dynamic program over the k x m task/device lattice,
``O(k * m**2)``.  This example

* plans the same 12-task chain in about a millisecond and checks the optimum
  against the full streaming sweep (identical, bitwise, for ``"time"``),
* shows the robust variant: the placement minimising the *worst-case* time
  across a wifi -> lte link-degradation grid,
* then scales to a 200-task chain over a 12-device platform -- a
  ``12**200`` space (~1e215 placements, more than the square of the number
  of atoms in the observable universe) -- and still plans in milliseconds.

Run with::

    python examples/exact_planning.py           # includes the 4**12 sweep check
    QUICK=1 python examples/exact_planning.py   # planner only, skips the sweep
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.devices import (
    DeviceSpec,
    LinkSpec,
    Platform,
    SimulatedExecutor,
    edge_cluster_platform,
    lte,
    wifi_ac,
)
from repro.measurement.noise import NoNoise
from repro.scenarios import link_degradation_grid
from repro.search import search_space
from repro.tasks import RegularizedLeastSquaresTask, TaskChain


def build_chain(n_tasks: int) -> TaskChain:
    """A chain of dependent RLS solves with growing computational volume."""
    tasks = [
        RegularizedLeastSquaresTask(size=100 + 40 * (i % 12), iterations=6, name=f"L{i + 1}")
        for i in range(n_tasks)
    ]
    return TaskChain(tasks, name=f"rls-{n_tasks}")


def wide_platform(n_devices: int, seed: int = 3) -> Platform:
    """A fully linked platform with ``n_devices`` randomized devices."""
    rng = np.random.default_rng(seed)
    aliases = [chr(ord("A") + i) for i in range(n_devices)]
    devices = {
        alias: DeviceSpec(
            name=f"dev-{alias}",
            peak_gflops=float(rng.uniform(5.0, 500.0)),
            half_saturation_flops=float(rng.uniform(1e4, 1e7)),
            memory_bandwidth_gbs=float(rng.uniform(2.0, 200.0)),
            kernel_launch_overhead_s=float(rng.uniform(0.0, 1e-4)),
            task_startup_overhead_s=float(rng.uniform(0.0, 1e-3)),
            power_active_w=float(rng.uniform(1.0, 250.0)),
            power_idle_w=float(rng.uniform(0.1, 30.0)),
            cost_per_hour=float(rng.uniform(0.0, 2.0)),
        )
        for alias in aliases
    }
    links = {
        (a, b): LinkSpec(
            name=f"link-{a}{b}",
            bandwidth_gbs=float(rng.uniform(0.01, 10.0)),
            latency_s=float(rng.uniform(0.0, 1e-2)),
            energy_per_byte_j=float(rng.uniform(0.0, 1e-7)),
        )
        for i, a in enumerate(aliases)
        for b in aliases[i + 1 :]
    }
    return Platform(devices=devices, links=links, host=aliases[0], name=f"wide-{n_devices}")


def main() -> None:
    quick = os.environ.get("QUICK", "") not in ("", "0")

    platform = edge_cluster_platform()
    executor = SimulatedExecutor(platform, noise=NoNoise(), seed=0)
    chain = build_chain(12)
    m, k = len(platform.aliases), len(chain)
    print(
        f"platform {platform.name!r} ({', '.join(platform.aliases)}), "
        f"{k}-task chain -> {m}**{k} = {m**k:,} placements"
    )

    # -- exact plan on the huge-space-search workload -----------------------
    start = time.perf_counter()
    plan = executor.plan(chain, "time")
    plan_s = time.perf_counter() - start
    print(
        f"exact plan ({plan.method}): {plan.label}  time={plan.value:.6g} s  "
        f"[{plan.n_states} lattice states, {plan_s * 1e3:.2f} ms]"
    )

    if not quick:
        start = time.perf_counter()
        swept = search_space(executor, chain, objectives=("time",), top_k=1, frontier=None)
        sweep_s = time.perf_counter() - start
        best = float(swept.top["time"].values[0])
        assert plan.value == best, (plan.value, best)
        print(
            f"full sweep agrees bitwise: {swept.top['time'].labels[0]}  "
            f"time={best:.6g} s  [{swept.n_evaluated:,} placements, "
            f"{sweep_s:.1f} s -> planner is {sweep_s / plan_s:,.0f}x faster]"
        )

    # -- robust plan across a wifi -> lte degradation grid ------------------
    radio = [("D", "E"), ("D", "A"), ("N", "E"), ("N", "A"), ("E", "A")]
    scenarios = link_degradation_grid(radio, start=wifi_ac(), end=lte(), n_points=6)
    robust = executor.plan(chain, "time", scenarios=scenarios)
    print(
        f"robust plan ({robust.objective}): {robust.label}  "
        f"worst-case time={robust.value:.6g} s across {len(robust.scenario_names)} scenarios"
    )

    # -- the space enumeration can never touch ------------------------------
    n_tasks, n_devices = 200, 12
    scale_platform = wide_platform(n_devices)
    scale_executor = SimulatedExecutor(scale_platform, noise=NoNoise(), seed=0)
    scale_chain = build_chain(n_tasks)
    digits = len(str(n_devices**n_tasks))
    start = time.perf_counter()
    scale_plan = scale_executor.plan(scale_chain, "time")
    scale_s = time.perf_counter() - start
    print(
        f"scale: {n_tasks} tasks x {n_devices} devices -> "
        f"{n_devices}**{n_tasks} (~1e{digits - 1}) placements planned in "
        f"{scale_s * 1e3:.1f} ms; optimum {scale_plan.value:.6g} s "
        f"(all-host: {scale_executor.execute(scale_chain, scale_platform.host * n_tasks).total_time_s:.6g} s)"
    )


if __name__ == "__main__":
    main()
