"""Placing a branchy (DAG) workload: where chain thinking picks wrong.

The paper models a scientific code as a *linear chain* of loops; real
offloadable codes fork and join.  This example builds a fork-join code
(``prep -> {b1..bN} -> join``, heavy independent branches) as a
:class:`repro.tasks.TaskGraph` and shows, on the 4-device edge cluster:

1. **Planning gain** -- the full placement space evaluated under the DAG
   model (branches on different devices overlap; same-device tasks
   serialize) picks a *different* winner than the chain-linearized model,
   and that winner is strictly faster;
2. **The whole stack is DAG-aware** -- the streaming search subsystem,
   constraints and Pareto frontier consume the graph unchanged, and a
   wifi -> lte scenario sweep runs the robust grid search over it;
3. **Bitwise safety** -- a linear graph reproduces the chain's numbers
   exactly, so nothing changes for chain workloads.

Run with::

    python examples/dag_search.py
    BRANCHES=5 python examples/dag_search.py   # a wider fork
"""

from __future__ import annotations

import os

import numpy as np

from repro.devices import SimulatedExecutor, edge_cluster_platform, lte, wifi_ac
from repro.scenarios import link_degradation_grid
from repro.search import (
    DeadlineConstraint,
    WorstCaseObjective,
    search_grid,
    search_space,
)
from repro.tasks import TaskGraph, fork_join_graph, table1_chain


def main() -> None:
    branches = int(os.environ.get("BRANCHES", "3"))
    platform = edge_cluster_platform()
    graph = fork_join_graph(branches=branches)
    executor = SimulatedExecutor(platform, seed=0)

    print(f"platform: {platform.name} ({'/'.join(platform.aliases)}, host {platform.host})")
    print(f"workload: {graph.name}, tasks {' '.join(graph.task_names)}")
    print(f"levels:   {' | '.join(' '.join(level) for level in graph.levels)}")
    print(f"space:    {len(platform.aliases)}**{len(graph)} = "
          f"{len(platform.aliases) ** len(graph)} placements\n")

    # -- 1. DAG-aware vs chain-linearized planning --------------------------
    dag = executor.execute_batch(graph)
    chain = executor.execute_batch(graph.linearized_chain())
    dag_best = dag.argbest("time")
    chain_best = chain.argbest("time")
    print("planning the same workload two ways:")
    print(f"  chain-linearized winner: {chain.label(chain_best)}  "
          f"(predicted {chain.total_time_s[chain_best] * 1e3:.1f} ms serial, "
          f"actually {dag.total_time_s[chain_best] * 1e3:.1f} ms under the DAG model)")
    print(f"  DAG-aware winner:        {dag.label(dag_best)}  "
          f"({dag.total_time_s[dag_best] * 1e3:.1f} ms)")
    gain = dag.total_time_s[chain_best] / dag.total_time_s[dag_best]
    print(f"  planning gain: {gain:.2f}x -- structure awareness alone\n")

    # -- 2. the search stack consumes the graph unchanged -------------------
    result = search_space(
        executor,
        graph,
        objectives=("time", "energy"),
        top_k=5,
        constraints=(DeadlineConstraint(max_time_s=1.0),),
    )
    print(result.summary())
    print()

    radio = [("D", "E"), ("D", "A"), ("N", "E"), ("N", "A"), ("E", "A")]
    scenarios = link_degradation_grid(radio, start=wifi_ac(), end=lte(), n_points=5)
    robust = search_grid(
        executor, graph, scenarios, objectives=(WorstCaseObjective(),), top_k=3
    )
    drift = robust.scenario_best["time"].drift()
    print("winner drift across the wifi -> lte sweep:")
    for scenario, winner in drift.items():
        print(f"  {scenario:>24}: {winner}")
    print(f"robust worst-case pick: {robust.best('worst-time')}\n")

    # -- 3. linear graphs change nothing ------------------------------------
    chain_workload = table1_chain(loop_size=2)
    linear = TaskGraph.from_chain(chain_workload)
    a = SimulatedExecutor(platform, seed=0).execute_batch(chain_workload)
    b = SimulatedExecutor(platform, seed=0).execute_batch(linear)
    identical = np.array_equal(a.total_time_s, b.total_time_s) and np.array_equal(
        a.energy_total_j, b.energy_total_j
    )
    print(f"linear TaskGraph reproduces the TaskChain bitwise: {identical}")


if __name__ == "__main__":
    main()
