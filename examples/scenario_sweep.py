"""Searching for placements that survive environment drift.

A placement tuned for today's platform can be the wrong choice after the
Wi-Fi link falls back to LTE or a co-located job loads the host.  This example
sweeps the full placement space of a 6-task loop chain on the 4-device edge
cluster across a wifi -> lte degradation grid (`repro.scenarios`), using the
condition-stacked batch engine and the robust search driver (`repro.search`):

* every (scenario, placement) pair is evaluated in one vectorized pass per
  chunk (`execute_placements_grid`);
* per-scenario winners expose the drift (the best placement changes as the
  radio degrades);
* robust objectives pick the placements that stay good across the whole
  sweep: worst case, expectation, and minimax regret;
* `RobustDecisionModel` composes the Section IV decision model (time +
  cost-weighted accelerator rent) with the same robustness criteria.

Run with::

    python examples/scenario_sweep.py
"""

from __future__ import annotations

import time

from repro.devices import ChainCostTables, SimulatedExecutor, edge_cluster_platform, lte, wifi_ac
from repro.devices.grid import execute_placements_grid
from repro.measurement.noise import NoNoise
from repro.offload import placement_matrix
from repro.scenarios import link_degradation_grid
from repro.search import (
    ExpectedValueObjective,
    RegretObjective,
    WorstCaseObjective,
    search_grid,
)
from repro.selection import DecisionModel, RobustDecisionModel
from repro.tasks import RegularizedLeastSquaresTask, TaskChain

#: Every remote hop of the edge cluster rides the degrading radio.
RADIO_LINKS = (("D", "E"), ("D", "A"), ("N", "E"), ("N", "A"), ("E", "A"))


def build_chain(n_tasks: int = 6) -> TaskChain:
    """Loop tasks that generate data on the executing device: offloading is
    latency-bound, so the profitable boundary moves with link quality."""
    tasks = [
        RegularizedLeastSquaresTask(
            size=60 + 70 * i, iterations=20, name=f"L{i + 1}", generate_on_host=False
        )
        for i in range(n_tasks)
    ]
    return TaskChain(tasks, name=f"drift-{n_tasks}")


def main() -> None:
    platform = edge_cluster_platform()
    chain = build_chain()
    scenarios = link_degradation_grid(RADIO_LINKS, start=wifi_ac(), end=lte(), n_points=8)
    m, k, s = len(platform.aliases), len(chain), len(scenarios)
    print(
        f"platform {platform.name!r}, {k}-task chain -> {m}**{k} = {m**k:,} placements "
        f"x {s} scenarios = {m**k * s:,} (scenario, placement) pairs"
    )

    executor = SimulatedExecutor(platform, noise=NoNoise(), seed=0)
    start = time.perf_counter()
    result = search_grid(
        executor,
        chain,
        scenarios,
        objectives=(WorstCaseObjective(), ExpectedValueObjective(), RegretObjective()),
        top_k=5,
    )
    elapsed = time.perf_counter() - start
    print(f"swept {result.n_evaluated * s:,} pairs in {elapsed:.2f} s\n")

    drift = result.scenario_best["time"]
    print("per-scenario winner (the drift a frozen-platform tuner never sees):")
    for name, label, value in zip(drift.scenario_names, drift.labels, drift.values):
        print(f"  {name:<22} {label}  {value * 1e3:8.1f} ms")
    print()

    for name, selection in result.top.items():
        print(f"top {len(selection)} by {name}:")
        for label, value in zip(selection.labels, selection.values):
            print(f"  {label}  {value:.6g}")
        print()

    # Compose the Section IV decision model with robustness criteria on the
    # materialised grid (small enough here: top candidates only in RAM).
    tables = ChainCostTables.build_grid(chain, scenarios.platforms(platform))
    grid = execute_placements_grid(tables, placement_matrix(k, m))
    for criterion in ("worst_case", "expected", "regret"):
        model = RobustDecisionModel(DecisionModel(cost_weight=1000.0), criterion=criterion)
        print(model.decide_grid(grid).summary())


if __name__ == "__main__":
    main()
