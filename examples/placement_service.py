"""Serving a mixed placement-query stream from one content-addressed cache.

A deployment rarely asks one placement question once: dashboards re-ask the
same "where should this pipeline run?" query every refresh, autoscalers ask
it for every pipeline variant, and incident tooling asks the fault-aware
variant of whatever is currently degraded.  The serving layer
(`repro.service`) answers all of them through one `PlacementService`:

* every request is routed planner-or-stream by the same ``method='auto'``
  dispatch the search layer uses, and the response says which engine ran
  and why (``dispatch_reason``),
* cost tables are keyed by **content fingerprints** (`repro.cache`), so a
  structurally equal query -- rebuilt workload objects, different process,
  same bytes -- never rebuilds tables,
* whole responses are cached the same way: a repeated query skips the
  engine entirely and reports ``cache_info.served_from_cache``.

Run with::

    python examples/placement_service.py
"""

from __future__ import annotations

import time

from repro.devices import lte, wifi_ac
from repro.faults import DeviceFailure, FaultProfile, RetryPolicy
from repro.scenarios import link_degradation_grid
from repro.service import PlacementRequest, PlacementService
from repro.tasks import RegularizedLeastSquaresTask, TaskChain

RADIO = (("D", "E"), ("D", "A"), ("N", "E"), ("N", "A"), ("E", "A"))


def pipeline(n_tasks: int) -> TaskChain:
    """A fresh workload object every call -- reuse is by content, not identity."""
    tasks = [
        RegularizedLeastSquaresTask(
            size=60 + 40 * i, iterations=8, name=f"L{i + 1}", generate_on_host=False
        )
        for i in range(n_tasks)
    ]
    return TaskChain(tasks, name=f"pipeline-{n_tasks}")


def query_stream() -> list[PlacementRequest]:
    """The mixed stream: latency, energy, drift-robust and fault-aware asks."""
    drift = link_degradation_grid(RADIO, start=wifi_ac(), end=lte(), n_points=4)
    flaky = FaultProfile(device_failure=DeviceFailure(rate=0.02, rates={"A": 0.15}))
    return [
        PlacementRequest(workload=pipeline(5), platform="edge-cluster"),
        PlacementRequest(workload=pipeline(5), platform="edge-cluster", objective="energy"),
        PlacementRequest(workload=pipeline(5), platform="edge-cluster", scenario_grid=drift),
        PlacementRequest(
            workload=pipeline(4),
            platform="edge-cluster",
            faults=flaky,
            retry=RetryPolicy(max_attempts=3, backoff_base_s=0.01),
        ),
    ]


def run_stream(service: PlacementService, label: str) -> None:
    start = time.perf_counter()
    responses = [service.submit(request) for request in query_stream()]
    elapsed = time.perf_counter() - start
    print(f"\n{label} ({len(responses)} queries, {elapsed * 1e3:.1f} ms):")
    for response in responses:
        print(f"  {response.summary()}")


def main() -> None:
    service = PlacementService()

    # Cold: every configuration builds its tables and runs an engine.
    run_stream(service, "cold stream")

    # Hot: the same *content* (freshly built objects!) -- responses and
    # tables are served from the caches, no engine runs.
    run_stream(service, "hot stream")

    stats = service.cache_stats()
    print(
        f"\ntable cache: {stats.entries} entries, {stats.nbytes / 1e3:.1f} kB, "
        f"hit rate {stats.hit_rate:.2f}"
    )
    responses = service.response_cache.stats()
    print(f"response cache: {responses.entries} entries, hit rate {responses.hit_rate:.2f}")


if __name__ == "__main__":
    main()
