"""Multi-scale digital twin on a smartphone: offloading across three devices.

The introduction of the paper motivates the methodology with digital-twin
applications built on multi-scale modelling: a hierarchy of simulations with
growing computational volume, fed by sensors on resource-constrained devices.
This example places such a hierarchy on a three-device platform -- a
smartphone (host ``D``), an on-device NPU (``N``) and a cloud GPU reachable
over LTE (``A``) -- and shows:

* that the algorithm space grows as ``devices ** tasks`` (3^4 = 81 splits);
* how to sub-sample it (the paper's answer to combinatorial explosion);
* the resulting performance classes and the time/energy/cost Pareto front.

Run with::

    python examples/multiscale_digital_twin.py
"""

from __future__ import annotations

from repro.devices import SimulatedExecutor, smartphone_cloud_platform
from repro.experiments import default_analyzer
from repro.offload import (
    enumerate_algorithms,
    measure_algorithms,
    profile_algorithms,
    sample_algorithms,
)
from repro.reporting import cluster_table, format_table
from repro.selection import pareto_front
from repro.tasks import multiscale_chain


def main() -> None:
    # A four-scale hierarchy: each scale's output parameterises the next one.
    chain = multiscale_chain(scales=(40, 80, 160, 320), iterations=6)
    platform = smartphone_cloud_platform()

    full_space = enumerate_algorithms(chain, platform)
    print(f"Full algorithm space: {len(full_space)} equivalent splits over devices {platform.aliases}")

    # The paper: when the space explodes, apply the methodology to a subset and use
    # the resulting clusters as ground truth for a learned search.
    algorithms = sample_algorithms(
        full_space, k=12, rng=0, always_include=["DDDD", "DDDA", "DDDN", "AAAA", "NNNN"]
    )
    print(f"Sampled subset ({len(algorithms)}): {', '.join(a.label for a in algorithms)}\n")

    executor = SimulatedExecutor(platform, seed=0)
    measurements = measure_algorithms(algorithms, executor, repetitions=25)

    analyzer = default_analyzer(seed=0, repetitions=80, n_measurements=25)
    analysis = analyzer.analyze(measurements)
    print(cluster_table(analysis.final, title="Performance classes of the sampled splits"), "\n")

    # Multi-criteria view: execution time, total energy and operating cost.
    profiles = profile_algorithms(algorithms, executor)
    front = pareto_front(profiles)
    rows = [
        (label, f"{values['time_s']:.4f}", f"{values['energy_j']:.2f}", f"{values['operating_cost']:.2e}")
        for label, values in sorted(front.items(), key=lambda kv: kv[1]["time_s"])
    ]
    print("Pareto front over (time, energy, operating cost):")
    print(format_table(("algorithm", "time [s]", "energy [J]", "operating cost"), rows))

    best = analysis.best_algorithms()
    print(f"\nFastest class: {', '.join(map(str, best))}")
    print("From this class a digital-twin scheduler would pick the member that best")
    print("fits the current energy budget of the smartphone (cf. Section IV of the paper).")


if __name__ == "__main__":
    main()
