"""Regenerate Figure 1a (the algorithm space) and Figure 1b (timing distributions).

Paper artefacts:

* Figure 1a -- the four ways of splitting the two-loop code between the edge
  device ``D`` and the accelerator ``A``.
* Figure 1b -- distributions of N = 500 execution-time measurements of the
  four splits on the CPU+GPU platform, with ``AD`` clearly fastest and
  ``DD`` / ``DA`` heavily overlapping.
"""

from __future__ import annotations

from repro.devices import cpu_gpu_platform
from repro.experiments import Figure1Config, run_experiment
from repro.offload import enumerate_algorithms
from repro.tasks import figure1_chain


def test_figure1a_algorithm_space(benchmark, bench_once):
    """Figure 1a: enumerating the splits of the two-loop code over {D, A}."""
    platform = cpu_gpu_platform()
    chain = figure1_chain()

    algorithms = bench_once(benchmark, enumerate_algorithms, chain, platform)

    labels = sorted(a.label for a in algorithms)
    print("\nFigure 1a -- equivalent algorithms induced by the split of the two loops:")
    for algorithm in algorithms:
        print(
            f"  alg{algorithm.label}: "
            + ", ".join(f"{t.name}->{d}" for t, d in zip(algorithm.chain, algorithm.placement))
        )
    assert labels == ["AA", "AD", "DA", "DD"]


def test_figure1b_distributions(benchmark, bench_once):
    """Figure 1b: measurement distributions and the clustering they induce."""
    config = Figure1Config(n_measurements=500, repetitions=50, seed=0)

    result = bench_once(benchmark, run_experiment, "figure1", config)

    print("\n" + result.report())
    clusters = {label: result.analysis.cluster_of(label) for label in result.labels}
    # Paper shape: AD clearly the fastest; AA next; DD/DA bring up the rear and
    # stay within one class of each other (the paper finds them equivalent).
    assert clusters["AD"] == 1
    assert clusters["AD"] < clusters["AA"]
    assert clusters["AA"] <= clusters["DD"] <= clusters["DA"]
    assert abs(clusters["DD"] - clusters["DA"]) <= 1
    # The distributions themselves: offloading only L1 gives a >10% mean improvement,
    # offloading L2 does not improve the mean at all.
    measurements = result.measurements
    assert measurements.speedup("DD", "AD") > 1.10
    assert measurements.speedup("DD", "DA") < 1.02
