"""Aggregate every ``BENCH_*.json`` into one speedup-trajectory table.

Each benchmark writes its result next to this script (see
``conftest.write_benchmark_json``); this report collects them all and prints
one row per pinned metric -- relative speedups and absolute throughputs
(``"throughputs"``, rendered as ``.../s``) -- sorted by measurement time:
the project's performance trajectory from the first batch engine to the
fleet pipeline at a glance, plus how much headroom each pin has over its CI
floor.

Run it directly (``PYTHONPATH=src python benchmarks/report.py``); the CI job
does after the smoke benchmarks refresh the ``*_small`` files.  Exits
non-zero if any recorded speedup or throughput sits below its recorded
floor, so a stale or regressed JSON cannot slip through silently.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.reporting import format_table

BENCH_DIR = Path(__file__).resolve().parent


class BenchFileError(RuntimeError):
    """A ``BENCH_*.json`` file exists but cannot be parsed."""


def load_results(directory: Path = BENCH_DIR) -> list[dict]:
    """All ``BENCH_*.json`` payloads in ``directory``, oldest first.

    A malformed or truncated file (e.g. a benchmark killed mid-write) raises
    :class:`BenchFileError` naming the offending path instead of surfacing a
    bare ``json.JSONDecodeError`` with no clue which of the dozen files broke.
    """
    results = []
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            with path.open() as handle:
                payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise BenchFileError(
                f"malformed benchmark result {path}: {exc}; "
                f"rerun the benchmark to regenerate it "
                f"(PYTHONPATH=src python benchmarks/bench_{path.stem.removeprefix('BENCH_').removesuffix('_small')}.py)"
            ) from exc
        if not isinstance(payload, dict):
            raise BenchFileError(
                f"malformed benchmark result {path}: expected a JSON object, "
                f"got {type(payload).__name__}; rerun the benchmark to regenerate it"
            )
        payload.setdefault("benchmark", path.stem.removeprefix("BENCH_"))
        results.append(payload)
    results.sort(key=lambda payload: payload.get("written_at", ""))
    return results


def _workload_summary(workload: dict) -> str:
    """A compact ``key=value`` digest of the most telling workload fields."""
    telling = (
        "n_tasks",
        "n_placements",
        "n_scenarios",
        "n_users",
        "delta_scenarios",
        "n_measurements",
        "stream_placements",
        "headline_placements",
        "scale_tasks",
        "n_queries",
    )
    parts = [f"{key}={workload[key]}" for key in telling if key in workload]
    return " ".join(parts) if parts else "-"


def trajectory_rows(results: list[dict]) -> tuple[list[tuple[str, ...]], list[str]]:
    """One table row per pinned speedup/throughput; also collects floor violations."""
    rows: list[tuple[str, ...]] = []
    violations: list[str] = []
    for payload in results:
        name = payload["benchmark"]
        date = str(payload.get("written_at", "?"))[:10]
        workload = _workload_summary(payload.get("workload", {}))
        floors = payload.get("floors", {})
        for metric, speedup in sorted(payload.get("speedups", {}).items()):
            floor = floors.get(metric)
            if floor is not None and speedup < floor:
                violations.append(
                    f"{name}:{metric} speedup {speedup:.1f}x below floor {floor}x"
                )
            rows.append(
                (
                    name,
                    metric,
                    f"{speedup:,.1f}x",
                    f"{floor:g}x" if floor is not None else "-",
                    f"{speedup / floor:,.0f}x" if floor else "-",
                    date,
                    workload,
                )
            )
        for metric, throughput in sorted(payload.get("throughputs", {}).items()):
            floor = floors.get(metric)
            if floor is not None and throughput < floor:
                violations.append(
                    f"{name}:{metric} throughput {throughput:,.0f}/s below floor {floor:,.0f}/s"
                )
            rows.append(
                (
                    name,
                    metric,
                    f"{throughput:,.0f}/s",
                    f"{floor:,.0f}/s" if floor is not None else "-",
                    f"{throughput / floor:,.0f}x" if floor else "-",
                    date,
                    workload,
                )
            )
    return rows, violations


def main(argv: list[str] | None = None) -> int:
    directory = Path(argv[1]) if argv and len(argv) > 1 else BENCH_DIR
    try:
        results = load_results(directory)
    except BenchFileError as exc:
        print(f"ERROR: {exc}")
        return 1
    if not results:
        print(f"no BENCH_*.json files under {directory}")
        return 1
    rows, violations = trajectory_rows(results)
    print(f"Benchmark speedup trajectory ({len(results)} result files)")
    print()
    print(
        format_table(
            ("benchmark", "metric", "value", "floor", "margin", "measured", "workload"),
            rows,
        )
    )
    if violations:
        print()
        for violation in violations:
            print(f"FLOOR VIOLATION: {violation}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
