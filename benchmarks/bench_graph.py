"""Benchmark the vectorized DAG engine vs. the sequential graph executor.

The sequential reference (``SimulatedExecutor.execute_graph``) walks a
:class:`~repro.tasks.TaskGraph` in a Python loop, once per placement -- the
only way to evaluate DAG workloads before ``GraphCostTables``.  The vectorized
path builds the tables once and evaluates the whole ``m**k`` space in a single
NumPy pass with critical-path latency and per-edge joins.

The two paths must agree **bitwise** on every placement (asserted untimed),
and the vectorized engine must beat the loop by the speedup floor (10x for
the acceptance workload).

Set ``BENCH_GRAPH_SMALL=1`` (the CI smoke job does) for a reduced workload
with a relaxed floor.  Results land in ``BENCH_graph.json`` /
``BENCH_graph_small.json``.
"""

from __future__ import annotations

import gc
import os
import time

import numpy as np

from repro.devices import GraphCostTables, SimulatedExecutor, edge_cluster_platform, execute_placements
from repro.offload import placement_matrix
from repro.tasks import fork_join_graph

SMALL = os.environ.get("BENCH_GRAPH_SMALL", "") not in ("", "0")

if SMALL:
    BRANCHES = 3  # 5 tasks -> 4**5 = 1024 placements
    SPEEDUP_FLOOR = 5.0
else:
    BRANCHES = 5  # 7 tasks -> 4**7 = 16384 placements
    SPEEDUP_FLOOR = 10.0

SEED = 0


def _sequential_path(executor, graph, matrix, aliases):
    """The pre-DAG-engine implementation: one Python graph walk per placement."""
    times = np.empty(matrix.shape[0])
    energies = np.empty(matrix.shape[0])
    costs = np.empty(matrix.shape[0])
    for i, row in enumerate(matrix):
        record = executor.execute_graph(graph, tuple(aliases[d] for d in row))
        times[i] = record.total_time_s
        energies[i] = record.energy.total_j
        costs[i] = record.operating_cost
    return times, energies, costs


def _vectorized_path(graph, platform, matrix):
    return execute_placements(GraphCostTables.build(graph, platform), matrix)


def test_graph_engine_matches_and_beats_sequential_loop(benchmark, bench_once, bench_json):
    """Bitwise identical per-placement metrics, at a fraction of the loop's cost."""
    platform = edge_cluster_platform()
    graph = fork_join_graph(branches=BRANCHES)
    aliases = tuple(platform.aliases)
    matrix = placement_matrix(len(graph), len(aliases))
    n_placements = matrix.shape[0]
    executor = SimulatedExecutor(platform, seed=SEED, cache_executions=False)

    # Warm both paths on a tiny workload (lazy imports, allocator warm-up).
    tiny = fork_join_graph(branches=2)
    tiny_matrix = placement_matrix(len(tiny), len(aliases))[:16]
    _sequential_path(executor, tiny, tiny_matrix, aliases)
    _vectorized_path(tiny, platform, tiny_matrix)

    gc.collect()
    start = time.perf_counter()
    batch = _vectorized_path(graph, platform, matrix)
    vectorized_s = time.perf_counter() - start

    gc.collect()
    start = time.perf_counter()
    seq_times, seq_energies, seq_costs = _sequential_path(executor, graph, matrix, aliases)
    sequential_s = time.perf_counter() - start

    # -- equivalence (untimed): bitwise, every placement, every metric -------
    assert np.array_equal(batch.total_time_s, seq_times)
    assert np.array_equal(batch.energy_total_j, seq_energies)
    assert np.array_equal(batch.operating_cost, seq_costs)
    assert int(np.argmin(seq_times)) == batch.argbest("time")

    speedup = sequential_s / vectorized_s
    print(
        f"\n{platform.name}: {BRANCHES}-branch fork-join, {len(graph)} tasks x "
        f"{len(aliases)} devices = {n_placements} placements"
        f"\n  sequential execute_graph loop: {sequential_s * 1e3:8.1f} ms"
        f"\n  vectorized DAG engine:         {vectorized_s * 1e3:8.1f} ms  "
        f"({speedup:5.1f}x, floor {SPEEDUP_FLOOR}x)"
        f"\n  best placement: {batch.label(batch.argbest('time'))} "
        f"({batch.total_time_s.min() * 1e3:.1f} ms)"
    )

    bench_json(
        "graph_small" if SMALL else "graph",
        {
            "workload": {
                "platform": platform.name,
                "n_devices": len(aliases),
                "n_tasks": len(graph),
                "n_edges": graph.n_edges,
                "branches": BRANCHES,
                "n_placements": n_placements,
                "small": SMALL,
            },
            "seconds": {"sequential_loop": sequential_s, "graph_engine": vectorized_s},
            "speedups": {"graph_engine": speedup},
            "floors": {"graph_engine": SPEEDUP_FLOOR},
        },
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"graph engine regressed: {speedup:.1f}x < {SPEEDUP_FLOOR}x vs the sequential loop"
    )

    bench_once(benchmark, _vectorized_path, graph, platform, matrix)
