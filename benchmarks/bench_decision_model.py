"""Regenerate the Section IV decision-model numbers.

Paper artefacts (in-text, Section IV): at loop size n = 10 the mean execution
time of ``algDDA`` is only ~0.002 s better than ``algDDD`` (speed-up ~1.05);
the speed-up grows with n; and a decision model trading operating cost against
speed picks ``algDDD`` when the accelerator cost weighs heavily and ``algDDA``
when latency dominates.
"""

from __future__ import annotations

from repro.experiments import DecisionModelConfig, run_experiment


def test_decision_model_speedup_vs_loop_size(benchmark, bench_once):
    config = DecisionModelConfig(
        loop_sizes=(5, 10, 20, 40),
        cost_weights=(0.0, 100.0, 1e6),
        n_measurements=30,
        repetitions=40,
        seed=0,
    )

    result = bench_once(benchmark, run_experiment, "decision_model", config)

    print("\n" + result.report())
    speedups = result.speedups()
    gaps = result.gaps_s()

    # Paper: small absolute gap and ~1.05-1.1x speed-up around n=10 ...
    assert 1.0 < speedups[10] < 1.2
    assert 0.0005 < gaps[10] < 0.01  # a few milliseconds
    # ... and the speed-up increases with n.
    ordered = [speedups[n] for n in sorted(speedups)]
    assert all(b >= a for a, b in zip(ordered, ordered[1:]))
    assert speedups[40] > speedups[5]

    # The operating-cost trade-off: free accelerator time -> offload L3; expensive -> stay on D.
    for loop_size in config.loop_sizes:
        assert result.decisions[(loop_size, 0.0)] == "DDA"
        assert result.decisions[(loop_size, 1e6)] == "DDD"
