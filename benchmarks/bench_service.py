"""Benchmark the placement service: cold table builds vs cache-served queries.

A :class:`~repro.service.PlacementService` answers every query through two
content-addressed layers: the first (cold) submission of each configuration
pays the cost-table build plus the engine, while every later (hot)
submission of a *structurally equal* request -- same
workload/platform/scenario content, any object identity -- is served whole
from the response cache (and its tables from the shared table cache).

The benchmark submits a mixed query stream (plain, scenario-grid and
fault-aware requests over two chain lengths) against a fresh service, then
replays structurally equal clones of the same stream hot.  Hot responses
must agree **bitwise** with the cold ones (asserted untimed) and every hot
query must report ``served_from_cache``; hot throughput must beat cold
throughput by the speedup floor.

Set ``BENCH_SERVICE_SMALL=1`` (the CI smoke job does) for a reduced stream
with a relaxed floor.  Results land in ``BENCH_service.json`` /
``BENCH_service_small.json``.
"""

from __future__ import annotations

import gc
import os
import time

from repro.devices import lte, wifi_ac
from repro.faults import RetryPolicy
from repro.scenarios import link_degradation_grid
from repro.service import PlacementRequest, PlacementService
from repro.tasks import RegularizedLeastSquaresTask, TaskChain

SMALL = os.environ.get("BENCH_SERVICE_SMALL", "") not in ("", "0")

if SMALL:
    CHAIN_SIZES = (4, 5)
    N_POINTS = 3  # scenarios per grid request
    HOT_ROUNDS = 5
    SPEEDUP_FLOOR = 3.0
else:
    CHAIN_SIZES = (5, 6, 7)
    N_POINTS = 5
    HOT_ROUNDS = 10
    SPEEDUP_FLOOR = 10.0

RADIO = (("D", "E"), ("D", "A"), ("N", "E"), ("N", "A"), ("E", "A"))
RETRY = RetryPolicy(max_attempts=3, backoff_base_s=0.001)


def build_chain(n_tasks: int) -> TaskChain:
    tasks = [
        RegularizedLeastSquaresTask(
            size=60 + 40 * i, iterations=8, name=f"L{i + 1}", generate_on_host=False
        )
        for i in range(n_tasks)
    ]
    return TaskChain(tasks, name=f"bench-service-{n_tasks}")


def build_queries() -> list[PlacementRequest]:
    """The mixed stream: plain, robust-grid and fault-aware queries per chain.

    Workloads and grids are built fresh on every call, so replaying the
    stream exercises *content*-addressed reuse, never object identity.
    """
    grid = link_degradation_grid(RADIO, start=wifi_ac(), end=lte(), n_points=N_POINTS)
    queries: list[PlacementRequest] = []
    for n_tasks in CHAIN_SIZES:
        chain = build_chain(n_tasks)
        queries.append(PlacementRequest(workload=chain, platform="edge-cluster"))
        queries.append(
            PlacementRequest(workload=chain, platform="edge-cluster", objective="energy")
        )
        queries.append(
            PlacementRequest(workload=chain, platform="edge-cluster", scenario_grid=grid)
        )
        queries.append(
            PlacementRequest(workload=chain, platform="edge-cluster", retry=RETRY)
        )
    return queries


def _submit_all(service: PlacementService, queries: list[PlacementRequest]):
    return [service.submit(query) for query in queries]


def test_hot_queries_beat_cold_builds(benchmark, bench_once, bench_json):
    """Cache-served queries: bitwise the cold answers, at a fraction of the cost."""
    # Warm lazy imports and allocator on a throwaway service + tiny stream.
    warm = PlacementService()
    warm.submit(PlacementRequest(workload=build_chain(2), platform="edge-cluster"))

    service = PlacementService()
    cold_queries = build_queries()
    gc.collect()
    start = time.perf_counter()
    cold_responses = _submit_all(service, cold_queries)
    cold_s = time.perf_counter() - start

    hot_queries = build_queries()  # structurally equal, different objects
    gc.collect()
    start = time.perf_counter()
    for _ in range(HOT_ROUNDS):
        hot_responses = _submit_all(service, hot_queries)
    hot_s = (time.perf_counter() - start) / HOT_ROUNDS

    # -- equivalence (untimed): every hot answer bitwise the cold one --------
    for cold, hot in zip(cold_responses, hot_responses):
        assert hot.plan == cold.plan
        assert hot.value == cold.value
        assert hot.engine == cold.engine
        assert hot.cache_info.served_from_cache, hot.request
    assert any(not r.cache_info.served_from_cache for r in cold_responses)

    n_queries = len(cold_queries)
    cold_qps = n_queries / cold_s
    hot_qps = n_queries / hot_s
    speedup = hot_qps / cold_qps
    stats = service.cache_stats()
    print(
        f"\nplacement service: {n_queries} mixed queries "
        f"(chains {CHAIN_SIZES}, {N_POINTS}-point grid, faults)"
        f"\n  cold (table builds):  {cold_s * 1e3:8.1f} ms  ({cold_qps:8.1f} q/s)"
        f"\n  hot  (cache-served):  {hot_s * 1e3:8.1f} ms  ({hot_qps:8.1f} q/s, "
        f"{speedup:5.1f}x, floor {SPEEDUP_FLOOR}x)"
        f"\n  table cache: {stats.entries} entries, {stats.nbytes / 1e3:.1f} kB, "
        f"hit rate {stats.hit_rate:.2f}"
    )

    bench_json(
        "service_small" if SMALL else "service",
        {
            "workload": {
                "platform": "edge-cluster",
                "n_queries": n_queries,
                "chain_sizes": list(CHAIN_SIZES),
                "n_scenarios": N_POINTS,
                "hot_rounds": HOT_ROUNDS,
                "small": SMALL,
            },
            "seconds": {"cold_pass": cold_s, "hot_pass": hot_s},
            "queries_per_s": {"cold": cold_qps, "hot": hot_qps},
            "speedups": {"hot_queries": speedup},
            "floors": {"hot_queries": SPEEDUP_FLOOR},
        },
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"service cache regressed: hot queries only {speedup:.1f}x cold "
        f"(floor {SPEEDUP_FLOOR}x)"
    )

    bench_once(benchmark, _submit_all, service, hot_queries)
