"""Regenerate Figure 2: the bubble-sort-with-three-way-comparison walk-through.

Paper artefact: the step-by-step trace of Section III and the final sequence
set ``<(AD,1), (AA,2), (DD,3), (DA,3)>``.
"""

from __future__ import annotations

from repro.experiments import Figure2Config, run_experiment
from repro.experiments.figure2 import PAPER_FINAL_SEQUENCE


def test_figure2_trace(benchmark, bench_once):
    """Replay the worked example and check the exact published outcome."""
    result = bench_once(benchmark, run_experiment, "figure2", Figure2Config())

    print("\n" + result.report())
    assert result.matches_paper
    assert tuple(result.sort.pairs()) == PAPER_FINAL_SEQUENCE
    assert result.sort.n_classes == 3
    # The trace contains the four steps the paper discusses explicitly.
    outcomes = [(step.left, step.outcome.symbol, step.right) for step in result.sort.trace]
    assert ("DD", "<", "AA") in outcomes
    assert ("DD", "~", "DA") in outcomes
    assert ("DA", "<", "AD") in outcomes
    assert ("DD", "<", "AD") in outcomes


def test_figure2_is_order_independent_for_consistent_outcomes(benchmark, bench_once):
    """With the paper's (consistent) oracle, any initial order yields the same clustering."""
    from itertools import permutations

    from repro.core import three_way_bubble_sort
    from repro.experiments import paper_oracle

    def sort_all_orders():
        results = []
        for order in permutations(["DD", "AA", "DA", "AD"]):
            results.append(three_way_bubble_sort(list(order), paper_oracle()).as_mapping())
        return results

    mappings = bench_once(benchmark, sort_all_orders)
    expected = dict(PAPER_FINAL_SEQUENCE)
    assert all(mapping == expected for mapping in mappings)
    print(f"\nAll {len(mappings)} initial orders converge to {expected}.")
