"""Regenerate the Section III relative-score illustration (N = 30).

Paper artefact: the in-text relative scores of Section III -- with only 30
measurements some comparisons are borderline, so algorithms straddle adjacent
ranks with fractional scores, while the final (max-score, cumulated)
assignment recovers a clean clustering with ``AD`` on top.
"""

from __future__ import annotations

import pytest

from repro.experiments import Section3Config, run_experiment


def test_section3_relative_scores(benchmark, bench_once):
    config = Section3Config(n_measurements=30, repetitions=200, seed=1)

    result = bench_once(benchmark, run_experiment, "section3_scores", config)

    print("\n" + result.report())
    table = result.score_table

    # Procedure 4 invariants: per-algorithm scores sum to 1.
    for label in table.labels:
        assert table.total_score(label) == pytest.approx(1.0)

    # AD is always in the best class, exactly as in the paper's example.
    assert table.score("AD", 1) == pytest.approx(1.0, abs=0.05)
    assert result.final.cluster_of("AD") == 1

    # With N = 30 at least one comparison is borderline, so at least one algorithm
    # splits its relative score over two adjacent ranks (the paper's algAA / algDA).
    fractional = result.fractional_labels()
    assert fractional, "expected at least one borderline algorithm at N=30"

    # The final assignment is a partition with cumulated scores close to 1.
    for label in result.final.labels:
        assert 0.5 <= result.final.score_of(label) <= 1.0


def test_section3_more_measurements_sharpen_the_clustering(benchmark, bench_once):
    """With many measurements the borderline pairs resolve and more classes appear --
    the N-dependence discussed in Section III."""
    from repro.experiments import Figure1Config

    def run_both():
        small = run_experiment("section3_scores", Section3Config(n_measurements=30, repetitions=60, seed=0))
        large = run_experiment("figure1", Figure1Config(n_measurements=500, repetitions=40, seed=0))
        return small, large

    small, large = bench_once(benchmark, run_both)
    print(
        f"\nclusters at N=30: {small.final.n_clusters}, clusters at N=500: {large.analysis.n_clusters}"
    )
    assert large.analysis.n_clusters >= small.final.n_clusters
    assert large.analysis.cluster_of("AD") == 1
