"""Ablation: sensitivity of the clustering to the number of measurements N and to noise.

Section III notes that overlaps "become more evident when the number of
measurements N is small": with few measurements the comparator merges more
algorithms (fewer, coarser classes); with many measurements or little noise
the classes sharpen.  This bench sweeps N and the system-noise level on the
Table I workload and reports the number of performance classes.
"""

from __future__ import annotations

from repro.devices import SimulatedExecutor, cpu_gpu_platform
from repro.experiments import default_analyzer
from repro.measurement.noise import default_system_noise
from repro.offload import enumerate_algorithms, measure_algorithms
from repro.reporting import format_table
from repro.tasks import table1_chain


def _cluster_count(n_measurements: int, noise_level: float, seed: int = 0) -> tuple[int, int]:
    platform = cpu_gpu_platform()
    chain = table1_chain(loop_size=10)
    algorithms = enumerate_algorithms(chain, platform)
    executor = SimulatedExecutor(platform, noise=default_system_noise(noise_level), seed=seed)
    measurements = measure_algorithms(algorithms, executor, repetitions=n_measurements)
    analyzer = default_analyzer(seed=seed, repetitions=30, n_measurements=n_measurements)
    analysis = analyzer.analyze(measurements)
    return analysis.n_clusters, analysis.cluster_of("DDA")


def test_ablation_number_of_measurements(benchmark, bench_once):
    """More measurements -> finer (or equal) clustering; DDA stays in the best class."""
    sweep = (10, 30, 100)

    def evaluate():
        return {n: _cluster_count(n, noise_level=1.0) for n in sweep}

    results = bench_once(benchmark, evaluate)
    rows = [(n, *results[n]) for n in sweep]
    print("\nAblation: number of performance classes vs number of measurements N")
    print(format_table(("N", "#classes", "cluster of DDA"), rows))

    counts = [results[n][0] for n in sweep]
    assert counts[-1] >= counts[0]
    assert all(results[n][1] == 1 for n in sweep)
    assert all(2 <= results[n][0] <= 8 for n in sweep)


def test_ablation_noise_level(benchmark, bench_once):
    """More system noise -> coarser (or equal) clustering at fixed N."""
    levels = (0.5, 1.0, 3.0)

    def evaluate():
        return {level: _cluster_count(30, noise_level=level) for level in levels}

    results = bench_once(benchmark, evaluate)
    rows = [(level, *results[level]) for level in levels]
    print("\nAblation: number of performance classes vs system-noise level (N=30)")
    print(format_table(("noise level", "#classes", "cluster of DDA"), rows))

    counts = [results[level][0] for level in levels]
    assert counts[0] >= counts[-1]
    assert results[0.5][1] == 1
