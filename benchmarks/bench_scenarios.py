"""Benchmark the condition-stacked grid engine vs. a per-scenario Python loop.

The robustness workload evaluates one placement set under a dense grid of
environment conditions (the cartesian product of link congestion, latency
inflation, host load and accelerator DVFS easily reaches hundreds of
scenarios).  The baseline is the obvious implementation this repo supported
before the scenario subsystem: derive each scenario's platform, rebuild
``ChainCostTables`` and call ``execute_placements`` per scenario.  The grid
path (``ChainCostTables.build_grid`` + ``execute_placements_grid``) stacks the
tables along a condition axis and evaluates all (scenario, placement) pairs in
one vectorized pass.

The two paths must agree **bitwise** on every metric (asserted untimed), and
the grid path must beat the loop by the speedup floor.

Set ``BENCH_SCENARIOS_SMALL=1`` (the CI smoke job does) for a reduced
workload with a relaxed floor.  Results land in ``BENCH_scenarios.json`` /
``BENCH_scenarios_small.json``.
"""

from __future__ import annotations

import gc
import os
import time

import numpy as np

from repro.devices import ChainCostTables, edge_cluster_platform, execute_placements
from repro.devices.grid import execute_placements_grid
from repro.offload import placement_matrix
from repro.scenarios import (
    DeviceLoadFactor,
    DvfsFrequencyScale,
    LinkBandwidthScale,
    LinkLatencyScale,
    ScenarioGrid,
)
from repro.tasks import RegularizedLeastSquaresTask, TaskChain

SMALL = os.environ.get("BENCH_SCENARIOS_SMALL", "") not in ("", "0")

if SMALL:
    N_TASKS = 4  # 4**4 = 256 placements
    DVFS_VALUES = [1.0]  # 4 x 4 x 3 = 48 scenarios
    SPEEDUP_FLOOR = 2.0
else:
    N_TASKS = 4  # 4**4 = 256 placements
    DVFS_VALUES = [1.0, 0.7, 0.5]  # 4 x 4 x 3 x 3 = 144 scenarios
    SPEEDUP_FLOOR = 4.0

SEED = 0


def build_chain(n_tasks: int) -> TaskChain:
    tasks = [
        RegularizedLeastSquaresTask(
            size=60 + 40 * i, iterations=8, name=f"L{i + 1}", generate_on_host=False
        )
        for i in range(n_tasks)
    ]
    return TaskChain(tasks, name=f"bench-scenarios-{n_tasks}")


def build_scenarios() -> ScenarioGrid:
    """Congestion x latency x host load (x DVFS): a dense condition grid."""
    axes = [
        (LinkBandwidthScale(), [1.0, 0.5, 0.25, 0.125]),
        (LinkLatencyScale(), [1.0, 3.0, 10.0, 30.0]),
        (DeviceLoadFactor(devices=("D",)), [1.0, 1.5, 2.0]),
    ]
    if len(DVFS_VALUES) > 1:
        axes.append((DvfsFrequencyScale(devices=("E", "A")), DVFS_VALUES))
    return ScenarioGrid.cartesian(axes)


def _loop_path(chain, platforms, matrix):
    """The pre-scenario-subsystem implementation: one scalar build + execute per platform."""
    return [
        execute_placements(ChainCostTables.build(chain, platform), matrix)
        for platform in platforms
    ]


def _grid_path(chain, platforms, matrix):
    return execute_placements_grid(ChainCostTables.build_grid(chain, platforms), matrix)


def test_grid_path_matches_and_beats_scenario_loop(benchmark, bench_once, bench_json):
    """Bitwise identical (scenario, placement) metrics, at a fraction of the loop's cost."""
    platform = edge_cluster_platform()
    chain = build_chain(N_TASKS)
    scenarios = build_scenarios()
    platforms = scenarios.platforms(platform)
    matrix = placement_matrix(len(chain), len(platform.aliases))
    n_scenarios, n_placements = len(platforms), matrix.shape[0]

    # Warm both paths on a tiny workload (lazy imports, allocator warm-up).
    _loop_path(build_chain(2), platforms[:2], placement_matrix(2, 4))
    _grid_path(build_chain(2), platforms[:2], placement_matrix(2, 4))

    gc.collect()
    start = time.perf_counter()
    grid = _grid_path(chain, platforms, matrix)
    grid_s = time.perf_counter() - start

    gc.collect()
    start = time.perf_counter()
    loop = _loop_path(chain, platforms, matrix)
    loop_s = time.perf_counter() - start

    # -- equivalence (untimed): bitwise, every scenario, every metric --------
    for index, batch in enumerate(loop):
        assert np.array_equal(grid.total_time_s[index], batch.total_time_s)
        assert np.array_equal(grid.energy_total_j[index], batch.energy_total_j)
        assert np.array_equal(grid.operating_cost[index], batch.operating_cost)
        assert np.array_equal(grid.transfer_energy_j[index], batch.transfer_energy_j)
        assert np.array_equal(grid.busy_by_device[index], batch.busy_by_device)
    assert np.array_equal(grid.flops_by_device, loop[0].flops_by_device)
    assert np.array_equal(grid.transferred_bytes, loop[0].transferred_bytes)

    speedup = loop_s / grid_s
    print(
        f"\n{platform.name}: {n_scenarios} scenarios x {n_placements} placements "
        f"({n_scenarios * n_placements} pairs)"
        f"\n  per-scenario loop:  {loop_s * 1e3:8.1f} ms"
        f"\n  grid engine:        {grid_s * 1e3:8.1f} ms  "
        f"({speedup:5.1f}x, floor {SPEEDUP_FLOOR}x)"
    )

    bench_json(
        "scenarios_small" if SMALL else "scenarios",
        {
            "workload": {
                "platform": platform.name,
                "n_devices": len(platform.aliases),
                "n_tasks": N_TASKS,
                "n_placements": n_placements,
                "n_scenarios": n_scenarios,
                "pairs": n_scenarios * n_placements,
                "small": SMALL,
            },
            "seconds": {"scenario_loop": loop_s, "grid_engine": grid_s},
            "speedups": {"grid_engine": speedup},
            "floors": {"grid_engine": SPEEDUP_FLOOR},
        },
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"grid engine regressed: {speedup:.1f}x < {SPEEDUP_FLOOR}x vs the per-scenario loop"
    )

    bench_once(benchmark, _grid_path, chain, platforms, matrix)
