"""Benchmark the fused grid engine vs. a per-scenario Python loop.

The robustness workload evaluates one placement set under a dense grid of
environment conditions (the cartesian product of link congestion, latency
inflation, host load and accelerator DVFS easily reaches hundreds of
scenarios).  The baseline is the obvious implementation this repo supported
before the scenario subsystem: derive each scenario's platform
(``apply_conditions``), rebuild ``ChainCostTables`` and call
``execute_placements`` per scenario.  The fused grid path
(``build_tables(chain, platform, scenarios=grid)`` +
``execute_placements_grid``) composes each axis's vectorized ``scale_arrays``
onto the base platform's parameter arrays -- no per-scenario ``Platform``
objects at all -- and evaluates all (scenario, placement) pairs in one
vectorized pass.

Three speedups are pinned (all timings are best-of-``repeats`` on warm
paths, the steady state of a robustness sweep):

* ``grid_engine`` -- the whole pipeline (build + execute) vs. the loop;
* ``fused_build`` -- the array-space table build vs. the materializing build
  (derive every platform, stack scalar builds);
* ``delta_rebuild`` -- ``tables.updated(i, scenario, slice_cache=...)``
  swapping one scenario of the grid vs. a full fused rebuild of the modified
  grid.  The pinned path is cache-served (the replacement's condition slice
  is a content-fingerprint hit in the ``TableCache``), which is how the
  executor serves A/B toggles and sweep revisits; the cold swap (slice
  computed fresh) is reported as ``delta_rebuild_cold`` seconds for context
  -- its cost is dominated by the fixed per-build overhead, not the grid
  size, so it carries no floor.

Every compared path must agree **bitwise** (asserted untimed) before any
timing counts.

Set ``BENCH_SCENARIOS_SMALL=1`` (the CI smoke job does) for a reduced
workload with relaxed floors.  Results land in ``BENCH_scenarios.json`` /
``BENCH_scenarios_small.json``.
"""

from __future__ import annotations

import gc
import os
import time

import numpy as np

from repro.cache import TableCache
from repro.devices import ChainCostTables, edge_cluster_platform, execute_placements
from repro.devices.grid import execute_placements_grid
from repro.devices.tables import build_tables
from repro.offload import placement_matrix
from repro.scenarios import (
    DeviceLoadFactor,
    DvfsFrequencyScale,
    LinkBandwidthScale,
    LinkLatencyScale,
    Scenario,
    ScenarioGrid,
    apply_conditions,
)
from repro.tasks import RegularizedLeastSquaresTask, TaskChain

SMALL = os.environ.get("BENCH_SCENARIOS_SMALL", "") not in ("", "0")

if SMALL:
    N_TASKS = 4  # 4**4 = 256 placements
    DVFS_VALUES = [1.0]  # 4 x 4 x 3 = 48 scenarios
    SPEEDUP_FLOOR = 10.0
    BUILD_FLOOR = 2.0
    DELTA_FLOOR = 4.0
else:
    N_TASKS = 4  # 4**4 = 256 placements
    DVFS_VALUES = [1.0, 0.7, 0.5]  # 4 x 4 x 3 x 3 = 144 scenarios
    SPEEDUP_FLOOR = 20.0
    BUILD_FLOOR = 3.0
    DELTA_FLOOR = 10.0

SEED = 0
#: How many scenarios the delta rebuild swaps out of the grid.
DELTA_SCENARIOS = 1


def build_chain(n_tasks: int) -> TaskChain:
    tasks = [
        RegularizedLeastSquaresTask(
            size=60 + 40 * i, iterations=8, name=f"L{i + 1}", generate_on_host=False
        )
        for i in range(n_tasks)
    ]
    return TaskChain(tasks, name=f"bench-scenarios-{n_tasks}")


def build_scenarios() -> ScenarioGrid:
    """Congestion x latency x host load (x DVFS): a dense condition grid."""
    axes = [
        (LinkBandwidthScale(), [1.0, 0.5, 0.25, 0.125]),
        (LinkLatencyScale(), [1.0, 3.0, 10.0, 30.0]),
        (DeviceLoadFactor(devices=("D",)), [1.0, 1.5, 2.0]),
    ]
    if len(DVFS_VALUES) > 1:
        axes.append((DvfsFrequencyScale(devices=("E", "A")), DVFS_VALUES))
    return ScenarioGrid.cartesian(axes)


def _loop_path(chain, platform, scenarios, matrix):
    """The pre-scenario-subsystem pipeline: derive + build + execute per scenario."""
    return [
        execute_placements(
            ChainCostTables.build(chain, apply_conditions(platform, scenario)), matrix
        )
        for scenario in scenarios
    ]


def _grid_path(chain, platform, scenarios, matrix):
    """The fused pipeline: one array-space build, one vectorized execute."""
    return execute_placements_grid(
        build_tables(chain, platform, scenarios=scenarios), matrix
    )


def _best_of(fn, repeats: int) -> float:
    """Minimum wall time of ``repeats`` runs (robust for sub-millisecond ops).

    GC runs once up front and stays disabled while timing: a full collect
    between repeats costs more *inside* the timed region (cold caches,
    drained allocator arenas) than the garbage it clears.
    """
    gc.collect()
    gc.disable()
    try:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
    finally:
        gc.enable()
    return best


#: The per-scenario arrays a condition slice carries (bitwise-compared).
SLICE_FIELDS = (
    "busy", "hostio_time", "energy_in", "energy_out", "penalty_time",
    "penalty_energy", "first_penalty_time", "first_penalty_energy",
    "power_active", "power_idle", "cost_per_hour", "extra_idle_power",
)


def test_fused_grid_matches_and_beats_scenario_loop(benchmark, bench_once, bench_json):
    """Bitwise identical (scenario, placement) metrics, at a fraction of the loop's cost."""
    platform = edge_cluster_platform()
    chain = build_chain(N_TASKS)
    scenarios = build_scenarios()
    matrix = placement_matrix(len(chain), len(platform.aliases))
    n_scenarios, n_placements = len(scenarios), matrix.shape[0]
    repeats = 3 if SMALL else 5

    # -- equivalence (untimed): bitwise, every scenario, every metric --------
    grid = _grid_path(chain, platform, scenarios, matrix)
    loop = _loop_path(chain, platform, scenarios, matrix)
    for index, batch in enumerate(loop):
        assert np.array_equal(grid.total_time_s[index], batch.total_time_s)
        assert np.array_equal(grid.energy_total_j[index], batch.energy_total_j)
        assert np.array_equal(grid.operating_cost[index], batch.operating_cost)
        assert np.array_equal(grid.transfer_energy_j[index], batch.transfer_energy_j)
        assert np.array_equal(grid.busy_by_device[index], batch.busy_by_device)
    assert np.array_equal(grid.flops_by_device, loop[0].flops_by_device)
    assert np.array_equal(grid.transferred_bytes, loop[0].transferred_bytes)
    # Release the equivalence fixtures before timing: hundreds of live result
    # arrays block allocator reuse and would tax the timed region with page
    # faults that steady-state use never pays.
    del grid, loop

    # -- whole-pipeline comparison (both warm, best-of) ----------------------
    grid_s = _best_of(lambda: _grid_path(chain, platform, scenarios, matrix), repeats)
    loop_s = _best_of(lambda: _loop_path(chain, platform, scenarios, matrix), repeats)

    # -- build-only comparison: fused vs materializing ------------------------
    fused_tables = build_tables(chain, platform, scenarios=scenarios)
    materialized = build_tables(chain, scenarios.platforms(platform))
    for field in SLICE_FIELDS:
        assert getattr(fused_tables, field).tobytes() == getattr(materialized, field).tobytes()

    fused_build_s = _best_of(
        lambda: build_tables(chain, platform, scenarios=scenarios), repeats
    )
    materializing_build_s = _best_of(
        lambda: build_tables(chain, scenarios.platforms(platform)), repeats
    )

    # -- delta rebuild: swap one scenario vs. rebuild the whole grid ----------
    delta_index = n_scenarios // 2
    replacement = Scenario(
        name="bench-delta",
        settings=((LinkBandwidthScale(), 0.3), (LinkLatencyScale(), 7.0)),
    )
    modified_entries = list(scenarios.scenarios)
    modified_entries[delta_index] = replacement
    modified = ScenarioGrid(tuple(modified_entries))

    slice_cache = TableCache()
    first = fused_tables.updated(delta_index, replacement, slice_cache=slice_cache)
    served = fused_tables.updated(delta_index, replacement, slice_cache=slice_cache)
    assert (first.cache_stats().served, first.cache_stats().built) == (0, 1)
    assert (served.cache_stats().served, served.cache_stats().built) == (1, 0)
    full = build_tables(chain, platform, scenarios=modified)
    for updated in (first, served):
        for field in SLICE_FIELDS:
            assert getattr(updated, field).tobytes() == getattr(full, field).tobytes()
        assert updated.fingerprint == full.fingerprint

    delta_s = _best_of(
        lambda: fused_tables.updated(delta_index, replacement, slice_cache=slice_cache),
        4 * repeats,
    )
    delta_cold_s = _best_of(
        lambda: fused_tables.updated(delta_index, replacement), 2 * repeats
    )
    full_rebuild_s = _best_of(
        lambda: build_tables(chain, platform, scenarios=modified), repeats
    )

    speedup = loop_s / grid_s
    build_speedup = materializing_build_s / fused_build_s
    delta_speedup = full_rebuild_s / delta_s
    print(
        f"\n{platform.name}: {n_scenarios} scenarios x {n_placements} placements "
        f"({n_scenarios * n_placements} pairs)"
        f"\n  per-scenario loop:   {loop_s * 1e3:8.1f} ms"
        f"\n  fused grid engine:   {grid_s * 1e3:8.1f} ms  "
        f"({speedup:5.1f}x, floor {SPEEDUP_FLOOR}x)"
        f"\n  materializing build: {materializing_build_s * 1e3:8.1f} ms"
        f"\n  fused build:         {fused_build_s * 1e3:8.1f} ms  "
        f"({build_speedup:5.1f}x, floor {BUILD_FLOOR}x)"
        f"\n  full fused rebuild:  {full_rebuild_s * 1e3:8.1f} ms"
        f"\n  delta swap, cold (1/{n_scenarios}): {delta_cold_s * 1e3:6.2f} ms"
        f"\n  delta swap, cache-served:  {delta_s * 1e3:6.2f} ms  "
        f"({delta_speedup:5.1f}x, floor {DELTA_FLOOR}x)"
    )

    bench_json(
        "scenarios_small" if SMALL else "scenarios",
        {
            "workload": {
                "platform": platform.name,
                "n_devices": len(platform.aliases),
                "n_tasks": N_TASKS,
                "n_placements": n_placements,
                "n_scenarios": n_scenarios,
                "pairs": n_scenarios * n_placements,
                "delta_scenarios": DELTA_SCENARIOS,
                "small": SMALL,
            },
            "seconds": {
                "scenario_loop": loop_s,
                "grid_engine": grid_s,
                "fused_build": fused_build_s,
                "materializing_build": materializing_build_s,
                "delta_rebuild": delta_s,
                "delta_rebuild_cold": delta_cold_s,
                "full_rebuild": full_rebuild_s,
            },
            "speedups": {
                "grid_engine": speedup,
                "fused_build": build_speedup,
                "delta_rebuild": delta_speedup,
            },
            "floors": {
                "grid_engine": SPEEDUP_FLOOR,
                "fused_build": BUILD_FLOOR,
                "delta_rebuild": DELTA_FLOOR,
            },
        },
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"grid engine regressed: {speedup:.1f}x < {SPEEDUP_FLOOR}x vs the per-scenario loop"
    )
    assert build_speedup >= BUILD_FLOOR, (
        f"fused build regressed: {build_speedup:.1f}x < {BUILD_FLOOR}x vs the materializing build"
    )
    assert delta_speedup >= DELTA_FLOOR, (
        f"delta rebuild regressed: {delta_speedup:.1f}x < {DELTA_FLOOR}x vs a full fused rebuild"
    )

    bench_once(benchmark, _grid_path, chain, platform, scenarios, matrix)
