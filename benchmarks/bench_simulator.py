"""Benchmark the vectorized batch simulation engine vs. the per-placement path.

The acceptance workload evaluates the *whole* placement space of a 10-task
chain over the 3 devices of the smartphone-cloud platform -- ``3**10 = 59049``
placements, each profiled (noise-free record) and measured 30 times -- and
pits three implementations against each other:

* **sequential**: the seed per-placement path (enumerate ``Placement``
  objects, one ``execute`` per profile, one ``execute`` + noise draw per
  measurement vector, no caching);
* **batch / sequential-rng**: one vectorized batch execution, noise drawn per
  algorithm in the same RNG order -- **bit-for-bit identical** results;
* **batch / batched-rng**: same batch execution, each noise stage drawn once
  over the whole measurement matrix -- identical distribution, different
  stream, and the mode that makes ``m**k`` sweeps "as fast as the hardware
  allows".

Set ``BENCH_SIMULATOR_SMALL=1`` (the CI smoke job does) to run a reduced
2-device x 8-task workload with a 5x floor instead of the full acceptance
workload with its 50x floor.
"""

from __future__ import annotations

import gc
import os
import time

import numpy as np

from repro.devices import SimulatedExecutor
from repro.devices.catalog import cpu_gpu_platform, smartphone_cloud_platform
from repro.measurement.dataset import MeasurementSet
from repro.offload import (
    AlgorithmProfile,
    enumerate_algorithms,
    placement_matrix,
    profiles_from_batch,
)
from repro.tasks import TaskChain
from repro.tasks.rls import RegularizedLeastSquaresTask

SMALL = os.environ.get("BENCH_SIMULATOR_SMALL", "") not in ("", "0")

if SMALL:
    PLATFORM_FACTORY = cpu_gpu_platform
    N_TASKS = 8
    BATCHED_RNG_FLOOR = 5.0
    SEQUENTIAL_RNG_FLOOR = 3.0
else:
    PLATFORM_FACTORY = smartphone_cloud_platform
    N_TASKS = 10
    BATCHED_RNG_FLOOR = 50.0
    SEQUENTIAL_RNG_FLOOR = 10.0

REPETITIONS = 30
SEED = 0


def _chain(n_tasks: int = N_TASKS) -> TaskChain:
    """An n-task RLS chain with mixed task sizes (small and large solves)."""
    tasks = [
        RegularizedLeastSquaresTask(size=40 + 12 * i, iterations=4, name=f"L{i + 1}")
        for i in range(n_tasks)
    ]
    return TaskChain(tasks, name=f"bench-rls-{n_tasks}")


def _sequential_evaluate(chain, platform, repetitions, seed):
    """Replica of the seed path: per-placement execution, no cache, no batching."""
    executor = SimulatedExecutor(platform, seed=seed, cache_executions=False)
    algorithms = enumerate_algorithms(chain, platform)
    profiles = {
        algorithm.label: AlgorithmProfile(
            algorithm=algorithm,
            record=executor.execute(algorithm.chain, algorithm.placement.devices),
        )
        for algorithm in algorithms
    }
    measurements = MeasurementSet(metric="execution time", unit="s")
    for algorithm in algorithms:
        measurements.add(
            algorithm.label,
            executor.measure(algorithm.chain, algorithm.placement.devices, repetitions),
        )
    return algorithms, profiles, measurements


def _batch_evaluate(chain, platform, repetitions, seed, rng_mode):
    """The batch engine path: matrix enumeration + vectorized execution."""
    executor = SimulatedExecutor(platform, seed=seed)
    matrix = placement_matrix(len(chain), len(platform.aliases))
    space = executor.execute_batch(chain, matrix)
    measurements = executor.measure_batch(space, repetitions=repetitions, rng_mode=rng_mode)
    return space, measurements


def test_batch_engine_speedup(benchmark, bench_once, bench_json):
    """Batch engine vs. the sequential path on the full ``m**k`` space."""
    platform = PLATFORM_FACTORY()
    chain = _chain()
    n_placements = len(platform.aliases) ** len(chain)

    # Warm both code paths on a tiny space so lazy NumPy/interpreter setup is
    # not billed to either timed region, and time the batch paths before the
    # sequential one: the latter keeps ~n_placements Python objects alive,
    # which would otherwise tax the batch region with full GC traversals.
    warm_chain = _chain(3)
    _sequential_evaluate(warm_chain, platform, 3, SEED)
    _batch_evaluate(warm_chain, platform, 3, SEED, "batched")

    gc.collect()
    start = time.perf_counter()
    space, exact_measurements = _batch_evaluate(chain, platform, REPETITIONS, SEED, "sequential")
    batch_exact_s = time.perf_counter() - start

    gc.collect()
    start = time.perf_counter()
    _, fast_measurements = _batch_evaluate(chain, platform, REPETITIONS, SEED, "batched")
    batch_fast_s = time.perf_counter() - start

    gc.collect()
    start = time.perf_counter()
    algorithms, seq_profiles, seq_measurements = _sequential_evaluate(
        chain, platform, REPETITIONS, SEED
    )
    sequential_s = time.perf_counter() - start

    # -- equivalence (untimed) ------------------------------------------------
    # The sequential-rng batch set is bit-for-bit identical to the seed path.
    assert exact_measurements.labels == seq_measurements.labels
    for label in seq_measurements.labels:
        assert np.array_equal(exact_measurements[label], seq_measurements[label])
    # Batch profiles materialise records bitwise identical to execute().
    rng = np.random.default_rng(123)
    for index in rng.choice(n_placements, size=min(50, n_placements), replace=False):
        algorithm = algorithms[int(index)]
        assert space.record(int(index)) == seq_profiles[algorithm.label].record
    # The batched-rng mode only claims the same distribution: sanity-check it.
    assert fast_measurements.labels == seq_measurements.labels
    fast_medians = np.array([np.median(fast_measurements[l]) for l in fast_measurements.labels])
    assert np.all(fast_medians > 0)
    assert np.all(np.abs(fast_medians / space.total_time_s - 1.0) < 0.5)

    exact_speedup = sequential_s / batch_exact_s
    fast_speedup = sequential_s / batch_fast_s
    print(
        f"\n{platform.name}: {n_placements} placements x ({REPETITIONS} measurements + profile)"
        f"\n  sequential path:        {sequential_s:8.3f} s"
        f"\n  batch (sequential rng): {batch_exact_s:8.3f} s  ({exact_speedup:6.1f}x, floor {SEQUENTIAL_RNG_FLOOR}x)"
        f"\n  batch (batched rng):    {batch_fast_s:8.3f} s  ({fast_speedup:6.1f}x, floor {BATCHED_RNG_FLOOR}x)"
    )
    bench_json(
        # The reduced smoke workload records under its own name so it never
        # clobbers the tracked acceptance-workload record.
        "simulator_small" if SMALL else "simulator",
        {
            "workload": {
                "platform": platform.name,
                "n_devices": len(platform.aliases),
                "n_tasks": len(chain),
                "n_placements": n_placements,
                "repetitions": REPETITIONS,
                "small": SMALL,
            },
            "seconds": {
                "sequential": sequential_s,
                "batch_sequential_rng": batch_exact_s,
                "batch_batched_rng": batch_fast_s,
            },
            "speedups": {
                "batch_sequential_rng": exact_speedup,
                "batch_batched_rng": fast_speedup,
            },
            "floors": {
                "batch_sequential_rng": SEQUENTIAL_RNG_FLOOR,
                "batch_batched_rng": BATCHED_RNG_FLOOR,
            },
        },
    )
    assert exact_speedup >= SEQUENTIAL_RNG_FLOOR, (
        f"bit-for-bit batch path regressed: {exact_speedup:.1f}x < {SEQUENTIAL_RNG_FLOOR}x"
    )
    assert fast_speedup >= BATCHED_RNG_FLOOR, (
        f"batched-rng batch path regressed: {fast_speedup:.1f}x < {BATCHED_RNG_FLOOR}x"
    )

    # One measured round for the pytest-benchmark record (the fast batch path).
    bench_once(benchmark, _batch_evaluate, chain, platform, REPETITIONS, SEED, "batched")


def test_chunked_space_streaming(benchmark, bench_once):
    """The chunked enumeration covers the space in bounded memory, same results."""
    platform = PLATFORM_FACTORY()
    chain = _chain(min(N_TASKS, 8))
    executor = SimulatedExecutor(platform, seed=SEED)
    full = executor.execute_batch(chain)

    def stream():
        chunks = list(executor.iter_execute_batches(chain, batch_size=1000))
        return chunks

    chunks = bench_once(benchmark, stream)
    assert all(len(c) <= 1000 for c in chunks)
    streamed_total = np.concatenate([c.total_time_s for c in chunks])
    assert np.array_equal(streamed_total, full.total_time_s)
    print(f"\n{len(full)} placements streamed in {len(chunks)} chunks of <= 1000 rows")
