"""Benchmark the comparison engine: cached vs. seed (uncached) analysis.

Procedure 4 repeats the three-way bubble sort ``Rep`` times, so the seed
implementation re-bootstrapped every pair of algorithms on every comparison --
up to ``Rep`` times per pair -- even though the deterministic comparator
guarantees an identical outcome on every call.  The
:class:`~repro.core.engine.ComparisonEngine` precomputes the full antisymmetric
outcome matrix in one vectorized batch and serves every lookup from cache.

This benchmark pits the engine-backed
:meth:`~repro.core.analyzer.RelativePerformanceAnalyzer.analyze` against a
faithful replica of the seed implementation (direct per-call comparator
binding, exactly the old ``bind_comparator``) on the acceptance workload
(p = 12 algorithms, N = 30 measurements, Rep = 100, deterministic
``BootstrapComparator``), asserting a >= 5x wall-clock speedup with *identical*
``ScoreTable`` and ``FinalClustering`` outputs.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import BootstrapComparator, RelativePerformanceAnalyzer
from repro.core.clustering import final_assignment, relative_scores
from repro.core.sorting import three_way_bubble_sort

P_ALGORITHMS = 12
N_MEASUREMENTS = 30
REPETITIONS = 100
SPEEDUP_FLOOR = 5.0


def _workload(p: int = P_ALGORITHMS, n: int = N_MEASUREMENTS) -> dict[str, np.ndarray]:
    """p overlapping measurement distributions, N measurements each."""
    rng = np.random.default_rng(42)
    return {
        f"alg{i:02d}": np.abs(rng.normal(2.0 + 0.04 * i, 0.25, size=n)) for i in range(p)
    }


def _seed_analyze(measurements, comparator, repetitions, seed):
    """Replica of the seed implementation: per-call comparator binding, no caching."""
    arrays = {label: np.asarray(values, dtype=float) for label, values in measurements.items()}

    def compare(a, b):
        return comparator.compare(arrays[a], arrays[b])

    table = relative_scores(
        list(arrays), compare, repetitions=repetitions, rng=seed, shuffle=True
    )
    final = final_assignment(table)
    canonical = three_way_bubble_sort(list(arrays), compare)
    return table, final, canonical


def test_engine_speedup_over_seed_implementation(benchmark, bench_once, bench_json):
    """>= 5x faster than the seed path on p=12 / N=30 / Rep=100, identical outputs."""
    measurements = _workload()
    seed = 0
    analyzer = RelativePerformanceAnalyzer(
        comparator=BootstrapComparator(seed=seed), repetitions=REPETITIONS, seed=seed
    )

    start = time.perf_counter()
    seed_table, seed_final, seed_canonical = _seed_analyze(
        measurements, BootstrapComparator(seed=seed), REPETITIONS, seed
    )
    seed_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    result = analyzer.analyze(measurements)
    engine_elapsed = time.perf_counter() - start

    speedup = seed_elapsed / engine_elapsed
    print(
        f"\nseed implementation: {seed_elapsed:.3f} s   engine: {engine_elapsed:.3f} s   "
        f"speedup: {speedup:.1f}x  (floor: {SPEEDUP_FLOOR}x)"
    )

    bench_json(
        "engine",
        {
            "workload": {
                "p_algorithms": P_ALGORITHMS,
                "n_measurements": N_MEASUREMENTS,
                "repetitions": REPETITIONS,
            },
            "seconds": {"seed": seed_elapsed, "engine": engine_elapsed},
            "speedups": {"engine": speedup},
            "floors": {"engine": SPEEDUP_FLOOR},
        },
    )

    # Identical outputs, not just statistically equivalent ones.
    assert result.score_table == seed_table
    assert result.final.as_dict() == seed_final.as_dict()
    assert result.canonical_sort.sequence == seed_canonical.sequence
    assert result.canonical_sort.ranks == seed_canonical.ranks
    assert speedup >= SPEEDUP_FLOOR, f"expected >= {SPEEDUP_FLOOR}x, got {speedup:.1f}x"

    # One measured round for the record (the engine path).
    bench_once(benchmark, analyzer.analyze, measurements)


def test_engine_precomputes_each_pair_once(benchmark, bench_once):
    """The precomputed matrix serves ~Rep * p^2/2 lookups from p*(p-1)/2 pair evaluations."""
    measurements = _workload()
    analyzer = RelativePerformanceAnalyzer(
        comparator=BootstrapComparator(seed=0), repetitions=REPETITIONS, seed=0
    )
    engine = bench_once(benchmark, analyzer.engine_for, measurements)
    pairs = P_ALGORITHMS * (P_ALGORITHMS - 1) // 2
    assert engine.comparator_calls == pairs

    three_way_bubble_sort(list(measurements), engine)
    assert engine.comparator_calls == pairs  # all lookups served from the matrix
    print(f"\n{pairs} pair evaluations precomputed in one vectorized batch")


def test_analyze_many_campaign(benchmark, bench_once):
    """A whole sweep of scenarios runs as one campaign (sequential == parallel)."""
    rng = np.random.default_rng(7)
    campaigns = {
        f"scenario-{k}": {
            f"alg{i}": np.abs(rng.normal(1.5 + 0.1 * i + 0.3 * k, 0.2, size=N_MEASUREMENTS))
            for i in range(6)
        }
        for k in range(4)
    }
    analyzer = RelativePerformanceAnalyzer(
        comparator=BootstrapComparator(seed=0), repetitions=40, seed=0
    )

    results = bench_once(benchmark, analyzer.analyze_many, campaigns)
    assert set(results) == set(campaigns)

    parallel = analyzer.analyze_many(campaigns, parallel=True, max_workers=2)
    for key in campaigns:
        assert results[key].score_table == parallel[key].score_table
        assert results[key].final.as_dict() == parallel[key].final.as_dict()
    print(f"\ncampaign of {len(campaigns)} scenarios analyzed; parallel == sequential")
