"""Shared helpers for the benchmark/experiment-regeneration harness.

Every benchmark regenerates one paper artefact (table, figure or in-text
number), prints it in the paper's format, asserts its qualitative shape and
reports the wall-clock cost of the regeneration through pytest-benchmark.
Heavy experiments are benchmarked with a single round so the harness stays
fast enough to run after every change.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with a single measured execution and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def bench_once():
    """Fixture exposing :func:`run_once` to the benchmark modules."""
    return run_once
