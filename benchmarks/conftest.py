"""Shared helpers for the benchmark/experiment-regeneration harness.

Every benchmark regenerates one paper artefact (table, figure or in-text
number), prints it in the paper's format, asserts its qualitative shape and
reports the wall-clock cost of the regeneration through pytest-benchmark.
Heavy experiments are benchmarked with a single round so the harness stays
fast enough to run after every change.
"""

from __future__ import annotations

import json
import os
import platform as platform_module
import time
from pathlib import Path

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with a single measured execution and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def bench_once():
    """Fixture exposing :func:`run_once` to the benchmark modules."""
    return run_once


def write_benchmark_json(name: str, payload: dict) -> Path:
    """Write machine-readable benchmark results to ``BENCH_<name>.json``.

    The file lands next to the benchmarks (override the directory with the
    ``BENCH_JSON_DIR`` environment variable) and records the workload
    parameters, wall times and speedups of one benchmark run, so the perf
    trajectory of the hot paths is tracked across PRs in version control.
    """
    directory = Path(os.environ.get("BENCH_JSON_DIR", Path(__file__).parent))
    directory.mkdir(parents=True, exist_ok=True)
    record = {
        "benchmark": name,
        "written_at": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()) + "Z",
        "python": platform_module.python_version(),
        **payload,
    }
    path = directory / f"BENCH_{name}.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


@pytest.fixture
def bench_json():
    """Fixture exposing :func:`write_benchmark_json` to the benchmark modules."""
    return write_benchmark_json
