"""Regenerate the Section IV energy-aware switching scenario.

Paper artefact (in-text, Section IV): run ``algDDD`` while the edge device's
energy budget allows it, switch to ``algDAA`` (which ships most FLOPs to the
accelerator) when the threshold is reached, and switch back once the device
has cooled down.  The switching policy keeps the edge-device energy below the
all-on-device baseline at a negligible execution-time cost.
"""

from __future__ import annotations

from repro.experiments import EnergySwitchingConfig, run_experiment


def test_energy_switching_duty_cycle(benchmark, bench_once):
    config = EnergySwitchingConfig(
        loop_size=10, n_invocations=200, threshold_j=20.0, dissipation_j=2.0, seed=0
    )

    result = bench_once(benchmark, run_experiment, "energy_switching", config)

    print("\n" + result.report())
    trace = result.trace
    comparison = result.comparison

    # The policy actually alternates between the two algorithms.
    assert trace.n_switches >= 2
    assert 0.0 < trace.usage_fraction(config.preferred) < 1.0
    assert trace.usage_fraction(config.preferred) + trace.usage_fraction(config.cooldown) == 1.0

    # Energy on the constrained edge device: switching sits between the two static policies.
    switching = comparison["switching"]["device_energy_j"]
    static_ddd = comparison["static-DDD"]["device_energy_j"]
    static_daa = comparison["static-DAA"]["device_energy_j"]
    assert static_daa < switching < static_ddd

    # The execution-time cost of switching is small (DAA sits in the best/second class).
    assert comparison["switching"]["time_s"] < 1.1 * comparison["static-DDD"]["time_s"]

    # The FLOPs-budget selector recommends an algorithm that offloads the dominant task.
    assert result.budget_choice in {"DDA", "DAA", "ADA", "AAA"}
