"""Regenerate Table I: clustering of the eight RLS placements into performance classes.

Paper artefact: Table I -- the relative-score clustering of
``DDD, DDA, DAD, DAA, ADD, ADA, AAD, AAA`` measured N = 30 times each, with
``DDA`` on top (C1), ``DDD`` second (C2) and ``AAD`` last (C5).
"""

from __future__ import annotations

from repro.experiments import Table1Config, run_experiment


def test_table1_clustering(benchmark, bench_once):
    """Regenerate the Table I clustering and assert the paper's qualitative claims."""
    config = Table1Config(loop_size=10, n_measurements=30, repetitions=100, seed=0)

    result = bench_once(benchmark, run_experiment, "table1", config)

    print("\n" + result.report())
    checks = result.qualitative_checks()
    failed = [name for name, ok in checks.items() if not ok]
    assert not failed, f"failed qualitative checks: {failed}"
    # The headline numbers of Section IV: offloading L3 is only marginally faster.
    assert 1.0 < result.speedup_dda_over_ddd < 1.35
    assert result.analysis.n_clusters >= 4


def test_table1_flops_attribution(benchmark, bench_once):
    """The energy-proxy column behind Table I's discussion: FLOPs left on the edge device."""
    from repro.devices import cpu_gpu_platform
    from repro.offload import enumerate_algorithms
    from repro.tasks import table1_chain

    platform = cpu_gpu_platform()
    chain = table1_chain(loop_size=10)

    algorithms = bench_once(benchmark, enumerate_algorithms, chain, platform)

    rows = sorted(
        ((a.label, a.flops_on("D"), a.offloaded_fraction("D")) for a in algorithms),
        key=lambda row: row[1],
    )
    print("\nFLOPs remaining on the edge device D per algorithm (Table I workload):")
    for label, flops, fraction in rows:
        print(f"  alg{label}: {flops:.3e} FLOPs on D  ({fraction * 100:5.1f}% offloaded)")
    flops = {label: value for label, value, _ in rows}
    # L3 dominates the computational volume: offloading it removes ~98% of the edge FLOPs.
    assert flops["AAA"] == 0.0
    assert flops["DDA"] < 0.05 * flops["DDD"]
    assert flops["AAD"] > 0.9 * flops["DDD"]
