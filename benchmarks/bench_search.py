"""Benchmark the streaming search subsystem vs. materialize-then-select.

Two measurements on the 4-device edge-cluster platform:

* **select** (small, materializable space): pick top-K + Pareto winners the
  seed way -- enumerate ``OffloadedAlgorithm`` objects, materialise an
  ``AlgorithmProfile`` per placement, run ``pareto_front`` and a brute-force
  ``min`` -- against one pass of ``repro.search.search_space`` over the same
  space.  The selections must be element-for-element identical; the streaming
  path must beat the materializing path by the speedup floor.

* **stream** (large space, >= 1M placements): sweep the full space through
  ``search_space`` under ``tracemalloc`` and assert the peak *traced
  allocation* stays under a hard ceiling -- the bounded-memory claim: chunked
  execution plus O(top_k + frontier) selection state, never per-placement
  objects (the same space materialised as profiles would take gigabytes).

Set ``BENCH_SEARCH_SMALL=1`` (the CI smoke job does) for reduced workloads
with relaxed floors.  Results land in ``BENCH_search.json`` /
``BENCH_search_small.json``.
"""

from __future__ import annotations

import gc
import os
import time
import tracemalloc

import numpy as np

from repro.devices import SimulatedExecutor, edge_cluster_platform
from repro.measurement.noise import NoNoise
from repro.offload import enumerate_algorithms, profiles_from_batch
from repro.search import search_space
from repro.selection import pareto_front
from repro.tasks import RegularizedLeastSquaresTask, TaskChain

SMALL = os.environ.get("BENCH_SEARCH_SMALL", "") not in ("", "0")

if SMALL:
    SELECT_TASKS = 6  # 4**6 = 4096 placements, materializable
    STREAM_TASKS = 8  # 4**8 = 65536 placements
    SELECT_SPEEDUP_FLOOR = 2.0
else:
    SELECT_TASKS = 7  # 4**7 = 16384 placements, materializable
    STREAM_TASKS = 10  # 4**10 = 1048576 placements (>= 1M)
    SELECT_SPEEDUP_FLOOR = 4.0

#: Peak traced allocations allowed while streaming the large space.  One
#: 65536-row chunk is a few MB; the floor fails if per-placement state ever
#: accumulates across chunks.
STREAM_MEMORY_CEILING_MB = 192.0
TOP_K = 10
SEED = 0


def _chain(n_tasks: int) -> TaskChain:
    tasks = [
        RegularizedLeastSquaresTask(size=100 + 40 * i, iterations=6, name=f"L{i + 1}")
        for i in range(n_tasks)
    ]
    return TaskChain(tasks, name=f"bench-search-{n_tasks}")


def _materialize_and_select(chain, platform, executor):
    """The seed selection path: profile objects, pareto_front, brute-force min."""
    algorithms = enumerate_algorithms(chain, platform)
    space = executor.execute_batch(chain, [a.placement.devices for a in algorithms])
    profiles = profiles_from_batch(algorithms, space)
    front = pareto_front(profiles)
    by_time = sorted(profiles, key=lambda label: (profiles[label].time_s, label))[:TOP_K]
    by_energy = sorted(profiles, key=lambda label: (profiles[label].energy_j, label))[:TOP_K]
    return profiles, front, by_time, by_energy


def _streaming_select(chain, executor, **kwargs):
    return search_space(
        executor, chain, objectives=("time", "energy"), top_k=TOP_K, **kwargs
    )


def test_streaming_select_matches_and_beats_materialize(benchmark, bench_once, bench_json):
    """Identical winners, at a fraction of the materializing path's cost."""
    platform = edge_cluster_platform()
    chain = _chain(SELECT_TASKS)
    n_placements = len(platform.aliases) ** len(chain)

    # Warm both paths on a tiny space (lazy imports, table caches).
    warm_executor = SimulatedExecutor(platform, noise=NoNoise(), seed=SEED)
    _materialize_and_select(_chain(3), platform, warm_executor)
    _streaming_select(_chain(3), warm_executor)

    gc.collect()
    executor = SimulatedExecutor(platform, noise=NoNoise(), seed=SEED)
    start = time.perf_counter()
    result = _streaming_select(chain, executor)
    streaming_s = time.perf_counter() - start

    gc.collect()
    executor = SimulatedExecutor(platform, noise=NoNoise(), seed=SEED)
    start = time.perf_counter()
    profiles, front, by_time, by_energy = _materialize_and_select(chain, platform, executor)
    materialize_s = time.perf_counter() - start

    # -- equivalence (untimed) ----------------------------------------------
    assert set(result.frontier.labels) == set(front)
    for label, values in result.frontier.as_dict().items():
        assert values["time"] == profiles[label].time_s
        assert values["energy"] == profiles[label].energy_j
        assert values["cost"] == profiles[label].operating_cost
    # Top-K values match the brute-force selection (labels may permute only
    # within exact value ties, which the value comparison still pins down).
    assert np.array_equal(
        result.top["time"].values, np.array([profiles[l].time_s for l in by_time])
    )
    assert np.array_equal(
        result.top["energy"].values, np.array([profiles[l].energy_j for l in by_energy])
    )

    speedup = materialize_s / streaming_s
    print(
        f"\n{platform.name}: top-{TOP_K} + Pareto over {n_placements} placements"
        f"\n  materialize-then-select: {materialize_s:8.3f} s"
        f"\n  streaming search:        {streaming_s:8.3f} s  "
        f"({speedup:6.1f}x, floor {SELECT_SPEEDUP_FLOOR}x)"
    )

    bench_json(
        "search_small" if SMALL else "search",
        {
            "workload": {
                "platform": platform.name,
                "n_devices": len(platform.aliases),
                "select_tasks": SELECT_TASKS,
                "select_placements": n_placements,
                "stream_tasks": STREAM_TASKS,
                "stream_placements": len(platform.aliases) ** STREAM_TASKS,
                "top_k": TOP_K,
                "small": SMALL,
            },
            "seconds": {
                "materialize_then_select": materialize_s,
                "streaming_select": streaming_s,
            },
            "speedups": {"streaming_select": speedup},
            "floors": {
                "streaming_select": SELECT_SPEEDUP_FLOOR,
                "stream_memory_ceiling_mb": STREAM_MEMORY_CEILING_MB,
            },
        },
    )
    assert speedup >= SELECT_SPEEDUP_FLOOR, (
        f"streaming selection regressed: {speedup:.1f}x < {SELECT_SPEEDUP_FLOOR}x "
        f"vs materialize-then-select"
    )

    bench_once(benchmark, _streaming_select, chain, executor)


def test_streaming_sweep_is_memory_bounded(benchmark, bench_once, bench_json):
    """Sweep the large space; peak traced allocations stay under the ceiling."""
    platform = edge_cluster_platform()
    chain = _chain(STREAM_TASKS)
    executor = SimulatedExecutor(platform, noise=NoNoise(), seed=SEED)
    n_placements = len(platform.aliases) ** len(chain)

    _streaming_select(_chain(3), executor)  # warm lazy imports

    gc.collect()
    tracemalloc.start()
    start = time.perf_counter()
    result = _streaming_select(chain, executor)
    elapsed = time.perf_counter() - start
    _, peak_bytes = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    peak_mb = peak_bytes / 2**20
    throughput = n_placements / elapsed
    print(
        f"\n{platform.name}: streamed {n_placements} placements in {elapsed:.2f} s "
        f"({throughput / 1e6:.2f} M placements/s under tracemalloc), "
        f"peak traced memory {peak_mb:.1f} MiB (ceiling {STREAM_MEMORY_CEILING_MB} MiB)"
    )
    assert result.n_evaluated == n_placements
    assert len(result.top["time"]) == TOP_K
    assert len(result.frontier) >= 1
    assert peak_mb <= STREAM_MEMORY_CEILING_MB, (
        f"streaming sweep is no longer memory-bounded: peak {peak_mb:.1f} MiB "
        f"> {STREAM_MEMORY_CEILING_MB} MiB ceiling"
    )

    # One measured round for the pytest-benchmark record (without tracemalloc,
    # on a reduced space so the harness stays fast).
    bench_once(benchmark, _streaming_select, _chain(max(STREAM_TASKS - 2, 3)), executor)
