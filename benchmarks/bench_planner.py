"""Benchmark the exact Viterbi planner vs. the streaming enumerator.

Every earlier speed layer bought a constant factor over brute force; the
planner changes the exponent: ``O(k * m**2)`` against ``m**k``.  Three claims
are pinned here:

* **crossover** -- on a sweep of enumerable chain lengths the planner and the
  enumerator find the identical optimum (asserted untimed, bitwise), and the
  planner wins from the very first lengths;
* **headline speedup** -- on a ``4**12`` space (16.7M placements, the
  ``examples/huge_space_search.py`` workload class) the planner must beat the
  full streaming sweep by the speedup floor (100x in the acceptance
  configuration; in practice it is >10000x);
* **scale** -- a 200-task x 12-device chain (a ``12**200`` space, ~1e215
  placements) must plan in under a second.

Set ``BENCH_PLANNER_SMALL=1`` (the CI smoke job does) for a reduced headline
space with a relaxed floor.  Results land in ``BENCH_planner.json`` /
``BENCH_planner_small.json``.
"""

from __future__ import annotations

import gc
import os
import time

import numpy as np

from repro.devices import DeviceSpec, LinkSpec, Platform, SimulatedExecutor, edge_cluster_platform
from repro.search import plan_workload, search_space
from repro.tasks import GemmLoopTask, TaskChain

SMALL = os.environ.get("BENCH_PLANNER_SMALL", "") not in ("", "0")

if SMALL:
    HEADLINE_TASKS = 9  # 4**9 = 262144 placements
    SPEEDUP_FLOOR = 20.0
else:
    HEADLINE_TASKS = 12  # 4**12 = 16.7M placements (>= the acceptance space)
    SPEEDUP_FLOOR = 100.0

CROSSOVER_TASKS = (2, 4, 6, 8)
SCALE_TASKS = 200
SCALE_DEVICES = 12
SCALE_SECONDS_FLOOR = 1.0
SEED = 0


def random_chain(rng: np.random.Generator, n_tasks: int) -> TaskChain:
    tasks = [
        GemmLoopTask(
            int(rng.integers(8, 96)), iterations=int(rng.integers(1, 4)), name=f"L{i + 1}"
        )
        for i in range(n_tasks)
    ]
    return TaskChain(tasks, name=f"bench-planner-{n_tasks}")


def wide_platform(rng: np.random.Generator, n_devices: int) -> Platform:
    """A fully linked platform wide enough for the 12-device scale workload."""
    aliases = [chr(ord("A") + i) for i in range(n_devices)]
    devices = {
        alias: DeviceSpec(
            name=f"dev-{alias}",
            peak_gflops=float(rng.uniform(5.0, 500.0)),
            half_saturation_flops=float(rng.uniform(1e4, 1e7)),
            memory_bandwidth_gbs=float(rng.uniform(2.0, 200.0)),
            kernel_launch_overhead_s=float(rng.uniform(0.0, 1e-4)),
            task_startup_overhead_s=float(rng.uniform(0.0, 1e-3)),
            power_active_w=float(rng.uniform(1.0, 250.0)),
            power_idle_w=float(rng.uniform(0.1, 30.0)),
            cost_per_hour=float(rng.uniform(0.0, 2.0)),
        )
        for alias in aliases
    }
    links = {
        (a, b): LinkSpec(
            name=f"link-{a}{b}",
            bandwidth_gbs=float(rng.uniform(0.01, 10.0)),
            latency_s=float(rng.uniform(0.0, 1e-2)),
            energy_per_byte_j=float(rng.uniform(0.0, 1e-7)),
        )
        for i, a in enumerate(aliases)
        for b in aliases[i + 1 :]
    }
    return Platform(devices=devices, links=links, host=aliases[0], name=f"wide-{n_devices}")


def _plan(executor, chain):
    return plan_workload(executor, chain, "time", method="dp")


def test_planner_beats_enumeration_and_scales_past_it(benchmark, bench_once, bench_json):
    """Identical optima on enumerable spaces; asymptotic win beyond them."""
    rng = np.random.default_rng(SEED)
    platform = edge_cluster_platform()
    executor = SimulatedExecutor(platform)
    n_devices = len(platform.aliases)

    # Warm both paths (lazy imports, allocator warm-up).
    tiny = random_chain(rng, 2)
    search_space(executor, tiny, top_k=1, frontier=None)
    plan_workload(executor, tiny, "time", method="dp")

    # -- crossover sweep: both engines, identical optima (untimed assert) ----
    crossover = []
    for n_tasks in CROSSOVER_TASKS:
        chain = random_chain(rng, n_tasks)
        gc.collect()
        start = time.perf_counter()
        streamed = search_space(executor, chain, top_k=1, frontier=None)
        enum_s = time.perf_counter() - start
        start = time.perf_counter()
        plan = _plan(executor, chain)
        plan_s = time.perf_counter() - start
        assert plan.value == float(streamed.top["time"].values[0])
        crossover.append((n_tasks, n_devices**n_tasks, enum_s, plan_s))

    # -- headline: the acceptance space, both engines ------------------------
    headline_chain = random_chain(rng, HEADLINE_TASKS)
    gc.collect()
    start = time.perf_counter()
    streamed = search_space(executor, headline_chain, top_k=1, frontier=None)
    enumerate_s = time.perf_counter() - start

    gc.collect()
    start = time.perf_counter()
    plan = _plan(executor, headline_chain)
    plan_s = time.perf_counter() - start

    # Equivalence (untimed): the DP optimum is bitwise the enumerated one.
    assert plan.value == float(streamed.top["time"].values[0])
    assert plan.label == streamed.top["time"].labels[0] or plan.value == float(
        streamed.top["time"].values[0]
    )
    speedup = enumerate_s / plan_s

    # -- scale: a space no enumeration engine can touch ----------------------
    scale_platform = wide_platform(rng, SCALE_DEVICES)
    scale_executor = SimulatedExecutor(scale_platform)
    scale_chain = random_chain(rng, SCALE_TASKS)
    gc.collect()
    start = time.perf_counter()
    scale_plan = _plan(scale_executor, scale_chain)
    scale_s = time.perf_counter() - start
    space_digits = len(str(SCALE_DEVICES**SCALE_TASKS))
    # Sanity (untimed): the optimum cannot be worse than staying on the host.
    all_host = scale_executor.execute(scale_chain, scale_platform.host * SCALE_TASKS)
    assert scale_plan.value <= all_host.total_time_s

    rows = "".join(
        f"\n    k={k:2d}: {space:>10d} placements  enumerate {e * 1e3:9.2f} ms"
        f"   plan {p * 1e3:6.2f} ms   ({e / p:8.1f}x)"
        for k, space, e, p in crossover
    )
    print(
        f"\n{platform.name}: enumerator -> planner crossover{rows}"
        f"\n  headline ({n_devices}**{HEADLINE_TASKS} = "
        f"{n_devices**HEADLINE_TASKS} placements):"
        f"\n    streaming enumeration: {enumerate_s * 1e3:10.1f} ms"
        f"\n    exact Viterbi DP:      {plan_s * 1e3:10.3f} ms  "
        f"({speedup:.0f}x, floor {SPEEDUP_FLOOR}x)"
        f"\n  scale: {SCALE_TASKS} tasks x {SCALE_DEVICES} devices "
        f"(~1e{space_digits - 1} placements) planned in {scale_s * 1e3:.1f} ms "
        f"(floor {SCALE_SECONDS_FLOOR}s)"
    )

    bench_json(
        "planner_small" if SMALL else "planner",
        {
            "workload": {
                "platform": platform.name,
                "n_devices": n_devices,
                "headline_tasks": HEADLINE_TASKS,
                "headline_placements": n_devices**HEADLINE_TASKS,
                "crossover_tasks": list(CROSSOVER_TASKS),
                "scale_tasks": SCALE_TASKS,
                "scale_devices": SCALE_DEVICES,
                "scale_space_digits": space_digits,
                "small": SMALL,
            },
            "seconds": {
                "enumerate_headline": enumerate_s,
                "plan_headline": plan_s,
                "plan_scale": scale_s,
            },
            "speedups": {"planner": speedup},
            "floors": {"planner": SPEEDUP_FLOOR, "plan_scale_seconds": SCALE_SECONDS_FLOOR},
        },
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"planner regressed: {speedup:.1f}x < {SPEEDUP_FLOOR}x vs streaming enumeration"
    )
    assert scale_s < SCALE_SECONDS_FLOOR, (
        f"scale planning regressed: {scale_s:.2f}s >= {SCALE_SECONDS_FLOOR}s "
        f"for {SCALE_TASKS} tasks x {SCALE_DEVICES} devices"
    )

    bench_once(benchmark, _plan, executor, headline_chain)
