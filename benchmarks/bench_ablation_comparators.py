"""Ablation: comparator choice and the stability claim behind the methodology.

Not a table in the paper, but the design choice it argues for in Sections I
and III: reducing noisy distributions to a single number (mean / median /
minimum) produces rankings that flip between measurement rounds, whereas the
three-way clustering merges statistically indistinguishable algorithms and
stays stable.  This bench quantifies that on the Table I workload.
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    MannWhitneyComparator,
    RelativePerformanceAnalyzer,
    SingleStatisticRanker,
    stability_across_rounds,
)
from repro.devices import SimulatedExecutor, cpu_gpu_platform
from repro.experiments import default_analyzer
from repro.measurement.noise import default_system_noise
from repro.offload import enumerate_algorithms, measure_algorithms
from repro.reporting import format_table
from repro.tasks import table1_chain


def _measurement_rounds(n_rounds: int, n_measurements: int = 30):
    platform = cpu_gpu_platform()
    chain = table1_chain(loop_size=10)
    algorithms = enumerate_algorithms(chain, platform)
    rounds = []
    for seed in range(n_rounds):
        executor = SimulatedExecutor(platform, noise=default_system_noise(1.5), seed=seed)
        rounds.append(measure_algorithms(algorithms, executor, repetitions=n_measurements))
    return rounds


def test_ablation_clustering_is_more_stable_than_single_statistics(benchmark, bench_once):
    """Re-measure the Table I workload several times and compare ranking stability."""

    def evaluate():
        rounds = _measurement_rounds(n_rounds=5)
        strategies: dict[str, list[dict[str, int]]] = {"relative-performance": [], "mean": [], "median": [], "min": []}
        for measurements in rounds:
            analyzer = default_analyzer(seed=0, repetitions=40, n_measurements=30)
            analysis = analyzer.analyze(measurements)
            strategies["relative-performance"].append(
                {label: analysis.cluster_of(label) for label in measurements.labels}
            )
            for stat in ("mean", "median", "min"):
                ranking = SingleStatisticRanker(stat).rank(measurements.as_dict())
                strategies[stat].append(dict(ranking.ranks))
        return {name: stability_across_rounds(rounds_) for name, rounds_ in strategies.items()}

    reports = bench_once(benchmark, evaluate)

    rows = [
        (name, f"{r.mean_order_agreement:.3f}", f"{r.mean_partition_agreement:.3f}", f"{r.best_class_consistency:.3f}")
        for name, r in reports.items()
    ]
    print("\nAblation: stability of the ranking strategies across 5 re-measurement rounds")
    print(format_table(("strategy", "order agreement", "partition agreement", "best-class consistency"), rows))

    relative = reports["relative-performance"]
    for baseline in ("mean", "median", "min"):
        assert relative.best_class_consistency >= reports[baseline].best_class_consistency
    assert relative.mean_partition_agreement >= 0.7


def test_ablation_comparator_choice_preserves_the_headline_result(benchmark, bench_once):
    """DDA stays in the best class and AAD in the worst regardless of the comparator family."""

    def evaluate():
        platform = cpu_gpu_platform()
        chain = table1_chain(loop_size=10)
        algorithms = enumerate_algorithms(chain, platform)
        executor = SimulatedExecutor(platform, seed=0)
        measurements = measure_algorithms(algorithms, executor, repetitions=30)
        comparators = {
            "bootstrap": default_analyzer(seed=0, repetitions=40, n_measurements=30).comparator,
            "mann-whitney": MannWhitneyComparator(alpha=0.05),
        }
        outcomes = {}
        for name, comparator in comparators.items():
            analyzer = RelativePerformanceAnalyzer(comparator=comparator, repetitions=40, seed=0)
            analysis = analyzer.analyze(measurements)
            outcomes[name] = {label: analysis.cluster_of(label) for label in measurements.labels}
        return outcomes

    outcomes = bench_once(benchmark, evaluate)
    rows = [
        (name, clusters["DDA"], clusters["DDD"], clusters["AAD"], max(clusters.values()))
        for name, clusters in outcomes.items()
    ]
    print("\nAblation: cluster of DDA / DDD / AAD under different comparator families")
    print(format_table(("comparator", "C(DDA)", "C(DDD)", "C(AAD)", "#classes"), rows))
    for clusters in outcomes.values():
        assert clusters["DDA"] == 1
        assert clusters["AAD"] == max(clusters.values())
        assert clusters["DDD"] <= 2
