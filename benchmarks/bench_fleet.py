"""Benchmark fleet-scale simulation: a 10**5-user population end-to-end.

The fleet pipeline samples a weighted user population from a
:class:`~repro.fleet.FleetSpec` (one weighted scenario per user), builds the
fused grid cost tables for the whole population at once, evaluates every
(user, placement) pair in one vectorized pass, and reduces the per-user time
matrix to a weighted tail objective (p95 across the fleet).  Nothing in the
pipeline materializes per-user ``Platform`` objects or loops over users, so
a 100,000-user fleet is evaluated end-to-end in seconds -- the pinned floor
is the (user x placement) pair throughput of the whole pipeline.

Also pinned:

* ``delta_rebuild`` -- population drift.  ``SampledFleet.resample_users``
  redraws a slice of the fleet from its segment distributions and the table
  rebuild goes through ``updated_many`` (only the redrawn users' condition
  slices are recomputed), asserted bitwise against a full rebuild of the
  drifted grid before any timing counts.
* The weighted p95 reduction itself is asserted bitwise against a direct
  sort/cumsum evaluation of the left-continuous inverse CDF.

Set ``BENCH_FLEET_SMALL=1`` (the CI smoke job does) for a reduced fleet with
relaxed floors.  Results land in ``BENCH_fleet.json`` /
``BENCH_fleet_small.json``.
"""

from __future__ import annotations

import gc
import os
import time

import numpy as np

from repro.devices import edge_cluster_platform
from repro.devices.grid import execute_placements_grid
from repro.devices.tables import build_tables
from repro.fleet import FleetSpec, NormalAxis, UniformAxis, UserSegment, sample_fleet
from repro.offload import placement_matrix
from repro.scenarios import DeviceLoadFactor, LinkBandwidthScale, LinkLatencyScale
from repro.search import QuantileObjective
from repro.tasks import RegularizedLeastSquaresTask, TaskChain

SMALL = os.environ.get("BENCH_FLEET_SMALL", "") not in ("", "0")

if SMALL:
    N_USERS = 2_000
    DRIFT_USERS = 50
    PAIRS_PER_S_FLOOR = 1_000.0
    DELTA_FLOOR = 1.3
else:
    N_USERS = 100_000
    DRIFT_USERS = 1_000
    PAIRS_PER_S_FLOOR = 10_000.0
    DELTA_FLOOR = 2.0

SEED = 0
N_TASKS = 2  # 4**2 = 16 placements on the 4-device edge cluster
QUANTILE = 0.95


def build_chain(n_tasks: int) -> TaskChain:
    tasks = [
        RegularizedLeastSquaresTask(
            size=60 + 60 * i, iterations=8, name=f"L{i + 1}", generate_on_host=False
        )
        for i in range(n_tasks)
    ]
    return TaskChain(tasks, name=f"bench-fleet-{n_tasks}")


def build_spec() -> FleetSpec:
    """Three user segments: good wifi, congested cellular, loaded hosts."""
    return FleetSpec(
        segments=(
            UserSegment(
                "office-wifi",
                weight=6.0,
                axes=(
                    UniformAxis(LinkBandwidthScale(), 0.8, 1.3),
                    UniformAxis(LinkLatencyScale(), 0.8, 1.5),
                ),
            ),
            UserSegment(
                "congested-cell",
                weight=3.0,
                axes=(
                    UniformAxis(LinkBandwidthScale(), 0.1, 0.45),
                    UniformAxis(LinkLatencyScale(), 2.0, 6.0),
                ),
            ),
            UserSegment(
                "loaded-host",
                weight=1.0,
                axes=(
                    NormalAxis(
                        DeviceLoadFactor(devices=("D",)),
                        mean=1.6,
                        std=0.3,
                        low=1.0,
                        high=2.5,
                    ),
                ),
            ),
        )
    )


def _best_of(fn, repeats: int) -> float:
    """Minimum wall time of ``repeats`` runs, GC parked while timing."""
    gc.collect()
    gc.disable()
    try:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
    finally:
        gc.enable()
    return best


def _manual_weighted_quantile(values: np.ndarray, weights: np.ndarray, q: float) -> np.ndarray:
    """Left-continuous inverse CDF per placement column, straight numpy."""
    out = np.empty(values.shape[1])
    for column in range(values.shape[1]):
        order = np.argsort(values[:, column], kind="stable")
        cumulative = np.cumsum(weights[order])
        index = int(np.searchsorted(cumulative, q * cumulative[-1], side="left"))
        out[column] = values[order[min(index, len(order) - 1)], column]
    return out


#: The per-scenario arrays a condition slice carries (bitwise-compared).
SLICE_FIELDS = (
    "busy", "hostio_time", "energy_in", "energy_out", "penalty_time",
    "penalty_energy", "first_penalty_time", "first_penalty_energy",
    "power_active", "power_idle", "cost_per_hour", "extra_idle_power",
)


def test_fleet_pipeline_evaluates_100k_users_in_seconds(benchmark, bench_once, bench_json):
    """Sample + build + execute + reduce for the whole fleet, with floors."""
    platform = edge_cluster_platform()
    chain = build_chain(N_TASKS)
    spec = build_spec()
    matrix = placement_matrix(len(chain), len(platform.aliases))
    n_placements = matrix.shape[0]
    pairs = N_USERS * n_placements
    objective = QuantileObjective(q=QUANTILE)
    repeats = 2 if SMALL else 1

    # -- equivalence (untimed) ------------------------------------------------
    fleet = sample_fleet(spec, N_USERS, seed=SEED)
    tables = build_tables(chain, platform, scenarios=fleet.grid)
    result = execute_placements_grid(tables, matrix)
    weights = fleet.grid.weights
    reduced = objective.bind_weights(weights).reduce(result.total_time_s)
    manual = _manual_weighted_quantile(result.total_time_s, weights, QUANTILE)
    assert reduced.tobytes() == manual.tobytes(), (
        "weighted p95 reduction diverged from the direct inverse-CDF evaluation"
    )
    pick = int(np.argmin(reduced))

    # Population drift: redraw DRIFT_USERS users, delta rebuild == full rebuild.
    drift_indices = range(0, fleet.n_users, max(1, fleet.n_users // DRIFT_USERS))
    drifted, replacements = fleet.resample_users(drift_indices, seed=SEED + 1)
    delta_tables = tables.updated_many(replacements)
    full_tables = build_tables(chain, platform, scenarios=drifted.grid)
    for field in SLICE_FIELDS:
        assert getattr(delta_tables, field).tobytes() == getattr(full_tables, field).tobytes()
    assert delta_tables.fingerprint == full_tables.fingerprint
    del delta_tables, full_tables, result, tables

    # -- timed phases ---------------------------------------------------------
    sample_s = _best_of(lambda: sample_fleet(spec, N_USERS, seed=SEED), repeats)

    timed_tables = []
    build_s = _best_of(
        lambda: timed_tables.append(build_tables(chain, platform, scenarios=fleet.grid)),
        repeats,
    )
    timed = timed_tables[-1]

    timed_results = []
    execute_s = _best_of(
        lambda: timed_results.append(execute_placements_grid(timed, matrix)), repeats
    )
    times = timed_results[-1].total_time_s

    bound = objective.bind_weights(weights)
    reduce_s = _best_of(lambda: bound.reduce(times), max(3, repeats))
    end_to_end_s = sample_s + build_s + execute_s + reduce_s
    pairs_per_s = pairs / end_to_end_s

    delta_s = _best_of(lambda: timed.updated_many(replacements), repeats)
    full_rebuild_s = _best_of(
        lambda: build_tables(chain, platform, scenarios=drifted.grid), repeats
    )
    delta_speedup = full_rebuild_s / delta_s

    print(
        f"\n{platform.name}: {N_USERS} users x {n_placements} placements "
        f"({pairs} pairs), {len(spec.segments)} segments"
        f"\n  sample fleet:        {sample_s:8.2f} s"
        f"\n  fused table build:   {build_s:8.2f} s"
        f"\n  vectorized execute:  {execute_s:8.2f} s"
        f"\n  weighted p95 reduce: {reduce_s:8.2f} s"
        f"\n  end-to-end:          {end_to_end_s:8.2f} s  "
        f"({pairs_per_s:,.0f} pairs/s, floor {PAIRS_PER_S_FLOOR:,.0f}/s)"
        f"\n  fleet p95 optimum:   placement #{pick}"
        f"\n  drift ({len(replacements)} users): delta {delta_s:.2f} s vs "
        f"full {full_rebuild_s:.2f} s  ({delta_speedup:.1f}x, floor {DELTA_FLOOR}x)"
    )

    bench_json(
        "fleet_small" if SMALL else "fleet",
        {
            "workload": {
                "platform": platform.name,
                "n_devices": len(platform.aliases),
                "n_tasks": N_TASKS,
                "n_placements": n_placements,
                "n_users": N_USERS,
                "n_segments": len(spec.segments),
                "pairs": pairs,
                "drift_users": len(replacements),
                "quantile": QUANTILE,
                "small": SMALL,
            },
            "seconds": {
                "sample": sample_s,
                "build": build_s,
                "execute": execute_s,
                "reduce": reduce_s,
                "end_to_end": end_to_end_s,
                "delta_rebuild": delta_s,
                "full_rebuild": full_rebuild_s,
            },
            "throughputs": {
                "fleet_pairs_per_s": pairs_per_s,
            },
            "speedups": {
                "delta_rebuild": delta_speedup,
            },
            "floors": {
                "fleet_pairs_per_s": PAIRS_PER_S_FLOOR,
                "delta_rebuild": DELTA_FLOOR,
            },
        },
    )
    assert pairs_per_s >= PAIRS_PER_S_FLOOR, (
        f"fleet pipeline regressed: {pairs_per_s:,.0f} (user, placement) pairs/s "
        f"< {PAIRS_PER_S_FLOOR:,.0f}/s end-to-end"
    )
    assert delta_speedup >= DELTA_FLOOR, (
        f"drift delta rebuild regressed: {delta_speedup:.1f}x < {DELTA_FLOOR}x "
        f"vs a full fused rebuild"
    )

    bench_once(benchmark, bound.reduce, times)
