"""Benchmark the vectorized expected-cost-under-faults engine vs. a scalar loop.

The fault-tolerance workload evaluates every placement of a chain under a
fault profile with retries: per task, the truncated-geometric expected
attempt count scales compute/transfer time and energy, plus expected backoff
and a survival product for the placement's success probability.  The baseline
is the obvious implementation: call :func:`repro.faults.expected_record` (the
sequential python-float reference the engine is differential-pinned against)
once per placement.  The vectorized path (:func:`execute_fault_placements`)
evaluates the whole placement matrix in one NumPy pass over the fault tables.

The two paths must agree **bitwise** on every metric (asserted untimed), and
the vectorized path must beat the loop by the speedup floor.

Set ``BENCH_FAULTS_SMALL=1`` (the CI smoke job does) for a reduced workload
with a relaxed floor.  Results land in ``BENCH_faults.json`` /
``BENCH_faults_small.json``.
"""

from __future__ import annotations

import gc
import os
import time

import numpy as np

from repro.devices import edge_cluster_platform
from repro.faults import (
    DeviceFailure,
    FaultProfile,
    LinkDropout,
    RetryPolicy,
    StragglerModel,
    TimeoutPolicy,
    build_fault_tables,
    execute_fault_placements,
    expected_record,
)
from repro.offload import placement_matrix
from repro.tasks import RegularizedLeastSquaresTask, TaskChain

SMALL = os.environ.get("BENCH_FAULTS_SMALL", "") not in ("", "0")

if SMALL:
    N_TASKS = 4  # 4**4 = 256 placements
    SPEEDUP_FLOOR = 2.0
else:
    N_TASKS = 6  # 4**6 = 4096 placements
    SPEEDUP_FLOOR = 10.0

SEED = 0


def build_chain(n_tasks: int) -> TaskChain:
    tasks = [
        RegularizedLeastSquaresTask(
            size=60 + 40 * i, iterations=8, name=f"L{i + 1}", generate_on_host=False
        )
        for i in range(n_tasks)
    ]
    return TaskChain(tasks, name=f"bench-faults-{n_tasks}")


def build_profile() -> FaultProfile:
    """All three fault models active so every engine term is exercised."""
    return FaultProfile(
        device_failure=DeviceFailure(rate=0.02, rates={"E": 0.08, "A": 0.12}),
        link_dropout=LinkDropout(rate=0.01),
        straggler=StragglerModel(probability=0.05, slowdown=3.0),
    )


RETRY = RetryPolicy(max_attempts=4, backoff_base_s=0.002)
TIMEOUT = TimeoutPolicy(timeout_s=30.0, fallback="host")


def _loop_path(tables, matrix):
    """The scalar reference, once per placement: the pre-engine implementation."""
    return [expected_record(tables, row) for row in matrix]


def _vector_path(tables, matrix):
    return execute_fault_placements(tables, matrix)


def test_fault_engine_matches_and_beats_scalar_loop(benchmark, bench_once, bench_json):
    """Bitwise identical expected records, at a fraction of the loop's cost."""
    platform = edge_cluster_platform()
    chain = build_chain(N_TASKS)
    tables = build_fault_tables(
        chain, platform, retry=RETRY, faults=build_profile(), timeout=TIMEOUT
    )
    matrix = placement_matrix(len(chain), len(platform.aliases))
    n_placements = matrix.shape[0]

    # Warm both paths on a tiny workload (lazy imports, allocator warm-up).
    small_tables = build_fault_tables(
        build_chain(2), platform, retry=RETRY, faults=build_profile(), timeout=TIMEOUT
    )
    small_matrix = placement_matrix(2, 4)
    _loop_path(small_tables, small_matrix)
    _vector_path(small_tables, small_matrix)

    gc.collect()
    start = time.perf_counter()
    batch = _vector_path(tables, matrix)
    vector_s = time.perf_counter() - start

    gc.collect()
    start = time.perf_counter()
    records = _loop_path(tables, matrix)
    loop_s = time.perf_counter() - start

    # -- equivalence (untimed): bitwise, every placement, every metric -------
    for index, record in enumerate(records):
        assert batch.total_time_s[index] == record.total_time_s
        assert batch.success_probability[index] == record.success_probability
        assert batch.expected_attempts[index] == record.expected_attempts
        assert batch.energy_total_j[index] == record.energy_total_j
        assert batch.operating_cost[index] == record.operating_cost
        assert batch.transferred_bytes[index] == record.transferred_bytes
    assert np.all(batch.success_probability > 0.0)

    speedup = loop_s / vector_s
    print(
        f"\n{platform.name}: {n_placements} placements x {N_TASKS} tasks under faults "
        f"(retries={RETRY.max_attempts}, timeout={TIMEOUT.timeout_s:g}s)"
        f"\n  scalar record loop:  {loop_s * 1e3:8.1f} ms"
        f"\n  vectorized engine:   {vector_s * 1e3:8.1f} ms  "
        f"({speedup:5.1f}x, floor {SPEEDUP_FLOOR}x)"
    )

    bench_json(
        "faults_small" if SMALL else "faults",
        {
            "workload": {
                "platform": platform.name,
                "n_devices": len(platform.aliases),
                "n_tasks": N_TASKS,
                "n_placements": n_placements,
                "max_attempts": RETRY.max_attempts,
                "small": SMALL,
            },
            "seconds": {"record_loop": loop_s, "fault_engine": vector_s},
            "speedups": {"fault_engine": speedup},
            "floors": {"fault_engine": SPEEDUP_FLOOR},
        },
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"fault engine regressed: {speedup:.1f}x < {SPEEDUP_FLOOR}x vs the scalar loop"
    )

    bench_once(benchmark, _vector_path, tables, matrix)
