"""Unit tests for the TaskGraph workload model (structure, not cost semantics).

Cost/latency semantics are pinned against the sequential executors in
``test_graph_equivalence.py``; this module covers the graph itself --
validation, deterministic topological ordering, chain interop, local
execution -- plus the hypothesis property that the insertion order of the
nodes is irrelevant to everything downstream.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices import SimulatedExecutor
from repro.tasks import GemmLoopTask, TaskChain, TaskGraph, fork_join_graph, table1_chain

from factories import random_graph, random_platform


def tasks_named(*names: str) -> list[GemmLoopTask]:
    return [GemmLoopTask(size=8, iterations=1, name=name) for name in names]


class TestConstruction:
    def test_requires_tasks(self):
        with pytest.raises(ValueError):
            TaskGraph([], edges=[])

    def test_unique_names(self):
        with pytest.raises(ValueError, match="unique"):
            TaskGraph(tasks_named("a", "a"))

    def test_unknown_edge_endpoint(self):
        with pytest.raises(KeyError, match="unknown tasks"):
            TaskGraph(tasks_named("a", "b"), edges=[("a", "z")])

    def test_self_edge_rejected(self):
        with pytest.raises(ValueError, match="self-dependency"):
            TaskGraph(tasks_named("a", "b"), edges=[("a", "a")])

    def test_duplicate_edge_rejected(self):
        with pytest.raises(ValueError, match="duplicate edge"):
            TaskGraph(tasks_named("a", "b"), edges=[("a", "b"), ("a", "b")])

    def test_cycle_rejected(self):
        with pytest.raises(ValueError, match="cycle"):
            TaskGraph(tasks_named("a", "b", "c"), edges=[("a", "b"), ("b", "c"), ("c", "a")])
        with pytest.raises(ValueError, match="cycle"):
            TaskGraph(tasks_named("a", "b"), edges=[("a", "b"), ("b", "a")])

    def test_single_task_no_edges(self):
        graph = TaskGraph(tasks_named("only"))
        assert graph.is_linear
        assert graph.sources == ("only",) and graph.sinks == ("only",)


class TestTopology:
    def test_levels_and_order_are_canonical(self):
        # diamond: a -> {b, c} -> d, plus an independent source e
        graph = TaskGraph(
            tasks_named("d", "c", "e", "b", "a"),
            edges=[("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")],
        )
        assert graph.levels == (("a", "e"), ("b", "c"), ("d",))
        assert graph.task_names == ["a", "e", "b", "c", "d"]
        assert graph.sources == ("a", "e")
        assert set(graph.sinks) == {"d", "e"}
        assert graph.predecessors("d") == ("b", "c")
        assert graph.successors("a") == ("b", "c")
        assert graph.predecessor_positions == ((), (), (0,), (0,), (2, 3))

    def test_accessor_errors_list_available(self):
        graph = TaskGraph(tasks_named("a", "b"), edges=[("a", "b")])
        with pytest.raises(KeyError, match="available"):
            graph.predecessors("z")
        with pytest.raises(KeyError, match="available"):
            graph.successors("z")

    def test_edges_in_canonical_order(self):
        graph = fork_join_graph(branches=3)
        assert graph.edges == (
            ("prep", "b1"),
            ("prep", "b2"),
            ("prep", "b3"),
            ("b1", "join"),
            ("b2", "join"),
            ("b3", "join"),
        )
        assert graph.n_edges == 6

    def test_subgraph_induced(self):
        graph = fork_join_graph(branches=2)
        sub = graph.subgraph(["prep", "b1"])
        assert sub.task_names == ["prep", "b1"]
        assert sub.edges == (("prep", "b1"),)
        with pytest.raises(KeyError, match="available"):
            graph.subgraph(["prep", "zz"])

    def test_placement_for(self):
        graph = fork_join_graph(branches=2)
        placement = graph.placement_for({"prep": "D", "b1": "A", "b2": "E", "join": "D"})
        assert placement == ("D", "A", "E", "D")
        with pytest.raises(KeyError, match="misses"):
            graph.placement_for({"prep": "D"})
        with pytest.raises(KeyError, match="unknown tasks"):
            graph.placement_for({"prep": "D", "b1": "A", "b2": "E", "join": "D", "zz": "A"})


class TestChainInterop:
    def test_from_chain_is_linear_and_round_trips(self):
        chain = table1_chain(loop_size=1)
        graph = TaskGraph.from_chain(chain)
        assert graph.is_linear
        assert graph.task_names == chain.task_names
        assert graph.to_chain().task_names == chain.task_names
        assert graph.to_chain().name == chain.name

    def test_to_chain_rejects_branching(self):
        graph = fork_join_graph(branches=2)
        assert not graph.is_linear
        with pytest.raises(ValueError, match="not linear"):
            graph.to_chain()
        linearized = graph.linearized_chain()
        assert isinstance(linearized, TaskChain)
        assert linearized.task_names == graph.task_names

    def test_parallel_tasks_are_not_linear(self):
        graph = TaskGraph(tasks_named("a", "b"))  # no edges: one level of two
        assert not graph.is_linear

    def test_skip_edges_are_not_linear(self):
        # one task per level, but c joins a AND b: a fan-in, not a chain
        graph = TaskGraph(tasks_named("a", "b", "c"), edges=[("a", "b"), ("a", "c"), ("b", "c")])
        assert not graph.is_linear
        chain = TaskGraph(tasks_named("a", "b", "c"), edges=[("a", "b"), ("b", "c")])
        assert chain.is_linear

    def test_costs_and_flops_match_chain(self):
        chain = table1_chain(loop_size=1)
        graph = TaskGraph.from_chain(chain)
        assert graph.total_flops == chain.total_flops
        assert graph.flops_by_task() == chain.flops_by_task()
        assert [c.flops for c in graph.costs()] == [c.flops for c in chain.costs()]


class TestRun:
    def test_linear_graph_runs_like_the_chain(self):
        chain = table1_chain(loop_size=1)
        graph = TaskGraph.from_chain(chain)
        expected = chain.run(rng=np.random.default_rng(7))
        actual = graph.run(rng=np.random.default_rng(7))
        assert actual == expected

    def test_fan_in_sums_predecessor_penalties(self):
        class ConstantTask(GemmLoopTask):
            def __init__(self, name, value):
                super().__init__(size=8, iterations=1, name=name)
                self.value = value

            def run(self, penalty=0.0, rng=None):
                return self.value + penalty

        a, b, c = ConstantTask("a", 1.0), ConstantTask("b", 2.0), ConstantTask("c", 4.0)
        join = ConstantTask("j", 0.5)
        graph = TaskGraph([a, b, c, join], edges=[("a", "j"), ("b", "j"), ("c", "j")])
        # j consumes 1 + 2 + 4 = 7 and returns 7.5; sinks = {j}
        assert graph.run(rng=np.random.default_rng(0)) == 7.5


class TestInsertionOrderInvariance:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_tasks=st.integers(min_value=2, max_value=7),
        perm_seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_permuting_nodes_changes_nothing_downstream(self, seed, n_tasks, perm_seed):
        """Satellite property: topological determinism.

        Rebuilding a graph from a permutation of its tasks (same edges) must
        reproduce the canonical order exactly, and therefore every batch
        metric and winner index of the full placement space, bitwise.
        """
        rng = np.random.default_rng(seed)
        platform = random_platform(rng, 3)
        graph = random_graph(rng, n_tasks, edge_probability=0.5)
        order = np.random.default_rng(perm_seed).permutation(len(graph))
        shuffled = TaskGraph(
            [graph.tasks[i] for i in order], edges=list(graph.edges), name=graph.name
        )
        assert shuffled.task_names == graph.task_names
        assert shuffled.levels == graph.levels
        assert shuffled.edges == graph.edges
        assert shuffled.predecessor_positions == graph.predecessor_positions

        original = SimulatedExecutor(platform, seed=0).execute_batch(graph)
        permuted = SimulatedExecutor(platform, seed=0).execute_batch(shuffled)
        for field in (
            "total_time_s",
            "energy_total_j",
            "operating_cost",
            "transferred_bytes",
            "transfer_energy_j",
            "busy_by_device",
            "flops_by_device",
        ):
            assert np.array_equal(getattr(original, field), getattr(permuted, field)), field
        assert original.labels() == permuted.labels()
        for metric in ("time", "energy", "cost"):
            assert original.argbest(metric) == permuted.argbest(metric)
        k = min(5, len(original))
        assert np.array_equal(original.top(k, "time"), permuted.top(k, "time"))
