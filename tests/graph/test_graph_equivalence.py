"""Cross-layer differential harness pinning the DAG engine down.

Two claims, both **bitwise**:

(a) a *linear* ``TaskGraph`` is indistinguishable from the ``TaskChain`` it
    embeds, through every execution layer -- the sequential executor
    (``execute`` vs ``execute_graph``), the vectorized batch engine
    (``execute_placements``), the condition-stacked grid engine
    (``execute_placements_grid``) and the measurement path (same RNG stream);

(b) for *arbitrary* DAGs, the vectorized ``GraphCostTables`` engine is
    identical to the sequential ``execute_graph`` reference loop -- across
    random platforms, random graphs, random placements, device subsets and
    scenario grids.

Randomized sweeps + hypothesis drive the structures; every comparison is
``==`` / ``np.array_equal``, never ``approx``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices import (
    ChainCostTables,
    GraphCostTables,
    Platform,
    SimulatedExecutor,
    build_cost_tables,
    edge_cluster_platform,
    execute_placements,
    execute_placements_grid,
)
from repro.devices.grid import GraphGridCostTables
from repro.offload import placement_matrix, space_size
from repro.scenarios import (
    DeviceLoadFactor,
    LinkBandwidthScale,
    LinkLatencyScale,
    ScenarioGrid,
)
from repro.search import search_space
from repro.tasks import TaskChain, TaskGraph, fork_join_graph, table1_chain

from factories import random_chain, random_graph, random_platform

BATCH_FIELDS = (
    "total_time_s",
    "busy_by_device",
    "flops_by_device",
    "transferred_bytes",
    "transfer_energy_j",
    "active_j",
    "idle_j",
    "energy_total_j",
    "operating_cost",
)

GRID_STACKED_FIELDS = (
    "total_time_s",
    "busy_by_device",
    "transfer_energy_j",
    "active_j",
    "idle_j",
    "energy_total_j",
    "operating_cost",
)


def assert_records_identical(expected, actual) -> None:
    """Exact (bitwise) equality of every ExecutionRecord field."""
    assert actual.placement == expected.placement
    assert actual.total_time_s == expected.total_time_s
    assert actual.transferred_bytes == expected.transferred_bytes
    assert actual.operating_cost == expected.operating_cost
    assert actual.busy_time_by_device == expected.busy_time_by_device
    assert actual.flops_by_device == expected.flops_by_device
    assert actual.energy.active_j == expected.energy.active_j
    assert actual.energy.idle_j == expected.energy.idle_j
    assert actual.energy.transfer_j == expected.energy.transfer_j
    assert actual.energy.total_j == expected.energy.total_j
    assert actual.tasks == expected.tasks


def assert_batches_identical(expected, actual) -> None:
    for field in BATCH_FIELDS:
        assert np.array_equal(getattr(actual, field), getattr(expected, field)), field


def random_rows(rng: np.random.Generator, n_tasks: int, n_devices: int, k: int) -> np.ndarray:
    total = space_size(n_tasks, n_devices)
    picks = sorted(int(i) for i in rng.choice(total, size=min(k, total), replace=False))
    return placement_matrix(n_tasks, n_devices)[picks]


def scenario_platforms(base: Platform, n_points: int = 3) -> list[Platform]:
    grid = ScenarioGrid.cartesian(
        [
            (LinkBandwidthScale(), [1.0, 0.5, 0.25][:n_points]),
            (LinkLatencyScale(), [1.0, 4.0]),
            (DeviceLoadFactor(), [1.0, 1.5]),
        ]
    )
    return grid.platforms(base)


# ---------------------------------------------------------------------------
# (a) Linear graph == chain, through every layer
# ---------------------------------------------------------------------------


class TestLinearGraphEqualsChain:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_devices=st.integers(min_value=1, max_value=4),
        n_tasks=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=25, deadline=None)
    def test_sequential_execute_bitwise(self, seed, n_devices, n_tasks):
        rng = np.random.default_rng(seed)
        platform = random_platform(rng, n_devices)
        chain = random_chain(rng, n_tasks)
        graph = TaskGraph.from_chain(chain)
        assert graph.is_linear
        executor = SimulatedExecutor(platform, seed=0, cache_executions=False)
        for row in random_rows(rng, n_tasks, n_devices, 8):
            placement = tuple(platform.aliases[d] for d in row)
            assert_records_identical(
                executor.execute(chain, placement), executor.execute_graph(graph, placement)
            )

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_devices=st.integers(min_value=1, max_value=4),
        n_tasks=st.integers(min_value=1, max_value=7),
    )
    @settings(max_examples=25, deadline=None)
    def test_execute_placements_bitwise(self, seed, n_devices, n_tasks):
        rng = np.random.default_rng(seed)
        platform = random_platform(rng, n_devices)
        chain = random_chain(rng, n_tasks)
        graph = TaskGraph.from_chain(chain)
        chain_batch = SimulatedExecutor(platform, seed=0).execute_batch(chain)
        graph_batch = SimulatedExecutor(platform, seed=0).execute_batch(graph)
        assert isinstance(graph_batch.tables, GraphCostTables)
        assert graph_batch.labels() == chain_batch.labels()
        assert_batches_identical(chain_batch, graph_batch)

    def test_execute_placements_grid_bitwise(self):
        rng = np.random.default_rng(3)
        base = random_platform(rng, 3)
        platforms = scenario_platforms(base)
        chain = random_chain(rng, 4)
        graph = TaskGraph.from_chain(chain)
        matrix = placement_matrix(4, 3)
        chain_grid = execute_placements_grid(
            ChainCostTables.build_grid(chain, platforms), matrix
        )
        graph_grid = execute_placements_grid(
            GraphCostTables.build_grid(graph, platforms), matrix
        )
        for field in GRID_STACKED_FIELDS:
            assert np.array_equal(
                getattr(graph_grid, field), getattr(chain_grid, field)
            ), field
        assert np.array_equal(graph_grid.flops_by_device, chain_grid.flops_by_device)
        assert np.array_equal(graph_grid.transferred_bytes, chain_grid.transferred_bytes)
        # per-scenario batch views replay graph records identically too
        for index in range(len(platforms)):
            expected = chain_grid.batch(index).record(5)
            assert_records_identical(expected, graph_grid.batch(index).record(5))

    def test_measurements_share_the_rng_stream(self):
        platform = edge_cluster_platform()
        chain = table1_chain(loop_size=1)
        graph = TaskGraph.from_chain(chain)
        on_chain = SimulatedExecutor(platform, seed=11)
        on_graph = SimulatedExecutor(platform, seed=11)
        expected = on_chain.measure_all_batch(chain, None, repetitions=9)
        actual = on_graph.measure_all_batch(graph, None, repetitions=9)
        assert actual.labels == expected.labels
        for label in expected.labels:
            assert np.array_equal(actual[label], expected[label])

    def test_search_space_identical_on_linear_graphs(self):
        platform = edge_cluster_platform()
        chain = table1_chain(loop_size=1)
        graph = TaskGraph.from_chain(chain)
        from_chain = search_space(
            SimulatedExecutor(platform, seed=0), chain, objectives=("time", "energy"), top_k=5
        )
        from_graph = search_space(
            SimulatedExecutor(platform, seed=0), graph, objectives=("time", "energy"), top_k=5
        )
        for name in ("time", "energy"):
            assert from_graph.top[name].labels == from_chain.top[name].labels
            assert np.array_equal(from_graph.top[name].values, from_chain.top[name].values)
        assert from_graph.frontier.as_dict() == from_chain.frontier.as_dict()


# ---------------------------------------------------------------------------
# (b) Vectorized DAG engine == sequential execute_graph reference
# ---------------------------------------------------------------------------


class TestGraphBatchEqualsSequential:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_devices=st.integers(min_value=1, max_value=4),
        n_tasks=st.integers(min_value=1, max_value=7),
        density=st.sampled_from([0.2, 0.5, 0.8]),
    )
    @settings(max_examples=25, deadline=None)
    def test_randomized_platforms_graphs_and_placements(self, seed, n_devices, n_tasks, density):
        rng = np.random.default_rng(seed)
        platform = random_platform(rng, n_devices)
        graph = random_graph(rng, n_tasks, edge_probability=density)
        matrix = random_rows(rng, n_tasks, n_devices, 10)
        sequential = SimulatedExecutor(platform, seed=1, cache_executions=False)
        batch = SimulatedExecutor(platform, seed=1).execute_batch(graph, matrix)
        for row in range(len(batch)):
            expected = sequential.execute_graph(graph, batch.placement(row))
            assert batch.total_time_s[row] == expected.total_time_s
            assert batch.energy_total_j[row] == expected.energy.total_j
            assert batch.operating_cost[row] == expected.operating_cost
            assert batch.transferred_bytes[row] == expected.transferred_bytes
            assert batch.transfer_energy_j[row] == expected.energy.transfer_j
            for j, alias in enumerate(batch.aliases):
                assert batch.busy_by_device[row, j] == expected.busy_time_by_device[alias]
                assert batch.flops_by_device[row, j] == expected.flops_by_device[alias]
                assert batch.active_j[row, j] == expected.energy.active_j[alias]
                assert batch.idle_j[row, j] == expected.energy.idle_j[alias]
            assert_records_identical(expected, batch.record(row))

    def test_fork_join_full_space(self):
        platform = edge_cluster_platform()
        graph = fork_join_graph(branches=2)
        sequential = SimulatedExecutor(platform, seed=0, cache_executions=False)
        batch = SimulatedExecutor(platform, seed=0).execute_batch(graph)
        assert len(batch) == 4 ** len(graph)
        rng = np.random.default_rng(0)
        for row in rng.integers(0, len(batch), size=40):
            expected = sequential.execute_graph(graph, batch.placement(int(row)))
            assert_records_identical(expected, batch.record(int(row)))
            assert batch.total_time_s[row] == expected.total_time_s

    def test_grid_engine_matches_per_scenario_loop(self):
        rng = np.random.default_rng(5)
        base = random_platform(rng, 3)
        platforms = scenario_platforms(base)
        graph = random_graph(rng, 4, edge_probability=0.6)
        matrix = placement_matrix(4, 3)
        tables = GraphCostTables.build_grid(graph, platforms)
        assert isinstance(tables, GraphGridCostTables)
        grid = execute_placements_grid(tables, matrix)
        for index, platform in enumerate(platforms):
            scalar_tables = GraphCostTables.build(graph, platform)
            batch = execute_placements(scalar_tables, matrix)
            assert np.array_equal(grid.total_time_s[index], batch.total_time_s)
            assert np.array_equal(grid.energy_total_j[index], batch.energy_total_j)
            assert np.array_equal(grid.operating_cost[index], batch.operating_cost)
            assert np.array_equal(grid.busy_by_device[index], batch.busy_by_device)
            assert np.array_equal(grid.transfer_energy_j[index], batch.transfer_energy_j)
            # the sliced tables replay sequential graph records
            view = grid.batch(index)
            assert isinstance(view.tables, GraphCostTables)
            assert_records_identical(batch.record(7), view.record(7))
        assert np.array_equal(grid.flops_by_device, batch.flops_by_device)
        assert np.array_equal(grid.transferred_bytes, batch.transferred_bytes)

    def test_grid_missing_link_rejected_with_pair_named(self):
        rng = np.random.default_rng(1)
        base = random_platform(rng, 3)
        links = {pair: link for pair, link in base.links.items() if pair != ("A", "B")}
        platform = Platform(devices=base.devices, links=links, host="D", name="partial")
        chain = random_chain(rng, 3)
        graph = TaskGraph(chain.tasks, edges=[("L1", "L2"), ("L2", "L3")])
        tables = GraphCostTables.build_grid(graph, [platform, platform])
        safe = execute_placements_grid(tables, np.array([[0, 1, 0], [2, 0, 1]]))
        assert safe.total_time_s.shape == (2, 2)
        with pytest.raises(KeyError, match="between 'A' and 'B'.*'DAB'"):
            execute_placements_grid(tables, np.array([[0, 1, 2]]))

    def test_device_subset(self):
        platform = edge_cluster_platform()
        graph = fork_join_graph(branches=2)
        sequential = SimulatedExecutor(platform, seed=0, cache_executions=False)
        batch = SimulatedExecutor(platform, seed=0).execute_batch(graph, devices=["D", "E"])
        assert batch.aliases == ("D", "E")
        assert len(batch) == 2 ** len(graph)
        for row in range(len(batch)):
            expected = sequential.execute_graph(graph, batch.placement(row))
            assert_records_identical(expected, batch.record(row))
            assert batch.total_time_s[row] == expected.total_time_s
            assert batch.energy_total_j[row] == expected.energy.total_j


# ---------------------------------------------------------------------------
# DAG semantics and validation edges
# ---------------------------------------------------------------------------


class TestGraphSemantics:
    def test_overlap_beats_serialization_on_parallel_branches(self):
        """Branches on different devices overlap; the linearized chain cannot."""
        platform = edge_cluster_platform()
        graph = fork_join_graph()
        executor = SimulatedExecutor(platform, seed=0)
        graph_batch = executor.execute_batch(graph)
        chain_batch = executor.execute_batch(graph.linearized_chain())
        best_graph = graph_batch.argbest("time")
        best_chain = chain_batch.argbest("time")
        # The DAG-aware winner strictly beats the chain-planned placement
        # evaluated under the same DAG model ...
        assert (
            graph_batch.total_time_s[best_graph] < graph_batch.total_time_s[best_chain]
        )
        # ... and the winners genuinely differ: chain planning picks the
        # wrong placement for a branchy workload.
        assert graph_batch.label(best_graph) != chain_batch.label(best_chain)

    def test_same_device_tasks_serialize(self):
        """Two independent tasks on one device cost their serial sum."""
        rng = np.random.default_rng(0)
        platform = random_platform(rng, 2)
        chain = random_chain(rng, 2)
        graph = TaskGraph(chain.tasks, edges=[], name="parallel-pair")
        executor = SimulatedExecutor(platform, seed=0, cache_executions=False)
        same = executor.execute_graph(graph, ("D", "D"))
        t1, t2 = (t.total_time_s for t in same.tasks)
        assert same.total_time_s == t1 + t2  # serialized on the shared device
        split = executor.execute_graph(graph, ("D", "A"))
        s1, s2 = (t.total_time_s for t in split.tasks)
        assert split.total_time_s == max(s1, s2)  # overlapped across devices

    def test_fan_in_pays_every_incoming_edge(self):
        platform = edge_cluster_platform()
        graph = fork_join_graph(branches=2)
        executor = SimulatedExecutor(platform, seed=0, cache_executions=False)
        record = executor.execute_graph(graph, "DAED")
        join = record.tasks[-1]
        assert join.task_name == "join"
        # Two incoming penalty hops (A->D and E->D) + zero host I/O time for
        # the host-resident join, so 16 penalty bytes crossed.
        hop_a = platform.transfer_time("A", "D", 8.0)
        hop_e = platform.transfer_time("E", "D", 8.0)
        assert join.transfer_time_s == 0.0 + (hop_a + hop_e)
        assert join.transferred_bytes == 16.0

    def test_missing_link_rejected_only_when_traversed(self):
        rng = np.random.default_rng(1)
        base = random_platform(rng, 3)  # D, A, B fully linked
        links = {pair: link for pair, link in base.links.items() if pair != ("A", "B")}
        platform = Platform(devices=base.devices, links=links, host="D", name="partial")
        chain = random_chain(rng, 3)
        graph = TaskGraph(
            chain.tasks, edges=[("L1", "L2"), ("L1", "L3")], name="fanout"
        )
        executor = SimulatedExecutor(platform, seed=0)
        sequential = SimulatedExecutor(platform, seed=0, cache_executions=False)
        # DAB is safe here: L2 on A and L3 on B share no edge (both fed by L1).
        safe = ["DDD", "DAB", "ADD", "BDD"]
        batch = executor.execute_batch(graph, safe)
        for i, label in enumerate(safe):
            assert_records_identical(
                sequential.execute_graph(graph, label), batch.record(i)
            )
        # On a chain-shaped graph the same placement crosses A <-> B and fails.
        bad_graph = TaskGraph(chain.tasks, edges=[("L1", "L2"), ("L2", "L3")])
        with pytest.raises(KeyError, match="no link defined"):
            executor.execute_batch(bad_graph, ["DAB"])
        with pytest.raises(KeyError):
            sequential.execute_graph(bad_graph, "DAB")

    def test_placement_validation(self):
        platform = edge_cluster_platform()
        graph = fork_join_graph(branches=2)
        executor = SimulatedExecutor(platform, seed=0)
        with pytest.raises(ValueError, match="entries"):
            executor.execute_graph(graph, "DD")
        with pytest.raises(KeyError):
            executor.execute_graph(graph, "DDZZ")
        mapped = executor.execute_graph(
            graph, {"prep": "D", "b1": "A", "b2": "E", "join": "D"}
        )
        positional = executor.execute_graph(graph, "DAED")
        assert_records_identical(positional, mapped)

    def test_build_cost_tables_dispatch(self):
        platform = edge_cluster_platform()
        chain = table1_chain(loop_size=1)
        graph = TaskGraph.from_chain(chain)
        assert type(build_cost_tables(chain, platform)) is ChainCostTables
        tables = build_cost_tables(graph, platform)
        assert isinstance(tables, GraphCostTables)
        assert tables.pred_positions == ((), (0,), (1,))

    def test_execute_routes_graphs_to_graph_semantics(self):
        """Regression: ``execute`` used to accept a TaskGraph via duck-typing
        and evaluate it with chain semantics -- poisoning the shared record
        cache for ``execute_graph`` and breaking the measure paths."""
        platform = edge_cluster_platform()
        graph = fork_join_graph(branches=2)
        executor = SimulatedExecutor(platform, seed=0)
        placement = "DAED"
        routed = executor.execute(graph, placement)
        reference = SimulatedExecutor(platform, seed=0).execute_graph(graph, placement)
        assert_records_identical(reference, routed)
        # The cache holds the graph record, so execute_graph agrees after the fact.
        assert executor.execute_graph(graph, placement) is routed
        # measure/measure_all follow the graph path with the usual RNG stream.
        on_graph = SimulatedExecutor(platform, seed=4)
        batched = SimulatedExecutor(platform, seed=4)
        expected = batched.measure_all_batch(graph, [placement, "EEEE"], repetitions=7)
        actual = on_graph.measure_all(graph, [placement, "EEEE"], repetitions=7)
        assert actual.labels == expected.labels
        for label in expected.labels:
            assert np.array_equal(actual[label], expected[label])

    def test_executor_caches_graph_records_and_tables(self):
        platform = edge_cluster_platform()
        graph = fork_join_graph(branches=2)
        executor = SimulatedExecutor(platform, seed=0)
        first = executor.execute_graph(graph, "DDDD")
        assert executor.execute_graph(graph, "DDDD") is first
        assert executor.cost_tables(graph) is executor.cost_tables(graph)
        executor.clear_execution_cache()
        assert executor.execute_graph(graph, "DDDD") is not first
