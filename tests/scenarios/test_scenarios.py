"""Tests for the scenario subsystem: axes, grids, platform derivation.

The core guarantees: axes are pure platform transforms that never rewire the
topology, neutral conditions are **bitwise** no-ops for every downstream
result, and scenario grids enumerate deterministically with unique names.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.devices import (
    DeviceSpec,
    LinkSpec,
    Platform,
    SimulatedExecutor,
    edge_cluster_platform,
    lte,
    smartphone_cloud_platform,
    wifi_ac,
)
from repro.scenarios import (
    DeviceLoadFactor,
    DvfsFrequencyScale,
    EnergyPriceScale,
    LinkBandwidthScale,
    LinkInterpolation,
    LinkLatencyScale,
    Scenario,
    ScenarioGrid,
    apply_conditions,
    link_degradation_grid,
)
from repro.tasks import RegularizedLeastSquaresTask, TaskChain


def small_chain() -> TaskChain:
    tasks = [
        RegularizedLeastSquaresTask(size=40 + 30 * i, iterations=3, name=f"L{i + 1}")
        for i in range(3)
    ]
    return TaskChain(tasks, name="scenario-test")


class TestPlatformDerivation:
    def test_with_devices_replaces_specs_and_keeps_topology(self):
        platform = smartphone_cloud_platform()
        upgraded = platform.with_devices({"A": DeviceSpec(name="new-a", peak_gflops=999.0)})
        assert upgraded.device("A").peak_gflops == 999.0
        assert upgraded.device("D") is platform.device("D")
        assert upgraded.links == platform.links
        assert upgraded.host == platform.host
        assert upgraded.name == platform.name
        # The base platform is untouched (pure derivation).
        assert platform.device("A").name != "new-a"

    def test_with_devices_rejects_unknown_aliases(self):
        platform = smartphone_cloud_platform()
        with pytest.raises(KeyError, match="unknown device aliases"):
            platform.with_devices({"Z": DeviceSpec(name="z")})

    def test_with_links_replaces_either_spelling(self):
        platform = smartphone_cloud_platform()
        new_link = LinkSpec(name="fast", bandwidth_gbs=100.0)
        for spelling in [("D", "A"), ("A", "D")]:
            derived = platform.with_links({spelling: new_link})
            assert derived.link("D", "A").name == "fast"
            assert derived.link("A", "D").name == "fast"

    def test_with_links_rejects_new_pairs(self):
        platform = Platform(
            devices={"D": DeviceSpec(name="d"), "A": DeviceSpec(name="a"), "B": DeviceSpec(name="b")},
            links={("D", "A"): LinkSpec(name="l", bandwidth_gbs=1.0)},
            host="D",
        )
        with pytest.raises(KeyError, match="no link defined"):
            platform.with_links({("D", "B"): LinkSpec(name="new", bandwidth_gbs=1.0)})


class TestConditionAxes:
    def test_link_bandwidth_scale(self):
        platform = edge_cluster_platform()
        scaled = LinkBandwidthScale().apply(platform, 0.5)
        for pair, link in platform.links.items():
            assert scaled.links[pair].bandwidth_gbs == link.bandwidth_gbs * 0.5
            assert scaled.links[pair].latency_s == link.latency_s
        targeted = LinkBandwidthScale(links=(("A", "D"),)).apply(platform, 0.5)
        assert targeted.link("D", "A").bandwidth_gbs == platform.link("D", "A").bandwidth_gbs * 0.5
        assert targeted.link("D", "N") is platform.link("D", "N")

    def test_link_latency_scale(self):
        platform = edge_cluster_platform()
        scaled = LinkLatencyScale(links=(("D", "E"),)).apply(platform, 10.0)
        assert scaled.link("D", "E").latency_s == platform.link("D", "E").latency_s * 10.0

    def test_device_load_divides_throughput(self):
        platform = edge_cluster_platform()
        loaded = DeviceLoadFactor(devices=("D",)).apply(platform, 2.0)
        assert loaded.device("D").peak_gflops == platform.device("D").peak_gflops / 2.0
        assert (
            loaded.device("D").memory_bandwidth_gbs
            == platform.device("D").memory_bandwidth_gbs / 2.0
        )
        assert loaded.device("A") is platform.device("A")
        with pytest.raises(ValueError, match=">= 1"):
            DeviceLoadFactor().apply(platform, 0.5)

    def test_dvfs_scales_peak_and_active_power(self):
        platform = edge_cluster_platform()
        throttled = DvfsFrequencyScale(devices=("E",)).apply(platform, 0.5)
        assert throttled.device("E").peak_gflops == platform.device("E").peak_gflops * 0.5
        assert throttled.device("E").power_active_w == platform.device("E").power_active_w * 0.5
        assert throttled.device("E").power_idle_w == platform.device("E").power_idle_w
        with pytest.raises(ValueError):
            DvfsFrequencyScale().apply(platform, 1.5)

    def test_energy_price_scale(self):
        platform = edge_cluster_platform()
        surge = EnergyPriceScale(devices=("A",)).apply(platform, 3.0)
        assert surge.device("A").cost_per_hour == platform.device("A").cost_per_hour * 3.0

    def test_link_interpolation_hits_endpoints_exactly(self):
        platform = edge_cluster_platform()
        axis = LinkInterpolation(links=(("D", "A"),), start=wifi_ac(), end=lte())
        at_start = axis.apply(platform, 0.0)
        at_end = axis.apply(platform, 1.0)
        assert at_start.link("D", "A") == wifi_ac()
        assert at_end.link("D", "A") == lte()
        midway = axis.apply(platform, 0.5).link("D", "A")
        lo, hi = sorted([wifi_ac().bandwidth_gbs, lte().bandwidth_gbs])
        assert lo < midway.bandwidth_gbs < hi
        with pytest.raises(ValueError):
            axis.apply(platform, 1.5)

    def test_axes_validate_their_targets(self):
        platform = edge_cluster_platform()
        with pytest.raises(KeyError):
            LinkBandwidthScale(links=(("D", "Z"),)).apply(platform, 0.5)
        with pytest.raises(KeyError):
            DeviceLoadFactor(devices=("Z",)).apply(platform, 2.0)


class TestScenario:
    def test_apply_conditions_folds_axes_and_renames(self):
        platform = edge_cluster_platform()
        scenario = Scenario(
            "rush-hour",
            settings=(
                (LinkBandwidthScale(), 0.25),
                (DeviceLoadFactor(devices=("D",)), 2.0),
            ),
        )
        derived = apply_conditions(platform, scenario)
        assert derived.name == "edge-cluster@rush-hour"
        assert derived.link("D", "A").bandwidth_gbs == platform.link("D", "A").bandwidth_gbs * 0.25
        assert derived.device("D").peak_gflops == platform.device("D").peak_gflops / 2.0
        assert scenario.describe() == "link-bandwidth=0.25, device-load=2"

    def test_scenario_validation(self):
        with pytest.raises(ValueError):
            Scenario("")
        with pytest.raises(ValueError):
            Scenario("s", weight=-1.0)

    def test_identity_scenario_is_bitwise_neutral(self):
        """Neutral factors reproduce the baseline executor results bit for bit."""
        platform = edge_cluster_platform()
        neutral = Scenario(
            "neutral",
            settings=(
                (LinkBandwidthScale(), 1.0),
                (LinkLatencyScale(), 1.0),
                (DeviceLoadFactor(), 1.0),
                (DvfsFrequencyScale(), 1.0),
                (EnergyPriceScale(), 1.0),
            ),
        )
        derived = apply_conditions(platform, neutral)
        chain = small_chain()
        baseline = SimulatedExecutor(platform, seed=0)
        conditioned = SimulatedExecutor(derived, seed=0)
        base_batch = baseline.execute_batch(chain)
        cond_batch = conditioned.execute_batch(chain)
        assert np.array_equal(base_batch.total_time_s, cond_batch.total_time_s)
        assert np.array_equal(base_batch.energy_total_j, cond_batch.energy_total_j)
        assert np.array_equal(base_batch.operating_cost, cond_batch.operating_cost)
        assert np.array_equal(base_batch.busy_by_device, cond_batch.busy_by_device)
        record = baseline.execute(chain, "DNA")
        conditioned_record = conditioned.execute(chain, "DNA")
        assert record.total_time_s == conditioned_record.total_time_s
        assert record.energy.total_j == conditioned_record.energy.total_j

    def test_scenarios_are_picklable(self):
        scenario = Scenario(
            "s", settings=((LinkInterpolation(links=(("D", "A"),), start=wifi_ac(), end=lte()), 0.5),)
        )
        clone = pickle.loads(pickle.dumps(scenario))
        assert clone == scenario


class TestScenarioGrid:
    def test_cartesian_enumerates_lexicographically(self):
        grid = ScenarioGrid.cartesian(
            [
                (LinkBandwidthScale(), [1.0, 0.5]),
                (DeviceLoadFactor(), [1.0, 2.0, 4.0]),
            ]
        )
        assert len(grid) == 6
        assert grid.names[0] == "link-bandwidth=1|device-load=1"
        assert grid.names[-1] == "link-bandwidth=0.5|device-load=4"
        assert [scenario.settings[1][1] for scenario in grid] == [1.0, 2.0, 4.0, 1.0, 2.0, 4.0]

    def test_cartesian_weights(self):
        weights = [0.5, 0.3, 0.2]
        grid = ScenarioGrid.cartesian([(DeviceLoadFactor(), [1.0, 2.0, 3.0])], weights=weights)
        assert np.array_equal(grid.weights, np.array(weights))
        with pytest.raises(ValueError, match="weights"):
            ScenarioGrid.cartesian([(DeviceLoadFactor(), [1.0, 2.0])], weights=[1.0])

    def test_unique_names_required(self):
        scenario = Scenario("same")
        with pytest.raises(ValueError, match="unique"):
            ScenarioGrid(scenarios=(scenario, Scenario("same")))
        with pytest.raises(ValueError):
            ScenarioGrid(scenarios=())

    def test_lookup_and_platforms(self):
        platform = edge_cluster_platform()
        grid = link_degradation_grid([("D", "A")], start=wifi_ac(), end=lte(), n_points=3)
        assert len(grid.platforms(platform)) == 3
        assert grid.scenario(grid.names[1]).name == grid.names[1]
        with pytest.raises(KeyError, match="available"):
            grid.scenario("nope")

    def test_degradation_grid_spans_endpoints(self):
        platform = edge_cluster_platform()
        grid = link_degradation_grid([("D", "A"), ("N", "A")], start=wifi_ac(), end=lte(), n_points=5)
        platforms = grid.platforms(platform)
        assert platforms[0].link("D", "A") == wifi_ac()
        assert platforms[-1].link("N", "A") == lte()
        bandwidths = [p.link("D", "A").bandwidth_gbs for p in platforms]
        assert bandwidths == sorted(bandwidths, reverse=True)  # monotone degradation
        with pytest.raises(ValueError):
            link_degradation_grid([("D", "A")], start=wifi_ac(), end=lte(), n_points=1)
