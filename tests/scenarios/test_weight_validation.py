"""Regression tests: non-finite scenario weights must be rejected, not waved
through.

``weight < 0`` compares ``False`` for NaN, so the original validation let
``Scenario(weight=float("nan"))`` (and NaN entries in
``ScenarioGrid.cartesian(weights=...)`` / ``ExpectedValueObjective``) slip
into weighted reductions, turning every robust value into NaN with no error
pointing at the bad input.  These tests pin the fixed behaviour: non-finite
and negative weights raise immediately, naming the offending value.
"""

import numpy as np
import pytest

from repro.scenarios import LinkBandwidthScale, LinkLatencyScale, Scenario, ScenarioGrid
from repro.search import ExpectedValueObjective


class TestScenarioWeight:
    def test_nan_weight_is_rejected(self):
        with pytest.raises(ValueError, match="weight must be finite"):
            Scenario(name="s", weight=float("nan"))

    def test_infinite_and_negative_weights_are_rejected(self):
        for bad in (float("inf"), float("-inf"), -1.0):
            with pytest.raises(ValueError, match="weight must be finite"):
                Scenario(name="s", weight=bad)

    def test_zero_weight_remains_legal_mass(self):
        assert Scenario(name="s", weight=0.0).weight == 0.0

    def test_default_weight_is_one(self):
        assert Scenario(name="s").weight == 1.0


class TestCartesianWeights:
    AXES = [
        (LinkBandwidthScale(), [1.0, 0.5]),
        (LinkLatencyScale(), [1.0, 2.0]),
    ]

    def test_nan_entry_is_rejected_naming_the_callers_index(self):
        with pytest.raises(ValueError, match=r"weights\[2\]"):
            ScenarioGrid.cartesian(self.AXES, weights=[1.0, 1.0, float("nan"), 1.0])

    def test_negative_entry_is_rejected_naming_the_callers_index(self):
        with pytest.raises(ValueError, match=r"weights\[3\]"):
            ScenarioGrid.cartesian(self.AXES, weights=[1.0, 1.0, 1.0, -2.0])

    def test_length_mismatch_is_rejected_upfront(self):
        with pytest.raises(ValueError, match="weights"):
            ScenarioGrid.cartesian(self.AXES, weights=[1.0, 1.0])

    def test_valid_weights_land_on_the_scenarios(self):
        grid = ScenarioGrid.cartesian(self.AXES, weights=[4.0, 3.0, 2.0, 1.0])
        assert np.array_equal(grid.weights, np.array([4.0, 3.0, 2.0, 1.0]))


class TestExpectedValueObjectiveWeights:
    def test_constructor_rejects_non_finite_weights(self):
        with pytest.raises(ValueError, match=r"weights\[1\]"):
            ExpectedValueObjective(weights=(1.0, float("nan")))

    def test_with_weights_rejects_non_finite_weights(self):
        with pytest.raises(ValueError, match=r"weights\[0\]"):
            ExpectedValueObjective().with_weights((float("inf"), 1.0))

    def test_all_zero_weights_are_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            ExpectedValueObjective(weights=(0.0, 0.0))

    def test_reduction_no_longer_emits_silent_nan(self):
        values = np.array([[1.0, 2.0], [3.0, 4.0]])
        reduced = ExpectedValueObjective(weights=(1.0, 3.0)).reduce(values)
        assert np.all(np.isfinite(reduced))
        assert np.array_equal(reduced, np.array([2.5, 3.5]))
