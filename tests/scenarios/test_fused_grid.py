"""Differential tests for the fused (array-space) grid build and delta rebuilds.

The central claims of the fused engine:

* ``build_tables(chain, platform, scenarios=grid)`` -- which composes each
  axis's vectorized ``scale_arrays`` onto the base platform's parameter
  arrays, never deriving per-scenario ``Platform`` objects -- is **bitwise**
  identical to the materializing path (derive every platform, stack scalar
  builds), for every shipped axis, on chains and graphs alike;
* ``updated(index, scenario)`` / ``updated_many`` recompute only the affected
  condition slices yet are **bitwise** identical to a full rebuild of the
  modified grid, fingerprint included;
* per-scenario condition slices are content-addressed: a shared
  :class:`~repro.cache.TableCache` turns repeated or overlapping builds into
  slice hits, observable through ``cache_stats()``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import TableCache
from repro.devices import (
    ChainCostTables,
    Platform,
    SimulatedExecutor,
    edge_cluster_platform,
    execute_placements_grid,
    lte,
    wifi_ac,
)
from repro.devices.grid import GridCostTables, GridSliceStats, build_grid_tables
from repro.devices.tables import build_tables
from repro.faults.retry import RetryPolicy
from repro.offload import placement_matrix
from repro.scenarios import (
    ConditionAxis,
    DeviceFailureRate,
    DeviceLoadFactor,
    DvfsFrequencyScale,
    EnergyPriceScale,
    LinkBandwidthScale,
    LinkDropoutRate,
    LinkInterpolation,
    LinkLatencyScale,
    Scenario,
    ScenarioGrid,
    apply_conditions,
)
from repro.scenarios.conditions import vectorized_axis
from repro.tasks import RegularizedLeastSquaresTask, TaskChain, TaskGraph

from factories import random_chain, random_graph, random_platform

#: Every stacked array the two build paths must agree on, bit for bit.
GRID_FIELDS = (
    "busy",
    "hostio_time",
    "hostio_bytes",
    "energy_in",
    "energy_out",
    "task_flops",
    "penalty_time",
    "penalty_energy",
    "penalty_bytes",
    "first_penalty_time",
    "first_penalty_energy",
    "first_penalty_bytes",
    "power_active",
    "power_idle",
    "cost_per_hour",
    "extra_idle_power",
)

EXEC_FIELDS = (
    "total_time_s",
    "busy_by_device",
    "flops_by_device",
    "transferred_bytes",
    "transfer_energy_j",
    "energy_total_j",
    "operating_cost",
)


def small_chain(n_tasks: int = 3) -> TaskChain:
    tasks = [
        RegularizedLeastSquaresTask(size=40 + 30 * i, iterations=3, name=f"L{i + 1}")
        for i in range(n_tasks)
    ]
    return TaskChain(tasks, name="fused-test")


def assert_bitwise_tables(fused, materialized) -> None:
    """Every stacked array and every piece of metadata agrees bit for bit."""
    for field in GRID_FIELDS:
        a, b = getattr(fused, field), getattr(materialized, field)
        assert a.tobytes() == b.tobytes(), f"grid field {field} differs"
    assert fused.missing_links == materialized.missing_links
    assert fused.aliases == materialized.aliases
    assert fused.device_order == materialized.device_order
    assert fused.task_names == materialized.task_names
    assert type(fused) is type(materialized)


def assert_bitwise_execution(fused, materialized, matrix) -> None:
    a = execute_placements_grid(fused, matrix)
    b = execute_placements_grid(materialized, matrix)
    for field in EXEC_FIELDS:
        assert getattr(a, field).tobytes() == getattr(b, field).tobytes(), field


def random_fused_scenarios(
    rng: np.random.Generator, platform: Platform, n: int
) -> ScenarioGrid:
    """Random scenarios drawing from *every* shipped (vectorized) axis."""
    pair = tuple(sorted(platform.links))[0]
    aliases = sorted(platform.devices)

    def draw_settings() -> tuple:
        pool = [
            (LinkBandwidthScale(), float(rng.uniform(0.1, 2.0))),
            (LinkLatencyScale(), float(rng.uniform(0.2, 10.0))),
            (DeviceLoadFactor(), float(rng.uniform(1.0, 3.0))),
            (
                DeviceLoadFactor(devices=(aliases[0],), name="host-load"),
                float(rng.uniform(1.0, 2.0)),
            ),
            (DvfsFrequencyScale(), float(rng.uniform(0.3, 1.0))),
            (EnergyPriceScale(), float(rng.uniform(0.0, 4.0))),
            (
                LinkInterpolation(links=(pair,), start=wifi_ac(), end=lte()),
                float(rng.uniform(0.0, 1.0)),
            ),
            (DeviceFailureRate(), float(rng.uniform(0.0, 0.2))),
            (LinkDropoutRate(), float(rng.uniform(0.0, 0.2))),
        ]
        chosen = [pool[i] for i in rng.choice(len(pool), rng.integers(0, 4), replace=False)]
        if rng.random() < 0.2:
            # Exercise the neutral-value short circuits inside mixed grids.
            chosen.append((LinkBandwidthScale(), 1.0))
        return tuple(chosen)

    return ScenarioGrid(
        tuple(
            Scenario(name=f"s{i}", settings=draw_settings(), weight=float(rng.uniform(0.5, 2.0)))
            for i in range(n)
        )
    )


class TestFusedEqualsMaterializing:
    def test_every_shipped_axis_individually(self):
        base = edge_cluster_platform()
        chain = small_chain()
        pair = tuple(sorted(base.links))[0]
        per_axis = [
            (LinkBandwidthScale(), (1.0, 0.5, 0.125)),
            (LinkLatencyScale(), (1.0, 3.0, 30.0)),
            (DeviceLoadFactor(), (1.0, 1.5, 2.5)),
            (DvfsFrequencyScale(), (1.0, 0.7, 0.4)),
            (EnergyPriceScale(), (1.0, 0.0, 3.5)),
            (LinkInterpolation(links=(pair,), start=wifi_ac(), end=lte()), (0.0, 0.35, 1.0)),
            (DeviceFailureRate(), (0.0, 0.05)),
            (LinkDropoutRate(), (0.0, 0.1)),
        ]
        matrix = placement_matrix(len(chain), len(base.aliases))
        for axis, values in per_axis:
            assert vectorized_axis(axis), axis
            grid = ScenarioGrid.cartesian([(axis, list(values))])
            fused = build_tables(chain, base, scenarios=grid)
            materialized = build_tables(chain, grid.platforms(base))
            assert fused.cache_stats() == GridSliceStats(served=0, built=len(grid))
            assert_bitwise_tables(fused, materialized)
            assert_bitwise_execution(fused, materialized, matrix)

    def test_mixed_axes_on_graph_workload(self, rng):
        base = edge_cluster_platform()
        graph = random_graph(rng, 4)
        grid = random_fused_scenarios(rng, base, 6)
        fused = build_tables(graph, base, scenarios=grid)
        materialized = build_tables(graph, grid.platforms(base))
        assert fused.pred_positions == materialized.pred_positions
        assert_bitwise_tables(fused, materialized)
        assert_bitwise_execution(
            fused, materialized, placement_matrix(len(graph), len(base.aliases))
        )

    def test_device_subset(self, rng):
        base = edge_cluster_platform()
        chain = small_chain()
        grid = random_fused_scenarios(rng, base, 4)
        devices = tuple(base.aliases)[:2]
        fused = build_tables(chain, base, scenarios=grid, devices=devices)
        materialized = build_tables(chain, grid.platforms(base), devices=devices)
        assert_bitwise_tables(fused, materialized)
        assert_bitwise_execution(fused, materialized, placement_matrix(len(chain), 2))

    def test_fault_grid_scenarios_route_through_fused_base(self):
        base = edge_cluster_platform()
        chain = small_chain()
        grid = ScenarioGrid.cartesian(
            [(DeviceFailureRate(), [0.0, 0.05]), (LinkBandwidthScale(), [1.0, 0.5])]
        )
        retry = RetryPolicy(max_attempts=3)
        fused = build_tables(chain, base, scenarios=grid, retry=retry)
        materialized = build_tables(chain, grid.platforms(base), retry=retry)
        assert fused.cache_stats().built == len(grid)
        assert_bitwise_tables(fused.base, materialized.base)
        for field in ("node_survival", "edge_survival", "first_edge_survival"):
            assert getattr(fused, field).tobytes() == getattr(materialized, field).tobytes()

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        n_devices=st.integers(2, 4),
        n_tasks=st.integers(1, 4),
        n_scenarios=st.integers(1, 6),
        as_graph=st.booleans(),
    )
    def test_hypothesis_fused_equals_materializing(
        self, seed, n_devices, n_tasks, n_scenarios, as_graph
    ):
        rng = np.random.default_rng(seed)
        base = random_platform(rng, n_devices)
        workload = random_graph(rng, n_tasks) if as_graph else random_chain(rng, n_tasks)
        grid = random_fused_scenarios(rng, base, n_scenarios)
        fused = build_tables(workload, base, scenarios=grid)
        materialized = build_tables(workload, grid.platforms(base))
        assert_bitwise_tables(fused, materialized)
        assert_bitwise_execution(
            fused, materialized, placement_matrix(n_tasks, n_devices)
        )

    def test_lazy_platforms_match_materialized_derivation(self, rng):
        base = edge_cluster_platform()
        grid = random_fused_scenarios(rng, base, 4)
        fused = build_tables(small_chain(), base, scenarios=grid)
        assert list(fused.platforms) == grid.platforms(base)
        assert fused.platforms[-1] == fused.platforms[len(grid) - 1]
        with pytest.raises(IndexError, match="out of range"):
            fused.platforms[len(grid)]


@dataclass(frozen=True)
class _UnvectorizedBoost(ConditionAxis):
    """A custom axis with only the scalar hook: forces the materializing path."""

    name: str = "boost"

    def apply(self, platform: Platform, value: float) -> Platform:
        updates = {
            alias: replace(spec, peak_gflops=spec.peak_gflops * value)
            for alias in platform.devices
            for spec in (platform.device(alias),)
        }
        return platform.with_devices(updates)


class TestMaterializingFallback:
    def test_custom_axis_without_scale_arrays_falls_back(self):
        axis = _UnvectorizedBoost()
        assert not vectorized_axis(axis)
        base = edge_cluster_platform()
        chain = small_chain()
        grid = ScenarioGrid.cartesian([(axis, [1.0, 2.0])])
        tables = build_tables(chain, base, scenarios=grid)
        materialized = build_tables(chain, grid.platforms(base))
        assert_bitwise_tables(tables, materialized)
        # The fallback still attaches a build context, so delta rebuilds work.
        new = Scenario(name="boosted", settings=((axis, 3.0),))
        updated = tables.updated(1, new)
        full = build_tables(
            chain, base, scenarios=ScenarioGrid((grid.scenarios[0], new))
        )
        assert_bitwise_tables(updated, full)
        assert updated.fingerprint == full.fingerprint

    def test_base_axis_scale_arrays_raises_not_implemented(self):
        from repro.devices.params import PlatformParams

        params = PlatformParams.gather(edge_cluster_platform(), 1)
        with pytest.raises(NotImplementedError, match="materializing path"):
            _UnvectorizedBoost().scale_arrays(params, np.array([0]), np.array([2.0]))


class TestDeltaRebuilds:
    def test_updated_is_bitwise_a_full_rebuild(self, rng):
        base = edge_cluster_platform()
        chain = small_chain()
        grid = random_fused_scenarios(rng, base, 6)
        tables = build_tables(chain, base, scenarios=grid)
        new = Scenario(name="swap", settings=((LinkBandwidthScale(), 0.3),))
        for index in (2, -1):
            updated = tables.updated(index, new)
            entries = list(grid.scenarios)
            entries[index if index >= 0 else len(entries) + index] = new
            full = build_tables(chain, base, scenarios=ScenarioGrid(tuple(entries)))
            assert_bitwise_tables(updated, full)
            assert updated.fingerprint == full.fingerprint
            assert list(updated.platforms) == list(full.platforms)

    def test_updated_many_batches_replacements(self, rng):
        base = edge_cluster_platform()
        chain = small_chain()
        grid = random_fused_scenarios(rng, base, 5)
        tables = build_tables(chain, base, scenarios=grid)
        replacements = {
            0: Scenario(name="a", settings=((LinkLatencyScale(), 4.0),)),
            -2: Scenario(name="b", settings=((DvfsFrequencyScale(), 0.6),)),
        }
        updated = tables.updated_many(replacements)
        entries = list(grid.scenarios)
        entries[0] = replacements[0]
        entries[-2] = replacements[-2]
        full = build_tables(chain, base, scenarios=ScenarioGrid(tuple(entries)))
        assert_bitwise_tables(updated, full)
        assert updated.fingerprint == full.fingerprint

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        n_devices=st.integers(2, 4),
        n_scenarios=st.integers(1, 6),
    )
    def test_hypothesis_delta_equals_full_rebuild(self, seed, n_devices, n_scenarios):
        rng = np.random.default_rng(seed)
        base = random_platform(rng, n_devices)
        chain = random_chain(rng, 3)
        grid = random_fused_scenarios(rng, base, n_scenarios)
        tables = build_tables(chain, base, scenarios=grid)
        index = int(rng.integers(0, n_scenarios))
        new = random_fused_scenarios(rng, base, 1).scenarios[0]
        new = Scenario(name="delta", settings=new.settings, weight=new.weight)
        updated = tables.updated(index, new)
        entries = list(grid.scenarios)
        entries[index] = new
        full = build_tables(chain, base, scenarios=ScenarioGrid(tuple(entries)))
        assert_bitwise_tables(updated, full)
        assert updated.fingerprint == full.fingerprint

    def test_empty_replacements_return_self(self, rng):
        base = edge_cluster_platform()
        tables = build_tables(
            small_chain(), base, scenarios=random_fused_scenarios(rng, base, 3)
        )
        assert tables.updated_many({}) is tables

    def test_duplicate_and_invalid_replacements_are_rejected(self, rng):
        base = edge_cluster_platform()
        grid = random_fused_scenarios(rng, base, 3)
        tables = build_tables(small_chain(), base, scenarios=grid)
        new = Scenario(name="x", settings=())
        with pytest.raises(ValueError, match="duplicate replacement"):
            tables.updated_many({0: new, -3: new})
        with pytest.raises(TypeError):
            tables.updated_many({0: "not a scenario"})
        with pytest.raises(IndexError, match=r"valid: -3\.\.2"):
            tables.updated(5, new)

    def test_tables_without_context_reject_delta_rebuilds(self, rng):
        base = edge_cluster_platform()
        grid = random_fused_scenarios(rng, base, 2)
        raw = build_grid_tables(small_chain(), grid.platforms(base))
        with pytest.raises(ValueError, match="no build context"):
            raw.updated(0, Scenario(name="x", settings=()))


class TestSliceCache:
    def test_second_build_is_all_slice_hits(self, rng):
        base = edge_cluster_platform()
        chain = small_chain()
        grid = random_fused_scenarios(rng, base, 5)
        cache = TableCache()
        first = build_tables(chain, base, scenarios=grid, slice_cache=cache)
        assert first.cache_stats() == GridSliceStats(served=0, built=5)
        second = build_tables(chain, base, scenarios=grid, slice_cache=cache)
        assert second.cache_stats() == GridSliceStats(served=5, built=0)
        assert_bitwise_tables(first, second)

    def test_overlapping_grid_shares_cached_slices(self, rng):
        base = edge_cluster_platform()
        chain = small_chain()
        grid = random_fused_scenarios(rng, base, 4)
        cache = TableCache()
        build_tables(chain, base, scenarios=grid, slice_cache=cache)
        extra = Scenario(name="extra", settings=((LinkLatencyScale(), 7.0),))
        overlapping = ScenarioGrid(grid.scenarios[:3] + (extra,))
        tables = build_tables(chain, base, scenarios=overlapping, slice_cache=cache)
        assert tables.cache_stats() == GridSliceStats(served=3, built=1)
        full = build_tables(chain, base, scenarios=overlapping)
        assert_bitwise_tables(tables, full)

    def test_delta_revert_is_a_slice_hit(self, rng):
        base = edge_cluster_platform()
        chain = small_chain()
        grid = random_fused_scenarios(rng, base, 4)
        cache = TableCache()
        tables = build_tables(chain, base, scenarios=grid, slice_cache=cache)
        new = Scenario(name="swap", settings=((LinkBandwidthScale(), 0.4),))
        updated = tables.updated(1, new, slice_cache=cache)
        assert updated.cache_stats() == GridSliceStats(served=0, built=1)
        reverted = updated.updated(1, grid.scenarios[1], slice_cache=cache)
        assert reverted.cache_stats() == GridSliceStats(served=1, built=0)
        assert_bitwise_tables(reverted, tables)
        assert reverted.fingerprint == tables.fingerprint

    def test_stats_without_context_default_to_all_built(self, rng):
        base = edge_cluster_platform()
        grid = random_fused_scenarios(rng, base, 3)
        raw = build_grid_tables(small_chain(), grid.platforms(base))
        assert raw.cache_stats() == GridSliceStats(served=0, built=3)


class TestExecutorIntegration:
    def test_raw_scenario_sequences_share_the_grid_cache_entry(self, rng):
        base = edge_cluster_platform()
        chain = small_chain()
        grid = random_fused_scenarios(rng, base, 4)
        executor = SimulatedExecutor(base)
        tables = executor.grid_cost_tables(chain, grid)
        assert executor.grid_cost_tables(chain, list(grid.scenarios)) is tables
        assert isinstance(tables, GridCostTables)

    def test_update_grid_tables_registers_the_new_fingerprint(self, rng):
        base = edge_cluster_platform()
        chain = small_chain()
        grid = random_fused_scenarios(rng, base, 4)
        executor = SimulatedExecutor(base)
        tables = executor.grid_cost_tables(chain, grid)
        new = Scenario(name="swap", settings=((DeviceLoadFactor(), 2.0),))
        updated = executor.update_grid_tables(tables, {2: new})
        entries = list(grid.scenarios)
        entries[2] = new
        assert executor.grid_cost_tables(chain, ScenarioGrid(tuple(entries))) is updated

    def test_update_with_empty_mapping_is_identity(self, rng):
        base = edge_cluster_platform()
        executor = SimulatedExecutor(base)
        tables = executor.grid_cost_tables(
            small_chain(), random_fused_scenarios(rng, base, 2)
        )
        assert executor.update_grid_tables(tables, {}) is tables


class TestIdentityShortCircuit:
    def test_all_neutral_settings_return_the_base_platform_object(self):
        base = edge_cluster_platform()
        pair = tuple(sorted(base.links))[0]
        neutral = Scenario(
            name="neutral",
            settings=(
                (LinkBandwidthScale(), 1.0),
                (LinkLatencyScale(), 1.0),
                (DeviceLoadFactor(), 1.0),
                (DvfsFrequencyScale(), 1.0),
                (EnergyPriceScale(), 1.0),
                (LinkInterpolation(links=(pair,), start=base.link(*pair), end=lte()), 0.0),
            ),
        )
        assert apply_conditions(base, neutral) is base

    def test_empty_settings_return_the_base_platform_object(self):
        base = edge_cluster_platform()
        assert apply_conditions(base, Scenario(name="empty", settings=())) is base

    def test_non_neutral_settings_still_derive_and_rename(self):
        base = edge_cluster_platform()
        derived = apply_conditions(
            base, Scenario(name="slow", settings=((LinkBandwidthScale(), 0.5),))
        )
        assert derived is not base
        assert derived.name == f"{base.name}@slow"


class TestScenarioGridEdges:
    def test_zero_scenarios_raise_an_actionable_error(self):
        with pytest.raises(ValueError, match="at least one scenario"):
            ScenarioGrid(())

    def test_negative_table_index_counts_from_the_end(self, rng):
        base = edge_cluster_platform()
        grid = random_fused_scenarios(rng, base, 4)
        tables = build_tables(small_chain(), base, scenarios=grid)
        last = tables.table(-1)
        assert last.busy.tobytes() == tables.table(3).busy.tobytes()
        assert last.fingerprint == tables.table(3).fingerprint
        batch = tables.execute(placement_matrix(3, 4))
        assert (
            batch.batch(-1).total_time_s.tobytes()
            == batch.batch(3).total_time_s.tobytes()
        )
        with pytest.raises(IndexError, match=r"valid: -4\.\.3"):
            tables.table(-5)
