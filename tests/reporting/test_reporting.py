"""Tests for text reporting: histograms, tables, CSV/markdown."""

from __future__ import annotations

import csv
import io

import numpy as np
import pytest

from repro.core import ClusterEntry, Comparison, PairwiseOracle, ScoreTable, make_final_clustering
from repro.core.sorting import three_way_bubble_sort
from repro.measurement import MeasurementSet
from repro.reporting import (
    ascii_histogram,
    cluster_table,
    distribution_report,
    format_table,
    histogram_counts,
    measurement_summary_table,
    score_table,
    sort_trace_table,
    to_csv,
    to_markdown,
)


class TestHistograms:
    def test_histogram_counts(self, rng):
        counts, edges = histogram_counts(rng.normal(size=200), bins=10)
        assert counts.sum() == 200
        assert len(edges) == 11

    def test_histogram_counts_validation(self):
        with pytest.raises(ValueError):
            histogram_counts([], bins=5)
        with pytest.raises(ValueError):
            histogram_counts([1.0], bins=0)

    def test_ascii_histogram_structure(self, rng):
        text = ascii_histogram(rng.normal(2.0, 0.1, 100), bins=8, width=30, unit="ms")
        lines = text.splitlines()
        assert len(lines) == 8
        assert all("ms |" in line for line in lines)
        assert any("#" in line for line in lines)

    def test_ascii_histogram_width_validation(self):
        with pytest.raises(ValueError):
            ascii_histogram([1.0, 2.0], width=0)

    def test_distribution_report_shares_range(self, rng):
        data = {"fast": rng.normal(1.0, 0.05, 50), "slow": rng.normal(2.0, 0.05, 50)}
        report = distribution_report(data, bins=10, width=20)
        assert "--- fast (N=50) ---" in report
        assert "--- slow (N=50) ---" in report
        assert "Algorithm" in report

    def test_distribution_report_constant_data(self):
        report = distribution_report({"a": np.full(5, 1.0)})
        assert "--- a (N=5) ---" in report

    def test_distribution_report_validation(self):
        with pytest.raises(ValueError):
            distribution_report({})


class TestFormatTable:
    def test_alignment_and_separator(self):
        text = format_table(("name", "value"), [("a", 1), ("long-name", 22)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[1].startswith("-")
        assert "long-name" in lines[3]

    def test_row_length_validation(self):
        with pytest.raises(ValueError):
            format_table(("a", "b"), [("only",)])


class TestDomainTables:
    def test_cluster_table_matches_paper_layout(self):
        clustering = make_final_clustering(
            {1: [ClusterEntry("DDA", 1.0)], 2: [ClusterEntry("DDD", 1.0), ClusterEntry("DAA", 0.4)]}
        )
        text = cluster_table(clustering)
        assert "Cluster" in text and "Relative Score" in text
        assert "C1" in text and "algDDA" in text and "0.40" in text

    def test_score_table_lists_every_rank(self):
        table = ScoreTable({1: {"AD": 1.0, "AA": 0.3}, 2: {"AA": 0.7}})
        text = score_table(table)
        assert "C1" in text and "C2" in text
        assert text.count("algAA") == 2

    def test_measurement_summary_table(self):
        ms = MeasurementSet({"x": [1.0, 2.0, 3.0], "y": [5.0, 6.0]})
        text = measurement_summary_table(ms)
        assert "x" in text and "y" in text
        assert "mean [s]" in text

    def test_sort_trace_table(self):
        oracle = PairwiseOracle({("a", "b"): Comparison.WORSE}, default=Comparison.EQUIVALENT)
        result = three_way_bubble_sort(["a", "b", "c"], oracle, record_trace=True)
        text = sort_trace_table(result)
        assert "Step" in text and "Comparison" in text
        assert "swap" in text


class TestSerialisation:
    def test_csv_roundtrip(self):
        text = to_csv(("a", "b"), [(1, "x"), (2, "y,z")])
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["a", "b"]
        assert rows[2] == ["2", "y,z"]

    def test_markdown_structure(self):
        text = to_markdown(("col1", "col2"), [("v1", 2)])
        lines = text.splitlines()
        assert lines[0] == "| col1 | col2 |"
        assert lines[1] == "| --- | --- |"
        assert lines[2] == "| v1 | 2 |"

    def test_markdown_row_validation(self):
        with pytest.raises(ValueError):
            to_markdown(("a",), [("x", "y")])
