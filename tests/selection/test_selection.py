"""Tests for the algorithm-selection policies (Section IV)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ClusterEntry, make_final_clustering
from repro.devices import SimulatedExecutor, cpu_gpu_platform
from repro.measurement.noise import NoNoise
from repro.offload import enumerate_algorithms, profile_algorithms
from repro.selection import (
    DecisionModel,
    EnergyAwareSwitcher,
    FlopsBudgetSelector,
    SwitchingPolicy,
    dominates,
    pareto_front,
)
from repro.tasks import table1_chain


@pytest.fixture(scope="module")
def table1_setup():
    platform = cpu_gpu_platform()
    executor = SimulatedExecutor(platform, noise=NoNoise(), seed=0)
    chain = table1_chain(loop_size=5)
    algorithms = {a.label: a for a in enumerate_algorithms(chain, platform)}
    profiles = profile_algorithms(algorithms.values(), executor)
    clustering = make_final_clustering(
        {
            1: [ClusterEntry("DDA", 1.0)],
            2: [ClusterEntry("DDD", 1.0), ClusterEntry("DAA", 0.9)],
            3: [ClusterEntry("ADA", 1.0)],
            4: [ClusterEntry("DAD", 1.0), ClusterEntry("ADD", 1.0), ClusterEntry("AAA", 0.8)],
            5: [ClusterEntry("AAD", 1.0)],
        }
    )
    return platform, algorithms, profiles, clustering


class TestDecisionModel:
    def test_zero_cost_weight_prefers_fastest(self, table1_setup):
        _, _, profiles, clustering = table1_setup
        decision = DecisionModel(cost_weight=0.0).decide(clustering, profiles)
        assert decision.label == "DDA"
        assert decision.cluster == 1
        assert "selected DDA" in decision.summary()

    def test_large_cost_weight_prefers_free_device(self, table1_setup):
        _, _, profiles, clustering = table1_setup
        decision = DecisionModel(cost_weight=1e6).decide(clustering, profiles)
        assert decision.label == "DDD"
        assert decision.operating_cost == 0.0

    def test_restriction_to_best_cluster(self, table1_setup):
        _, _, profiles, clustering = table1_setup
        decision = DecisionModel(cost_weight=1e6, restrict_to_clusters=(1,)).decide(
            clustering, profiles
        )
        assert decision.label == "DDA"

    def test_objectives_cover_all_candidates(self, table1_setup):
        _, _, profiles, clustering = table1_setup
        decision = DecisionModel().decide(clustering, profiles)
        assert set(decision.objectives) == set(clustering.labels)

    def test_score_penalty_discounts_low_confidence(self, table1_setup):
        _, _, profiles, clustering = table1_setup
        # With a huge penalty on low confidence, DAA (score 0.9) is never chosen over DDD.
        model = DecisionModel(score_penalty=10.0, restrict_to_clusters=(2,))
        assert model.decide(clustering, profiles).label == "DDD"

    def test_objectives_mapping_is_read_only(self, table1_setup):
        _, _, profiles, clustering = table1_setup
        decision = DecisionModel().decide(clustering, profiles)
        with pytest.raises(TypeError):
            decision.objectives["DDA"] = -1.0  # type: ignore[index]
        with pytest.raises((TypeError, AttributeError)):
            decision.objectives.clear()  # type: ignore[attr-defined]

    def test_objectives_snapshot_detached_from_source_dict(self, table1_setup):
        _, _, profiles, clustering = table1_setup
        source = {"DDA": 1.0, "DDD": 2.0}
        from repro.selection import Decision

        decision = Decision(
            label="DDA",
            objective=1.0,
            time_s=1.0,
            operating_cost=0.0,
            cluster=1,
            relative_score=1.0,
            objectives=source,
        )
        source["DDA"] = -5.0
        assert decision.objectives["DDA"] == 1.0

    def test_decision_survives_pickle_and_deepcopy(self, table1_setup):
        import copy
        import pickle

        _, _, profiles, clustering = table1_setup
        decision = DecisionModel(cost_weight=100.0).decide(clustering, profiles)
        for clone in (pickle.loads(pickle.dumps(decision)), copy.deepcopy(decision)):
            assert clone.label == decision.label
            assert dict(clone.objectives) == dict(decision.objectives)
            with pytest.raises(TypeError):
                clone.objectives["DDA"] = -1.0  # still read-only after the round-trip

    def test_decide_from_batch_identical_to_decide(self, table1_setup):
        platform, algorithms, profiles, clustering = table1_setup
        executor = SimulatedExecutor(platform, noise=NoNoise(), seed=0)
        chain = table1_chain(loop_size=5)
        batch = executor.execute_batch(
            chain, [a.placement.devices for a in algorithms.values()]
        )
        for model in (
            DecisionModel(),
            DecisionModel(cost_weight=1e6),
            DecisionModel(cost_weight=250.0, score_penalty=10.0),
            DecisionModel(cost_weight=1e6, restrict_to_clusters=(1,)),
        ):
            expected = model.decide(clustering, profiles)
            actual = model.decide_from_batch(clustering, batch)
            assert actual.label == expected.label
            assert actual.objective == expected.objective
            assert actual.time_s == expected.time_s
            assert actual.operating_cost == expected.operating_cost
            assert actual.cluster == expected.cluster
            assert actual.relative_score == expected.relative_score
            assert dict(actual.objectives) == dict(expected.objectives)

    def test_decide_from_batch_missing_candidates(self, table1_setup):
        platform, algorithms, _, clustering = table1_setup
        executor = SimulatedExecutor(platform, noise=NoNoise(), seed=0)
        chain = table1_chain(loop_size=5)
        batch = executor.execute_batch(chain, [algorithms["DDA"].placement.devices])
        with pytest.raises(KeyError):
            DecisionModel().decide_from_batch(clustering, batch)

    def test_batch_objective_validation(self, table1_setup):
        platform, algorithms, _, _ = table1_setup
        executor = SimulatedExecutor(platform, noise=NoNoise(), seed=0)
        chain = table1_chain(loop_size=5)
        batch = executor.execute_batch(chain)
        model = DecisionModel(score_penalty=1.0)
        with pytest.raises(ValueError):
            model.batch_objective(batch, relative_scores=np.ones(3))  # wrong length
        with pytest.raises(ValueError):
            model.batch_objective(batch, relative_scores=np.full(len(batch), 1.5))
        scored = model.batch_objective(batch, relative_scores=np.full(len(batch), 0.5))
        plain = model.batch_objective(batch)
        assert np.allclose(scored - plain, 0.5)

    def test_validation(self, table1_setup):
        _, _, profiles, clustering = table1_setup
        with pytest.raises(ValueError):
            DecisionModel(cost_weight=-1)
        with pytest.raises(ValueError):
            DecisionModel(score_penalty=-1)
        with pytest.raises(ValueError):
            DecisionModel(restrict_to_clusters=(9,)).decide(clustering, profiles)
        with pytest.raises(KeyError):
            DecisionModel().decide(clustering, {"DDA": profiles["DDA"]})
        with pytest.raises(ValueError):
            DecisionModel().objective(profiles["DDD"], relative_score=1.5)


class TestFlopsBudgetSelector:
    def test_tight_budget_forces_offloading(self, table1_setup):
        platform, algorithms, _, clustering = table1_setup
        total = algorithms["DDD"].flops_on("D")
        selector = FlopsBudgetSelector(device="D", budget_flops=0.25 * total)
        selection = selector.select(clustering, algorithms)
        assert selection.label == "DDA"
        assert selection.within_budget
        assert not selection.degraded

    def test_loose_budget_keeps_everything_on_device(self, table1_setup):
        platform, algorithms, _, clustering = table1_setup
        total = algorithms["DDD"].flops_on("D")
        # Within the best cluster, the algorithm with the fewest device FLOPs still wins.
        selector = FlopsBudgetSelector(device="D", budget_flops=2 * total)
        assert selector.select(clustering, algorithms).label == "DDA"

    def test_zero_budget_degrades_to_fully_offloaded(self, table1_setup):
        _, algorithms, _, clustering = table1_setup
        selector = FlopsBudgetSelector(device="D", budget_flops=0.0, allow_degradation=True)
        selection = selector.select(clustering, algorithms)
        assert selection.label == "AAA"
        assert selection.degraded
        assert selection.within_budget

    def test_impossible_budget_without_degradation_raises(self, table1_setup):
        _, algorithms, _, clustering = table1_setup
        selector = FlopsBudgetSelector(device="D", budget_flops=0.0, allow_degradation=False)
        with pytest.raises(ValueError):
            selector.select(clustering, algorithms)
        fallback = selector.best_effort(clustering, algorithms)
        assert fallback.label == "DDA"
        assert not fallback.within_budget

    def test_no_degradation_stops_at_first_cluster(self, table1_setup):
        _, algorithms, _, clustering = table1_setup
        budget = algorithms["DDD"].flops_on("D") * 0.5
        # Only AAA-like algorithms (not in C1) satisfy an ultra-tight budget on L3+L2.
        tight = FlopsBudgetSelector(device="D", budget_flops=budget, allow_degradation=False)
        result = tight.select(clustering, algorithms)
        assert result.cluster == 1

    def test_validation(self, table1_setup):
        _, algorithms, _, clustering = table1_setup
        with pytest.raises(ValueError):
            FlopsBudgetSelector(device="D", budget_flops=-1)
        with pytest.raises(KeyError):
            FlopsBudgetSelector(device="D", budget_flops=1e20).select(
                clustering, {"DDA": algorithms["DDA"]}
            )


class TestEnergyAwareSwitcher:
    def _switcher(self, profiles, threshold=10.0, dissipation=5.0):
        policy = SwitchingPolicy(
            preferred="DDD", cooldown="DAA", device="D", threshold_j=threshold,
            dissipation_j_per_invocation=dissipation,
        )
        return EnergyAwareSwitcher(policy=policy, profiles=profiles)

    def test_simulation_switches_and_returns(self, table1_setup):
        _, _, profiles, _ = table1_setup
        trace = self._switcher(profiles).simulate(100)
        assert trace.n_invocations == 100
        assert trace.n_switches >= 2
        assert 0 < trace.usage_fraction("DDD") < 1
        assert trace.usage_fraction("DDD") + trace.usage_fraction("DAA") == pytest.approx(1.0)

    def test_switching_reduces_device_energy_vs_static_preferred(self, table1_setup):
        _, _, profiles, _ = table1_setup
        switcher = self._switcher(profiles)
        comparison = switcher.compare_with_static(100)
        assert (
            comparison["switching"]["device_energy_j"]
            < comparison["static-DDD"]["device_energy_j"]
        )
        assert (
            comparison["switching"]["device_energy_j"]
            > comparison["static-DAA"]["device_energy_j"]
        )

    def test_huge_threshold_never_switches(self, table1_setup):
        _, _, profiles, _ = table1_setup
        trace = self._switcher(profiles, threshold=1e9).simulate(50)
        assert trace.n_switches == 0
        assert trace.usage_fraction("DDD") == 1.0

    def test_validation(self, table1_setup):
        _, _, profiles, _ = table1_setup
        with pytest.raises(ValueError):
            SwitchingPolicy(preferred="DDD", cooldown="DAA", device="D", threshold_j=0.0)
        with pytest.raises(KeyError):
            EnergyAwareSwitcher(
                policy=SwitchingPolicy("DDD", "ZZZ", "D", 1.0), profiles=profiles
            )
        with pytest.raises(ValueError):
            self._switcher(profiles).simulate(0)

    def test_peak_energy_does_not_run_away(self, table1_setup):
        _, _, profiles, _ = table1_setup
        ddd_energy = profiles["DDD"].device_energy("D")
        trace = self._switcher(profiles, threshold=5 * ddd_energy, dissipation=2 * ddd_energy).simulate(300)
        # The accumulator stays bounded by threshold + one invocation worth of energy.
        assert trace.peak_accumulated_j <= 5 * ddd_energy + ddd_energy + 1e-9

    def test_non_draining_cooldown_rejected(self, table1_setup):
        """Regression: dissipation <= cooldown draw would cool down forever."""
        _, _, profiles, _ = table1_setup
        daa_energy = profiles["DAA"].device_energy("D")
        assert daa_energy > 0  # the cooldown algorithm does draw device energy
        # The default dissipation (0.0) can never drain the accumulator.
        with pytest.raises(ValueError, match="never drain"):
            self._switcher(profiles, dissipation=0.0)
        # Exactly offsetting the cooldown draw is still a zero net drain.
        with pytest.raises(ValueError, match="never drain"):
            self._switcher(profiles, dissipation=daa_energy)
        # Any strictly positive net drain terminates the cool-down phase.
        trace = self._switcher(
            profiles, threshold=10.0, dissipation=daa_energy + 1.0
        ).simulate(200)
        assert trace.n_switches >= 2  # entered *and left* cool-down
        assert trace.usage_fraction("DDD") > 0.0
        assert trace.usage_fraction("DAA") > 0.0

    def test_unreachable_infinite_threshold_needs_no_drain(self, table1_setup):
        """threshold_j=inf never triggers cool-down, so no drain is required."""
        _, _, profiles, _ = table1_setup
        trace = self._switcher(profiles, threshold=float("inf"), dissipation=0.0).simulate(30)
        assert trace.n_switches == 0
        assert trace.usage_fraction("DDD") == 1.0

    def test_zero_draw_preferred_never_triggers_cooldown(self, table1_setup):
        """A policy whose threshold is unreachable needs no drain validation."""
        _, _, profiles, _ = table1_setup
        # Device alias "Z" draws nothing in any profile, so the accumulator
        # never moves and the cool-down phase never starts.
        policy = SwitchingPolicy(
            preferred="DDD", cooldown="DAA", device="Z", threshold_j=1.0,
            dissipation_j_per_invocation=0.0,
        )
        trace = EnergyAwareSwitcher(policy=policy, profiles=profiles).simulate(20)
        assert trace.n_switches == 0
        assert trace.usage_fraction("DDD") == 1.0


class TestPareto:
    def test_dominates(self):
        assert dominates([1, 1], [2, 1])
        assert not dominates([1, 1], [1, 1])
        assert not dominates([1, 2], [2, 1])
        with pytest.raises(ValueError):
            dominates([1], [1, 2])

    def test_front_contains_fastest_and_cheapest(self, table1_setup):
        _, _, profiles, _ = table1_setup
        front = pareto_front(profiles)
        fastest = min(profiles, key=lambda label: profiles[label].time_s)
        assert fastest in front
        assert "DDD" in front  # zero operating cost is non-dominated
        for values in front.values():
            assert set(values) == {"time_s", "energy_j", "operating_cost"}

    def test_front_excludes_dominated(self, table1_setup):
        _, _, profiles, _ = table1_setup
        front = pareto_front(profiles)
        assert "AAD" not in front  # slower and costlier than DDD on every axis

    def test_validation(self, table1_setup):
        _, _, profiles, _ = table1_setup
        with pytest.raises(ValueError):
            pareto_front({})
        with pytest.raises(ValueError):
            pareto_front(profiles, criteria=())
