"""The placement-query serving layer: routing, caching, and error contracts.

The service must (a) agree bitwise with the engines it routes to -- the
planner and the streaming enumerator return the same winner with the same
value, whichever ``method`` picked them; (b) serve repeated queries from the
shared content-addressed table cache; and (c) reject malformed requests with
errors that name the offending value *and* the available options, mirroring
``get_platform``'s style.
"""

from __future__ import annotations

import numpy as np
import pytest

from factories import random_chain, random_graph, random_platform
from repro.cache import TableCache
from repro.devices import edge_cluster_platform, lte, wifi_ac
from repro.faults import RetryPolicy, TimeoutPolicy
from repro.scenarios import link_degradation_grid
from repro.search import EnergyBudgetConstraint
from repro.service import (
    METHODS,
    OBJECTIVE_METRICS,
    CacheInfo,
    PlacementRequest,
    PlacementResponse,
    PlacementService,
)
from repro.tasks import RegularizedLeastSquaresTask, TaskChain

RADIO = (("D", "E"), ("D", "A"), ("N", "E"), ("N", "A"), ("E", "A"))


def drift_chain(n_tasks: int = 4) -> TaskChain:
    tasks = [
        RegularizedLeastSquaresTask(
            size=60 + 80 * i, iterations=12, name=f"L{i + 1}", generate_on_host=False
        )
        for i in range(n_tasks)
    ]
    return TaskChain(tasks, name=f"service-test-{n_tasks}")


@pytest.fixture(scope="module")
def service():
    return PlacementService()


@pytest.fixture(scope="module")
def chain():
    return drift_chain()


@pytest.fixture(scope="module")
def grid():
    return link_degradation_grid(RADIO, start=wifi_ac(), end=lte(), n_points=3)


class TestPlainRouting:
    def test_auto_routes_top1_requests_to_the_planner(self, service, chain):
        response = service.submit(PlacementRequest(workload=chain, platform="edge-cluster"))
        assert isinstance(response, PlacementResponse)
        assert response.engine == "planner"
        assert "DP" in response.dispatch_reason
        assert response.objective == "time"
        assert len(response.placement) == 4
        assert response.plan == "".join(response.placement)
        assert response.timing_s > 0

    def test_engines_agree_bitwise(self, service, chain):
        auto = service.submit(PlacementRequest(workload=chain, platform="edge-cluster"))
        stream = service.submit(
            PlacementRequest(workload=chain, platform="edge-cluster", method="stream")
        )
        planner = service.submit(
            PlacementRequest(workload=chain, platform="edge-cluster", method="planner")
        )
        assert stream.engine == "stream" and planner.engine == "planner"
        assert auto.plan == stream.plan == planner.plan
        assert auto.value == stream.value == planner.value  # bitwise

    def test_constraints_fall_back_to_streaming(self, service, chain):
        constrained = PlacementRequest(
            workload=chain,
            platform="edge-cluster",
            constraints=(EnergyBudgetConstraint(max_energy_j=1e6),),
        )
        response = service.submit(constrained)
        assert response.engine == "stream"
        with pytest.raises(ValueError, match="method='planner' cannot serve"):
            service.submit(
                PlacementRequest(
                    workload=chain,
                    platform="edge-cluster",
                    constraints=(EnergyBudgetConstraint(max_energy_j=1e6),),
                    method="planner",
                )
            )

    def test_graph_workloads_route_too(self, service):
        graph = random_graph(np.random.default_rng(2), n_tasks=4)
        platform = random_platform(np.random.default_rng(2), n_devices=3)
        auto = service.submit(PlacementRequest(workload=graph, platform=platform))
        stream = service.submit(
            PlacementRequest(workload=graph, platform=platform, method="stream")
        )
        assert auto.plan == stream.plan and auto.value == stream.value

    def test_fault_requests_stream_with_a_reason(self, service, chain):
        response = service.submit(
            PlacementRequest(
                workload=chain, platform="edge-cluster", retry=RetryPolicy(max_attempts=2)
            )
        )
        assert response.engine == "stream"
        assert "planner boundary" in response.dispatch_reason
        with pytest.raises(ValueError, match="fault-aware"):
            service.submit(
                PlacementRequest(
                    workload=chain,
                    platform="edge-cluster",
                    retry=RetryPolicy(max_attempts=2),
                    method="planner",
                )
            )


class TestGridRouting:
    def test_auto_routes_to_the_robust_planner(self, service, chain, grid):
        response = service.submit(
            PlacementRequest(workload=chain, platform="edge-cluster", scenario_grid=grid)
        )
        assert response.engine == "planner"
        assert response.objective == "worst-time"

    def test_grid_engines_agree_bitwise(self, service, chain, grid):
        auto = service.submit(
            PlacementRequest(workload=chain, platform="edge-cluster", scenario_grid=grid)
        )
        stream = service.submit(
            PlacementRequest(
                workload=chain, platform="edge-cluster", scenario_grid=grid, method="stream"
            )
        )
        assert stream.engine == "stream"
        assert auto.plan == stream.plan and auto.value == stream.value

    def test_fault_grid_requests_stream(self, service, chain, grid):
        response = service.submit(
            PlacementRequest(
                workload=chain,
                platform="edge-cluster",
                scenario_grid=grid,
                retry=RetryPolicy(max_attempts=2),
                timeout=TimeoutPolicy(10.0),
            )
        )
        assert response.engine == "stream"
        with pytest.raises(ValueError, match="method='planner' cannot serve"):
            service.submit(
                PlacementRequest(
                    workload=chain,
                    platform="edge-cluster",
                    scenario_grid=grid,
                    retry=RetryPolicy(max_attempts=2),
                    method="planner",
                )
            )


class TestCacheBehaviour:
    def test_repeated_queries_hit_the_cache(self, chain):
        service = PlacementService()
        request = PlacementRequest(workload=chain, platform="edge-cluster")
        cold = service.submit(request)
        hot = service.submit(request)
        assert cold.cache_info.misses > 0 and not cold.cache_info.served_from_cache
        assert hot.cache_info.misses == 0 and hot.cache_info.served_from_cache
        # Resubmitting a *structurally equal* request also hits: the cache is
        # content-addressed, not identity-addressed.
        clone = PlacementRequest(workload=drift_chain(), platform="edge-cluster")
        assert service.submit(clone).cache_info.served_from_cache

    def test_engines_share_tables_across_methods(self, chain):
        service = PlacementService()
        service.submit(PlacementRequest(workload=chain, platform="edge-cluster"))
        streamed = service.submit(
            PlacementRequest(workload=chain, platform="edge-cluster", method="stream")
        )
        assert streamed.cache_info.served_from_cache

    def test_services_can_pool_one_cache(self, chain):
        shared = TableCache()
        first = PlacementService(table_cache=shared)
        second = PlacementService(table_cache=shared)
        first.submit(PlacementRequest(workload=chain, platform="edge-cluster"))
        assert (
            second.submit(PlacementRequest(workload=chain, platform="edge-cluster"))
            .cache_info.served_from_cache
        )

    def test_cache_stats_and_clear(self, chain):
        service = PlacementService()
        service.submit(PlacementRequest(workload=chain, platform="edge-cluster"))
        assert service.cache_stats().entries > 0
        assert service.clear_cache() > 0
        assert service.cache_stats().entries == 0

    def test_executor_reuse_across_equal_platforms(self, service):
        # Two get_platform calls build distinct objects; the service keys
        # executors by content, so they share one executor.
        assert service.executor_for("edge-cluster") is service.executor_for(
            edge_cluster_platform()
        )


class TestValidationErrors:
    """Errors name the offending value and list the available options."""

    def test_unknown_method(self, chain):
        with pytest.raises(ValueError, match=r"unknown method 'fastest'; available: \['auto', 'planner', 'stream'\]"):
            PlacementRequest(workload=chain, platform="edge-cluster", method="fastest")
        assert METHODS == ("auto", "planner", "stream")

    def test_unknown_objective(self, chain):
        with pytest.raises(ValueError, match=r"unknown objective 'latency'; available: \['cost', 'energy', 'time'\]"):
            PlacementRequest(workload=chain, platform="edge-cluster", objective="latency")
        assert OBJECTIVE_METRICS == ("cost", "energy", "time")

    def test_unknown_platform_via_catalog(self, service, chain):
        with pytest.raises(KeyError, match=r"unknown platform 'tpu-pod'; available: \["):
            service.submit(PlacementRequest(workload=chain, platform="tpu-pod"))

    def test_unknown_platform_via_custom_registry(self, chain):
        platform = random_platform(np.random.default_rng(0), n_devices=2)
        service = PlacementService(platforms={"lab": platform})
        assert service.submit(PlacementRequest(workload=chain, platform="lab")).plan
        with pytest.raises(KeyError, match=r"unknown platform 'prod'; available: \['lab'\]"):
            service.submit(PlacementRequest(workload=chain, platform="prod"))

    def test_platform_sequence_registry(self, chain):
        service = PlacementService(platforms=[edge_cluster_platform()])
        response = service.submit(
            PlacementRequest(workload=chain, platform="edge-cluster")
        )
        assert response.plan

    def test_bad_workload_and_platform_types(self, chain):
        with pytest.raises(TypeError, match="workload must be a TaskChain or TaskGraph"):
            PlacementRequest(workload="chain", platform="edge-cluster")
        with pytest.raises(TypeError, match="platform must be a Platform"):
            PlacementRequest(workload=chain, platform=42)
        with pytest.raises(TypeError, match="scenario_grid must be a ScenarioGrid"):
            PlacementRequest(workload=chain, platform="edge-cluster", scenario_grid="grid")

    def test_bad_objective_type(self, chain):
        with pytest.raises(TypeError, match="cannot interpret"):
            PlacementRequest(workload=chain, platform="edge-cluster", objective=3.5)

    def test_faults_without_retry(self, chain):
        with pytest.raises(ValueError, match="retry=RetryPolicy"):
            PlacementRequest(
                workload=chain, platform="edge-cluster", timeout=TimeoutPolicy(1.0)
            )

    def test_submit_rejects_non_requests(self, service):
        with pytest.raises(TypeError, match="PlacementRequest"):
            service.submit({"workload": "x"})

    def test_non_platform_registry_values_raise(self):
        with pytest.raises(TypeError, match="must be a Platform"):
            PlacementService(platforms={"lab": "not-a-platform"})


class TestResponseSurface:
    def test_summary_mentions_plan_value_and_cache(self, chain):
        service = PlacementService()
        request = PlacementRequest(workload=chain, platform="edge-cluster")
        service.submit(request)
        summary = service.submit(request).summary()
        assert "cache hit" in summary and "planner" not in summary.split("via")[0]

    def test_cache_info_fields(self, chain):
        service = PlacementService()
        info = service.submit(
            PlacementRequest(workload=chain, platform="edge-cluster")
        ).cache_info
        assert isinstance(info, CacheInfo)
        assert info.entries >= 1 and info.nbytes > 0 and info.evictions == 0

    def test_n_requests_counts(self, chain):
        service = PlacementService()
        request = PlacementRequest(workload=chain, platform="edge-cluster")
        service.submit(request)
        service.submit(request)
        assert service.n_requests == 2
