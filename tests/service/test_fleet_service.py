"""Serving fleet requests: SampledFleet grids and tail objectives at the API.

A :class:`SampledFleet` must be acceptable wherever a grid is (the request
unwraps it), and the quantile/SLO objectives -- outside the DP planner
boundary -- must dispatch to the streaming engine with an honest reason and
agree bitwise with a direct :func:`search_grid` sweep.
"""

from __future__ import annotations

import pytest

from repro.fleet import FleetSpec, UniformAxis, UserSegment, sample_fleet
from repro.scenarios import LinkBandwidthScale, LinkLatencyScale
from repro.search import QuantileObjective, SLOObjective, search_grid
from repro.service import PlacementRequest, PlacementService
from repro.tasks import RegularizedLeastSquaresTask, TaskChain


def serving_chain(n_tasks: int = 3) -> TaskChain:
    tasks = [
        RegularizedLeastSquaresTask(
            size=60 + 60 * i, iterations=8, name=f"L{i + 1}", generate_on_host=False
        )
        for i in range(n_tasks)
    ]
    return TaskChain(tasks, name="fleet-service-test")


@pytest.fixture(scope="module")
def fleet():
    spec = FleetSpec(
        segments=(
            UserSegment(
                "wifi", weight=2.0, axes=(UniformAxis(LinkBandwidthScale(), 0.7, 1.2),)
            ),
            UserSegment(
                "cell",
                weight=1.0,
                axes=(
                    UniformAxis(LinkBandwidthScale(), 0.15, 0.4),
                    UniformAxis(LinkLatencyScale(), 2.0, 5.0),
                ),
            ),
        )
    )
    return sample_fleet(spec, 6, seed=3)


@pytest.fixture(scope="module")
def service():
    return PlacementService()


class TestFleetRequests:
    def test_request_unwraps_a_sampled_fleet_to_its_grid(self, fleet):
        request = PlacementRequest(
            workload=serving_chain(), platform="edge-cluster", scenario_grid=fleet
        )
        assert request.scenario_grid is fleet.grid
        assert request.is_grid

    def test_other_grid_types_are_still_rejected(self):
        with pytest.raises(TypeError, match="SampledFleet"):
            PlacementRequest(
                workload=serving_chain(), platform="edge-cluster", scenario_grid=[1, 2]
            )

    def test_quantile_objective_streams_with_a_reason(self, service, fleet):
        chain = serving_chain()
        response = service.submit(
            PlacementRequest(
                workload=chain,
                platform="edge-cluster",
                scenario_grid=fleet,
                objective=QuantileObjective(q=0.9),
            )
        )
        assert response.engine == "stream"
        assert response.dispatch_reason
        # Bitwise the direct streaming sweep's winner.
        direct = search_grid(
            service.executor_for("edge-cluster"),
            chain,
            fleet.grid,
            objectives=(QuantileObjective(q=0.9),),
            top_k=1,
        )
        selection = direct.top["p90-time"]
        assert "".join(response.placement) == selection.labels[0]
        assert response.value == float(selection.values[0])

    def test_slo_objective_streams_and_reports_a_miss_fraction(self, service, fleet):
        response = service.submit(
            PlacementRequest(
                workload=serving_chain(),
                platform="edge-cluster",
                scenario_grid=fleet,
                objective=SLOObjective(budget=0.05),
            )
        )
        assert response.engine == "stream"
        assert 0.0 <= response.value <= 1.0

    def test_repeated_fleet_queries_hit_the_response_cache(self, fleet):
        service = PlacementService()
        request = PlacementRequest(
            workload=serving_chain(),
            platform="edge-cluster",
            scenario_grid=fleet,
            objective=QuantileObjective(q=0.9),
        )
        first = service.submit(request)
        second = service.submit(
            PlacementRequest(
                workload=serving_chain(),
                platform="edge-cluster",
                scenario_grid=fleet,
                objective=QuantileObjective(q=0.9),
            )
        )
        assert not first.cache_info.served_from_cache
        assert second.cache_info.served_from_cache
        assert (second.placement, second.value) == (first.placement, first.value)
