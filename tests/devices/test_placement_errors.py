"""Actionable placement errors: every entry point names workload, shape and devices.

Regression tests for the error-message contract: a mis-sized or mis-spelled
placement failing deep inside ``execute``/``execute_batch``/``plan`` must
name the chain/graph it was evaluating, the expected length, and the
available device aliases -- not just "KeyError: 'Z'".
"""

from __future__ import annotations

import numpy as np
import pytest

from factories import random_chain, random_graph

from repro.devices import SimulatedExecutor, edge_cluster_platform


@pytest.fixture(scope="module")
def executor():
    return SimulatedExecutor(edge_cluster_platform())


@pytest.fixture(scope="module")
def chain():
    return random_chain(np.random.default_rng(0), 3)


@pytest.fixture(scope="module")
def graph():
    return random_graph(np.random.default_rng(0), 3)


class TestSequentialExecute:
    def test_wrong_length_names_chain_and_devices(self, executor, chain):
        with pytest.raises(ValueError) as excinfo:
            executor.execute(chain, ("D", "E"))
        message = str(excinfo.value)
        assert "has 2 entries" in message
        assert f"chain {chain.name!r} has 3 tasks" in message
        assert "available devices: ['A', 'D', 'E', 'N']" in message

    def test_unknown_alias_names_chain_and_devices(self, executor, chain):
        with pytest.raises(KeyError) as excinfo:
            executor.execute(chain, ("D", "E", "Z"))
        message = str(excinfo.value)
        assert f"for chain {chain.name!r}" in message
        assert "unknown device aliases ['Z']" in message
        assert "available: ['A', 'D', 'E', 'N']" in message

    def test_graph_errors_name_graph_and_topological_order(self, executor, graph):
        with pytest.raises(ValueError) as excinfo:
            executor.execute(graph, ("D",))
        message = str(excinfo.value)
        assert f"graph {graph.name!r} has 3 tasks" in message
        assert f"topological order: {graph.task_names}" in message
        assert "available devices:" in message
        with pytest.raises(KeyError) as excinfo:
            executor.execute(graph, ("D", "E", "Z"))
        message = str(excinfo.value)
        assert f"for graph {graph.name!r}" in message
        assert "unknown device aliases ['Z']" in message


class TestBatchExecute:
    def test_wrong_length_placement_names_workload(self, executor, chain):
        with pytest.raises(ValueError) as excinfo:
            executor.execute_batch(chain, [("D", "E")])
        message = str(excinfo.value)
        assert "has 2 entries" in message
        assert f"workload {chain.name!r}" in message
        assert "candidate devices: ['D', 'N', 'E', 'A']" in message

    def test_unknown_alias_names_workload_and_candidates(self, executor, chain):
        with pytest.raises(KeyError) as excinfo:
            executor.execute_batch(chain, [("D", "E", "Z")])
        message = str(excinfo.value)
        assert "uses device 'Z'" in message
        assert f"workload {chain.name!r}" in message
        assert "candidates ['D', 'N', 'E', 'A']" in message

    def test_mis_shaped_matrix_names_task_count(self, executor, chain):
        with pytest.raises(ValueError) as excinfo:
            executor.execute_batch(chain, np.zeros((4, 2), dtype=np.intp))
        message = str(excinfo.value)
        assert "expected (*, 3)" in message
        assert f"workload {chain.name!r} has 3 tasks" in message

    def test_out_of_range_indices_name_candidates(self, executor, chain):
        with pytest.raises(ValueError, match=r"candidate devices: \['D', 'N', 'E', 'A'\]"):
            executor.execute_batch(chain, np.full((2, 3), 9, dtype=np.intp))

    def test_graph_batches_name_the_graph(self, executor, graph):
        with pytest.raises(ValueError, match=f"workload '{graph.name}'"):
            executor.execute_batch(graph, [("D", "E")])


class TestPlan:
    def test_unknown_device_subset_is_actionable(self, executor, chain):
        with pytest.raises(KeyError, match=r"unknown device aliases \['Z'\]"):
            executor.plan(chain, "time", devices=("D", "Z"))

    def test_graph_plan_errors_name_the_graph(self, executor, graph):
        with pytest.raises(KeyError, match=r"unknown device aliases \['Z'\]"):
            executor.plan(graph, "time", devices=("D", "Z"))


class TestFaultArgGuard:
    def test_faults_without_retry_names_the_fix(self, executor, chain):
        from repro.faults import FaultProfile, TimeoutPolicy

        with pytest.raises(ValueError, match="retry=RetryPolicy"):
            executor.execute_batch(chain, faults=FaultProfile())
        with pytest.raises(ValueError, match="retry=RetryPolicy"):
            executor.cost_tables(chain, timeout=TimeoutPolicy(timeout_s=1.0))
