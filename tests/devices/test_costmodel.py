"""Pinning tests for the extracted cost model (``repro.devices.costmodel``).

The refactor moved the per-(task, device) compute/transfer/energy math out of
``SimulatedExecutor.execute`` and ``ChainCostTables.build`` into one shared
module.  These tests pin the extraction down on randomized platforms: the
formula tier agrees bitwise with the spec methods it backs, the per-task
helpers reproduce the executor's aggregation, and executor + tables remain
mutually bitwise consistent (the refactor's no-drift guarantee).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.devices import (
    ChainCostTables,
    DeviceSpec,
    LinkSpec,
    Platform,
    SimulatedExecutor,
)
from repro.devices import costmodel
from repro.devices.costmodel import (
    PENALTY_MESSAGE_BYTES,
    penalty_cost,
    task_device_cost,
)
from repro.offload import enumerate_placements, placement_matrix

from factories import random_chain, random_link, random_platform


class TestFormulaTier:
    def test_busy_time_matches_device_compute_time(self, rng):
        """Scalar formula == DeviceSpec.compute_time, bitwise, random params."""
        for _ in range(50):
            device = DeviceSpec(
                name="d",
                peak_gflops=float(rng.uniform(1.0, 500.0)),
                half_saturation_flops=float(rng.uniform(0.0, 1e8)),
                memory_bandwidth_gbs=float(rng.uniform(0.5, 500.0)),
                kernel_launch_overhead_s=float(rng.uniform(0.0, 1e-3)),
            )
            chain = random_chain(rng, 1)
            cost = chain.costs()[0]
            expected = device.compute_time(cost)
            actual = costmodel.busy_time(
                cost.flops,
                cost.kernel_calls,
                cost.working_set_bytes,
                device.peak_gflops,
                device.half_saturation_flops,
                device.memory_bandwidth_gbs,
                device.kernel_launch_overhead_s,
            )
            assert float(actual) == expected

    def test_busy_time_broadcasts_bitwise(self, rng):
        """Array evaluation over parameter grids == elementwise scalar calls."""
        chain = random_chain(rng, 1)
        cost = chain.costs()[0]
        peaks = rng.uniform(1.0, 500.0, size=(4, 3))
        halves = rng.uniform(0.0, 1e8, size=(4, 3))
        bws = rng.uniform(0.5, 500.0, size=(4, 3))
        launches = rng.uniform(0.0, 1e-3, size=(4, 3))
        grid = costmodel.busy_time(
            cost.flops, cost.kernel_calls, cost.working_set_bytes, peaks, halves, bws, launches
        )
        for i in range(4):
            for j in range(3):
                scalar = costmodel.busy_time(
                    cost.flops,
                    cost.kernel_calls,
                    cost.working_set_bytes,
                    peaks[i, j],
                    halves[i, j],
                    bws[i, j],
                    launches[i, j],
                )
                assert grid[i, j] == scalar

    def test_transfer_time_scalar_behaviour_is_unchanged(self, rng):
        link = random_link(rng)
        assert link.transfer_time(0) == 0.0
        assert isinstance(link.transfer_time(0), float)
        n_bytes = float(rng.uniform(1.0, 1e7))
        assert link.transfer_time(n_bytes) == link.latency_s + n_bytes / (
            link.bandwidth_gbs * 1e9
        )
        with pytest.raises(ValueError):
            link.transfer_time(-1.0)
        with pytest.raises(ValueError):
            link.transfer_energy(-1.0)

    def test_transfer_time_vectorizes_over_byte_arrays(self, rng):
        """Satellite: LinkSpec methods accept ndarrays, elementwise == scalar."""
        link = random_link(rng)
        counts = np.concatenate([[0.0], rng.uniform(1.0, 1e7, size=10)])
        times = link.transfer_time(counts)
        energies = link.transfer_energy(counts)
        assert isinstance(times, np.ndarray) and times.shape == counts.shape
        for count, time_v, energy_v in zip(counts, times, energies):
            assert time_v == link.transfer_time(float(count))
            assert energy_v == link.transfer_energy(float(count))
        with pytest.raises(ValueError):
            link.transfer_time(np.array([1.0, -2.0]))
        with pytest.raises(ValueError):
            link.transfer_energy(np.array([1.0, -2.0]))

    def test_transfer_time_vectorizes_over_link_parameters(self, rng):
        """Scalar bytes against parameter arrays: the grid-build pattern."""
        bws = rng.uniform(0.01, 10.0, size=5)
        lats = rng.uniform(0.0, 1e-2, size=5)
        grid = costmodel.transfer_time(1234.0, bws, lats)
        for i in range(5):
            assert grid[i] == costmodel.transfer_time(1234.0, bws[i], lats[i])
        # Zero bytes short-circuit to exactly 0.0 for every parameter combo.
        assert np.array_equal(costmodel.transfer_time(0.0, bws, lats), np.zeros(5))


class TestTaskHelpers:
    def test_task_device_cost_matches_inline_aggregation(self, rng):
        """The helper reproduces the executor's historical inline expressions."""
        for _ in range(20):
            platform = random_platform(rng, 3)
            chain = random_chain(rng, 1)
            cost = chain.costs()[0]
            host = platform.host
            for alias in platform.aliases:
                entry = task_device_cost(platform, cost, alias)
                device = platform.device(alias)
                if alias == host:
                    assert entry.busy_s == device.compute_time(cost)
                    assert entry.hostio_time_s == 0.0
                    assert entry.hostio_bytes == 0.0
                    assert entry.energy_in_j == 0.0 and entry.energy_out_j == 0.0
                else:
                    assert entry.busy_s == device.compute_time(cost) + device.task_startup_overhead_s
                    assert entry.hostio_time_s == platform.transfer_time(
                        host, alias, cost.input_bytes
                    ) + platform.transfer_time(alias, host, cost.output_bytes)
                    assert entry.hostio_bytes == cost.transferred_bytes
                    assert entry.energy_in_j == platform.transfer_energy(
                        host, alias, cost.input_bytes
                    )
                    assert entry.energy_out_j == platform.transfer_energy(
                        alias, host, cost.output_bytes
                    )

    def test_penalty_cost_matches_platform_links(self, rng):
        platform = random_platform(rng, 3)
        for a in platform.aliases:
            for b in platform.aliases:
                hop = penalty_cost(platform, a, b)
                if a == b:
                    assert (hop.time_s, hop.energy_j, hop.n_bytes) == (0.0, 0.0, 0.0)
                else:
                    assert hop.time_s == platform.transfer_time(a, b, PENALTY_MESSAGE_BYTES)
                    assert hop.energy_j == platform.transfer_energy(a, b, PENALTY_MESSAGE_BYTES)
                    assert hop.n_bytes == PENALTY_MESSAGE_BYTES

    def test_missing_link_raise_and_nan_modes(self):
        """"raise" propagates the platform KeyError, "nan" poisons the fields."""
        devices = {"D": DeviceSpec(name="d"), "A": DeviceSpec(name="a"), "B": DeviceSpec(name="b")}
        platform_missing = Platform(
            devices=devices, links={("D", "A"): LinkSpec(name="l", bandwidth_gbs=1.0)}, host="D"
        )
        chain = random_chain(np.random.default_rng(0), 1)
        cost = chain.costs()[0]
        with pytest.raises(KeyError):
            task_device_cost(platform_missing, cost, "B")
        entry = task_device_cost(platform_missing, cost, "B", on_missing_link="nan")
        assert np.isnan(entry.hostio_time_s)
        assert np.isnan(entry.energy_in_j) and np.isnan(entry.energy_out_j)
        # The link-independent fields survive, exactly like the tables need.
        assert entry.busy_s == devices["B"].compute_time(cost)
        assert entry.hostio_bytes == cost.transferred_bytes
        with pytest.raises(KeyError):
            penalty_cost(platform_missing, "A", "B")
        hop = penalty_cost(platform_missing, "A", "B", on_missing_link="nan")
        assert np.isnan(hop.time_s) and np.isnan(hop.energy_j)
        assert hop.n_bytes == PENALTY_MESSAGE_BYTES


class TestRefactorConsistency:
    """Executor, cost tables and the shared model agree on random platforms."""

    @pytest.mark.parametrize("n_devices,n_tasks", [(2, 3), (3, 3), (4, 2)])
    def test_tables_and_executor_agree_with_costmodel(self, rng, n_devices, n_tasks):
        for _ in range(5):
            platform = random_platform(rng, n_devices)
            chain = random_chain(rng, n_tasks)
            tables = ChainCostTables.build(chain, platform)
            costs = chain.costs()
            # Tables hold exactly the shared helpers' values...
            for t, cost in enumerate(costs):
                for d, alias in enumerate(tables.aliases):
                    entry = task_device_cost(platform, cost, alias)
                    assert tables.busy[t, d] == entry.busy_s
                    assert tables.hostio_time[t, d] == entry.hostio_time_s
                    assert tables.hostio_bytes[t, d] == entry.hostio_bytes
                    assert tables.energy_in[t, d] == entry.energy_in_j
                    assert tables.energy_out[t, d] == entry.energy_out_j
            # ... and the executor's records decompose into the same values.
            executor = SimulatedExecutor(platform, seed=0)
            for placement in enumerate_placements(n_tasks, platform.aliases)[:16]:
                record = executor.execute(chain, placement.devices)
                previous = platform.host
                for pos, (task_record, alias) in enumerate(zip(record.tasks, placement.devices)):
                    entry = task_device_cost(platform, costs[pos], alias)
                    hop = penalty_cost(platform, previous, alias)
                    assert task_record.busy_time_s == entry.busy_s
                    assert task_record.transfer_time_s == entry.hostio_time_s + hop.time_s
                    assert task_record.transferred_bytes == entry.hostio_bytes + hop.n_bytes
                    previous = alias

    def test_batch_and_sequential_stay_bitwise_identical(self, rng):
        """End-to-end: the refactored build/execute pair never drifts."""
        for n_devices in (2, 3):
            platform = random_platform(rng, n_devices)
            chain = random_chain(rng, 3)
            executor = SimulatedExecutor(platform, seed=0)
            tables = ChainCostTables.build(chain, platform)
            from repro.devices import execute_placements

            matrix = placement_matrix(3, n_devices)
            batch = execute_placements(tables, matrix)
            for index, placement in enumerate(enumerate_placements(3, platform.aliases)):
                record = executor.execute(chain, placement.devices)
                assert batch.total_time_s[index] == record.total_time_s
                assert batch.energy_total_j[index] == record.energy.total_j
                assert batch.operating_cost[index] == record.operating_cost
