"""Batch/sequential equivalence tests for the vectorized execution engine.

The batch engine claims *bitwise* equality with the sequential
``SimulatedExecutor.execute`` loop for every ``ExecutionRecord`` field, and
bit-for-bit identical ``MeasurementSet``s (same RNG stream) for the default
``rng_mode="sequential"`` measurement path.  These tests pin both claims down
on the calibrated platforms, on randomized platforms/chains/placements, and
for the RNG-stream identity of ``measure`` after a batched campaign.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices import (
    Platform,
    SimulatedExecutor,
    cpu_gpu_platform,
    smartphone_cloud_platform,
)
from repro.devices.batch import ChainCostTables, as_placement_matrix, placement_labels
from repro.measurement.noise import NoNoise
from repro.offload import (
    MAX_ENUMERABLE_INDEX,
    OffloadedAlgorithm,
    Placement,
    enumerate_algorithms,
    enumerate_placements,
    indices_to_matrix,
    iter_placement_batches,
    measure_algorithms,
    placement_matrix,
    profile_algorithms,
    profiles_from_batch,
    space_size,
)
from repro.tasks import table1_chain

from factories import random_chain, random_platform


def assert_records_identical(expected, actual) -> None:
    """Exact (bitwise) equality of every ExecutionRecord field."""
    assert actual.placement == expected.placement
    assert actual.total_time_s == expected.total_time_s
    assert actual.transferred_bytes == expected.transferred_bytes
    assert actual.operating_cost == expected.operating_cost
    assert actual.busy_time_by_device == expected.busy_time_by_device
    assert actual.flops_by_device == expected.flops_by_device
    assert actual.energy.active_j == expected.energy.active_j
    assert actual.energy.idle_j == expected.energy.idle_j
    assert actual.energy.transfer_j == expected.energy.transfer_j
    assert actual.energy.total_j == expected.energy.total_j
    assert actual.tasks == expected.tasks


# ---------------------------------------------------------------------------
# Placement-space encoding
# ---------------------------------------------------------------------------


class TestPlacementMatrix:
    def test_matches_enumerate_placements_order(self):
        for n_tasks, aliases in [(3, ["D", "A"]), (4, ["D", "A", "N"]), (1, ["D"])]:
            matrix = placement_matrix(n_tasks, len(aliases))
            labels = placement_labels(matrix, aliases)
            assert labels == [p.label for p in enumerate_placements(n_tasks, aliases)]

    def test_space_size(self):
        assert space_size(10, 3) == 3**10
        with pytest.raises(ValueError):
            space_size(0, 2)
        with pytest.raises(ValueError):
            space_size(2, 0)

    def test_slicing(self):
        full = placement_matrix(5, 3)
        part = placement_matrix(5, 3, start=10, stop=20)
        assert np.array_equal(part, full[10:20])
        with pytest.raises(ValueError):
            placement_matrix(5, 3, start=20, stop=10)
        with pytest.raises(ValueError):
            placement_matrix(5, 3, start=0, stop=3**5 + 1)

    def test_chunked_concatenation_covers_the_space(self):
        chunks = list(iter_placement_batches(6, 3, batch_size=100))
        assert all(len(chunk) <= 100 for chunk in chunks)
        assert np.array_equal(np.concatenate(chunks), placement_matrix(6, 3))
        with pytest.raises(ValueError):
            next(iter_placement_batches(3, 2, batch_size=0))

    def test_chunked_range_slicing(self):
        full = placement_matrix(6, 3)
        chunks = list(iter_placement_batches(6, 3, batch_size=37, start=100, stop=500))
        assert np.array_equal(np.concatenate(chunks), full[100:500])
        with pytest.raises(ValueError):
            next(iter_placement_batches(6, 3, batch_size=10, start=500, stop=100))

    def test_indices_to_matrix_decodes_the_encoding(self):
        full = placement_matrix(5, 3)
        rng = np.random.default_rng(0)
        picks = rng.integers(0, 3**5, size=40)
        assert np.array_equal(indices_to_matrix(picks, 5, 3), full[picks])
        with pytest.raises(ValueError):
            indices_to_matrix(np.array([3**5]), 5, 3)  # out of range
        with pytest.raises(ValueError):
            indices_to_matrix(np.array([-1]), 5, 3)
        with pytest.raises(ValueError):
            indices_to_matrix(np.array([[0, 1]]), 5, 3)  # not 1-D
        with pytest.raises(ValueError):
            indices_to_matrix(np.array([0.5]), 5, 3)  # not integer
        # uint64 indices past int64 in a >int64 space must not wrap negative.
        with pytest.raises(ValueError, match="int64"):
            indices_to_matrix(np.array([2**63 + 5], dtype=np.uint64), 64, 2)
        top = indices_to_matrix(np.array([MAX_ENUMERABLE_INDEX], dtype=np.uint64), 64, 2)
        assert top[0].tolist() == [int(b) for b in np.binary_repr(MAX_ENUMERABLE_INDEX, width=64)]

    def test_space_size_is_exact_beyond_int64(self):
        # Python ints never overflow; 2**64 must come out exact.
        assert space_size(64, 2) == 2**64
        assert space_size(40, 3) == 3**40

    def test_int64_overflow_slice_raises_actionable_error(self):
        """Regression: slices past int64 used to wrap/overflow inside np.arange."""
        # Slices within the representable range of a >int64 space still work...
        low = placement_matrix(64, 2, start=0, stop=4)
        assert np.array_equal(low[:, -2:], [[0, 0], [0, 1], [1, 0], [1, 1]])
        # ... including the very last representable indices (2**63 - 2, 2**63 - 1):
        boundary = placement_matrix(64, 2, start=MAX_ENUMERABLE_INDEX - 1, stop=MAX_ENUMERABLE_INDEX + 1)
        digits = [int(b) for b in np.binary_repr(MAX_ENUMERABLE_INDEX, width=64)]
        assert boundary[1].tolist() == digits
        # ... an empty slice is valid at any offset (the streaming iterator
        # yields nothing for it, so the two paths agree):
        assert placement_matrix(64, 2, start=2**63 + 5, stop=2**63 + 5).shape == (0, 64)
        # ... but anything non-empty beyond must fail loudly, not wrap:
        with pytest.raises(ValueError, match="int64"):
            placement_matrix(64, 2, start=2**63, stop=2**63 + 2)
        with pytest.raises(ValueError, match="int64"):
            placement_matrix(64, 2)  # the full space cannot be enumerated
        with pytest.raises(ValueError, match="int64"):
            next(iter_placement_batches(64, 2, batch_size=4, start=2**63, stop=2**63 + 8))

    def test_compact_dtype(self):
        assert placement_matrix(4, 3).dtype == np.int8

    def test_labels_multicharacter_aliases(self):
        matrix = np.array([[0, 1], [1, 0]])
        assert placement_labels(matrix, ["D", "GPU"]) == ["DGPU", "GPUD"]

    def test_as_placement_matrix_validation(self):
        with pytest.raises(ValueError):
            as_placement_matrix(np.array([[0, 1, 0]]), ["D", "A"], 2)  # wrong width
        with pytest.raises(ValueError):
            as_placement_matrix(np.array([[0, 5]]), ["D", "A"], 2)  # out of range
        with pytest.raises(TypeError):
            as_placement_matrix(np.array([[0.0, 1.0]]), ["D", "A"], 2)  # float dtype
        with pytest.raises(KeyError):
            as_placement_matrix(["DZ"], ["D", "A"], 2)  # unknown alias
        with pytest.raises(ValueError):
            as_placement_matrix(["DAD"], ["D", "A"], 2)  # wrong length
        with pytest.raises(ValueError):
            as_placement_matrix([], ["D", "A"], 2)  # empty
        with pytest.raises(ValueError):
            as_placement_matrix(np.empty((0, 2), dtype=int), ["D", "A"], 2)  # empty matrix


# ---------------------------------------------------------------------------
# Batch execution == sequential execution, bitwise
# ---------------------------------------------------------------------------


class TestBatchExecutionEquivalence:
    @pytest.mark.parametrize("platform_factory", [cpu_gpu_platform, smartphone_cloud_platform])
    def test_full_space_bitwise_identical(self, platform_factory):
        platform = platform_factory()
        chain = table1_chain(loop_size=2)
        sequential = SimulatedExecutor(platform, seed=0, cache_executions=False)
        batch = SimulatedExecutor(platform, seed=0).execute_batch(chain)
        placements = enumerate_placements(len(chain), platform.aliases)
        assert len(batch) == len(placements)
        assert batch.labels() == [p.label for p in placements]
        for i, placement in enumerate(placements):
            expected = sequential.execute(chain, placement.devices)
            assert_records_identical(expected, batch.record(i))
            assert batch.total_time_s[i] == expected.total_time_s
            assert batch.transferred_bytes[i] == expected.transferred_bytes
            assert batch.transfer_energy_j[i] == expected.energy.transfer_j
            assert batch.energy_total_j[i] == expected.energy.total_j
            assert batch.operating_cost[i] == expected.operating_cost
            for j, alias in enumerate(batch.aliases):
                assert batch.busy_by_device[i, j] == expected.busy_time_by_device[alias]
                assert batch.flops_by_device[i, j] == expected.flops_by_device[alias]
                assert batch.active_j[i, j] == expected.energy.active_j[alias]
                assert batch.idle_j[i, j] == expected.energy.idle_j[alias]

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_devices=st.integers(min_value=1, max_value=4),
        n_tasks=st.integers(min_value=1, max_value=9),
    )
    @settings(max_examples=25, deadline=None)
    def test_randomized_platforms_chains_and_placements(self, seed, n_devices, n_tasks):
        rng = np.random.default_rng(seed)
        platform = random_platform(rng, n_devices)
        chain = random_chain(rng, n_tasks)
        total = space_size(n_tasks, n_devices)
        indices = sorted(
            int(i) for i in rng.choice(total, size=min(12, total), replace=False)
        )
        matrix = placement_matrix(n_tasks, n_devices)[indices]
        sequential = SimulatedExecutor(platform, seed=1, cache_executions=False)
        batch = SimulatedExecutor(platform, seed=1).execute_batch(chain, matrix)
        aliases = batch.aliases
        for row, record in enumerate(batch.records()):
            placement = tuple(aliases[d] for d in matrix[row])
            assert_records_identical(sequential.execute(chain, placement), record)
            assert batch.total_time_s[row] == record.total_time_s
            assert batch.energy_total_j[row] == record.energy.total_j

    def test_device_subset_of_larger_platform(self):
        platform = smartphone_cloud_platform()
        chain = table1_chain(loop_size=2)
        sequential = SimulatedExecutor(platform, seed=0, cache_executions=False)
        batch = SimulatedExecutor(platform, seed=0).execute_batch(chain, devices=["D", "N"])
        assert batch.aliases == ("D", "N")
        assert len(batch) == 2 ** len(chain)
        for i in range(len(batch)):
            expected = sequential.execute(chain, batch.placement(i))
            assert_records_identical(expected, batch.record(i))
            # The materialised busy/flops maps cover *all* platform devices,
            # exactly like the sequential record (unused "A" included).
            assert set(batch.record(i).busy_time_by_device) == set(platform.devices)
            # The array fields agree too -- in particular the energy total
            # includes the idle draw of the absent "A" device.
            assert batch.total_time_s[i] == expected.total_time_s
            assert batch.energy_total_j[i] == expected.energy.total_j
            assert batch.operating_cost[i] == expected.operating_cost

    def test_partially_linked_platform(self):
        # D-A and D-B exist, A-B does not: placements that avoid the missing
        # link evaluate fine (and bitwise equal the sequential path); only a
        # placement that actually crosses A<->B is rejected -- exactly like
        # the sequential executor.
        rng = np.random.default_rng(0)
        base = random_platform(rng, 3)  # aliases D, A, B with full links
        links = {pair: link for pair, link in base.links.items() if pair != ("A", "B")}
        platform = Platform(devices=base.devices, links=links, host="D", name="partial")
        chain = random_chain(rng, 3)
        sequential = SimulatedExecutor(platform, seed=0, cache_executions=False)
        executor = SimulatedExecutor(platform, seed=0)

        safe = ["DDD", "DAD", "DBD", "ADA", "BDB", "ADD"]
        batch = executor.execute_batch(chain, safe)
        for i, label in enumerate(safe):
            assert_records_identical(sequential.execute(chain, label), batch.record(i))
            assert batch.total_time_s[i] == sequential.execute(chain, label).total_time_s

        for bad in ("DAB", "ABD", "BAD"):
            with pytest.raises(KeyError):
                sequential.execute(chain, bad)
            with pytest.raises(KeyError, match="no link defined"):
                executor.execute_batch(chain, [bad])

        # measure_algorithms keeps working on such platforms (it routes
        # through the batch engine when the space avoids the missing links).
        algorithms = [
            OffloadedAlgorithm(chain, Placement.from_string(label))
            for label in ("DDD", "DAD", "DBD")
        ]
        ms = measure_algorithms(algorithms, SimulatedExecutor(platform, seed=1), repetitions=5)
        assert ms.labels == ["DDD", "DAD", "DBD"]

    def test_chunked_execution_equals_full(self):
        platform = cpu_gpu_platform()
        chain = table1_chain(loop_size=2)
        executor = SimulatedExecutor(platform, seed=0)
        full = executor.execute_batch(chain)
        chunks = list(executor.iter_execute_batches(chain, batch_size=3))
        assert all(len(chunk) <= 3 for chunk in chunks)
        assert np.array_equal(
            np.concatenate([c.total_time_s for c in chunks]), full.total_time_s
        )
        assert np.array_equal(
            np.concatenate([c.energy_total_j for c in chunks]), full.energy_total_j
        )

    def test_accepts_every_placement_spelling(self):
        platform = cpu_gpu_platform()
        chain = table1_chain(loop_size=1)
        executor = SimulatedExecutor(platform, seed=0)
        from_strings = executor.execute_batch(chain, ["DDA", "ADA"])
        from_objects = executor.execute_batch(
            chain, [Placement.from_string("DDA"), Placement.from_string("ADA")]
        )
        from_matrix = executor.execute_batch(chain, np.array([[0, 0, 1], [1, 0, 1]]))
        for other in (from_objects, from_matrix):
            assert other.labels() == from_strings.labels()
            assert np.array_equal(other.total_time_s, from_strings.total_time_s)

    def test_selection_helpers(self):
        platform = cpu_gpu_platform()
        chain = table1_chain(loop_size=2)
        batch = SimulatedExecutor(platform, seed=0).execute_batch(chain)
        best = batch.argbest("time")
        assert batch.total_time_s[best] == batch.total_time_s.min()
        top = batch.top(3, metric="energy")
        assert len(top) == 3
        assert batch.energy_total_j[top[0]] == batch.energy_total_j.min()
        with pytest.raises(ValueError):
            batch.top(0)
        with pytest.raises(ValueError):
            batch.metric_values("latency")

    def test_cost_tables_validation(self):
        platform = cpu_gpu_platform()
        chain = table1_chain(loop_size=1)
        with pytest.raises(ValueError):
            ChainCostTables.build(chain, platform, devices=["D", "D"])
        with pytest.raises(KeyError):
            ChainCostTables.build(chain, platform, devices=["D", "Z"])
        with pytest.raises(ValueError):
            ChainCostTables.build(chain, platform, devices=[])


# ---------------------------------------------------------------------------
# Batched measurements: RNG-stream identity
# ---------------------------------------------------------------------------


class TestBatchMeasurements:
    @pytest.fixture
    def platform(self):
        return smartphone_cloud_platform()

    @pytest.fixture
    def chain(self):
        return table1_chain(loop_size=2)

    def test_bit_for_bit_identical_to_measure_all(self, platform, chain):
        placements = [p.devices for p in enumerate_placements(len(chain), platform.aliases)]
        sequential = SimulatedExecutor(platform, seed=42)
        batched = SimulatedExecutor(platform, seed=42)
        expected = sequential.measure_all(chain, placements, repetitions=17)
        actual = batched.measure_all_batch(chain, placements, repetitions=17)
        assert actual.labels == expected.labels
        assert actual.metric == expected.metric and actual.unit == expected.unit
        for label in expected.labels:
            assert np.array_equal(actual[label], expected[label])
        # RNG-stream identity: both executors consumed exactly the same draws,
        # so their *next* measurements coincide too.
        assert np.array_equal(
            sequential.measure(chain, placements[0], 9),
            batched.measure(chain, placements[0], 9),
        )

    def test_energy_metric_bit_for_bit(self, platform, chain):
        placements = [p.devices for p in enumerate_placements(len(chain), platform.aliases)]
        sequential = SimulatedExecutor(platform, seed=3)
        batched = SimulatedExecutor(platform, seed=3)
        expected_rows = {
            "".join(p): sequential.energy_measure(chain, p, 11) for p in placements
        }
        actual = batched.measure_all_batch(chain, placements, repetitions=11, metric="energy")
        assert actual.metric == "energy" and actual.unit == "J"
        for label, row in expected_rows.items():
            assert np.array_equal(actual[label], row)

    def test_batched_rng_mode_distribution(self, platform, chain):
        executor = SimulatedExecutor(platform, seed=0)
        space = executor.execute_batch(chain)
        fast = executor.measure_batch(space, repetitions=400, rng_mode="batched")
        assert fast.labels == space.labels()
        for i, label in enumerate(fast.labels):
            values = fast[label]
            assert values.shape == (400,)
            assert np.all(values > 0)
            # Same distribution as the per-algorithm draw: the median sits on
            # the noise-free time (cf. test_measure_centres_on_noise_free_time).
            base = space.total_time_s[i]
            assert abs(np.median(values) - base) / base < 0.1

    def test_batched_rng_mode_is_deterministic_per_seed(self, platform, chain):
        a = SimulatedExecutor(platform, seed=5).measure_all_batch(
            chain, None, repetitions=8, rng_mode="batched"
        )
        b = SimulatedExecutor(platform, seed=5).measure_all_batch(
            chain, None, repetitions=8, rng_mode="batched"
        )
        for label in a.labels:
            assert np.array_equal(a[label], b[label])

    def test_no_noise_batch_measurements_are_exact(self, platform, chain):
        executor = SimulatedExecutor(platform, noise=NoNoise(), seed=0)
        space = executor.execute_batch(chain)
        for rng_mode in ("sequential", "batched"):
            ms = executor.measure_batch(space, repetitions=4, rng_mode=rng_mode)
            for i, label in enumerate(ms.labels):
                assert np.all(ms[label] == space.total_time_s[i])

    def test_measure_batch_validation(self, platform, chain):
        executor = SimulatedExecutor(platform, seed=0)
        space = executor.execute_batch(chain)
        with pytest.raises(ValueError):
            executor.measure_batch(space, repetitions=0)
        with pytest.raises(ValueError):
            executor.measure_batch(space, metric="latency")
        with pytest.raises(ValueError):
            executor.measure_batch(space, rng_mode="mixed")


# ---------------------------------------------------------------------------
# Offload-layer routing
# ---------------------------------------------------------------------------


class TestOffloadRouting:
    @pytest.fixture
    def platform(self):
        return cpu_gpu_platform()

    @pytest.fixture
    def chain(self):
        return table1_chain(loop_size=2)

    def _loop_measure(self, algorithms, executor, repetitions, metric="time"):
        """The pre-batch per-algorithm loop of measure_algorithms."""
        from repro.measurement.dataset import MeasurementSet

        measure = executor.measure if metric == "time" else executor.energy_measure
        out = MeasurementSet(
            metric="execution time" if metric == "time" else "energy",
            unit="s" if metric == "time" else "J",
        )
        for algorithm in algorithms:
            out.add(algorithm.label, measure(algorithm.chain, algorithm.placement.devices, repetitions))
        return out

    @pytest.mark.parametrize("metric", ["time", "energy"])
    def test_measure_algorithms_routes_through_batch_identically(self, platform, chain, metric):
        algorithms = enumerate_algorithms(chain, platform)
        routed = measure_algorithms(
            algorithms, SimulatedExecutor(platform, seed=9), repetitions=13, metric=metric
        )
        looped = self._loop_measure(
            algorithms, SimulatedExecutor(platform, seed=9), repetitions=13, metric=metric
        )
        assert routed.labels == looped.labels
        for label in looped.labels:
            assert np.array_equal(routed[label], looped[label])

    def test_measure_algorithms_falls_back_on_mixed_chains(self, platform):
        chain_a = table1_chain(loop_size=1)
        chain_b = table1_chain(loop_size=2)
        algorithms = [
            OffloadedAlgorithm(chain_a, Placement.from_string("DDD")),
            OffloadedAlgorithm(chain_b, Placement.from_string("DDA")),
        ]
        ms = measure_algorithms(algorithms, SimulatedExecutor(platform, seed=0), repetitions=5)
        assert ms.labels == ["DDD", "DDA"]
        assert all(ms.n_measurements(label) == 5 for label in ms.labels)

    def test_profiles_from_batch_identical_to_profile_algorithms(self, platform, chain):
        algorithms = enumerate_algorithms(chain, platform)
        executor = SimulatedExecutor(platform, seed=0)
        space = executor.execute_batch(chain, [a.placement.devices for a in algorithms])
        from_batch = profiles_from_batch(algorithms, space)
        from_loop = profile_algorithms(algorithms, SimulatedExecutor(platform, seed=0))
        assert set(from_batch) == set(from_loop)
        for label in from_loop:
            assert_records_identical(from_loop[label].record, from_batch[label].record)

    def test_profiles_from_batch_validation(self, platform, chain):
        algorithms = enumerate_algorithms(chain, platform)
        executor = SimulatedExecutor(platform, seed=0)
        space = executor.execute_batch(chain, [a.placement.devices for a in algorithms])
        with pytest.raises(ValueError):
            profiles_from_batch([], space)
        with pytest.raises(ValueError):
            profiles_from_batch(algorithms[:2], space)
        with pytest.raises(ValueError):
            profiles_from_batch(list(reversed(algorithms)), space)


# ---------------------------------------------------------------------------
# Shared execution cache
# ---------------------------------------------------------------------------


class TestExecutionCache:
    @pytest.fixture
    def platform(self):
        return cpu_gpu_platform()

    @pytest.fixture
    def chain(self):
        return table1_chain(loop_size=1)

    def test_repeated_execute_served_from_cache(self, platform, chain):
        executor = SimulatedExecutor(platform, seed=0)
        first = executor.execute(chain, "DDA")
        assert executor.execute(chain, "DDA") is first
        uncached = SimulatedExecutor(platform, seed=0, cache_executions=False)
        assert uncached.execute(chain, "DDA") is not uncached.execute(chain, "DDA")

    def test_measure_then_profile_executes_once(self, platform, chain, monkeypatch):
        executor = SimulatedExecutor(platform, seed=0)
        algorithms = enumerate_algorithms(chain, platform)
        calls = []
        original = SimulatedExecutor._execute_uncached

        def counting(self, chain_, aliases):
            calls.append(aliases)
            return original(self, chain_, aliases)

        monkeypatch.setattr(SimulatedExecutor, "_execute_uncached", counting)
        for algorithm in algorithms:  # the old measure+profile double execution
            executor.measure(algorithm.chain, algorithm.placement.devices, 3)
        profile_algorithms(algorithms, executor)
        assert len(calls) == len(algorithms)

    def test_cache_capacity_cap(self, platform, chain):
        executor = SimulatedExecutor(platform, seed=0, execution_cache_size=2)
        labels = ["DDD", "DDA", "DAD", "ADD"]
        for label in labels:
            executor.execute(chain, label)
        stats = executor.cache_stats()["records"]
        assert stats.entries == 2  # LRU-evicted down to the cap
        assert stats.evictions == 2
        # The two most recent records survived; older ones were evicted.
        assert executor.execute(chain, "ADD") is executor.execute(chain, "ADD")

    def test_clear_execution_cache(self, platform, chain):
        executor = SimulatedExecutor(platform, seed=0)
        first = executor.execute(chain, "DDD")
        tables = executor.cost_tables(chain)
        dropped = executor.clear_execution_cache()
        assert dropped == {"records": 1, "tables": 1}
        assert executor.execute(chain, "DDD") is not first
        assert executor.cost_tables(chain) is not tables
        assert executor.clear_execution_cache() == {"records": 1, "tables": 1}

    def test_cost_tables_cached_per_chain_and_devices(self, platform, chain):
        executor = SimulatedExecutor(platform, seed=0)
        assert executor.cost_tables(chain) is executor.cost_tables(chain)
        assert executor.cost_tables(chain, ["D"]) is not executor.cost_tables(chain)
        assert executor.cost_tables(chain, ["D"]) is executor.cost_tables(chain, ["D"])

    def test_caches_release_dead_chains(self, platform):
        import gc
        import weakref

        executor = SimulatedExecutor(platform, seed=0)
        chain = table1_chain(loop_size=1)
        ref = weakref.ref(chain)
        executor.execute(chain, "DDD")
        executor.cost_tables(chain)
        del chain
        gc.collect()
        # The content-addressed caches keep records/tables, but nothing (in
        # particular not the cached tables) keeps the chain object alive.
        assert ref() is None
        assert executor.cache_stats()["records"].entries == 1
        assert executor.cache_stats()["tables"].entries == 1

    def test_structurally_equal_chains_share_cache_entries(self, platform):
        executor = SimulatedExecutor(platform, seed=0)
        first = table1_chain(loop_size=1)
        second = table1_chain(loop_size=1)
        record = executor.execute(first, "DDA")
        assert executor.execute(second, "DDA") is record
        assert executor.cost_tables(second) is executor.cost_tables(first)

    def test_caching_never_changes_results(self, platform, chain):
        cached = SimulatedExecutor(platform, seed=4)
        uncached = SimulatedExecutor(platform, seed=4, cache_executions=False)
        for label in ("DDA", "DDA", "ADA"):
            assert np.array_equal(
                cached.measure(chain, label, 6), uncached.measure(chain, label, 6)
            )
