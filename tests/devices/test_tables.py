"""The unified table backend: dispatch, protocol, and bitwise pinning.

``build_tables`` is the single construction path behind all six table
families; these tests pin each dispatch branch bitwise against the family's
own builder, check the :class:`~repro.devices.tables.CostTables` protocol
surface, and verify that cache-served tables are the same objects (and
bitwise the same results) as freshly built ones.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from factories import random_chain, random_graph, random_platform
from repro.cache import TableCache, table_key
from repro.devices import SimulatedExecutor
from repro.devices.batch import ChainCostTables, GraphCostTables, build_cost_tables
from repro.devices.grid import (
    GraphGridCostTables,
    GridCostTables,
    _build_grid_tables,
    build_grid_tables,
)
from repro.devices.tables import CostTables, build_tables, check_fault_args, resolve_aliases
from repro.faults import DeviceFailure, FaultProfile, RetryPolicy, TimeoutPolicy
from repro.faults.tables import (
    FaultChainCostTables,
    FaultGridCostTables,
    _build_fault_grid_tables,
    _build_fault_tables,
    build_fault_grid_tables,
    build_fault_tables,
)
from repro.offload import placement_matrix
from repro.scenarios import DeviceLoadFactor, Scenario, ScenarioGrid


def scenario_grid() -> ScenarioGrid:
    axis = DeviceLoadFactor()
    return ScenarioGrid(
        scenarios=(
            Scenario("calm", settings=((axis, 1.0),)),
            Scenario("loaded", settings=((axis, 2.0),)),
        )
    )


def assert_results_bitwise_equal(left, right):
    """Every array field of two execution results must match bitwise."""
    assert type(left) is type(right)
    for field in dataclasses.fields(left):
        a, b = getattr(left, field.name), getattr(right, field.name)
        if isinstance(a, np.ndarray):
            assert np.array_equal(a, b, equal_nan=True), field.name


def assert_tables_bitwise_equal(unified, direct):
    """A dispatched build must equal the direct family build, array by array."""
    assert type(unified) is type(direct)
    for field in dataclasses.fields(unified):
        if field.name == "fingerprint":
            continue  # direct builds carry no fingerprint by design
        a, b = getattr(unified, field.name), getattr(direct, field.name)
        if isinstance(a, np.ndarray):
            assert np.array_equal(a, b, equal_nan=True), field.name


@pytest.mark.parametrize("seed", [0, 7, 23])
class TestDispatchBitwise:
    """Each of the six families, dispatched vs built directly, bitwise."""

    def _fixtures(self, seed):
        rng = np.random.default_rng(seed)
        platform = random_platform(rng, n_devices=3)
        chain = random_chain(rng, n_tasks=4)
        graph = random_graph(rng, n_tasks=4)
        placements = placement_matrix(4, 3)
        return platform, chain, graph, placements

    def test_chain_tables(self, seed):
        platform, chain, _, placements = self._fixtures(seed)
        unified = build_tables(chain, platform)
        direct = ChainCostTables.build(chain, platform)
        assert isinstance(unified, ChainCostTables)
        assert_tables_bitwise_equal(unified, direct)
        assert_results_bitwise_equal(unified.execute(placements), direct.execute(placements))

    def test_graph_tables(self, seed):
        platform, _, graph, placements = self._fixtures(seed)
        unified = build_tables(graph, platform)
        direct = GraphCostTables.build(graph, platform)
        assert isinstance(unified, GraphCostTables)
        assert_tables_bitwise_equal(unified, direct)
        assert_results_bitwise_equal(unified.execute(placements), direct.execute(placements))

    def test_grid_tables(self, seed):
        platform, chain, _, placements = self._fixtures(seed)
        platforms = scenario_grid().platforms(platform)
        unified = build_tables(chain, platform, scenarios=scenario_grid())
        direct = _build_grid_tables(chain, platforms)
        assert isinstance(unified, GridCostTables)
        assert_tables_bitwise_equal(unified, direct)
        assert_results_bitwise_equal(unified.execute(placements), direct.execute(placements))

    def test_graph_grid_tables(self, seed):
        platform, _, graph, placements = self._fixtures(seed)
        platforms = scenario_grid().platforms(platform)
        unified = build_tables(graph, platforms)
        direct = _build_grid_tables(graph, platforms)
        assert isinstance(unified, GraphGridCostTables)
        assert_tables_bitwise_equal(unified, direct)
        assert_results_bitwise_equal(unified.execute(placements), direct.execute(placements))

    def test_fault_tables(self, seed):
        platform, chain, _, placements = self._fixtures(seed)
        retry = RetryPolicy(max_attempts=2)
        faults = FaultProfile(device_failure=DeviceFailure(rate=0.05))
        unified = build_tables(chain, platform, faults=faults, retry=retry)
        direct = _build_fault_tables(chain, platform, faults=faults, retry=retry)
        assert isinstance(unified, FaultChainCostTables)
        assert_results_bitwise_equal(unified.execute(placements), direct.execute(placements))
        assert np.array_equal(unified.node_survival, direct.node_survival)
        assert np.array_equal(unified.edge_survival, direct.edge_survival)

    def test_fault_grid_tables(self, seed):
        platform, chain, _, placements = self._fixtures(seed)
        platforms = scenario_grid().platforms(platform)
        retry = RetryPolicy(max_attempts=2)
        faults = FaultProfile(device_failure=DeviceFailure(rate=0.05))
        unified = build_tables(
            chain, platform, scenarios=scenario_grid(), faults=faults, retry=retry
        )
        direct = _build_fault_grid_tables(chain, platforms, faults=faults, retry=retry)
        assert isinstance(unified, FaultGridCostTables)
        assert_results_bitwise_equal(unified.execute(placements), direct.execute(placements))
        assert np.array_equal(unified.node_survival, direct.node_survival)


class TestProtocolSurface:
    def test_every_family_satisfies_the_protocol(self):
        rng = np.random.default_rng(3)
        platform = random_platform(rng, n_devices=2)
        chain = random_chain(rng, n_tasks=3)
        graph = random_graph(rng, n_tasks=3)
        retry = RetryPolicy(max_attempts=2)
        grid = scenario_grid()
        built = [
            build_tables(chain, platform),
            build_tables(graph, platform),
            build_tables(chain, platform, scenarios=grid),
            build_tables(graph, platform, scenarios=grid),
            build_tables(chain, platform, retry=retry),
            build_tables(chain, platform, scenarios=grid, retry=retry),
        ]
        kinds = {type(t) for t in built}
        assert kinds == {
            ChainCostTables,
            GraphCostTables,
            GridCostTables,
            GraphGridCostTables,
            FaultChainCostTables,
            FaultGridCostTables,
        }
        for tables in built:
            assert isinstance(tables, CostTables)
            assert tables.fingerprint  # non-empty content key
            assert tables.n_tasks == 3
            assert tables.aliases == ("D", "A")
            assert len(tables.execute(placement_matrix(3, 2))) == 8

    def test_fingerprints_are_content_addressed(self):
        rng = np.random.default_rng(9)
        platform = random_platform(rng, n_devices=2)
        chain = random_chain(rng, n_tasks=3)
        again_rng = np.random.default_rng(9)
        platform2 = random_platform(again_rng, n_devices=2)
        chain2 = random_chain(again_rng, n_tasks=3)
        assert build_tables(chain, platform).fingerprint == build_tables(
            chain2, platform2
        ).fingerprint
        assert build_tables(chain, platform).fingerprint != build_tables(
            chain, platform, retry=RetryPolicy(max_attempts=2)
        ).fingerprint

    def test_grid_slices_derive_their_fingerprint(self):
        rng = np.random.default_rng(4)
        platform = random_platform(rng, n_devices=2)
        chain = random_chain(rng, n_tasks=3)
        grid_tables = build_tables(chain, platform, scenarios=scenario_grid())
        assert grid_tables.table(1).fingerprint == f"{grid_tables.fingerprint}#scenario1"


class TestShims:
    """The four public builders are thin shims over ``build_tables``."""

    def test_shims_match_the_dispatcher(self):
        rng = np.random.default_rng(5)
        platform = random_platform(rng, n_devices=2)
        chain = random_chain(rng, n_tasks=3)
        platforms = scenario_grid().platforms(platform)
        retry = RetryPolicy(max_attempts=2)
        assert (
            build_cost_tables(chain, platform).fingerprint
            == build_tables(chain, platform).fingerprint
        )
        assert (
            build_grid_tables(chain, platforms).fingerprint
            == build_tables(chain, platforms).fingerprint
        )
        assert (
            build_fault_tables(chain, platform, retry=retry).fingerprint
            == build_tables(chain, platform, retry=retry).fingerprint
        )
        assert (
            build_fault_grid_tables(chain, platforms, retry=retry).fingerprint
            == build_tables(chain, platforms, retry=retry).fingerprint
        )

    def test_fault_base_tables_carry_their_own_fingerprint(self):
        rng = np.random.default_rng(6)
        platform = random_platform(rng, n_devices=2)
        chain = random_chain(rng, n_tasks=3)
        fault = build_tables(chain, platform, retry=RetryPolicy(max_attempts=2))
        assert fault.base.fingerprint == build_tables(chain, platform).fingerprint


class TestExecutorCacheServing:
    """Cache-served tables: same objects when hot, bitwise equal when cold."""

    def test_all_six_families_served_bitwise_identical(self):
        rng = np.random.default_rng(13)
        platform = random_platform(rng, n_devices=2)
        chain = random_chain(rng, n_tasks=3)
        graph = random_graph(rng, n_tasks=3)
        grid = scenario_grid()
        retry = RetryPolicy(max_attempts=2)
        executor = SimulatedExecutor(platform)
        placements = placement_matrix(3, 2)
        requests = [
            lambda: executor.cost_tables(chain),
            lambda: executor.cost_tables(graph),
            lambda: executor.grid_cost_tables(chain, grid),
            lambda: executor.grid_cost_tables(graph, grid),
            lambda: executor.cost_tables(chain, retry=retry),
            lambda: executor.grid_cost_tables(chain, grid, retry=retry),
        ]
        for request in requests:
            cold = request()
            hot = request()
            assert hot is cold  # served from the shared table cache
            fresh_args = dict(
                scenarios=grid if isinstance(cold, (GridCostTables, FaultGridCostTables)) else None
            )
            if isinstance(cold, (FaultChainCostTables, FaultGridCostTables)):
                fresh_args["retry"] = retry
            workload = graph if "Graph" in type(cold).__name__ else chain
            fresh = build_tables(workload, platform, **fresh_args)
            assert fresh.fingerprint == cold.fingerprint
            assert_results_bitwise_equal(cold.execute(placements), fresh.execute(placements))

    def test_executors_share_one_table_cache(self):
        rng = np.random.default_rng(14)
        platform = random_platform(rng, n_devices=2)
        chain = random_chain(rng, n_tasks=3)
        shared = TableCache()
        first = SimulatedExecutor(platform, table_cache=shared)
        second = SimulatedExecutor(platform, table_cache=shared)
        assert first.cost_tables(chain) is second.cost_tables(chain)
        assert shared.stats().hits == 1


class TestValidation:
    def test_resolve_aliases_rejects_unknown_devices(self):
        platform = random_platform(np.random.default_rng(0), n_devices=2)
        with pytest.raises(KeyError, match="unknown device aliases"):
            resolve_aliases(platform, ("D", "Z"))

    def test_resolve_aliases_rejects_duplicates_and_empty(self):
        platform = random_platform(np.random.default_rng(0), n_devices=2)
        with pytest.raises(ValueError, match="unique"):
            resolve_aliases(platform, ("D", "D"))
        with pytest.raises(ValueError, match="at least one"):
            resolve_aliases(platform, ())

    def test_fault_args_without_retry_raise(self):
        with pytest.raises(ValueError, match="retry=RetryPolicy"):
            check_fault_args(None, FaultProfile(), None)
        with pytest.raises(ValueError, match="retry=RetryPolicy"):
            check_fault_args(None, None, TimeoutPolicy(1.0))
        platform = random_platform(np.random.default_rng(0), n_devices=2)
        chain = random_chain(np.random.default_rng(0), n_tasks=3)
        with pytest.raises(ValueError, match="retry=RetryPolicy"):
            build_tables(chain, platform, faults=FaultProfile())

    def test_table_key_distinguishes_scenarios_from_plain(self):
        platform = random_platform(np.random.default_rng(1), n_devices=2)
        chain = random_chain(np.random.default_rng(1), n_tasks=3)
        assert table_key(chain, platform) != table_key(
            chain, platform, scenarios=scenario_grid()
        )
