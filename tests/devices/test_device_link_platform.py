"""Tests for device, link, platform and energy models."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices import (
    DeviceSpec,
    EnergyBreakdown,
    LinkSpec,
    Platform,
    cpu_gpu_platform,
    get_platform,
    nvidia_p100,
    nvidia_p100_native,
    raspberry_pi_4,
    smartphone_cloud_platform,
    xeon_8160_core,
)
from repro.tasks import GemmLoopTask, RegularizedLeastSquaresTask


class TestDeviceSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceSpec(name="")
        with pytest.raises(ValueError):
            DeviceSpec(name="x", peak_gflops=0)
        with pytest.raises(ValueError):
            DeviceSpec(name="x", power_active_w=-1)

    def test_effective_gflops_saturates(self):
        gpu = nvidia_p100()
        small = gpu.effective_gflops(1e4)
        large = gpu.effective_gflops(1e12)
        assert small < large <= gpu.peak_gflops
        assert large == pytest.approx(gpu.peak_gflops, rel=1e-3)
        with pytest.raises(ValueError):
            gpu.effective_gflops(0)

    def test_compute_time_monotone_in_flops(self):
        cpu = xeon_8160_core()
        small = GemmLoopTask(64, iterations=1).cost()
        large = GemmLoopTask(256, iterations=1).cost()
        assert cpu.compute_time(small) < cpu.compute_time(large)

    def test_accelerator_is_slower_on_tiny_kernels_than_cpu(self):
        """The occupancy effect behind Table I: tiny RLS solves do not pay off on the GPU."""
        cpu, gpu = xeon_8160_core(), nvidia_p100()
        tiny = RegularizedLeastSquaresTask(size=50, iterations=10).cost()
        big = GemmLoopTask(2048, iterations=2).cost()
        assert gpu.compute_time(tiny) > cpu.compute_time(tiny)
        assert gpu.compute_time(big) < cpu.compute_time(big)

    def test_native_p100_is_faster_than_framework_view(self):
        big = GemmLoopTask(2048, iterations=2).cost()
        assert nvidia_p100_native().compute_time(big) < nvidia_p100().compute_time(big)

    def test_energy_and_cost_helpers(self):
        gpu = nvidia_p100()
        assert gpu.active_energy(2.0) == pytest.approx(2.0 * gpu.power_active_w)
        assert gpu.idle_energy(3.0) == pytest.approx(3.0 * gpu.power_idle_w)
        assert gpu.operating_cost(3600.0) == pytest.approx(gpu.cost_per_hour)
        with pytest.raises(ValueError):
            gpu.active_energy(-1)
        with pytest.raises(ValueError):
            gpu.operating_cost(-1)

    @given(flops=st.floats(min_value=1e3, max_value=1e13))
    @settings(max_examples=40, deadline=None)
    def test_effective_gflops_bounded_by_peak(self, flops):
        device = raspberry_pi_4()
        assert 0 < device.effective_gflops(flops) <= device.peak_gflops


class TestLinkSpec:
    def test_transfer_time_and_energy(self):
        link = LinkSpec(name="l", bandwidth_gbs=1.0, latency_s=1e-3, energy_per_byte_j=1e-9)
        assert link.transfer_time(0) == 0.0
        assert link.transfer_time(1e9) == pytest.approx(1e-3 + 1.0)
        assert link.transfer_energy(100) == pytest.approx(1e-7)
        with pytest.raises(ValueError):
            link.transfer_time(-1)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkSpec(name="", bandwidth_gbs=1)
        with pytest.raises(ValueError):
            LinkSpec(name="x", bandwidth_gbs=0)
        with pytest.raises(ValueError):
            LinkSpec(name="x", bandwidth_gbs=1, latency_s=-1)


class TestPlatform:
    def test_cpu_gpu_platform_structure(self):
        platform = cpu_gpu_platform()
        assert platform.host == "D"
        assert platform.aliases == ["D", "A"]
        assert platform.accelerators == ["A"]
        assert platform.device("A").kind == "gpu"
        assert platform.link("D", "A").name == platform.link("A", "D").name

    def test_transfer_helpers(self):
        platform = cpu_gpu_platform()
        assert platform.transfer_time("D", "D", 1e6) == 0.0
        assert platform.transfer_time("D", "A", 1e6) > 0.0
        assert platform.transfer_energy("A", "D", 1e6) > 0.0

    def test_unknown_alias_and_link_errors(self):
        platform = cpu_gpu_platform()
        with pytest.raises(KeyError):
            platform.device("Z")
        with pytest.raises(ValueError):
            platform.link("D", "D")
        with pytest.raises(KeyError):
            platform.validate_aliases(["D", "Z"])

    def test_invalid_construction(self):
        cpu = xeon_8160_core()
        with pytest.raises(ValueError):
            Platform(devices={}, host="D")
        with pytest.raises(ValueError):
            Platform(devices={"X": cpu}, host="D")
        with pytest.raises(ValueError):
            Platform(devices={"D": cpu}, links={("D", "D"): LinkSpec("l", 1.0)}, host="D")
        with pytest.raises(ValueError):
            Platform(devices={"D": cpu}, links={("D", "Z"): LinkSpec("l", 1.0)}, host="D")

    def test_registry(self):
        assert get_platform("cpu-gpu").name == "cpu-gpu"
        with pytest.raises(KeyError):
            get_platform("nope")

    def test_unknown_platform_error_lists_available_names(self):
        with pytest.raises(KeyError, match="available.*cpu-gpu"):
            get_platform("nope")

    def test_register_platform(self):
        from repro.devices import PLATFORMS, register_platform

        def tiny() -> Platform:
            return Platform(devices={"D": xeon_8160_core()}, host="D", name="tiny")

        register_platform("tiny-test", tiny)
        try:
            assert get_platform("tiny-test").name == "tiny"
            # Accidental shadowing is rejected; explicit overwrite works.
            with pytest.raises(ValueError, match="already registered"):
                register_platform("tiny-test", tiny)
            register_platform("tiny-test", tiny, overwrite=True)
            with pytest.raises(TypeError):
                register_platform("junk", "not-callable")
            with pytest.raises(ValueError):
                register_platform("", tiny)
        finally:
            PLATFORMS.pop("tiny-test", None)

    def test_three_device_platform(self):
        platform = smartphone_cloud_platform()
        assert set(platform.aliases) == {"D", "A", "N"}
        assert platform.link("A", "N").name == "lte"


class TestEnergyBreakdown:
    def test_totals_and_device_accessors(self):
        breakdown = EnergyBreakdown(
            active_j={"D": 1.0, "A": 2.0}, idle_j={"D": 0.5, "A": 0.25}, transfer_j=0.25
        )
        assert breakdown.total_j == pytest.approx(4.0)
        assert breakdown.device_total("A") == pytest.approx(2.25)
        assert breakdown.devices == ["A", "D"]

    def test_combined(self):
        a = EnergyBreakdown(active_j={"D": 1.0}, idle_j={"D": 0.0}, transfer_j=0.1)
        b = EnergyBreakdown(active_j={"A": 2.0}, idle_j={"A": 1.0}, transfer_j=0.2)
        combined = a.combined(b)
        assert combined.total_j == pytest.approx(a.total_j + b.total_j)
        assert combined.device_total("D") == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyBreakdown(active_j={"D": -1.0})
        with pytest.raises(ValueError):
            EnergyBreakdown(transfer_j=-0.1)
