"""Tests for the analytic execution simulator and the host executor."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices import HostExecutor, SimulatedExecutor, cpu_gpu_platform
from repro.measurement.noise import NoNoise
from repro.tasks import GemmLoopTask, TaskChain, table1_chain


@pytest.fixture
def platform():
    return cpu_gpu_platform()


@pytest.fixture
def simulator(platform):
    return SimulatedExecutor(platform, seed=0)


@pytest.fixture
def small_chain():
    return TaskChain(
        [GemmLoopTask(32, iterations=2, name="L1"), GemmLoopTask(64, iterations=2, name="L2")],
        name="small",
    )


class TestExecute:
    def test_record_structure(self, simulator, small_chain):
        record = simulator.execute(small_chain, "DA")
        assert record.label == "DA"
        assert record.placement == ("D", "A")
        assert len(record.tasks) == 2
        assert record.total_time_s > 0
        assert record.total_time_s == pytest.approx(sum(t.total_time_s for t in record.tasks))
        assert record.tasks[0].device == "D"
        assert record.tasks[1].device == "A"

    def test_flops_attribution(self, simulator, small_chain):
        record = simulator.execute(small_chain, "DA")
        assert record.flops_on("D") == pytest.approx(small_chain[0].flops)
        assert record.flops_on("A") == pytest.approx(small_chain[1].flops)
        assert record.flops_on("D") + record.flops_on("A") == pytest.approx(small_chain.total_flops)

    def test_all_on_host_has_no_transfers(self, simulator, small_chain):
        record = simulator.execute(small_chain, "DD")
        assert record.transferred_bytes == 0.0
        assert record.energy.transfer_j == 0.0
        assert record.operating_cost == 0.0

    def test_offloading_adds_transfers_and_cost(self, simulator, small_chain):
        record = simulator.execute(small_chain, "AA")
        assert record.transferred_bytes > 0
        assert record.energy.transfer_j > 0
        assert record.operating_cost > 0

    def test_busy_fraction_bounded(self, simulator, small_chain):
        record = simulator.execute(small_chain, "DA")
        for alias in ("D", "A"):
            assert 0.0 <= record.busy_fraction(alias) <= 1.0

    def test_energy_total_consistency(self, simulator, small_chain):
        record = simulator.execute(small_chain, "AD")
        total = (
            sum(record.energy.active_j.values())
            + sum(record.energy.idle_j.values())
            + record.energy.transfer_j
        )
        assert record.energy.total_j == pytest.approx(total)

    def test_placement_validation(self, simulator, small_chain):
        with pytest.raises(ValueError):
            simulator.execute(small_chain, "D")
        with pytest.raises(KeyError):
            simulator.execute(small_chain, "DZ")

    def test_deterministic(self, platform, small_chain):
        a = SimulatedExecutor(platform, seed=1).execute(small_chain, "DA")
        b = SimulatedExecutor(platform, seed=2).execute(small_chain, "DA")
        assert a.total_time_s == pytest.approx(b.total_time_s)


class TestPaperShapes:
    def test_table1_noise_free_ordering(self, simulator):
        """The calibrated platform reproduces the qualitative Table I ordering."""
        chain = table1_chain(loop_size=10)
        times = {
            "".join(p): simulator.execute(chain, p).total_time_s
            for p in ["DDD", "DDA", "DAD", "ADD", "DAA", "ADA", "AAD", "AAA"]
        }
        assert min(times, key=times.get) == "DDA"
        assert max(times, key=times.get) == "AAD"
        # Offloading the large L3 pays off modestly; offloading L1 never does.
        assert 1.0 < times["DDD"] / times["DDA"] < 1.3
        for label in ("ADD", "ADA", "AAD", "AAA"):
            assert times[label] > times["DDD"]

    def test_figure1_noise_free_ordering(self, simulator):
        from repro.tasks import figure1_chain

        chain = figure1_chain()
        times = {"".join(p): simulator.execute(chain, p).total_time_s for p in ["DD", "DA", "AD", "AA"]}
        assert times["AD"] < times["AA"] < times["DD"]
        # Offloading the large, data-heavy L2 does not pay off.
        assert times["DA"] >= times["DD"]
        assert abs(times["DA"] - times["DD"]) / times["DD"] < 0.05


class TestMeasure:
    def test_measure_shape_and_positivity(self, simulator, small_chain):
        times = simulator.measure(small_chain, "DA", repetitions=25)
        assert times.shape == (25,)
        assert np.all(times > 0)

    def test_measure_centres_on_noise_free_time(self, platform, small_chain):
        sim = SimulatedExecutor(platform, seed=3)
        record = sim.execute(small_chain, "AD")
        times = sim.measure(small_chain, "AD", repetitions=400)
        assert abs(np.median(times) - record.total_time_s) / record.total_time_s < 0.1

    def test_no_noise_measurements_are_exact(self, platform, small_chain):
        sim = SimulatedExecutor(platform, noise=NoNoise(), seed=0)
        times = sim.measure(small_chain, "DD", repetitions=5)
        assert np.allclose(times, times[0])

    def test_measure_all_builds_measurement_set(self, simulator, small_chain):
        ms = simulator.measure_all(small_chain, ["DD", "DA", "AD", "AA"], repetitions=10)
        assert set(ms.labels) == {"DD", "DA", "AD", "AA"}
        assert all(ms.n_measurements(label) == 10 for label in ms.labels)

    def test_energy_measure(self, simulator, small_chain):
        energies = simulator.energy_measure(small_chain, "AA", repetitions=12)
        assert energies.shape == (12,)
        assert np.all(energies > 0)

    def test_invalid_repetitions(self, simulator, small_chain):
        with pytest.raises(ValueError):
            simulator.measure(small_chain, "DD", repetitions=0)
        with pytest.raises(ValueError):
            simulator.energy_measure(small_chain, "DD", repetitions=-1)

    def test_reproducible_with_same_seed(self, platform, small_chain):
        a = SimulatedExecutor(platform, seed=11).measure(small_chain, "DA", 20)
        b = SimulatedExecutor(platform, seed=11).measure(small_chain, "DA", 20)
        np.testing.assert_array_equal(a, b)

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=15, deadline=None)
    def test_measurements_always_positive(self, seed):
        chain = TaskChain([GemmLoopTask(16, name="L1"), GemmLoopTask(24, name="L2")])
        sim = SimulatedExecutor(cpu_gpu_platform(), seed=seed)
        assert np.all(sim.measure(chain, "AA", 30) > 0)


class TestHostExecutor:
    def test_run_once_and_measure(self, platform):
        chain = TaskChain([GemmLoopTask(24, iterations=1, name="L1"), GemmLoopTask(32, iterations=1, name="L2")])
        executor = HostExecutor(platform, accelerator_speedup=4.0, seed=0)
        duration = executor.run_once(chain, "DD")
        assert duration > 0
        times = executor.measure(chain, "DA", repetitions=3, warmup=1)
        assert times.shape == (3,)
        assert np.all(times > 0)

    def test_measure_all(self, platform):
        chain = TaskChain([GemmLoopTask(16, iterations=1, name="L1")])
        executor = HostExecutor(platform, accelerator_speedup={"A": 2.0}, seed=0)
        ms = executor.measure_all(chain, ["D", "A"], repetitions=2, warmup=0)
        assert set(ms.labels) == {"D", "A"}

    def test_invalid_configuration(self, platform):
        with pytest.raises(ValueError):
            HostExecutor(platform, accelerator_speedup=0.0)
        with pytest.raises(ValueError):
            HostExecutor(platform, accelerator_speedup={"A": -1.0})
        with pytest.raises(KeyError):
            HostExecutor(platform, accelerator_speedup={"Z": 2.0})

    def test_placement_validation(self, platform):
        chain = TaskChain([GemmLoopTask(8, name="L1")])
        executor = HostExecutor(platform)
        with pytest.raises(ValueError):
            executor.run_once(chain, "DD")
        with pytest.raises(ValueError):
            executor.measure(chain, "D", repetitions=0)
