"""Equivalence tests for the condition-stacked grid execution engine.

The central claim: ``ChainCostTables.build_grid`` + ``execute_placements_grid``
are **bitwise identical** to deriving each scenario's platform, building its
scalar tables and looping ``execute_placements`` -- for every table entry and
every metric, on calibrated and randomized platforms alike.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices import (
    ChainCostTables,
    DeviceSpec,
    LinkSpec,
    Platform,
    execute_placements,
    execute_placements_grid,
    edge_cluster_platform,
    lte,
    smartphone_cloud_platform,
    wifi_ac,
)
from repro.offload import placement_matrix
from repro.scenarios import (
    DeviceLoadFactor,
    DvfsFrequencyScale,
    EnergyPriceScale,
    LinkBandwidthScale,
    LinkLatencyScale,
    ScenarioGrid,
    link_degradation_grid,
)
from repro.tasks import GemmLoopTask, RegularizedLeastSquaresTask, TaskChain

from factories import random_chain, random_platform

SCENARIO_AXES = [
    (LinkBandwidthScale(), [1.0, 0.5, 0.2]),
    (LinkLatencyScale(), [1.0, 5.0]),
    (DeviceLoadFactor(), [1.0, 2.0]),
]

TABLE_FIELDS = (
    "busy",
    "hostio_time",
    "hostio_bytes",
    "energy_in",
    "energy_out",
    "task_flops",
    "penalty_time",
    "penalty_energy",
    "penalty_bytes",
    "first_penalty_time",
    "first_penalty_energy",
    "first_penalty_bytes",
)

SHARED_FIELDS = ("flops_by_device", "transferred_bytes")
STACKED_FIELDS = (
    "total_time_s",
    "busy_by_device",
    "transfer_energy_j",
    "active_j",
    "idle_j",
    "energy_total_j",
    "operating_cost",
)


def chain_of(n_tasks: int) -> TaskChain:
    tasks = [
        RegularizedLeastSquaresTask(size=40 + 40 * i, iterations=4, name=f"L{i + 1}")
        for i in range(n_tasks)
    ]
    return TaskChain(tasks, name=f"grid-test-{n_tasks}")


def assert_grid_matches_loop(grid_tables, grid, chain, platforms, matrix):
    for index, platform in enumerate(platforms):
        tables = ChainCostTables.build(chain, platform)
        for field in TABLE_FIELDS:
            assert np.array_equal(
                getattr(grid_tables.table(index), field), getattr(tables, field), equal_nan=True
            ), f"table field {field} differs for scenario {index}"
        batch = execute_placements(tables, matrix)
        for field in STACKED_FIELDS:
            assert np.array_equal(getattr(grid, field)[index], getattr(batch, field)), (
                f"{field} differs for scenario {index}"
            )
        for field in SHARED_FIELDS:
            assert np.array_equal(getattr(grid, field), getattr(batch, field)), (
                f"{field} differs for scenario {index}"
            )


class TestBuildGrid:
    def test_bitwise_identical_to_scalar_builds_on_calibrated_platform(self):
        base = edge_cluster_platform()
        scenarios = ScenarioGrid.cartesian(SCENARIO_AXES)
        platforms = scenarios.platforms(base)
        chain = chain_of(4)
        grid_tables = ChainCostTables.build_grid(chain, platforms)
        matrix = placement_matrix(len(chain), len(base.aliases))
        grid = execute_placements_grid(grid_tables, matrix)
        assert grid.total_time_s.shape == (len(platforms), matrix.shape[0])
        assert_grid_matches_loop(grid_tables, grid, chain, platforms, matrix)

    def test_bitwise_identical_on_randomized_platforms(self, rng):
        for n_devices in (2, 3, 4):
            base = random_platform(rng, n_devices)
            scenarios = ScenarioGrid.cartesian(
                [
                    (LinkBandwidthScale(), [1.0, float(rng.uniform(0.1, 0.9))]),
                    (DvfsFrequencyScale(), [1.0, float(rng.uniform(0.3, 0.9))]),
                    (EnergyPriceScale(), [1.0, float(rng.uniform(1.5, 5.0))]),
                ]
            )
            platforms = scenarios.platforms(base)
            chain = random_chain(rng, 3)
            grid_tables = ChainCostTables.build_grid(chain, platforms)
            matrix = placement_matrix(3, n_devices)
            grid = execute_placements_grid(grid_tables, matrix)
            assert_grid_matches_loop(grid_tables, grid, chain, platforms, matrix)

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        n_devices=st.integers(2, 4),
        n_tasks=st.integers(1, 4),
        n_scenarios=st.integers(1, 5),
    )
    def test_hypothesis_randomized_grid_equivalence(self, seed, n_devices, n_tasks, n_scenarios):
        rng = np.random.default_rng(seed)
        base = random_platform(rng, n_devices)
        axis_values = [float(rng.uniform(0.1, 3.0)) for _ in range(n_scenarios)]
        scenarios = ScenarioGrid.cartesian([(LinkLatencyScale(), axis_values)])
        platforms = scenarios.platforms(base)
        chain = random_chain(rng, n_tasks)
        grid_tables = ChainCostTables.build_grid(chain, platforms)
        matrix = placement_matrix(n_tasks, n_devices)
        grid = execute_placements_grid(grid_tables, matrix)
        assert_grid_matches_loop(grid_tables, grid, chain, platforms, matrix)

    def test_device_subset(self):
        base = smartphone_cloud_platform()
        scenarios = link_degradation_grid([("D", "A")], start=wifi_ac(), end=lte(), n_points=3)
        platforms = scenarios.platforms(base)
        chain = chain_of(3)
        grid_tables = ChainCostTables.build_grid(chain, platforms, devices=("D", "A"))
        matrix = placement_matrix(3, 2)
        grid = execute_placements_grid(grid_tables, matrix)
        for index, platform in enumerate(platforms):
            batch = execute_placements(
                ChainCostTables.build(chain, platform, devices=("D", "A")), matrix
            )
            assert np.array_equal(grid.total_time_s[index], batch.total_time_s)
            assert np.array_equal(grid.energy_total_j[index], batch.energy_total_j)

    def test_rejects_mismatched_platforms(self):
        base = edge_cluster_platform()
        other = smartphone_cloud_platform()
        chain = chain_of(2)
        with pytest.raises(ValueError, match="device set"):
            ChainCostTables.build_grid(chain, [base, other])
        rehosted = Platform(devices=base.devices, links=base.links, host="E", name="rehosted")
        with pytest.raises(ValueError, match="host"):
            ChainCostTables.build_grid(chain, [base, rehosted])
        with pytest.raises(ValueError, match="at least one platform"):
            ChainCostTables.build_grid(chain, [])

    def test_missing_links_reject_only_traversing_placements(self):
        """Partially linked platforms behave exactly like the scalar engine."""
        devices = {
            "D": DeviceSpec(name="d"),
            "A": DeviceSpec(name="a"),
            "B": DeviceSpec(name="b"),
        }
        links = {
            ("D", "A"): LinkSpec(name="da", bandwidth_gbs=1.0),
            ("D", "B"): LinkSpec(name="db", bandwidth_gbs=1.0),
        }
        base = Platform(devices=devices, links=links, host="D", name="partial")
        scenarios = ScenarioGrid.cartesian([(LinkBandwidthScale(), [1.0, 0.5])])
        platforms = scenarios.platforms(base)
        chain = TaskChain(
            [GemmLoopTask(16, name="L1"), GemmLoopTask(16, name="L2")], name="partial"
        )
        grid_tables = ChainCostTables.build_grid(chain, platforms)
        assert grid_tables.missing_links
        # Placements avoiding the missing A<->B hop evaluate fine...
        safe = np.array([[0, 0], [0, 1], [1, 0], [2, 0]])
        grid = execute_placements_grid(grid_tables, safe)
        for index, platform in enumerate(platforms):
            batch = execute_placements(ChainCostTables.build(chain, platform), safe)
            assert np.array_equal(grid.total_time_s[index], batch.total_time_s)
        # ... while an A -> B traversal raises the scalar engine's error.
        with pytest.raises(KeyError, match="no link defined"):
            execute_placements_grid(grid_tables, np.array([[1, 2]]))


class TestGridResult:
    def test_batch_views_and_labels(self):
        base = edge_cluster_platform()
        scenarios = link_degradation_grid(
            [("D", "A"), ("N", "A")], start=wifi_ac(), end=lte(), n_points=3
        )
        platforms = scenarios.platforms(base)
        chain = chain_of(3)
        grid_tables = ChainCostTables.build_grid(chain, platforms)
        matrix = placement_matrix(3, 4)
        grid = execute_placements_grid(grid_tables, matrix)
        assert len(grid) == matrix.shape[0]
        assert grid.n_scenarios == 3
        assert grid.labels()[0] == "DDD"
        assert grid.label(1) == "DDN"
        assert grid.placement(2) == ("D", "D", "E")
        for index in range(3):
            view = grid.batch(index)
            reference = execute_placements(ChainCostTables.build(chain, platforms[index]), matrix)
            assert np.array_equal(view.total_time_s, reference.total_time_s)
            assert np.array_equal(view.energy_total_j, reference.energy_total_j)
            assert view.labels() == reference.labels()
            # Materialised records replay bitwise through the batch view too.
            record = view.record(5)
            expected = reference.record(5)
            assert record.total_time_s == expected.total_time_s
            assert record.energy.total_j == expected.energy.total_j
        assert [b.tables.platform.name for b in grid.batches()] == [p.name for p in platforms]

    def test_metric_values_shapes_and_validation(self):
        base = edge_cluster_platform()
        scenarios = link_degradation_grid([("D", "A")], start=wifi_ac(), end=lte(), n_points=4)
        chain = chain_of(2)
        grid_tables = ChainCostTables.build_grid(chain, scenarios.platforms(base))
        grid = execute_placements_grid(grid_tables, placement_matrix(2, 4))
        for metric in ("time", "energy", "cost"):
            assert grid.metric_values(metric).shape == (4, 16)
        with pytest.raises(ValueError, match="unknown metric"):
            grid.metric_values("latency")
