"""Shared fixtures for the test suite.

The randomized platform/chain/graph factories live in ``tests/factories.py``
(hypothesis tests import them directly and drive them with drawn seeds); the
fixtures below hand the same factories to ordinary tests.
"""

from __future__ import annotations

import numpy as np
import pytest

from factories import random_chain, random_graph, random_platform

from repro.core import BootstrapComparator, Comparison, PairwiseOracle


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def make_platform():
    """Factory fixture: ``make_platform(rng, n_devices)`` -> random Platform."""
    return random_platform


@pytest.fixture
def make_chain():
    """Factory fixture: ``make_chain(rng, n_tasks)`` -> random TaskChain."""
    return random_chain


@pytest.fixture
def make_graph():
    """Factory fixture: ``make_graph(rng, n_tasks, edge_probability)`` -> random TaskGraph."""
    return random_graph


@pytest.fixture
def figure2_oracle() -> PairwiseOracle:
    """Pairwise outcomes consistent with Figure 1b / Figure 2 of the paper.

    ``AD`` beats everything, ``AA`` beats ``DD`` and ``DA``, and ``DD`` is
    equivalent to ``DA``.
    """
    return PairwiseOracle(
        {
            ("AD", "DD"): Comparison.BETTER,
            ("AD", "DA"): Comparison.BETTER,
            ("AD", "AA"): Comparison.BETTER,
            ("AA", "DD"): Comparison.BETTER,
            ("AA", "DA"): Comparison.BETTER,
            ("DD", "DA"): Comparison.EQUIVALENT,
        }
    )


@pytest.fixture
def well_separated_measurements(rng: np.random.Generator) -> dict[str, np.ndarray]:
    """Four algorithms with clearly distinct performance levels (no overlap)."""
    return {
        "fast": rng.normal(1.0, 0.01, size=60),
        "medium": rng.normal(2.0, 0.02, size=60),
        "slow": rng.normal(4.0, 0.04, size=60),
        "slowest": rng.normal(8.0, 0.08, size=60),
    }


@pytest.fixture
def overlapping_measurements(rng: np.random.Generator) -> dict[str, np.ndarray]:
    """Two indistinguishable algorithms plus one clearly faster one."""
    return {
        "twin_a": rng.normal(2.0, 0.2, size=80),
        "twin_b": rng.normal(2.02, 0.2, size=80),
        "fast": rng.normal(1.0, 0.05, size=80),
    }


@pytest.fixture
def bootstrap_comparator() -> BootstrapComparator:
    return BootstrapComparator(seed=7, n_resamples=150)
