"""Content-fingerprint and TableCache contracts.

The cache layer's whole promise is *identity-free* reuse: two structurally
equal configurations must fingerprint identically -- across object
identities, processes and non-semantic insertion orders -- while any single
field change must produce a different digest.  Hypothesis drives the
single-field perturbations; a subprocess pins cross-process stability
(a salted ``hash()`` sneaking in would fail it immediately).
"""

from __future__ import annotations

import dataclasses
import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from factories import random_chain, random_graph, random_platform
from repro.cache import (
    CacheStats,
    TableCache,
    cached_fingerprint,
    canonical,
    estimate_nbytes,
    fingerprint,
    table_key,
)
from repro.devices import DeviceSpec, Platform
from repro.faults import FaultProfile, RetryPolicy, TimeoutPolicy
from repro.scenarios import Scenario, ScenarioGrid
from repro.tasks import GemmLoopTask, TaskChain, TaskGraph


class TestCanonical:
    def test_primitives_pass_through(self):
        assert canonical(None) is None
        assert canonical(3) == 3
        assert canonical(True) is True
        assert canonical("x") == "x"

    def test_floats_are_bitwise_exact(self):
        assert canonical(0.1) == f"float:{(0.1).hex()}"
        assert canonical(float("nan")) == "float:nan"
        assert canonical(float("inf")) == f"float:{float('inf').hex()}"
        # 0.1 + 0.2 != 0.3 bitwise: the canonical forms must differ too.
        assert canonical(0.1 + 0.2) != canonical(0.3)

    def test_numpy_scalars_match_python_scalars(self):
        assert canonical(np.float64(0.25)) == canonical(0.25)
        assert canonical(np.int64(7)) == canonical(7)

    def test_mapping_order_is_not_semantic(self):
        assert canonical({"a": 1, "b": 2}) == canonical({"b": 2, "a": 1})

    def test_unknown_types_raise(self):
        with pytest.raises(TypeError, match="cannot canonicalize"):
            canonical(object())


class TestFingerprintEquality:
    def test_structurally_equal_platforms_fingerprint_identically(self):
        one = random_platform(np.random.default_rng(11), n_devices=3)
        two = random_platform(np.random.default_rng(11), n_devices=3)
        assert one is not two
        assert fingerprint(one) == fingerprint(two)

    def test_structurally_equal_chains_fingerprint_identically(self):
        one = random_chain(np.random.default_rng(5), n_tasks=4)
        two = random_chain(np.random.default_rng(5), n_tasks=4)
        assert fingerprint(one) == fingerprint(two)

    def test_policy_and_profile_fingerprints(self):
        assert fingerprint(RetryPolicy(max_attempts=3)) == fingerprint(
            RetryPolicy(max_attempts=3)
        )
        assert fingerprint(RetryPolicy(max_attempts=3)) != fingerprint(
            RetryPolicy(max_attempts=2)
        )
        assert fingerprint(FaultProfile()) == fingerprint(FaultProfile())
        assert fingerprint(TimeoutPolicy()) == fingerprint(TimeoutPolicy())

    def test_graph_node_insertion_order_is_not_semantic(self):
        tasks = [GemmLoopTask(16 + 8 * i, name=f"L{i + 1}") for i in range(4)]
        edges = [("L1", "L3"), ("L2", "L3"), ("L3", "L4")]
        forward = TaskGraph(tasks, edges=edges, name="g")
        backward = TaskGraph(list(reversed(tasks)), edges=edges, name="g")
        assert fingerprint(forward) == fingerprint(backward)

    def test_platform_device_order_is_semantic(self):
        # Alias order defines the device axis of every table built from the
        # platform, so reordering devices must change the fingerprint.
        base = random_platform(np.random.default_rng(3), n_devices=3)
        reordered = Platform(
            devices=dict(reversed(list(base.devices.items()))),
            links=dict(base.links),
            host=base.host,
            name=base.name,
        )
        assert fingerprint(base) != fingerprint(reordered)

    def test_scenario_grid_row_order_is_semantic(self):
        a = Scenario("a", settings=())
        b = Scenario("b", settings=())
        assert fingerprint(ScenarioGrid(scenarios=(a, b))) != fingerprint(
            ScenarioGrid(scenarios=(b, a))
        )

    def test_cached_fingerprint_memoizes_on_the_instance(self):
        chain = random_chain(np.random.default_rng(0), n_tasks=3)
        first = cached_fingerprint(chain)
        assert chain._repro_content_fingerprint == first
        assert cached_fingerprint(chain) == first == fingerprint(chain)


class TestFingerprintSensitivity:
    """Any single field change must alter the digest (hypothesis-driven)."""

    @given(seed=st.integers(0, 2**32 - 1), data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_single_device_field_change_alters_platform_fingerprint(self, seed, data):
        platform = random_platform(np.random.default_rng(seed), n_devices=3)
        alias = data.draw(st.sampled_from(sorted(platform.devices)))
        numeric = [
            f.name
            for f in dataclasses.fields(DeviceSpec)
            if isinstance(getattr(platform.devices[alias], f.name), float)
        ]
        field = data.draw(st.sampled_from(numeric))
        spec = platform.devices[alias]
        bumped = dataclasses.replace(spec, **{field: getattr(spec, field) * 1.5 + 1e-9})
        mutated = Platform(
            devices={**platform.devices, alias: bumped},
            links=dict(platform.links),
            host=platform.host,
            name=platform.name,
        )
        assert fingerprint(mutated) != fingerprint(platform)

    @given(seed=st.integers(0, 2**32 - 1), data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_single_task_change_alters_chain_fingerprint(self, seed, data):
        chain = random_chain(np.random.default_rng(seed), n_tasks=4)
        index = data.draw(st.integers(0, 3))
        tasks = list(chain.tasks)
        old = tasks[index]
        tasks[index] = GemmLoopTask(
            (old.m + 1, old.k, old.n), iterations=old.iterations, name=old.name
        )
        assert fingerprint(TaskChain(tasks, name=chain.name)) != fingerprint(chain)

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_edge_change_alters_graph_fingerprint(self, seed):
        graph = random_graph(np.random.default_rng(seed), n_tasks=4, edge_probability=0.4)
        names = graph.task_names
        flipped = (names[0], names[-1])
        edges = [e for e in graph.edges if e != flipped]
        if len(edges) == len(graph.edges):
            edges = list(graph.edges) + [flipped]
        mutated = TaskGraph(list(graph.tasks), edges=edges, name=graph.name)
        assert fingerprint(mutated) != fingerprint(graph)

    def test_retry_policy_field_changes_table_key(self):
        chain = random_chain(np.random.default_rng(1), n_tasks=3)
        platform = random_platform(np.random.default_rng(1), n_devices=2)
        base = table_key(chain, platform, retry=RetryPolicy(max_attempts=2))
        assert base != table_key(chain, platform, retry=RetryPolicy(max_attempts=3))
        assert base != table_key(chain, platform)
        assert base != table_key(
            chain, platform, retry=RetryPolicy(max_attempts=2), timeout=TimeoutPolicy(1.0)
        )


class TestProcessStability:
    def test_fingerprints_survive_process_restarts(self):
        """The digest of a deterministic configuration is process-invariant."""
        snippet = textwrap.dedent(
            """
            import numpy as np
            from factories import random_chain, random_graph, random_platform
            from repro.cache import fingerprint, table_key
            from repro.faults import RetryPolicy

            platform = random_platform(np.random.default_rng(42), n_devices=3)
            chain = random_chain(np.random.default_rng(42), n_tasks=4)
            graph = random_graph(np.random.default_rng(42), n_tasks=4)
            print(fingerprint(platform))
            print(fingerprint(chain))
            print(fingerprint(graph))
            print(table_key(chain, platform, retry=RetryPolicy(max_attempts=2)))
            """
        )
        repo = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(repo, "src"), os.path.join(repo, "tests")]
        )
        runs = [
            subprocess.run(
                [sys.executable, "-c", snippet],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            ).stdout.splitlines()
            for _ in range(2)
        ]
        assert runs[0] == runs[1]
        # And the parent process agrees with the children.
        platform = random_platform(np.random.default_rng(42), n_devices=3)
        chain = random_chain(np.random.default_rng(42), n_tasks=4)
        assert runs[0][0] == fingerprint(platform)
        assert runs[0][1] == fingerprint(chain)


class TestTableCache:
    def test_counters_track_hits_and_misses(self):
        cache = TableCache(max_entries=4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.entries) == (1, 1, 1)
        assert stats.hit_rate == 0.5

    def test_lru_eviction_order(self):
        cache = TableCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a": "b" is now oldest
        cache.put("c", 3)
        assert "b" not in cache and "a" in cache and "c" in cache
        assert cache.stats().evictions == 1

    def test_byte_cap_evicts_but_never_the_newest_entry(self):
        cache = TableCache(max_entries=100, max_bytes=1)
        big = np.zeros(1024)
        cache.put("a", big)
        assert "a" in cache  # a single oversized entry still caches
        cache.put("b", big)
        assert "a" not in cache and "b" in cache

    def test_get_or_build_builds_once(self):
        cache = TableCache()
        calls = []
        build = lambda: calls.append(1) or "built"  # noqa: E731
        assert cache.get_or_build("k", build) == "built"
        assert cache.get_or_build("k", build) == "built"
        assert len(calls) == 1

    def test_clear_reports_drops_and_keeps_counters(self):
        cache = TableCache()
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        assert cache.clear() == 2
        assert len(cache) == 0
        assert cache.stats().hits == 1  # counters survive a clear
        assert cache.clear() == 0

    def test_put_replaces_in_place(self):
        cache = TableCache(max_entries=2)
        cache.put("a", np.zeros(8))
        before = cache.stats().nbytes
        cache.put("a", np.zeros(16))
        assert len(cache) == 1
        assert cache.stats().nbytes > before

    def test_invalid_caps_raise(self):
        with pytest.raises(ValueError, match="max_entries"):
            TableCache(max_entries=0)
        with pytest.raises(ValueError, match="max_bytes"):
            TableCache(max_bytes=0)

    def test_estimate_nbytes_counts_arrays(self):
        assert estimate_nbytes(np.zeros(100)) >= 800
        assert estimate_nbytes((np.zeros(10), np.zeros(10))) >= 160

    def test_stats_snapshot_is_frozen(self):
        stats = CacheStats(hits=3, misses=1)
        assert stats.hit_rate == 0.75
        with pytest.raises(dataclasses.FrozenInstanceError):
            stats.hits = 5
