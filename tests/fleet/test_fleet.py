"""Fleet specification and sampling: segments, apportionment, delta rebuilds."""

import numpy as np
import pytest

from repro.devices import SimulatedExecutor, edge_cluster_platform
from repro.devices.tables import build_tables
from repro.fleet import (
    AxisSampler,
    ChoiceAxis,
    FleetSpec,
    NormalAxis,
    UniformAxis,
    UserSegment,
    sample_fleet,
)
from repro.scenarios import DeviceLoadFactor, LinkBandwidthScale, LinkLatencyScale
from repro.tasks import RegularizedLeastSquaresTask, TaskChain

#: The per-scenario arrays a condition slice carries (bitwise-compared).
SLICE_FIELDS = (
    "busy", "hostio_time", "energy_in", "energy_out", "penalty_time",
    "penalty_energy", "first_penalty_time", "first_penalty_energy",
    "power_active", "power_idle", "cost_per_hour", "extra_idle_power",
)


def small_chain(n_tasks: int = 2) -> TaskChain:
    tasks = [
        RegularizedLeastSquaresTask(
            size=60 + 40 * i, iterations=6, name=f"L{i + 1}", generate_on_host=False
        )
        for i in range(n_tasks)
    ]
    return TaskChain(tasks, name="fleet-test")


def two_segment_spec() -> FleetSpec:
    return FleetSpec(
        segments=(
            UserSegment(
                "wifi",
                weight=3.0,
                axes=(
                    UniformAxis(LinkBandwidthScale(), 0.8, 1.2),
                    UniformAxis(LinkLatencyScale(), 0.9, 1.1),
                ),
            ),
            UserSegment(
                "cell",
                weight=1.0,
                axes=(
                    UniformAxis(LinkBandwidthScale(), 0.1, 0.5),
                    NormalAxis(LinkLatencyScale(), mean=4.0, std=1.0, low=1.0, high=8.0),
                ),
            ),
        )
    )


class TestSamplerValidation:
    def test_axis_must_be_a_condition_axis(self):
        with pytest.raises(TypeError, match="ConditionAxis"):
            UniformAxis("not-an-axis", 0.0, 1.0)
        with pytest.raises(TypeError, match="ConditionAxis"):
            NormalAxis(None, mean=1.0)

    def test_uniform_bounds(self):
        with pytest.raises(ValueError, match="low <= high"):
            UniformAxis(LinkBandwidthScale(), 2.0, 1.0)
        with pytest.raises(ValueError, match="finite"):
            UniformAxis(LinkBandwidthScale(), 0.0, float("inf"))

    def test_normal_parameters(self):
        with pytest.raises(ValueError, match="finite"):
            NormalAxis(LinkLatencyScale(), mean=float("nan"))
        with pytest.raises(ValueError, match="non-negative"):
            NormalAxis(LinkLatencyScale(), mean=1.0, std=-0.5)
        with pytest.raises(ValueError, match="low <= high"):
            NormalAxis(LinkLatencyScale(), mean=1.0, std=1.0, low=3.0, high=2.0)

    def test_normal_clipping_projects_into_bounds(self):
        sampler = NormalAxis(DeviceLoadFactor(devices=("D",)), mean=3.0, std=5.0, low=1.0, high=4.0)
        draws = sampler.sample(np.random.default_rng(0), 500)
        assert draws.min() >= 1.0 and draws.max() <= 4.0

    def test_choice_validation(self):
        with pytest.raises(ValueError, match="at least one value"):
            ChoiceAxis(LinkBandwidthScale(), values=())
        with pytest.raises(ValueError, match="one per value"):
            ChoiceAxis(LinkBandwidthScale(), values=(0.5, 1.0), probs=(1.0,))
        with pytest.raises(ValueError, match=r"probs\[1\]"):
            ChoiceAxis(LinkBandwidthScale(), values=(0.5, 1.0), probs=(1.0, float("nan")))
        with pytest.raises(ValueError, match="positive"):
            ChoiceAxis(LinkBandwidthScale(), values=(0.5, 1.0), probs=(0.0, 0.0))

    def test_choice_draws_come_from_the_menu(self):
        sampler = ChoiceAxis(LinkBandwidthScale(), values=(0.25, 0.5, 1.0), probs=(1.0, 1.0, 2.0))
        draws = sampler.sample(np.random.default_rng(3), 200)
        assert set(np.unique(draws)) <= {0.25, 0.5, 1.0}

    def test_segment_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            UserSegment("")
        for bad in (float("nan"), float("inf"), 0.0, -1.0):
            with pytest.raises(ValueError, match="finite and positive"):
                UserSegment("s", weight=bad)
        with pytest.raises(TypeError, match="AxisSampler"):
            UserSegment("s", axes=(LinkBandwidthScale(),))

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="at least one segment"):
            FleetSpec(segments=())
        with pytest.raises(ValueError, match="unique"):
            FleetSpec(segments=(UserSegment("a"), UserSegment("a")))
        with pytest.raises(TypeError, match="UserSegment"):
            FleetSpec(segments=("a",))

    def test_spec_lookup(self):
        spec = two_segment_spec()
        assert spec.names == ("wifi", "cell")
        assert spec.segment("cell").weight == 1.0
        with pytest.raises(KeyError, match="unknown segment"):
            spec.segment("dsl")


class TestApportion:
    def test_sums_exactly_and_is_proportional(self):
        spec = two_segment_spec()  # weights 3:1
        assert spec.apportion(8) == (6, 2)
        assert spec.apportion(7) == (5, 2)
        assert sum(spec.apportion(101)) == 101

    def test_equal_remainder_ties_break_toward_earlier_segments(self):
        spec = FleetSpec(segments=(UserSegment("a"), UserSegment("b"), UserSegment("c")))
        assert spec.apportion(4) == (2, 1, 1)

    def test_dominant_weight_can_round_a_segment_to_zero(self):
        spec = FleetSpec(
            segments=(UserSegment("big", weight=1000.0), UserSegment("tiny", weight=1.0))
        )
        assert spec.apportion(5) == (5, 0)

    def test_rejects_non_positive_counts(self):
        with pytest.raises(ValueError, match="positive"):
            two_segment_spec().apportion(0)


class TestSampleFleet:
    def test_same_seed_reproduces_the_grid_exactly(self):
        spec = two_segment_spec()
        a = sample_fleet(spec, 12, seed=7)
        b = sample_fleet(spec, 12, seed=7)
        assert a.segment_of_user == b.segment_of_user
        for left, right in zip(a.grid.scenarios, b.grid.scenarios):
            assert left == right
        c = sample_fleet(spec, 12, seed=8)
        assert any(l != r for l, r in zip(a.grid.scenarios, c.grid.scenarios))

    def test_names_weights_and_segment_mapping(self):
        spec = two_segment_spec()
        fleet = sample_fleet(spec, 12, seed=0)
        assert fleet.n_users == len(fleet) == 12
        assert fleet.users_of_segment("wifi") == tuple(range(9))
        assert fleet.users_of_segment("cell") == tuple(range(9, 12))
        for i, scenario in enumerate(fleet.grid.scenarios):
            segment = spec.segments[fleet.segment_of_user[i]]
            assert scenario.name == f"{segment.name}/u{i}"
        # Segment probability mass survives sampling exactly.
        weights = fleet.grid.weights
        assert np.isclose(weights[:9].sum(), 3.0)
        assert np.isclose(weights[9:].sum(), 1.0)
        assert np.all(np.isfinite(weights)) and np.all(weights > 0)

    def test_zero_count_segments_contribute_no_scenarios(self):
        spec = FleetSpec(
            segments=(UserSegment("big", weight=1000.0), UserSegment("tiny", weight=1.0))
        )
        fleet = sample_fleet(spec, 5, seed=0)
        assert fleet.n_users == 5
        assert fleet.users_of_segment("tiny") == ()
        with pytest.raises(ValueError, match="no users"):
            fleet.segment_grid("tiny")
        with pytest.raises(KeyError, match="unknown segment"):
            fleet.users_of_segment("dsl")

    def test_segment_grid_carries_the_users_over(self):
        fleet = sample_fleet(two_segment_spec(), 12, seed=0)
        sub = fleet.segment_grid("cell")
        assert tuple(s.name for s in sub.scenarios) == tuple(
            fleet.grid[i].name for i in fleet.users_of_segment("cell")
        )
        assert np.isclose(sub.weights.sum(), 1.0)

    def test_fleet_grid_flows_through_the_grid_engine(self):
        fleet = sample_fleet(two_segment_spec(), 10, seed=2)
        executor = SimulatedExecutor(edge_cluster_platform(), seed=0)
        tables = executor.grid_cost_tables(small_chain(), fleet.grid)
        assert tables.n_scenarios == fleet.n_users


class TestResample:
    def test_resample_preserves_membership_names_and_weights(self):
        fleet = sample_fleet(two_segment_spec(), 12, seed=0)
        drifted, replacements = fleet.resample_users([1, 4, 10], seed=99)
        assert sorted(replacements) == [1, 4, 10]
        assert drifted.segment_of_user == fleet.segment_of_user
        for i, (old, new) in enumerate(zip(fleet.grid.scenarios, drifted.grid.scenarios)):
            assert new.name == old.name
            assert new.weight == old.weight
            if i in replacements:
                assert new == replacements[i]
            else:
                assert new == old

    def test_resample_rejects_out_of_range_users(self):
        fleet = sample_fleet(two_segment_spec(), 8, seed=0)
        with pytest.raises(IndexError, match="out of range"):
            fleet.resample_users([8], seed=0)

    def test_drifted_fleet_is_a_bitwise_delta_rebuild(self):
        """resample_users + update_grid_tables == a from-scratch fused build."""
        platform = edge_cluster_platform()
        chain = small_chain()
        fleet = sample_fleet(two_segment_spec(), 10, seed=5)
        executor = SimulatedExecutor(platform, seed=0)
        tables = executor.grid_cost_tables(chain, fleet.grid)

        drifted, replacements = fleet.resample_users([0, 3, 7], seed=17)
        updated = executor.update_grid_tables(tables, replacements)
        stats = updated.cache_stats()
        # Only the redrawn users' condition slices were recomputed.
        assert stats.built == len(replacements)

        full = build_tables(chain, platform, scenarios=drifted.grid)
        for field in SLICE_FIELDS:
            assert getattr(updated, field).tobytes() == getattr(full, field).tobytes()
        assert updated.fingerprint == full.fingerprint
        # The updated tables are registered: re-requesting the drifted grid
        # through the executor is a cache hit, not a rebuild.
        assert executor.grid_cost_tables(chain, drifted.grid) is updated
