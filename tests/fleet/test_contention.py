"""Multi-tenant contention: load model, fixed points, differential evaluation."""

import numpy as np
import pytest

from repro.devices import SimulatedExecutor, edge_cluster_platform
from repro.devices.grid import execute_placements_grid
from repro.fleet import (
    ContentionModel,
    FleetSpec,
    UniformAxis,
    UserSegment,
    sample_fleet,
    solve_contention,
)
from repro.scenarios import LinkBandwidthScale, LinkLatencyScale
from repro.tasks import figure1_chain


@pytest.fixture(scope="module")
def setup():
    platform = edge_cluster_platform()
    spec = FleetSpec(
        segments=(
            UserSegment(
                "wifi",
                weight=2.0,
                axes=(UniformAxis(LinkBandwidthScale(), 0.8, 1.2),),
            ),
            UserSegment(
                "cell",
                weight=1.0,
                axes=(
                    UniformAxis(LinkBandwidthScale(), 0.2, 0.5),
                    UniformAxis(LinkLatencyScale(), 2.0, 4.0),
                ),
            ),
        )
    )
    fleet = sample_fleet(spec, 9, seed=1)
    executor = SimulatedExecutor(platform, seed=0)
    return executor, figure1_chain(), fleet


class TestContentionModel:
    def test_load_curve(self):
        model = ContentionModel(alpha=0.5, exponent=1.0)
        assert np.array_equal(
            model.load(np.array([0.0, 1.0, 2.0, 3.0])), np.array([1.0, 1.0, 1.5, 2.0])
        )

    def test_superlinear_exponent_models_thrash(self):
        model = ContentionModel(alpha=0.1, exponent=2.0)
        assert np.isclose(model.load(np.array([4.0]))[0], 1.0 + 0.1 * 9.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="alpha"):
            ContentionModel(alpha=-0.1)
        with pytest.raises(ValueError, match="alpha"):
            ContentionModel(alpha=float("nan"))
        with pytest.raises(ValueError, match="exponent"):
            ContentionModel(exponent=0.0)

    def test_contended_restricts_to_named_devices(self):
        model = ContentionModel(devices=("E",))
        assert model.contended(("D", "N", "E", "A")) == (False, False, True, False)
        with pytest.raises(ValueError, match="unknown devices"):
            model.contended(("D", "N"))


class TestFixedAssignment:
    def test_shared_placement_converges_in_two_iterations(self, setup):
        executor, chain, fleet = setup
        res = solve_contention(
            executor, chain, fleet, ContentionModel(alpha=0.2), placements="DE"
        )
        # Counts are load-independent under a fixed assignment: iteration 1
        # moves the loads onto the counts, iteration 2 confirms them exactly.
        assert res.converged
        assert res.n_iterations == 2
        assert res.residuals[-1] == 0.0
        assert res.placements == (("D", "E"),) * fleet.n_users
        # Every user is one tenant on each device its placement touches.
        counts = dict(zip(res.aliases, res.counts))
        assert np.isclose(counts["D"], fleet.n_users)
        assert np.isclose(counts["E"], fleet.n_users)
        assert counts["N"] == 0.0 and counts["A"] == 0.0
        loads = dict(zip(res.aliases, res.loads))
        model = ContentionModel(alpha=0.2)
        assert loads["D"] == loads["E"] == model.load(np.array([float(fleet.n_users)]))[0]
        assert loads["N"] == loads["A"] == 1.0

    def test_fixed_point_is_differentially_reproducible(self, setup):
        """Rebuilding the loaded grid and re-evaluating reproduces the result bitwise."""
        executor, chain, fleet = setup
        res = solve_contention(
            executor, chain, fleet, ContentionModel(alpha=0.3), placements="DE"
        )
        tables = executor.grid_cost_tables(chain, res.grid)
        matrix = np.array(
            [[res.aliases.index(alias) for alias in placement] for placement in res.placements]
        )
        direct = execute_placements_grid(tables, matrix).metric_values("time")
        per_user = direct[np.arange(fleet.n_users), np.arange(fleet.n_users)]
        assert np.array_equal(per_user, res.per_user_values)

    def test_per_user_placements_count_tenants_per_device(self, setup):
        executor, chain, fleet = setup
        placements = ["DD" if i % 2 == 0 else "EE" for i in range(fleet.n_users)]
        res = solve_contention(
            executor, chain, fleet, ContentionModel(alpha=0.1), placements=placements
        )
        assert res.converged
        counts = dict(zip(res.aliases, res.counts))
        # Tenant mass is weight-proportional, not a head count: the two halves
        # carry different probability mass but the total is the fleet size.
        assert np.isclose(counts["D"] + counts["E"], fleet.n_users)
        weights = fleet.grid.weights
        share = fleet.n_users * weights / weights.sum()
        assert np.isclose(counts["D"], share[0::2].sum())
        assert np.isclose(counts["E"], share[1::2].sum())

    def test_device_restriction_leaves_excluded_devices_unloaded(self, setup):
        executor, chain, fleet = setup
        res = solve_contention(
            executor,
            chain,
            fleet,
            ContentionModel(alpha=0.5, devices=("E",)),
            placements="DE",
        )
        loads = dict(zip(res.aliases, res.loads))
        assert loads["D"] == 1.0  # used by every placement, but not contended
        assert loads["E"] > 1.0

    def test_zero_alpha_means_no_contention(self, setup):
        executor, chain, fleet = setup
        res = solve_contention(
            executor, chain, fleet, ContentionModel(alpha=0.0), placements="DE"
        )
        assert res.converged and res.n_iterations == 1
        assert np.array_equal(res.loads, np.ones(len(res.aliases)))


class TestBestResponse:
    def test_heterogeneous_menu_converges_with_damping(self, setup):
        executor, chain, fleet = setup
        candidates = ["DD", "NN", "EE", "AA", "DN", "DE"]
        res = solve_contention(
            executor,
            chain,
            fleet,
            ContentionModel(alpha=0.1),
            candidates=candidates,
            damping=0.5,
            max_iterations=60,
        )
        assert res.converged
        assert res.residuals[-1] <= 1e-9
        labels = {"".join(placement) for placement in res.placements}
        assert labels <= set(candidates)
        # At the fixed point no user wants to deviate: re-evaluating the menu
        # under the returned loaded grid reproduces every user's choice.
        tables = executor.grid_cost_tables(chain, res.grid)
        matrix = np.array(
            [[res.aliases.index(alias) for alias in candidate] for candidate in candidates]
        )
        values = execute_placements_grid(tables, matrix).metric_values("time")
        choices = values.argmin(axis=1)
        assert tuple(candidates[c] for c in choices) == tuple(
            "".join(p) for p in res.placements
        )
        assert np.array_equal(values[np.arange(fleet.n_users), choices], res.per_user_values)

    def test_contention_spreads_users_across_devices(self, setup):
        executor, chain, fleet = setup
        res = solve_contention(
            executor,
            chain,
            fleet,
            ContentionModel(alpha=0.1),
            candidates=["DD", "NN", "EE", "AA", "DN", "DE"],
            damping=0.5,
            max_iterations=60,
        )
        uncontended = solve_contention(
            executor,
            chain,
            fleet,
            ContentionModel(alpha=0.0),
            candidates=["DD", "NN", "EE", "AA", "DN", "DE"],
        )
        # Without contention every user picks its personal best; with it the
        # shared devices fill up and the fleet spreads over more placements.
        assert len(set(res.placements)) >= len(set(uncontended.placements))

    def test_non_convergence_is_reported_honestly(self, setup):
        executor, chain, fleet = setup
        res = solve_contention(
            executor,
            chain,
            fleet,
            ContentionModel(alpha=0.5),
            candidates=["DD", "EE"],
            max_iterations=3,
        )
        assert res.n_iterations == 3
        assert len(res.residuals) == 3
        if not res.converged:
            assert res.residuals[-1] > 1e-9

    def test_summary_mentions_convergence_and_loads(self, setup):
        executor, chain, fleet = setup
        res = solve_contention(
            executor, chain, fleet, ContentionModel(alpha=0.2), placements="DE"
        )
        text = res.summary()
        assert "converged" in text
        assert "D=" in text and "E=" in text


class TestValidation:
    def test_exactly_one_mode(self, setup):
        executor, chain, fleet = setup
        with pytest.raises(ValueError, match="exactly one"):
            solve_contention(executor, chain, fleet, ContentionModel())
        with pytest.raises(ValueError, match="exactly one"):
            solve_contention(
                executor, chain, fleet, ContentionModel(), placements="DE", candidates=["DE"]
            )

    def test_loop_parameters(self, setup):
        executor, chain, fleet = setup
        with pytest.raises(ValueError, match="max_iterations"):
            solve_contention(
                executor, chain, fleet, ContentionModel(), placements="DE", max_iterations=0
            )
        for damping in (0.0, 1.5):
            with pytest.raises(ValueError, match="damping"):
                solve_contention(
                    executor, chain, fleet, ContentionModel(), placements="DE", damping=damping
                )

    def test_placement_shape_and_aliases(self, setup):
        executor, chain, fleet = setup
        with pytest.raises(ValueError, match="devices for"):
            solve_contention(executor, chain, fleet, ContentionModel(), placements="D")
        with pytest.raises(ValueError, match="unknown device"):
            solve_contention(executor, chain, fleet, ContentionModel(), placements="DX")
        with pytest.raises(ValueError, match="one placement per user"):
            solve_contention(
                executor, chain, fleet, ContentionModel(), placements=[("D", "E"), ("D", "D")]
            )
        with pytest.raises(ValueError, match="non-empty"):
            solve_contention(executor, chain, fleet, ContentionModel(), candidates=[])
