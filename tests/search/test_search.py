"""Equivalence and property tests for the streaming search subsystem.

The streaming selectors claim to be pure functions of the *multiset* of
placements fed to them: any chunking, feeding order, shard split or merge tree
must produce the identical top-K selection and Pareto frontier, and on spaces
small enough to materialise those must match the profile-based facade
(``pareto_front``) and brute-force ``min`` selection element for element.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices import (
    DeviceSpec,
    LinkSpec,
    Platform,
    SimulatedExecutor,
    cpu_gpu_platform,
    edge_cluster_platform,
)
from repro.measurement.noise import NoNoise
from repro.offload import enumerate_algorithms, profiles_from_batch
from repro.search import (
    CostBudgetConstraint,
    DeadlineConstraint,
    DecisionObjective,
    EnergyBudgetConstraint,
    MaxOffloadedConstraint,
    MetricObjective,
    SpaceSearch,
    StreamingFrontier,
    StreamingTopK,
    WeightedSumObjective,
    as_objective,
    as_objectives,
    dominated_by,
    feasible_mask,
    pareto_mask,
    search_space,
)
from repro.selection import DecisionModel, dominates, pareto_front
from repro.tasks import GemmLoopTask, TaskChain


# ---------------------------------------------------------------------------
# Randomized platforms/chains (same idiom as tests/devices/test_batch.py)
# ---------------------------------------------------------------------------


def random_platform(rng: np.random.Generator, n_devices: int) -> Platform:
    aliases = ["D", "A", "B", "C"][:n_devices]
    devices = {
        alias: DeviceSpec(
            name=f"dev-{alias}",
            peak_gflops=float(rng.uniform(5.0, 500.0)),
            half_saturation_flops=float(rng.uniform(1e4, 1e7)),
            memory_bandwidth_gbs=float(rng.uniform(2.0, 200.0)),
            kernel_launch_overhead_s=float(rng.uniform(0.0, 1e-4)),
            task_startup_overhead_s=float(rng.uniform(0.0, 1e-3)),
            power_active_w=float(rng.uniform(1.0, 250.0)),
            power_idle_w=float(rng.uniform(0.1, 30.0)),
            cost_per_hour=float(rng.uniform(0.0, 2.0)),
        )
        for alias in aliases
    }
    links = {
        (a, b): LinkSpec(
            name=f"link-{a}{b}",
            bandwidth_gbs=float(rng.uniform(0.01, 10.0)),
            latency_s=float(rng.uniform(0.0, 1e-2)),
            energy_per_byte_j=float(rng.uniform(0.0, 1e-7)),
        )
        for i, a in enumerate(aliases)
        for b in aliases[i + 1 :]
    }
    return Platform(devices=devices, links=links, host=aliases[0], name="random")


def random_chain(rng: np.random.Generator, n_tasks: int) -> TaskChain:
    tasks = [
        GemmLoopTask(
            int(rng.integers(8, 96)),
            iterations=int(rng.integers(1, 4)),
            name=f"L{i + 1}",
        )
        for i in range(n_tasks)
    ]
    return TaskChain(tasks, name=f"random-{n_tasks}")


class HostHeavyConstraint:
    """A custom Constraint (no dataclass, no __eq__): host runs the first task."""

    def mask(self, batch):
        return batch.placements[:, 0] == 0


def brute_force_front(values: np.ndarray) -> np.ndarray:
    """Reference O(n**2) non-dominated mask via the pairwise ``dominates``."""
    n = values.shape[0]
    mask = np.ones(n, dtype=bool)
    for i in range(n):
        for j in range(n):
            if i != j and dominates(values[j], values[i]):
                mask[i] = False
                break
    return mask


# ---------------------------------------------------------------------------
# Dominance kernel
# ---------------------------------------------------------------------------


class TestParetoMask:
    @given(
        n=st.integers(1, 60),
        c=st.integers(1, 4),
        seed=st.integers(0, 2**32 - 1),
        quantize=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_brute_force(self, n, c, seed, quantize):
        rng = np.random.default_rng(seed)
        values = rng.uniform(0.0, 1.0, size=(n, c))
        if quantize:
            # Coarse grid: plenty of exact ties and duplicate rows.
            values = np.round(values * 4.0) / 4.0
        assert np.array_equal(pareto_mask(values), brute_force_front(values))

    def test_duplicates_of_front_rows_all_kept(self):
        values = np.array([[1.0, 2.0], [1.0, 2.0], [2.0, 1.0], [2.0, 2.0]])
        assert pareto_mask(values).tolist() == [True, True, True, False]

    def test_single_row_and_all_equal(self):
        assert pareto_mask(np.array([[3.0, 4.0]])).tolist() == [True]
        assert pareto_mask(np.full((5, 3), 7.0)).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            pareto_mask(np.zeros(4))
        with pytest.raises(ValueError):
            pareto_mask(np.zeros((3, 0)))
        with pytest.raises(ValueError):
            pareto_mask(np.array([[1.0, np.nan]]))
        assert pareto_mask(np.empty((0, 2))).shape == (0,)

    def test_infinite_values_are_ordered_like_the_pairwise_dominates(self):
        # +-inf is totally ordered; only NaN is rejected (the old pairwise
        # pareto_front accepted inf criteria, so the kernel must too).
        values = np.array([[1.0, 2.0], [np.inf, 0.0], [np.inf, 1.0], [-np.inf, 5.0]])
        assert np.array_equal(pareto_mask(values), brute_force_front(values))
        assert pareto_mask(values).tolist() == [True, True, False, True]

    @given(n=st.integers(1, 40), seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_dominated_by_matches_pairwise(self, n, seed):
        rng = np.random.default_rng(seed)
        front = rng.uniform(0.0, 1.0, size=(rng.integers(1, 6), 3))
        values = np.round(rng.uniform(0.0, 1.0, size=(n, 3)) * 4.0) / 4.0
        expected = np.array(
            [any(dominates(f, v) for f in front) for v in values], dtype=bool
        )
        assert np.array_equal(dominated_by(front, values), expected)


# ---------------------------------------------------------------------------
# Streaming accumulators: chunking/merge invariance
# ---------------------------------------------------------------------------


def random_partition(rng: np.random.Generator, n: int) -> list[slice]:
    cuts = sorted(rng.choice(np.arange(1, n), size=int(rng.integers(0, min(6, n - 1) + 1)), replace=False).tolist()) if n > 1 else []
    bounds = [0, *cuts, n]
    return [slice(a, b) for a, b in zip(bounds[:-1], bounds[1:])]


class TestStreamingTopK:
    @given(
        n=st.integers(1, 200),
        k=st.integers(1, 12),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_any_chunking_matches_global_sort(self, n, k, seed):
        rng = np.random.default_rng(seed)
        # Quantized values force ties across chunk boundaries.
        values = np.round(rng.uniform(0.0, 1.0, size=n) * 8.0) / 8.0
        indices = rng.permutation(n).astype(np.int64)
        order = np.lexsort((indices, values))[:k]

        top = StreamingTopK(k)
        for part in random_partition(rng, n):
            top.update(values[part], indices[part])
        assert np.array_equal(top.values, values[order])
        assert np.array_equal(top.indices, indices[order])

    @given(n=st.integers(2, 120), k=st.integers(1, 8), seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_shard_merge_associativity(self, n, k, seed):
        rng = np.random.default_rng(seed)
        values = np.round(rng.uniform(0.0, 1.0, size=n) * 8.0) / 8.0
        indices = np.arange(n, dtype=np.int64)

        serial = StreamingTopK(k)
        serial.update(values, indices)

        shards = []
        for part in random_partition(rng, n):
            shard = StreamingTopK(k)
            shard.update(values[part], indices[part])
            shards.append(shard)
        rng.shuffle(shards)
        merged = StreamingTopK(k)
        for shard in shards:
            merged.merge(shard)
        assert np.array_equal(merged.values, serial.values)
        assert np.array_equal(merged.indices, serial.indices)

    def test_tie_break_prefers_smaller_index(self):
        top = StreamingTopK(2)
        top.update(np.array([5.0, 5.0, 5.0]), np.array([30, 10, 20]))
        assert top.indices.tolist() == [10, 20]

    def test_boundary_ties_survive_the_partition_preshrink(self):
        # 100 equal values >> 4*k triggers the argpartition fast path; the
        # smallest indices must still win regardless of partition order.
        top = StreamingTopK(3)
        values = np.full(100, 1.0)
        indices = np.arange(100, dtype=np.int64)[::-1].copy()
        top.update(values, indices)
        assert top.indices.tolist() == [0, 1, 2]

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamingTopK(0)
        top = StreamingTopK(2)
        with pytest.raises(ValueError):
            top.update(np.zeros((2, 2)), np.zeros(2))
        with pytest.raises(ValueError):
            top.update(np.array([np.nan]), np.array([0]))
        with pytest.raises(ValueError):
            top.merge(StreamingTopK(3))
        top.update(np.empty(0), np.empty(0))
        assert len(top) == 0


class TestStreamingFrontier:
    @given(
        n=st.integers(1, 150),
        c=st.integers(1, 3),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_any_chunking_matches_global_mask(self, n, c, seed):
        rng = np.random.default_rng(seed)
        values = np.round(rng.uniform(0.0, 1.0, size=(n, c)) * 4.0) / 4.0
        indices = np.arange(n, dtype=np.int64)
        mask = pareto_mask(values)

        frontier = StreamingFrontier(c)
        for part in random_partition(rng, n):
            frontier.update(values[part], indices[part])
        assert np.array_equal(frontier.indices, indices[mask])
        assert np.array_equal(frontier.values, values[mask])

    @given(n=st.integers(2, 100), seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_shard_merge_associativity(self, n, seed):
        rng = np.random.default_rng(seed)
        values = np.round(rng.uniform(0.0, 1.0, size=(n, 2)) * 4.0) / 4.0
        indices = np.arange(n, dtype=np.int64)
        mask = pareto_mask(values)

        shards = []
        for part in random_partition(rng, n):
            shard = StreamingFrontier(2)
            shard.update(values[part], indices[part])
            shards.append(shard)
        rng.shuffle(shards)
        merged = StreamingFrontier(2)
        for shard in shards:
            merged.merge(shard)
        assert np.array_equal(merged.indices, indices[mask])
        assert np.array_equal(merged.values, values[mask])

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamingFrontier(0)
        frontier = StreamingFrontier(2)
        with pytest.raises(ValueError):
            frontier.update(np.zeros((3, 3)), np.zeros(3))
        with pytest.raises(ValueError):
            frontier.update(np.zeros((3, 2)), np.zeros(2))
        with pytest.raises(ValueError):
            frontier.merge(StreamingFrontier(3))
        frontier.update(np.empty((0, 2)), np.empty(0))
        assert len(frontier) == 0


# ---------------------------------------------------------------------------
# Objectives & constraints
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def small_space():
    platform = cpu_gpu_platform()
    executor = SimulatedExecutor(platform, noise=NoNoise(), seed=0)
    from repro.tasks import table1_chain

    chain = table1_chain(loop_size=5)
    algorithms = enumerate_algorithms(chain, platform)
    batch = executor.execute_batch(chain)
    profiles = profiles_from_batch(algorithms, batch)
    return platform, executor, chain, algorithms, batch, profiles


class TestObjectives:
    def test_as_objective_coercion(self, small_space):
        *_, batch, _ = small_space
        assert np.array_equal(as_objective("energy")(batch), batch.energy_total_j)
        objective = MetricObjective("cost")
        assert as_objective(objective) is objective
        with pytest.raises(TypeError):
            as_objective(123)
        with pytest.raises(ValueError):
            as_objectives(("time", "time"))

    def test_weighted_sum(self, small_space):
        *_, batch, _ = small_space
        objective = WeightedSumObjective(1.0, 2.0, 3.0)
        expected = batch.total_time_s + 2.0 * batch.energy_total_j + 3.0 * batch.operating_cost
        assert np.allclose(objective(batch), expected)
        with pytest.raises(ValueError):
            WeightedSumObjective(time_weight=-1.0)

    def test_decision_objective_matches_model(self, small_space):
        *_, batch, profiles = small_space
        model = DecisionModel(cost_weight=250.0)
        values = DecisionObjective(model)(batch)
        for index, label in enumerate(batch.labels()):
            assert values[index] == model.objective(profiles[label], 1.0)


class TestConstraints:
    def test_masks_match_profile_filters(self, small_space):
        *_, batch, profiles = small_space
        labels = batch.labels()
        deadline = float(np.median(batch.total_time_s))
        energy = float(np.median(batch.energy_total_j))
        for constraint, predicate in [
            (DeadlineConstraint(deadline), lambda p: p.time_s <= deadline),
            (EnergyBudgetConstraint(energy), lambda p: p.energy_j <= energy),
            (CostBudgetConstraint(0.0), lambda p: p.operating_cost <= 0.0),
        ]:
            mask = constraint.mask(batch)
            for index, label in enumerate(labels):
                assert mask[index] == predicate(profiles[label])

    def test_max_offloaded_matches_placements(self, small_space):
        _, _, _, algorithms, batch, _ = small_space
        mask = MaxOffloadedConstraint(1).mask(batch)
        for index, algorithm in enumerate(algorithms):
            assert mask[index] == (algorithm.placement.n_offloaded("D") <= 1)

    def test_n_offloaded_host_variants(self, small_space):
        *_, batch, _ = small_space
        # Counting relative to the accelerator: "offloaded" = not on A.
        relative_to_a = batch.n_offloaded("A")
        for index, label in enumerate(batch.labels()):
            assert relative_to_a[index] == sum(1 for ch in label if ch != "A")
        with pytest.raises(KeyError):
            batch.n_offloaded("Z")

    def test_feasible_mask_all_and_validation(self, small_space):
        *_, batch, _ = small_space
        assert feasible_mask(batch, ()).all()
        both = feasible_mask(
            batch, (MaxOffloadedConstraint(2), CostBudgetConstraint(0.0))
        )
        expected = MaxOffloadedConstraint(2).mask(batch) & CostBudgetConstraint(0.0).mask(batch)
        assert np.array_equal(both, expected)
        with pytest.raises(ValueError):
            DeadlineConstraint(0.0)
        with pytest.raises(ValueError):
            EnergyBudgetConstraint(-1.0)
        with pytest.raises(ValueError):
            CostBudgetConstraint(-0.5)
        with pytest.raises(ValueError):
            MaxOffloadedConstraint(-1)


# ---------------------------------------------------------------------------
# Streaming search vs materialize-then-select (property-style equivalence)
# ---------------------------------------------------------------------------


class TestStreamingMatchesMaterialized:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5])
    def test_randomized_spaces(self, seed):
        rng = np.random.default_rng(seed)
        n_devices = int(rng.integers(2, 4))
        n_tasks = int(rng.integers(3, 6))
        platform = random_platform(rng, n_devices)
        chain = random_chain(rng, n_tasks)
        executor = SimulatedExecutor(platform, noise=NoNoise(), seed=seed)

        algorithms = enumerate_algorithms(chain, platform)
        batch = executor.execute_batch(chain)
        profiles = profiles_from_batch(algorithms, batch)

        batch_size = int(rng.integers(1, len(algorithms) + 1))
        k = int(rng.integers(1, len(algorithms) + 1))
        result = search_space(
            executor,
            chain,
            objectives=("time", "energy", "cost"),
            top_k=k,
            batch_size=batch_size,
        )

        # Frontier: element-for-element identical to the materialized facade.
        front = pareto_front(profiles)
        assert set(result.frontier.labels) == set(front)
        for label, values in result.frontier.as_dict().items():
            assert values["time"] == front[label]["time_s"]
            assert values["energy"] == front[label]["energy_j"]
            assert values["cost"] == front[label]["operating_cost"]

        # Top-K: identical to brute-force selection over the profiles.
        extract = {
            "time": lambda p: p.time_s,
            "energy": lambda p: p.energy_j,
            "cost": lambda p: p.operating_cost,
        }
        for metric, fn in extract.items():
            brute = np.sort(np.array([fn(p) for p in profiles.values()]))[:k]
            assert np.array_equal(result.top[metric].values, brute)
            for label, value in zip(result.top[metric].labels, result.top[metric].values):
                assert fn(profiles[label]) == value

    @pytest.mark.parametrize("seed", [10, 11, 12])
    def test_randomized_spaces_with_constraints(self, seed):
        rng = np.random.default_rng(seed)
        platform = random_platform(rng, int(rng.integers(2, 4)))
        chain = random_chain(rng, int(rng.integers(3, 5)))
        executor = SimulatedExecutor(platform, noise=NoNoise(), seed=seed)

        algorithms = enumerate_algorithms(chain, platform)
        batch = executor.execute_batch(chain)
        profiles = profiles_from_batch(algorithms, batch)

        deadline = float(np.quantile(batch.total_time_s, 0.7))
        max_off = int(rng.integers(0, len(chain) + 1))
        constraints = (DeadlineConstraint(deadline), MaxOffloadedConstraint(max_off))
        feasible = {
            label: profile
            for (label, profile), algorithm in zip(profiles.items(), algorithms)
            if profile.time_s <= deadline
            and algorithm.placement.n_offloaded(platform.host) <= max_off
        }

        result = search_space(
            executor,
            chain,
            objectives=("time",),
            top_k=3,
            constraints=constraints,
            batch_size=int(rng.integers(1, 10)),
        )
        assert result.n_evaluated == len(algorithms)
        assert result.n_feasible == len(feasible)
        if not feasible:
            assert len(result.top["time"]) == 0
            assert len(result.frontier) == 0
            with pytest.raises(ValueError):
                result.best("time")
            return
        front = pareto_front(feasible)
        assert set(result.frontier.labels) == set(front)
        brute = np.sort(np.array([p.time_s for p in feasible.values()]))[:3]
        assert np.array_equal(result.top["time"].values, brute)

    def test_sharded_sweep_identical_to_serial(self):
        rng = np.random.default_rng(99)
        platform = random_platform(rng, 3)
        chain = random_chain(rng, 5)
        executor = SimulatedExecutor(platform, noise=NoNoise(), seed=0)

        serial = search_space(
            executor, chain, objectives=("time", "energy"), top_k=7, batch_size=50
        )
        for start_stops in ([(0, 100), (100, 243)], [(0, 81), (81, 150), (150, 243)]):
            merged = None
            for start, stop in start_stops:
                shard = SpaceSearch(objectives=("time", "energy"), top_k=7)
                cursor = start
                for chunk in executor.iter_execute_batches(
                    chain, batch_size=37, start=start, stop=stop
                ):
                    shard.update(chunk, start_index=cursor)
                    cursor += len(chunk)
                if merged is None:
                    merged = shard
                else:
                    merged.merge(shard)
            result = merged.result()
            assert np.array_equal(result.frontier.indices, serial.frontier.indices)
            for metric in ("time", "energy"):
                assert np.array_equal(result.top[metric].indices, serial.top[metric].indices)
                assert np.array_equal(result.top[metric].values, serial.top[metric].values)
            assert result.n_evaluated == serial.n_evaluated == 243

    def test_multiprocess_driver_matches_serial(self):
        platform = cpu_gpu_platform()
        executor = SimulatedExecutor(platform, noise=NoNoise(), seed=0)
        rng = np.random.default_rng(7)
        chain = random_chain(rng, 7)  # 2**7 = 128 placements
        serial = search_space(executor, chain, top_k=5, batch_size=13)
        parallel = search_space(executor, chain, top_k=5, batch_size=13, n_workers=3)
        assert np.array_equal(parallel.top["time"].indices, serial.top["time"].indices)
        assert np.array_equal(parallel.top["time"].values, serial.top["time"].values)
        assert np.array_equal(parallel.frontier.indices, serial.frontier.indices)
        assert parallel.n_evaluated == serial.n_evaluated == 128
        assert parallel.frontier.labels == serial.frontier.labels


# ---------------------------------------------------------------------------
# Driver API surface
# ---------------------------------------------------------------------------


class TestSearchSpaceAPI:
    def test_range_validation_and_summary(self, small_space):
        platform, executor, chain, *_ = small_space
        with pytest.raises(ValueError):
            search_space(executor, chain, start=5, stop=3)
        with pytest.raises(ValueError):
            search_space(executor, chain, start=2, stop=2)
        result = search_space(executor, chain, start=0, stop=4, top_k=2)
        assert result.n_evaluated == 4
        assert "4 of 8 placements" in result.summary()
        assert result.space_size == 8

    def test_best_requires_unambiguous_objective(self, small_space):
        _, executor, chain, *_ = small_space
        result = search_space(executor, chain, objectives=("time", "energy"), top_k=1)
        with pytest.raises(ValueError):
            result.best()
        assert result.best("time") == result.top["time"].labels[0]
        single = search_space(executor, chain, top_k=1)
        assert single.best() == single.best("time")

    def test_spacesearch_guards(self, small_space):
        *_, batch, _ = small_space
        with pytest.raises(ValueError):
            SpaceSearch(top_k=0, frontier=None)
        with pytest.raises(ValueError):
            SpaceSearch(top_k=-1)
        search = SpaceSearch(top_k=2)
        with pytest.raises(ValueError):
            search.result()  # nothing fed yet
        search.update(batch)
        other = SpaceSearch(top_k=3)
        with pytest.raises(ValueError):
            search.merge(other)
        different = SpaceSearch(objectives=("energy",), top_k=2)
        with pytest.raises(ValueError):
            search.merge(different)
        constrained = SpaceSearch(top_k=2, constraints=(MaxOffloadedConstraint(1),))
        with pytest.raises(ValueError):
            search.merge(constrained)

    def test_custom_constraint_survives_sharded_merge(self, small_space):
        """Identity-only equality must not spuriously reject cross-process merges."""
        platform, executor, chain, _, batch, _ = small_space
        serial = search_space(
            executor, chain, top_k=3, constraints=(HostHeavyConstraint(),)
        )
        sharded = search_space(
            executor, chain, top_k=3, constraints=(HostHeavyConstraint(),), n_workers=2
        )
        assert sharded.n_feasible == serial.n_feasible == 4
        assert sharded.top["time"].labels == serial.top["time"].labels
        # ... while genuinely different dataclass constraints are still rejected:
        one = SpaceSearch(top_k=2, constraints=(DeadlineConstraint(1.0),))
        two = SpaceSearch(top_k=2, constraints=(DeadlineConstraint(2.0),))
        one.update(batch)
        with pytest.raises(ValueError):
            one.merge(two)

    def test_mismatched_space_rejected(self, small_space):
        platform, executor, chain, _, batch, _ = small_space
        search = SpaceSearch(top_k=2)
        search.update(batch)
        other_platform = edge_cluster_platform()
        other_executor = SimulatedExecutor(other_platform, noise=NoNoise(), seed=0)
        rng = np.random.default_rng(0)
        other_batch = other_executor.execute_batch(random_chain(rng, 3))
        with pytest.raises(ValueError):
            search.update(other_batch)

    def test_result_is_read_only_but_picklable(self, small_space):
        import copy
        import pickle

        _, executor, chain, *_ = small_space
        result = search_space(executor, chain, top_k=2)
        with pytest.raises(TypeError):
            result.top["time"] = None  # type: ignore[index]
        for clone in (pickle.loads(pickle.dumps(result)), copy.deepcopy(result)):
            assert clone.top["time"].labels == result.top["time"].labels
            assert np.array_equal(clone.frontier.indices, result.frontier.indices)
            with pytest.raises(TypeError):
                clone.top["time"] = None  # type: ignore[index]

    def test_nan_relative_scores_rejected_in_batch_objective(self, small_space):
        *_, batch, _ = small_space
        model = DecisionModel(score_penalty=1.0)
        with pytest.raises(ValueError):
            model.batch_objective(batch, relative_scores=np.full(len(batch), np.nan))

    def test_frontier_disabled(self, small_space):
        _, executor, chain, *_ = small_space
        result = search_space(executor, chain, top_k=3, frontier=None)
        assert result.frontier is None
        assert "top-3 by time" in result.summary()

    def test_decision_objective_end_to_end(self, small_space):
        _, executor, chain, _, batch, profiles = small_space
        model = DecisionModel(cost_weight=1e6)
        result = search_space(
            executor, chain, objectives=(DecisionObjective(model),), top_k=1
        )
        brute = min(
            profiles, key=lambda label: (model.objective(profiles[label], 1.0), label)
        )
        assert result.best("decision") == brute
