"""Tests for robust objectives, the streaming grid search and robust selection.

Guarantees pinned here: the streaming :func:`search_grid` selects exactly what
a materialised full-grid reduction selects, is invariant to chunk size, honours
robust feasibility (all scenarios), and the :class:`RobustDecisionModel`
composes with the existing :class:`DecisionModel` objective arithmetic.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.devices import (
    ChainCostTables,
    SimulatedExecutor,
    edge_cluster_platform,
    execute_placements_grid,
    lte,
    wifi_ac,
)
from repro.measurement.noise import NoNoise
from repro.offload import placement_matrix
from repro.scenarios import (
    DeviceLoadFactor,
    LinkBandwidthScale,
    Scenario,
    ScenarioGrid,
    link_degradation_grid,
)
from repro.search import (
    DeadlineConstraint,
    EnergyBudgetConstraint,
    ExpectedValueObjective,
    QuantileObjective,
    RegretObjective,
    SLOObjective,
    WorstCaseObjective,
    as_robust_objectives,
    search_grid,
)
from repro.selection import DecisionModel, RobustDecisionModel
from repro.tasks import RegularizedLeastSquaresTask, TaskChain

RADIO = (("D", "E"), ("D", "A"), ("N", "E"), ("N", "A"), ("E", "A"))


def drift_chain(n_tasks: int = 4) -> TaskChain:
    tasks = [
        RegularizedLeastSquaresTask(
            size=60 + 80 * i, iterations=12, name=f"L{i + 1}", generate_on_host=False
        )
        for i in range(n_tasks)
    ]
    return TaskChain(tasks, name=f"robust-test-{n_tasks}")


@pytest.fixture(scope="module")
def setup():
    platform = edge_cluster_platform()
    chain = drift_chain()
    scenarios = link_degradation_grid(RADIO, start=wifi_ac(), end=lte(), n_points=4)
    executor = SimulatedExecutor(platform, noise=NoNoise(), seed=0)
    tables = ChainCostTables.build_grid(chain, scenarios.platforms(platform))
    grid = execute_placements_grid(tables, placement_matrix(len(chain), 4))
    return platform, chain, scenarios, executor, grid


class TestRobustObjectives:
    def test_worst_case_reduces_to_scenario_maximum(self, setup):
        *_, grid = setup
        values = WorstCaseObjective()(grid)
        assert np.array_equal(values, grid.total_time_s.max(axis=0))
        assert WorstCaseObjective().name == "worst-time"
        assert WorstCaseObjective(base="energy").name == "worst-energy"

    def test_expected_value_uniform_and_weighted(self, setup):
        *_, grid = setup
        uniform = ExpectedValueObjective()(grid)
        assert np.allclose(uniform, grid.total_time_s.mean(axis=0))
        weights = (4.0, 2.0, 1.0, 1.0)
        weighted = ExpectedValueObjective(weights=weights)(grid)
        expected = np.array(weights) @ grid.total_time_s / sum(weights)
        assert np.array_equal(weighted, expected)
        with pytest.raises(ValueError):
            ExpectedValueObjective(weights=(-1.0, 2.0, 1.0, 1.0))
        with pytest.raises(ValueError):
            ExpectedValueObjective(weights=(1.0,))(grid)

    def test_regret_measures_gap_to_scenario_best(self, setup):
        *_, grid = setup
        values = RegretObjective()(grid)
        times = grid.total_time_s
        expected = (times - times.min(axis=1)[:, None]).max(axis=0)
        assert np.array_equal(values, expected)
        # Each scenario's own winner has zero regret in that scenario, so the
        # minimum possible regret is bounded by the drift between winners.
        assert values.min() >= 0.0
        with pytest.raises(ValueError, match="baselines"):
            RegretObjective().reduce(times, None)

    def test_base_name_collisions_are_rejected(self, setup):
        """Two objectives whose *different* bases share a name must not silently
        share one values computation (chunk values are keyed by base name)."""
        platform, chain, scenarios, executor, _ = setup
        from repro.search import WeightedSumObjective

        disguised = WeightedSumObjective(time_weight=1.0, energy_weight=1.0, label="time")
        with pytest.raises(ValueError, match="disagree on the base objective"):
            search_grid(
                executor,
                chain,
                scenarios,
                objectives=(WorstCaseObjective(base="time"), RegretObjective(base=disguised)),
            )
        # Sharing the same base under one name stays fine.
        result = search_grid(
            executor,
            chain,
            scenarios,
            objectives=(WorstCaseObjective(base="time"), RegretObjective(base="time")),
            top_k=2,
        )
        assert set(result.top) == {"worst-time", "regret-time"}

    def test_as_robust_objectives_coercion(self):
        objectives = as_robust_objectives(("time", WorstCaseObjective(base="energy")))
        assert [objective.name for objective in objectives] == ["worst-time", "worst-energy"]
        with pytest.raises(ValueError, match="unique"):
            as_robust_objectives((WorstCaseObjective(), "time"))
        with pytest.raises(TypeError):
            as_robust_objectives((123,))

    def test_objectives_are_picklable(self):
        for objective in (
            WorstCaseObjective(),
            ExpectedValueObjective(weights=(1.0, 2.0)),
            RegretObjective(base="energy"),
        ):
            assert pickle.loads(pickle.dumps(objective)) == objective


class TestSearchGrid:
    def test_matches_materialized_reduction(self, setup):
        platform, chain, scenarios, executor, grid = setup
        result = search_grid(
            executor,
            chain,
            scenarios,
            objectives=(WorstCaseObjective(), ExpectedValueObjective(), RegretObjective()),
            top_k=7,
            batch_size=50,
        )
        labels = grid.labels()
        times = grid.total_time_s
        for name, reduced in [
            ("worst-time", times.max(axis=0)),
            ("expected-time", times.mean(axis=0)),
            ("regret-time", (times - times.min(axis=1)[:, None]).max(axis=0)),
        ]:
            order = np.argsort(reduced, kind="stable")[:7]
            assert list(result.top[name].labels) == [labels[i] for i in order]
            assert np.allclose(result.top[name].values, reduced[order])
        assert result.n_evaluated == len(labels)
        assert result.n_feasible == len(labels)
        # Per-scenario winners (the drift view) match the grid argmin.
        drift = result.scenario_best["time"]
        assert list(drift.labels) == [labels[int(i)] for i in times.argmin(axis=1)]
        assert np.array_equal(drift.values, times.min(axis=1))
        assert drift.drift() == dict(zip(scenarios.names, drift.labels))
        # Regret baselines are the per-scenario minima.
        assert np.array_equal(result.baselines["time"], times.min(axis=1))

    def test_chunking_invariance(self, setup):
        platform, chain, scenarios, executor, _ = setup
        results = [
            search_grid(
                executor,
                chain,
                scenarios,
                objectives=(WorstCaseObjective(), RegretObjective()),
                top_k=5,
                batch_size=batch_size,
            )
            for batch_size in (7, 64, 10_000)
        ]
        for other in results[1:]:
            for name in ("worst-time", "regret-time"):
                assert np.array_equal(other.top[name].indices, results[0].top[name].indices)
                assert np.array_equal(other.top[name].values, results[0].top[name].values)

    def test_range_slicing(self, setup):
        platform, chain, scenarios, executor, grid = setup
        result = search_grid(
            executor, chain, scenarios, top_k=3, start=32, stop=160, batch_size=17
        )
        times = grid.total_time_s[:, 32:160].max(axis=0)
        order = np.argsort(times, kind="stable")[:3] + 32
        assert np.array_equal(result.top["worst-time"].indices, order)
        assert result.n_evaluated == 128
        with pytest.raises(ValueError):
            search_grid(executor, chain, scenarios, start=10, stop=10)
        with pytest.raises(ValueError):
            search_grid(executor, chain, scenarios, start=0, stop=10**9)

    def test_robust_feasibility_requires_every_scenario(self, setup):
        platform, chain, scenarios, executor, grid = setup
        # Pick a deadline between the best worst-case and the best per-scenario
        # time: some placements are feasible in good scenarios but not bad ones.
        times = grid.total_time_s
        deadline = float(np.quantile(times.max(axis=0), 0.3))
        result = search_grid(
            executor,
            chain,
            scenarios,
            constraints=(DeadlineConstraint(max_time_s=deadline),),
            top_k=5,
            batch_size=64,
        )
        feasible = (times <= deadline).all(axis=0)
        assert result.n_feasible == int(feasible.sum())
        expected_best = times.max(axis=0).copy()
        expected_best[~feasible] = np.inf
        assert result.top["worst-time"].indices[0] == int(np.argmin(expected_best))
        # Regret baselines also come from the robust-feasible set only.
        regret_result = search_grid(
            executor,
            chain,
            scenarios,
            objectives=(RegretObjective(),),
            constraints=(DeadlineConstraint(max_time_s=deadline),),
            batch_size=64,
        )
        assert np.array_equal(
            regret_result.baselines["time"], times[:, feasible].min(axis=1)
        )

    def test_infeasible_everything(self, setup):
        platform, chain, scenarios, executor, _ = setup
        result = search_grid(
            executor,
            chain,
            scenarios,
            objectives=(WorstCaseObjective(), RegretObjective()),
            constraints=(EnergyBudgetConstraint(max_energy_j=1e-12),),
        )
        assert result.n_feasible == 0
        assert len(result.top["worst-time"]) == 0
        assert not result.scenario_best
        with pytest.raises(ValueError, match="no feasible"):
            result.best("worst-time")

    def test_scenario_list_and_weight_binding(self, setup):
        platform, chain, scenarios, executor, grid = setup
        weighted = ScenarioGrid(
            scenarios=tuple(
                Scenario(s.name, settings=s.settings, weight=w)
                for s, w in zip(scenarios, (8.0, 4.0, 2.0, 1.0))
            )
        )
        result = search_grid(
            executor, chain, weighted, objectives=(ExpectedValueObjective(),), top_k=3
        )
        weights = np.array([8.0, 4.0, 2.0, 1.0])
        expected = weights @ grid.total_time_s / weights.sum()
        order = np.argsort(expected, kind="stable")[:3]
        assert np.array_equal(result.top["expected-time"].indices, order)
        # A bare scenario sequence works too; junk does not.
        listed = search_grid(executor, chain, list(scenarios), top_k=1)
        assert listed.n_evaluated == len(grid.labels())
        with pytest.raises(TypeError):
            search_grid(executor, chain, ["not-a-scenario"])
        with pytest.raises(ValueError):
            search_grid(executor, chain, [])

    def test_result_pickles_and_summarises(self, setup):
        platform, chain, scenarios, executor, _ = setup
        result = search_grid(executor, chain, scenarios, top_k=3)
        clone = pickle.loads(pickle.dumps(result))
        assert clone.best("worst-time") == result.best("worst-time")
        text = result.summary()
        assert "per-scenario winners" in text and "worst-time" in text
        assert result.best() == result.best("worst-time")


class TestRobustDecisionModel:
    def test_worst_case_composes_with_decision_objective(self, setup):
        *_, grid = setup
        model = DecisionModel(cost_weight=500.0)
        robust = RobustDecisionModel(model=model, criterion="worst_case")
        decision = robust.decide_grid(grid)
        per_scenario = np.stack(
            [model.batch_objective(batch) for batch in grid.batches()], axis=0
        )
        worst = per_scenario.max(axis=0)
        labels = grid.labels()
        best = int(np.argmin(worst))
        assert decision.label == labels[best] or worst[labels.index(decision.label)] == worst[best]
        assert decision.objective == float(worst.min())
        assert len(decision.per_scenario) == grid.n_scenarios
        assert decision.cluster is None and decision.relative_score is None
        assert "worst_case" in decision.summary()

    def test_expected_and_regret_criteria(self, setup):
        *_, grid = setup
        model = DecisionModel()
        values = np.stack([model.batch_objective(b) for b in grid.batches()], axis=0)
        expected = RobustDecisionModel(model=model, criterion="expected").decide_grid(grid)
        assert expected.objective == pytest.approx(float(values.mean(axis=0).min()))
        regret = RobustDecisionModel(model=model, criterion="regret").decide_grid(grid)
        regrets = (values - values.min(axis=1)[:, None]).max(axis=0)
        assert regret.objective == float(regrets.min())
        weighted = RobustDecisionModel(
            model=model, criterion="expected", weights=(4.0, 2.0, 1.0, 1.0)
        ).decide_grid(grid)
        weights = np.array((4.0, 2.0, 1.0, 1.0))
        assert weighted.objective == pytest.approx(
            float((weights @ values / weights.sum()).min())
        )
        with pytest.raises(ValueError, match="criterion"):
            RobustDecisionModel(criterion="hope")

    def test_decide_grid_with_clustering(self, setup):
        platform, chain, scenarios, executor, grid = setup
        from repro.experiments import default_analyzer

        # Cluster a small candidate subset measured on the base platform.
        labels = grid.labels()
        candidates = [0, 1, 4, 16, 64]
        batch = executor.execute_batch(chain, [labels[i] for i in candidates])
        noisy = SimulatedExecutor(platform, seed=3)
        measurements = noisy.measure_batch(
            noisy.execute_batch(chain, [labels[i] for i in candidates]), repetitions=20
        )
        analysis = default_analyzer(seed=0, repetitions=30, n_measurements=20, stochastic=False).analyze(
            measurements
        )
        model = DecisionModel(cost_weight=100.0, score_penalty=0.05)
        robust = RobustDecisionModel(model=model, criterion="worst_case")
        decision = robust.decide_grid(grid, analysis.final)
        # Candidates restricted to the clustered labels; penalty applied.
        assert str(decision.label) in {labels[i] for i in candidates}
        assert set(map(str, decision.objectives)) == {labels[i] for i in candidates}
        assert decision.cluster is not None and 0.0 <= decision.relative_score <= 1.0
        values = np.stack([model.batch_objective(b) for b in grid.batches()], axis=0)
        rows = [labels.index(str(label)) for label in decision.objectives]
        scores = np.array([analysis.final.score_of(label) for label in decision.objectives])
        manual = (values[:, rows] + model.score_penalty * (1.0 - scores)[None, :]).max(axis=0)
        assert decision.objective == pytest.approx(float(manual.min()))
        missing_clustering = analysis.final
        with pytest.raises(KeyError, match="missing grid placements"):
            tiny = execute_placements_grid(
                grid.tables, np.zeros((1, len(chain)), dtype=np.intp)
            )
            robust.decide_grid(tiny, missing_clustering)

    def test_quantile_and_slo_criteria(self, setup):
        *_, grid = setup
        model = DecisionModel()
        values = np.stack([model.batch_objective(b) for b in grid.batches()], axis=0)
        quantile = RobustDecisionModel(
            model=model, criterion="quantile", q=0.75
        ).decide_grid(grid)
        assert quantile.objective == float(QuantileObjective(q=0.75).reduce(values).min())
        budget = float(np.median(values))
        slo = RobustDecisionModel(
            model=model, criterion="slo", slo_budget=budget
        ).decide_grid(grid)
        assert slo.objective == pytest.approx(
            float(SLOObjective(budget=budget).reduce(values).min())
        )
        assert 0.0 <= slo.objective <= 1.0

    def test_fleet_criteria_validate_their_parameters_early(self):
        with pytest.raises(ValueError, match="quantile q"):
            RobustDecisionModel(criterion="quantile", q=1.5)
        with pytest.raises(ValueError, match="slo_budget"):
            RobustDecisionModel(criterion="slo")
        with pytest.raises(ValueError, match="budget"):
            RobustDecisionModel(criterion="slo", slo_budget=float("inf"))

    def test_robust_decision_pickles(self, setup):
        *_, grid = setup
        decision = RobustDecisionModel().decide_grid(grid)
        clone = pickle.loads(pickle.dumps(decision))
        assert clone.label == decision.label
        assert dict(clone.per_scenario) == dict(decision.per_scenario)
        with pytest.raises(TypeError):
            clone.objectives["DDDD"] = 0.0  # read-only snapshot
