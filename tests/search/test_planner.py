"""Differential tests pinning the exact planner to the brute-force enumerators.

The planner's claim is strong -- a provably-*optimal* placement without
enumerating ``m**k`` -- so every guarantee is pinned against exhaustive
enumeration on randomized spaces small enough to enumerate:

* chain DP optimum == brute-force minimum, **bitwise**, across random
  platforms, chains, objectives and device subsets (hypothesis-driven),
  including the degenerate corners: 1 task, 1 device, missing links and fully
  infeasible spaces;
* placement equivalence is *tie-aware*: the DP may pick any cost-minimal
  placement, so the pinned property is that re-scoring the DP's winner
  through the engine reproduces the enumerated minimum exactly;
* the DAG level-DP matches enumeration on barrier-decomposable graphs and
  falls back (with the reason recorded) on graphs it cannot decompose;
* the robust grid planner matches ``search_grid``'s streamed top-1 for
  worst-case and regret bitwise, and the per-scenario DP baselines are
  bitwise the streamed baseline pass;
* the ``search_space(..., method=...)`` dispatch and ``search_grid``'s
  ``n_workers`` sharding / ``baseline_method`` switch change nothing about
  the selected values.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices import Platform, SimulatedExecutor
from repro.scenarios import DvfsFrequencyScale, LinkBandwidthScale, Scenario
from repro.search import (
    DeadlineConstraint,
    DecisionObjective,
    ExpectedValueObjective,
    GridPlanResult,
    MetricObjective,
    PlanResult,
    RegretObjective,
    WeightedSumObjective,
    WorstCaseObjective,
    as_objective,
    grid_baselines,
    plan_grid,
    plan_workload,
    planner_objective_weights,
    search_grid,
    search_space,
)
from repro.search.planner import decomposable_levels
from repro.tasks import TaskGraph
from repro.tasks.workloads import fork_join_graph

from factories import random_chain, random_graph, random_platform
from repro.selection import DecisionModel

OBJECTIVES = (
    "time",
    "energy",
    "cost",
    WeightedSumObjective(1.0, 0.25, 3.0),
)


def gapped_platform(rng: np.random.Generator, n_devices: int) -> Platform:
    """A random platform with the A-B link removed (missing-link infeasibility)."""
    base = random_platform(rng, n_devices)
    links = {pair: link for pair, link in base.links.items() if set(pair) != {"A", "B"}}
    return Platform(devices=base.devices, links=links, host=base.host, name="gapped")


def sequential_minimum(executor, workload, objective):
    """Brute-force minimum via per-placement sequential execution.

    Tolerates missing links (the batch engine raises on them), so it is the
    reference for infeasible-placement spaces; returns ``None`` when no
    placement is feasible.
    """
    from repro.offload import placement_matrix

    tables = executor.cost_tables(workload)
    objective = as_objective(objective)
    best = None
    for row in placement_matrix(tables.n_tasks, tables.n_devices):
        try:
            batch = executor.execute_batch(workload, row[None, :].astype(np.intp))
        except KeyError:
            continue
        value = float(objective(batch)[0])
        if best is None or value < best:
            best = value
    return best


def random_scenarios(rng: np.random.Generator, n: int) -> list[Scenario]:
    out = []
    for i in range(n):
        settings_ = []
        if rng.random() < 0.8:
            settings_.append((LinkBandwidthScale(), float(rng.uniform(0.3, 1.5))))
        if rng.random() < 0.5:
            settings_.append((DvfsFrequencyScale(), float(rng.uniform(0.5, 1.0))))
        out.append(
            Scenario(name=f"s{i}", settings=tuple(settings_), weight=float(rng.uniform(0.5, 2.0)))
        )
    return out


class TestChainPlanner:
    @given(
        n_devices=st.integers(1, 4),
        n_tasks=st.integers(1, 6),
        objective_index=st.integers(0, len(OBJECTIVES) - 1),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_dp_optimum_is_bitwise_the_brute_force_minimum(
        self, n_devices, n_tasks, objective_index, seed
    ):
        rng = np.random.default_rng(seed)
        executor = SimulatedExecutor(random_platform(rng, n_devices))
        chain = random_chain(rng, n_tasks)
        objective = as_objective(OBJECTIVES[objective_index])
        brute = float(objective(executor.execute_batch(chain)).min())
        plan = plan_workload(executor, chain, objective, method="dp")
        assert plan.method == "chain-dp"
        assert plan.exact
        # Tie-aware equivalence: the engine value of the DP's placement IS the
        # enumerated minimum (any cost-minimal placement is acceptable).
        assert plan.value == brute

    @given(
        n_devices=st.integers(2, 4),
        subset_size=st.integers(1, 3),
        n_tasks=st.integers(1, 5),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_device_subsets_restrict_the_planned_space(
        self, n_devices, subset_size, n_tasks, seed
    ):
        rng = np.random.default_rng(seed)
        platform = random_platform(rng, n_devices)
        executor = SimulatedExecutor(platform)
        chain = random_chain(rng, n_tasks)
        subset = list(platform.aliases)[: min(subset_size, n_devices)]
        brute = executor.execute_batch(chain, devices=subset).total_time_s.min()
        plan = plan_workload(executor, chain, "time", devices=subset)
        assert plan.aliases == tuple(subset)
        assert plan.value == float(brute)
        assert set(plan.placement) <= set(subset)

    @given(seed=st.integers(0, 2**32 - 1), n_tasks=st.integers(1, 5))
    @settings(max_examples=25, deadline=None)
    def test_missing_links_route_around_or_raise(self, seed, n_tasks):
        rng = np.random.default_rng(seed)
        executor = SimulatedExecutor(gapped_platform(rng, 3))
        chain = random_chain(rng, n_tasks)
        brute = sequential_minimum(executor, chain, "time")
        if brute is None:
            with pytest.raises(KeyError, match="no feasible placement"):
                plan_workload(executor, chain, "time")
        else:
            plan = plan_workload(executor, chain, "time")
            assert plan.value == brute

    def test_single_task_single_device(self):
        rng = np.random.default_rng(3)
        executor = SimulatedExecutor(random_platform(rng, 1))
        chain = random_chain(rng, 1)
        plan = plan_workload(executor, chain, "time")
        assert plan.placement == ("D",)
        assert plan.space_size == 1
        assert plan.value == executor.execute(chain, "D").total_time_s

    def test_plan_result_metadata_round_trips(self):
        rng = np.random.default_rng(4)
        executor = SimulatedExecutor(random_platform(rng, 3))
        chain = random_chain(rng, 4)
        plan = plan_workload(executor, chain, "energy")
        assert isinstance(plan, PlanResult)
        assert plan.objective == "energy"
        assert plan.space_size == 3**4
        # placement_index encodes the placement lexicographically
        # (most-significant digit = task 0), matching placement_matrix.
        from repro.offload import indices_to_matrix

        row = indices_to_matrix(
            np.array([plan.placement_index], dtype=np.int64), 4, 3
        )[0]
        assert tuple(plan.aliases[d] for d in row) == plan.placement
        record = plan.record()
        assert record.total_time_s == plan.batch.total_time_s[0]
        assert "exact optimum" in plan.summary()

    def test_dp_value_is_bitwise_for_time(self):
        rng = np.random.default_rng(5)
        executor = SimulatedExecutor(random_platform(rng, 4))
        chain = random_chain(rng, 6)
        plan = plan_workload(executor, chain, "time")
        assert plan.dp_value == plan.value

    def test_non_additive_objective_falls_back_to_enumeration(self):
        rng = np.random.default_rng(6)
        executor = SimulatedExecutor(random_platform(rng, 2))
        chain = random_chain(rng, 3)
        objective = DecisionObjective(DecisionModel(cost_weight=0.5))
        assert planner_objective_weights(objective) is None
        plan = plan_workload(executor, chain, objective)
        assert plan.method == "enumeration"
        assert plan.fallback_reason is not None
        brute = float(objective(executor.execute_batch(chain)).min())
        assert plan.value == brute
        with pytest.raises(ValueError, match="method='dp' cannot plan"):
            plan_workload(executor, chain, objective, method="dp")

    def test_fallback_limit_bounds_the_enumeration_escape(self):
        rng = np.random.default_rng(7)
        executor = SimulatedExecutor(random_platform(rng, 3))
        chain = random_chain(rng, 4)
        objective = DecisionObjective(DecisionModel(cost_weight=0.5))
        with pytest.raises(ValueError, match="fallback_limit"):
            plan_workload(executor, chain, objective, fallback_limit=10)

    def test_unknown_device_alias_raises_actionable_error(self):
        rng = np.random.default_rng(8)
        executor = SimulatedExecutor(random_platform(rng, 2))
        chain = random_chain(rng, 2)
        with pytest.raises(KeyError, match=r"unknown device aliases \['X'\]"):
            plan_workload(executor, chain, "time", devices=["D", "X"])


class TestGraphPlanner:
    @given(n_devices=st.integers(2, 3), seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_fork_join_is_level_planned_exactly(self, n_devices, seed):
        rng = np.random.default_rng(seed)
        executor = SimulatedExecutor(random_platform(rng, n_devices))
        graph = fork_join_graph()
        for objective in ("time", "energy", "cost"):
            brute = float(
                as_objective(objective)(executor.execute_batch(graph)).min()
            )
            plan = plan_workload(executor, graph, objective, method="dp")
            assert plan.method == "level-dp"
            assert plan.value == brute

    @given(
        n_devices=st.integers(2, 3),
        n_tasks=st.integers(2, 5),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_graphs_plan_or_fall_back_to_the_same_minimum(
        self, n_devices, n_tasks, seed
    ):
        rng = np.random.default_rng(seed)
        executor = SimulatedExecutor(random_platform(rng, n_devices))
        graph = random_graph(rng, n_tasks)
        for objective in ("time", "energy"):
            brute = float(
                as_objective(objective)(executor.execute_batch(graph)).min()
            )
            plan = plan_workload(executor, graph, objective)
            assert plan.value == brute
            if plan.method == "enumeration":
                assert plan.fallback_reason is not None

    def test_linear_graph_matches_its_chain(self):
        rng = np.random.default_rng(9)
        executor = SimulatedExecutor(random_platform(rng, 3))
        chain = random_chain(rng, 4)
        graph = TaskGraph.from_chain(chain)
        chain_plan = plan_workload(executor, chain, "time")
        graph_plan = plan_workload(executor, graph, "time", method="dp")
        assert graph_plan.method == "level-dp"
        assert graph_plan.value == chain_plan.value

    def test_non_decomposable_graph_refuses_dp(self):
        # L1 -> L2 -> L4 and L1 -> L3 -> L4, plus the skip edge L1 -> L4:
        # L4 depends across non-consecutive levels.
        chain = random_chain(np.random.default_rng(10), 4)
        names = chain.task_names
        graph = TaskGraph(
            chain.tasks,
            edges=[
                (names[0], names[1]),
                (names[0], names[2]),
                (names[1], names[3]),
                (names[2], names[3]),
                (names[0], names[3]),
            ],
        )
        levels, reason = decomposable_levels(graph.predecessor_positions, 2)
        assert levels is None and "non-consecutive" in reason
        executor = SimulatedExecutor(random_platform(np.random.default_rng(10), 2))
        with pytest.raises(ValueError, match="barrier-decomposable"):
            plan_workload(executor, graph, "time", method="dp")
        plan = plan_workload(executor, graph, "time")
        assert plan.method == "enumeration"
        brute = float(executor.execute_batch(graph).total_time_s.min())
        assert plan.value == brute

    def test_partial_fan_in_refuses_dp(self):
        # Two sources, two joiners, but one joiner reads only one source.
        chain = random_chain(np.random.default_rng(11), 4)
        names = chain.task_names
        graph = TaskGraph(
            chain.tasks,
            edges=[(names[0], names[2]), (names[1], names[2]), (names[0], names[3])],
        )
        levels, reason = decomposable_levels(graph.predecessor_positions, 2)
        assert levels is None and "partial fan-in" in reason

    def test_max_level_states_caps_the_level_dp(self):
        graph = fork_join_graph()
        executor = SimulatedExecutor(
            random_platform(np.random.default_rng(12), 3)
        )
        with pytest.raises(ValueError, match="max_level_states"):
            plan_workload(executor, graph, "time", method="dp", max_level_states=2)
        plan = plan_workload(executor, graph, "time", max_level_states=2)
        assert plan.method == "enumeration"


class TestSearchSpaceDispatch:
    def test_planner_method_matches_stream_bitwise(self):
        rng = np.random.default_rng(13)
        executor = SimulatedExecutor(random_platform(rng, 3))
        chain = random_chain(rng, 5)
        stream = search_space(
            executor, chain, objectives=("time", "energy", "cost"), top_k=1, frontier=None
        )
        planned = search_space(
            executor,
            chain,
            objectives=("time", "energy", "cost"),
            top_k=1,
            frontier=None,
            method="planner",
        )
        for name in ("time", "energy", "cost"):
            assert planned.top[name].values[0] == stream.top[name].values[0]
            assert planned.top[name].indices[0] == stream.top[name].indices[0]
            assert planned.top[name].labels == stream.top[name].labels
        # The planner evaluated lattice states, not placements.
        assert planned.n_evaluated < stream.n_evaluated

    def test_planner_method_rejects_out_of_boundary_requests(self):
        rng = np.random.default_rng(14)
        executor = SimulatedExecutor(random_platform(rng, 2))
        chain = random_chain(rng, 3)
        cases = [
            dict(top_k=2, frontier=None),
            dict(top_k=1),  # default frontier
            dict(top_k=1, frontier=None, stop=4),
            dict(top_k=1, frontier=None, constraints=(DeadlineConstraint(1.0),)),
            dict(
                top_k=1,
                frontier=None,
                objectives=(DecisionObjective(DecisionModel(cost_weight=0.5)),),
            ),
        ]
        for kwargs in cases:
            with pytest.raises(ValueError, match="method='planner'"):
                search_space(executor, chain, method="planner", **kwargs)

    def test_auto_plans_when_possible_and_streams_otherwise(self):
        rng = np.random.default_rng(15)
        executor = SimulatedExecutor(random_platform(rng, 2))
        chain = random_chain(rng, 4)
        planned = search_space(executor, chain, top_k=1, frontier=None, method="auto")
        assert planned.n_evaluated == 4 * 2  # k x m lattice states, one objective
        streamed = search_space(executor, chain, top_k=2, frontier=None, method="auto")
        assert streamed.n_evaluated == 2**4
        assert planned.top["time"].values[0] == streamed.top["time"].values[0]

    def test_unknown_method_rejected(self):
        rng = np.random.default_rng(16)
        executor = SimulatedExecutor(random_platform(rng, 2))
        with pytest.raises(ValueError, match="unknown method"):
            search_space(executor, random_chain(rng, 2), method="dp")

    def test_unknown_device_alias_raises_actionable_error(self):
        rng = np.random.default_rng(17)
        executor = SimulatedExecutor(random_platform(rng, 2))
        chain = random_chain(rng, 2)
        with pytest.raises(KeyError, match=r"unknown device aliases \['Z'\]"):
            search_space(executor, chain, devices=["D", "Z"])


class TestGridPlanner:
    @given(
        n_devices=st.integers(2, 3),
        n_tasks=st.integers(1, 4),
        n_scenarios=st.integers(1, 3),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_worst_and_regret_match_streamed_top1_bitwise(
        self, n_devices, n_tasks, n_scenarios, seed
    ):
        rng = np.random.default_rng(seed)
        executor = SimulatedExecutor(random_platform(rng, n_devices))
        chain = random_chain(rng, n_tasks)
        scenarios = random_scenarios(rng, n_scenarios)
        objectives = [
            WorstCaseObjective(),
            RegretObjective(),
            WorstCaseObjective(base="energy"),
            RegretObjective(base="cost"),
        ]
        streamed = search_grid(
            executor, chain, scenarios, objectives=objectives, top_k=1,
            baseline_method="stream",
        )
        for objective in objectives:
            plan = plan_grid(executor, chain, scenarios, objective)
            assert isinstance(plan, GridPlanResult)
            assert plan.value == streamed.top[objective.name].values[0]

    @given(
        n_devices=st.integers(2, 3),
        n_tasks=st.integers(1, 4),
        n_scenarios=st.integers(1, 3),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=20, deadline=None)
    def test_expected_value_matches_streamed_top1_to_dot_product_rounding(
        self, n_devices, n_tasks, n_scenarios, seed
    ):
        # The expected-value reduce is a BLAS dot product whose summation
        # order varies with the chunk width (search_grid itself differs at
        # batch_size=1 vs 2), so bitwise equality is ill-defined; the pinned
        # property is agreement within a few ulp plus bitwise per-scenario
        # engine values for the selected placement.
        rng = np.random.default_rng(seed)
        executor = SimulatedExecutor(random_platform(rng, n_devices))
        chain = random_chain(rng, n_tasks)
        scenarios = random_scenarios(rng, n_scenarios)
        objective = ExpectedValueObjective()
        streamed = search_grid(executor, chain, scenarios, objectives=[objective], top_k=1)
        plan = plan_grid(executor, chain, scenarios, objective)
        best = streamed.top[objective.name].values[0]
        assert abs(plan.value - best) <= 4 * math.ulp(max(abs(best), 1e-300))

    @given(
        n_devices=st.integers(2, 3),
        n_tasks=st.integers(1, 4),
        n_scenarios=st.integers(1, 3),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=20, deadline=None)
    def test_dp_baselines_are_bitwise_the_streamed_baseline_pass(
        self, n_devices, n_tasks, n_scenarios, seed
    ):
        rng = np.random.default_rng(seed)
        executor = SimulatedExecutor(random_platform(rng, n_devices))
        chain = random_chain(rng, n_tasks)
        scenarios = random_scenarios(rng, n_scenarios)
        streamed = search_grid(
            executor,
            chain,
            scenarios,
            objectives=[RegretObjective(), RegretObjective(base="energy")],
            top_k=1,
            baseline_method="stream",
        )
        from repro.devices.tables import build_tables
        from repro.search.robust import _scenario_entries

        grid, _, _ = _scenario_entries(scenarios)
        tables = build_tables(chain, executor.platform, scenarios=grid)
        for base in ("time", "energy"):
            assert np.array_equal(grid_baselines(tables, base), streamed.baselines[base])

    def test_regret_plan_reports_baselines_and_scenario_values(self):
        rng = np.random.default_rng(18)
        executor = SimulatedExecutor(random_platform(rng, 3))
        chain = random_chain(rng, 3)
        scenarios = random_scenarios(rng, 2)
        plan = plan_grid(executor, chain, scenarios, RegretObjective())
        assert plan.baselines is not None and plan.baselines.shape == (2,)
        assert plan.scenario_values.shape == (2,)
        regret = float((plan.scenario_values - plan.baselines).max())
        assert plan.value == regret
        assert "exact robust optimum" in plan.summary()

    def test_non_linear_graphs_are_rejected_with_a_pointer_to_search_grid(self):
        rng = np.random.default_rng(19)
        executor = SimulatedExecutor(random_platform(rng, 2))
        graph = fork_join_graph()
        with pytest.raises(ValueError, match="search_grid"):
            plan_grid(executor, graph, random_scenarios(rng, 2), "time")

    def test_non_plannable_base_is_rejected(self):
        rng = np.random.default_rng(20)
        executor = SimulatedExecutor(random_platform(rng, 2))
        chain = random_chain(rng, 2)
        objective = WorstCaseObjective(
            base=DecisionObjective(DecisionModel(cost_weight=0.5))
        )
        with pytest.raises(ValueError, match="not DP-plannable"):
            plan_grid(executor, chain, random_scenarios(rng, 2), objective)


class TestSearchGridSharding:
    def test_sharded_grid_sweep_is_bitwise_identical_to_serial(self):
        rng = np.random.default_rng(21)
        executor = SimulatedExecutor(random_platform(rng, 3))
        chain = random_chain(rng, 4)
        scenarios = random_scenarios(rng, 2)
        objectives = [WorstCaseObjective(), RegretObjective(), ExpectedValueObjective()]
        serial = search_grid(
            executor, chain, scenarios, objectives=objectives, top_k=5, batch_size=13,
            baseline_method="stream",
        )
        for n_workers in (2, 3):
            sharded = search_grid(
                executor,
                chain,
                scenarios,
                objectives=objectives,
                top_k=5,
                batch_size=13,
                n_workers=n_workers,
                baseline_method="stream",
            )
            assert sharded.n_evaluated == serial.n_evaluated
            assert sharded.n_feasible == serial.n_feasible
            for objective in objectives:
                assert np.array_equal(
                    sharded.top[objective.name].values, serial.top[objective.name].values
                )
                assert np.array_equal(
                    sharded.top[objective.name].indices, serial.top[objective.name].indices
                )
                assert sharded.top[objective.name].labels == serial.top[objective.name].labels
            for name in serial.scenario_best:
                assert np.array_equal(
                    sharded.scenario_best[name].indices, serial.scenario_best[name].indices
                )
                assert np.array_equal(
                    sharded.scenario_best[name].values, serial.scenario_best[name].values
                )
            for name in serial.baselines:
                assert np.array_equal(sharded.baselines[name], serial.baselines[name])

    def test_sharded_sweep_with_constraints_matches_serial(self):
        rng = np.random.default_rng(22)
        executor = SimulatedExecutor(random_platform(rng, 2))
        chain = random_chain(rng, 4)
        scenarios = random_scenarios(rng, 2)
        serial = search_grid(executor, chain, scenarios, top_k=3, batch_size=5)
        deadline = float(serial.top["worst-time"].values[0]) * 2.0
        constraints = (DeadlineConstraint(deadline),)
        serial_c = search_grid(
            executor, chain, scenarios, top_k=3, batch_size=5, constraints=constraints
        )
        sharded_c = search_grid(
            executor,
            chain,
            scenarios,
            top_k=3,
            batch_size=5,
            constraints=constraints,
            n_workers=2,
        )
        assert sharded_c.n_feasible == serial_c.n_feasible
        assert np.array_equal(
            sharded_c.top["worst-time"].values, serial_c.top["worst-time"].values
        )
        assert np.array_equal(
            sharded_c.top["worst-time"].indices, serial_c.top["worst-time"].indices
        )

    def test_baseline_method_planner_is_bitwise_the_streamed_pass(self):
        rng = np.random.default_rng(23)
        executor = SimulatedExecutor(random_platform(rng, 3))
        chain = random_chain(rng, 4)
        scenarios = random_scenarios(rng, 2)
        streamed = search_grid(
            executor, chain, scenarios, objectives=[RegretObjective()], top_k=3,
            baseline_method="stream",
        )
        planned = search_grid(
            executor, chain, scenarios, objectives=[RegretObjective()], top_k=3,
            baseline_method="planner",
        )
        assert np.array_equal(streamed.baselines["time"], planned.baselines["time"])
        assert np.array_equal(
            streamed.top["regret-time"].values, planned.top["regret-time"].values
        )
        assert np.array_equal(
            streamed.top["regret-time"].indices, planned.top["regret-time"].indices
        )

    def test_baseline_method_planner_rejects_out_of_boundary_requests(self):
        rng = np.random.default_rng(24)
        executor = SimulatedExecutor(random_platform(rng, 2))
        chain = random_chain(rng, 3)
        scenarios = random_scenarios(rng, 2)
        with pytest.raises(ValueError, match="baseline_method='planner'"):
            search_grid(
                executor,
                chain,
                scenarios,
                objectives=[RegretObjective()],
                constraints=(DeadlineConstraint(100.0),),
                baseline_method="planner",
            )
        with pytest.raises(ValueError, match="unknown baseline_method"):
            search_grid(executor, chain, scenarios, baseline_method="dp")

    def test_unknown_device_alias_raises_actionable_error(self):
        rng = np.random.default_rng(25)
        executor = SimulatedExecutor(random_platform(rng, 2))
        chain = random_chain(rng, 2)
        with pytest.raises(KeyError, match=r"unknown device aliases \['Q'\]"):
            search_grid(executor, chain, random_scenarios(rng, 1), devices=["D", "Q"])


class TestExecutorPlanFacade:
    def test_plan_delegates_to_the_chain_dp(self):
        rng = np.random.default_rng(26)
        executor = SimulatedExecutor(random_platform(rng, 3))
        chain = random_chain(rng, 4)
        plan = executor.plan(chain, "time")
        brute = float(executor.execute_batch(chain).total_time_s.min())
        assert plan.method == "chain-dp"
        assert plan.value == brute

    def test_plan_with_scenarios_delegates_to_the_grid_planner(self):
        rng = np.random.default_rng(27)
        executor = SimulatedExecutor(random_platform(rng, 2))
        chain = random_chain(rng, 3)
        scenarios = random_scenarios(rng, 2)
        plan = executor.plan(chain, WorstCaseObjective(), scenarios=scenarios)
        streamed = search_grid(executor, chain, scenarios, top_k=1)
        assert plan.value == streamed.top["worst-time"].values[0]

    def test_planner_objective_weights_classification(self):
        assert planner_objective_weights("time") == (1.0, 0.0, 0.0)
        assert planner_objective_weights(MetricObjective("energy")) == (0.0, 1.0, 0.0)
        assert planner_objective_weights(WeightedSumObjective(2.0, 0.5, 1.0)) == (
            2.0,
            0.5,
            1.0,
        )
        assert (
            planner_objective_weights(
                DecisionObjective(DecisionModel(cost_weight=0.5))
            )
            is None
        )
