"""Quantile/SLO robust objectives: properties, weights, and shard exactness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices import SimulatedExecutor, edge_cluster_platform
from repro.devices.grid import execute_placements_grid
from repro.offload import placement_matrix
from repro.scenarios import LinkBandwidthScale, LinkLatencyScale, Scenario, ScenarioGrid
from repro.search import (
    ExpectedValueObjective,
    QuantileObjective,
    SLOObjective,
    WorstCaseObjective,
    search_grid,
)
from repro.tasks import RegularizedLeastSquaresTask, TaskChain


def random_values(seed: int, n_scenarios: int, n_placements: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.uniform(0.01, 10.0, size=(n_scenarios, n_placements))


# ---------------------------------------------------------------------------
# Reduction properties (pure array level)
# ---------------------------------------------------------------------------

class TestQuantileReduction:
    @given(st.integers(0, 2**32 - 1), st.integers(1, 12), st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_q1_equal_weights_is_exactly_the_worst_case(self, seed, s, n):
        values = random_values(seed, s, n)
        quantile = QuantileObjective(q=1.0).reduce(values)
        worst = WorstCaseObjective().reduce(values)
        assert quantile.tobytes() == worst.tobytes()

    @given(
        st.integers(0, 2**32 - 1),
        st.integers(1, 12),
        st.integers(1, 8),
        st.floats(0.05, 1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_uniform_weights_match_numpy_inverted_cdf(self, seed, s, n, q):
        values = random_values(seed, s, n)
        ours = QuantileObjective(q=q).reduce(values)
        numpy_q = np.quantile(values, q, axis=0, method="inverted_cdf")
        assert ours.tobytes() == numpy_q.tobytes()

    @given(st.integers(0, 2**32 - 1), st.integers(1, 12), st.integers(2, 10))
    @settings(max_examples=40, deadline=None)
    def test_reduction_is_invariant_to_placement_chunking(self, seed, s, n):
        """The quantile touches each column by pure indexing, so chunking the
        placement axis is bitwise invisible.  SLO and expectation reduce via
        ``weights @ values``, whose BLAS blocking depends on the chunk width --
        they are invariant only up to the last ulp, which is exactly why the
        streaming driver reduces full-width matrices instead of concatenating
        chunk reductions."""
        values = random_values(seed, s, n)
        weights = tuple(np.random.default_rng(seed + 1).uniform(0.1, 2.0, size=s))
        split = n // 2

        def chunked(objective):
            return np.concatenate(
                [objective.reduce(values[:, :split]), objective.reduce(values[:, split:])]
            )

        quantile = QuantileObjective(q=0.9, weights=weights)
        assert quantile.reduce(values).tobytes() == chunked(quantile).tobytes()
        for objective in (
            SLOObjective(budget=5.0, weights=weights),
            ExpectedValueObjective(weights=weights),
        ):
            np.testing.assert_allclose(
                objective.reduce(values), chunked(objective), rtol=1e-12
            )

    def test_zero_weight_scenarios_are_never_picked(self):
        values = np.array([[1.0], [100.0], [2.0]])
        reduced = QuantileObjective(q=1.0, weights=(1.0, 0.0, 1.0)).reduce(values)
        assert reduced[0] == 2.0

    def test_weighted_quantile_steps_at_the_cumulative_mass(self):
        # CDF over values [1, 2, 3] with masses [0.5, 0.25, 0.25]:
        # p<=0.5 -> 1, p<=0.75 -> 2, above -> 3 (left-continuous inverse).
        values = np.array([[1.0], [2.0], [3.0]])
        weights = (2.0, 1.0, 1.0)
        assert QuantileObjective(q=0.5, weights=weights).reduce(values)[0] == 1.0
        assert QuantileObjective(q=0.75, weights=weights).reduce(values)[0] == 2.0
        assert QuantileObjective(q=0.76, weights=weights).reduce(values)[0] == 3.0

    def test_weight_length_mismatch_is_an_error(self):
        with pytest.raises(ValueError, match="scenario weights"):
            QuantileObjective(weights=(1.0, 1.0)).reduce(np.ones((3, 2)))


class TestSLOReduction:
    def test_miss_fraction_counts_strict_overruns_by_weight(self):
        values = np.array([[1.0, 3.0], [2.0, 1.0], [4.0, 1.0]])
        reduced = SLOObjective(budget=2.0, weights=(1.0, 1.0, 2.0)).reduce(values)
        # Meeting the budget exactly is a hit (strict >): column 0 misses only
        # via the weight-2 scenario, column 1 only via the weight-1 one.
        assert np.array_equal(reduced, np.array([0.5, 0.25]))

    def test_unweighted_is_the_plain_miss_rate(self):
        values = np.array([[1.0], [3.0], [5.0]])
        assert SLOObjective(budget=2.0).reduce(values)[0] == pytest.approx(2.0 / 3.0)

    @given(st.integers(0, 2**32 - 1), st.integers(1, 12), st.integers(1, 8))
    @settings(max_examples=25, deadline=None)
    def test_miss_fractions_live_in_the_unit_interval(self, seed, s, n):
        values = random_values(seed, s, n)
        reduced = SLOObjective(budget=5.0).reduce(values)
        assert np.all((reduced >= 0.0) & (reduced <= 1.0))


class TestValidation:
    def test_quantile_domain(self):
        for q in (0.0, -0.5, 1.5, float("nan")):
            with pytest.raises(ValueError, match="quantile q"):
                QuantileObjective(q=q)
        QuantileObjective(q=1.0)  # the closed upper end is the worst case

    def test_slo_budget_must_be_finite(self):
        for budget in (float("inf"), float("nan")):
            with pytest.raises(ValueError, match="budget"):
                SLOObjective(budget=budget)

    def test_non_finite_weights_are_rejected_naming_the_index(self):
        for factory in (
            lambda w: ExpectedValueObjective(weights=w),
            lambda w: QuantileObjective(weights=w),
            lambda w: SLOObjective(weights=w),
            lambda w: ExpectedValueObjective().with_weights(w),
            lambda w: QuantileObjective().with_weights(w),
            lambda w: SLOObjective().with_weights(w),
        ):
            with pytest.raises(ValueError, match=r"weights\[1\]"):
                factory((1.0, float("nan"), 1.0))
            with pytest.raises(ValueError, match=r"weights\[0\]"):
                factory((float("inf"), 1.0))
            with pytest.raises(ValueError, match=r"weights\[2\]"):
                factory((1.0, 1.0, -0.5))
            with pytest.raises(ValueError, match="positive"):
                factory((0.0, 0.0))

    def test_names(self):
        assert QuantileObjective().name == "p95-time"
        assert QuantileObjective(q=0.99, base="energy").name == "p99-energy"
        assert SLOObjective(budget=0.25).name == "slo-time@0.25"
        assert QuantileObjective(label="tail").name == "tail"


# ---------------------------------------------------------------------------
# Through the streaming search driver
# ---------------------------------------------------------------------------

def small_chain(n_tasks: int = 3) -> TaskChain:
    tasks = [
        RegularizedLeastSquaresTask(
            size=60 + 60 * i, iterations=8, name=f"L{i + 1}", generate_on_host=False
        )
        for i in range(n_tasks)
    ]
    return TaskChain(tasks, name="fleet-objectives")


def weighted_grid() -> ScenarioGrid:
    """A small weighted condition grid (unequal masses, like a sampled fleet)."""
    rng = np.random.default_rng(11)
    scenarios = []
    for i in range(8):
        scenarios.append(
            Scenario(
                name=f"user-{i}",
                settings=(
                    (LinkBandwidthScale(), float(rng.uniform(0.2, 1.2))),
                    (LinkLatencyScale(), float(rng.uniform(1.0, 5.0))),
                ),
                weight=float(rng.uniform(0.25, 2.0)),
            )
        )
    return ScenarioGrid(tuple(scenarios))


@pytest.fixture(scope="module")
def setup():
    platform = edge_cluster_platform()
    executor = SimulatedExecutor(platform, seed=0)
    return executor, small_chain(), weighted_grid()


def assert_same_search(left, right):
    """Two GridSearchResults must agree bitwise, like the shard tests pin."""
    assert left.scenario_names == right.scenario_names
    assert (left.n_evaluated, left.n_feasible) == (right.n_evaluated, right.n_feasible)
    assert sorted(left.top) == sorted(right.top)
    for name in left.top:
        assert left.top[name].labels == right.top[name].labels
        assert left.top[name].indices.tobytes() == right.top[name].indices.tobytes()
        assert left.top[name].values.tobytes() == right.top[name].values.tobytes()
    assert sorted(left.scenario_best) == sorted(right.scenario_best)
    for name in left.scenario_best:
        assert left.scenario_best[name].labels == right.scenario_best[name].labels
        assert left.scenario_best[name].values.tobytes() == right.scenario_best[name].values.tobytes()


class TestSearchGrid:
    def test_search_binds_grid_weights_and_matches_materialized(self, setup):
        executor, chain, grid = setup
        objectives = (QuantileObjective(q=0.9), SLOObjective(budget=0.0375))
        result = search_grid(executor, chain, grid, objectives=objectives, top_k=3)
        tables = executor.grid_cost_tables(chain, grid)
        times = execute_placements_grid(
            tables, placement_matrix(tables.n_tasks, tables.n_devices)
        ).metric_values("time")
        weights = tuple(grid.weights)
        for objective in objectives:
            reduced = objective.with_weights(weights).reduce(times)
            selection = result.top[objective.name]
            assert selection.values[0] == reduced.min()
            assert int(selection.indices[0]) == int(reduced.argmin())

    def test_explicit_weights_override_the_grid(self, setup):
        executor, chain, grid = setup
        pinned = tuple(np.ones(len(grid)))
        objective = QuantileObjective(q=0.9, weights=pinned)
        assert objective.bind_weights(grid.weights) is objective

    def test_batch_size_does_not_change_the_selection(self, setup):
        executor, chain, grid = setup
        objectives = (QuantileObjective(q=0.9), SLOObjective(budget=0.0375))
        whole = search_grid(executor, chain, grid, objectives=objectives, top_k=4)
        chunked = search_grid(
            executor, chain, grid, objectives=objectives, top_k=4, batch_size=7
        )
        # The quantile's per-column reduction makes its ranking bitwise
        # batch-size independent; the SLO ranking must agree too (its values
        # are exact multiples of 1/sum(w) regardless of BLAS blocking here).
        assert_same_search(whole, chunked)

    def test_scenario_shards_are_bitwise_identical_to_serial(self, setup):
        """The ISSUE's exactness pin: sharded weighted quantiles == serial."""
        executor, chain, grid = setup
        objectives = (
            QuantileObjective(q=0.9),
            SLOObjective(budget=0.0375),
            ExpectedValueObjective(),
        )
        serial = search_grid(executor, chain, grid, objectives=objectives, top_k=4)
        for shards in (2, 3):
            sharded = search_grid(
                executor, chain, grid, objectives=objectives, top_k=4,
                scenario_shards=shards,
            )
            assert_same_search(serial, sharded)

    def test_q1_search_coincides_with_worst_case_on_equal_weights(self, setup):
        executor, chain, _ = setup
        equal = ScenarioGrid(
            tuple(
                Scenario(name=s.name, settings=s.settings)  # default weight 1.0
                for s in weighted_grid().scenarios
            )
        )
        result = search_grid(
            executor,
            chain,
            equal,
            objectives=(QuantileObjective(q=1.0, label="tail"), WorstCaseObjective()),
            top_k=3,
        )
        tail, worst = result.top["tail"], result.top["worst-time"]
        assert tail.labels == worst.labels
        assert tail.values.tobytes() == worst.values.tobytes()
