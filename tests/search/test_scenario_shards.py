"""Scenario-sharded ``search_grid`` must be bitwise the serial sweep.

Each scenario shard evaluates every placement chunk against its own scenario
block in a separate process; the parent stitches the per-shard value matrices
back together along the scenario axis before any reduction runs.  Because the
reassembled ``(s, n)`` chunk is the exact matrix the serial sweep reduces,
every top-K value, per-scenario winner, baseline and tie-break agrees bit for
bit -- which these tests pin for all three robust objective families, with
constraints, and under faults.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.devices import SimulatedExecutor, edge_cluster_platform
from repro.faults.retry import RetryPolicy
from repro.scenarios import (
    DeviceLoadFactor,
    LinkBandwidthScale,
    LinkLatencyScale,
    ScenarioGrid,
)
from repro.search.constraints import EnergyBudgetConstraint
from repro.search.robust import (
    ExpectedValueObjective,
    RegretObjective,
    WorstCaseObjective,
    search_grid,
)
from repro.tasks import RegularizedLeastSquaresTask, TaskChain


def small_chain(n_tasks: int = 3) -> TaskChain:
    tasks = [
        RegularizedLeastSquaresTask(size=40 + 30 * i, iterations=3, name=f"L{i + 1}")
        for i in range(n_tasks)
    ]
    return TaskChain(tasks, name="shard-test")


def condition_grid() -> ScenarioGrid:
    return ScenarioGrid.cartesian(
        [
            (LinkBandwidthScale(), [1.0, 0.5, 0.25]),
            (LinkLatencyScale(), [1.0, 4.0]),
            (DeviceLoadFactor(devices=("D",)), [1.0, 1.5]),
        ]
    )


def assert_identical_results(sharded, serial) -> None:
    assert sharded.n_evaluated == serial.n_evaluated
    assert sharded.n_feasible == serial.n_feasible
    assert sharded.scenario_names == serial.scenario_names
    assert set(sharded.top) == set(serial.top)
    for name in serial.top:
        assert np.array_equal(sharded.top[name].indices, serial.top[name].indices), name
        assert (
            sharded.top[name].values.tobytes() == serial.top[name].values.tobytes()
        ), name
        assert sharded.top[name].labels == serial.top[name].labels
    assert set(sharded.scenario_best) == set(serial.scenario_best)
    for name in serial.scenario_best:
        assert np.array_equal(
            sharded.scenario_best[name].indices, serial.scenario_best[name].indices
        )
        assert (
            sharded.scenario_best[name].values.tobytes()
            == serial.scenario_best[name].values.tobytes()
        )
    assert set(sharded.baselines) == set(serial.baselines)
    for name in serial.baselines:
        assert sharded.baselines[name].tobytes() == serial.baselines[name].tobytes()


class TestScenarioSharding:
    @pytest.mark.parametrize("scenario_shards", [2, 3])
    def test_bitwise_identical_to_serial_sweep(self, scenario_shards):
        executor = SimulatedExecutor(edge_cluster_platform())
        chain = small_chain()
        grid = condition_grid()
        kwargs = dict(
            objectives=[
                WorstCaseObjective(),
                ExpectedValueObjective(),
                RegretObjective(),
            ],
            top_k=5,
            constraints=[EnergyBudgetConstraint(1e9)],
            batch_size=17,
            baseline_method="stream",
        )
        serial = search_grid(executor, chain, grid, **kwargs)
        sharded = search_grid(
            executor, chain, grid, scenario_shards=scenario_shards, **kwargs
        )
        assert_identical_results(sharded, serial)

    def test_fault_aware_sweep_shards_bitwise(self):
        executor = SimulatedExecutor(edge_cluster_platform())
        chain = small_chain(2)
        grid = ScenarioGrid.cartesian([(LinkBandwidthScale(), [1.0, 0.5, 0.2])])
        kwargs = dict(
            objectives=[WorstCaseObjective()],
            top_k=3,
            batch_size=7,
            retry=RetryPolicy(max_attempts=3),
        )
        serial = search_grid(executor, chain, grid, **kwargs)
        sharded = search_grid(executor, chain, grid, scenario_shards=2, **kwargs)
        assert_identical_results(sharded, serial)

    def test_shards_clamp_to_the_scenario_count(self):
        executor = SimulatedExecutor(edge_cluster_platform())
        chain = small_chain(2)
        grid = ScenarioGrid.cartesian([(LinkLatencyScale(), [1.0, 2.0])])
        serial = search_grid(executor, chain, grid, batch_size=64)
        sharded = search_grid(executor, chain, grid, scenario_shards=9, batch_size=64)
        assert_identical_results(sharded, serial)

    def test_single_shard_stays_in_process(self):
        executor = SimulatedExecutor(edge_cluster_platform())
        chain = small_chain(2)
        grid = ScenarioGrid.cartesian([(LinkLatencyScale(), [1.0, 2.0])])
        serial = search_grid(executor, chain, grid, batch_size=64)
        one = search_grid(executor, chain, grid, scenario_shards=1, batch_size=64)
        assert_identical_results(one, serial)

    def test_placement_and_scenario_sharding_are_mutually_exclusive(self):
        executor = SimulatedExecutor(edge_cluster_platform())
        with pytest.raises(ValueError, match="mutually exclusive"):
            search_grid(
                executor,
                small_chain(2),
                condition_grid(),
                scenario_shards=2,
                n_workers=2,
            )

    def test_invalid_shard_counts_are_rejected(self):
        executor = SimulatedExecutor(edge_cluster_platform())
        with pytest.raises(ValueError, match="scenario_shards must be >= 1"):
            search_grid(executor, small_chain(2), condition_grid(), scenario_shards=0)
