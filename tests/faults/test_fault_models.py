"""Fault-model validators, survival helpers and platform attachment."""

from __future__ import annotations

import math

import pytest

from repro.devices import Platform, edge_cluster_platform
from repro.faults import DeviceFailure, FaultProfile, LinkDropout, StragglerModel


class TestDeviceFailure:
    def test_default_is_fault_free(self):
        failure = DeviceFailure()
        assert failure.probability("D", 1.0) == 0.0

    @pytest.mark.parametrize("bad", [-0.1, 1.5, float("nan")])
    def test_rejects_non_probability_rate(self, bad):
        with pytest.raises(ValueError, match="DeviceFailure.rate"):
            DeviceFailure(rate=bad)

    def test_rejects_non_probability_per_device_rate(self):
        with pytest.raises(ValueError, match="rates\\['E'\\]"):
            DeviceFailure(rates={"E": 2.0})

    def test_per_device_override_beats_default(self):
        failure = DeviceFailure(rate=0.01, rates={"E": 0.3})
        assert failure.probability("E", 1.0) == 0.3
        assert failure.probability("A", 1.0) == 0.01

    def test_load_scaled_rate_is_an_intensity(self):
        failure = DeviceFailure(rate=0.5, load_scaled=True)
        busy = 2.0
        assert failure.probability("D", busy) == pytest.approx(-math.expm1(-0.5 * busy))
        # Intensities may exceed 1 (they are per-second, not probabilities)...
        DeviceFailure(rate=3.0, load_scaled=True)
        # ...but must stay finite and non-negative.
        with pytest.raises(ValueError, match="rate"):
            DeviceFailure(rate=math.inf, load_scaled=True)
        with pytest.raises(ValueError, match="rate"):
            DeviceFailure(rate=-1.0, load_scaled=True)

    def test_longer_tasks_fail_more_often_when_load_scaled(self):
        failure = DeviceFailure(rate=0.2, load_scaled=True)
        assert failure.probability("D", 5.0) > failure.probability("D", 0.5)


class TestLinkDropout:
    def test_symmetric_and_zero_on_same_device(self):
        dropout = LinkDropout(rate=0.01, rates={("D", "E"): 0.2})
        assert dropout.probability("D", "E") == 0.2
        assert dropout.probability("E", "D") == 0.2
        assert dropout.probability("E", "A") == 0.01
        assert dropout.probability("E", "E") == 0.0

    @pytest.mark.parametrize("bad", [-0.5, 1.01, float("nan")])
    def test_rejects_non_probability(self, bad):
        with pytest.raises(ValueError, match="LinkDropout"):
            LinkDropout(rate=bad)


class TestStragglerModel:
    def test_rejects_slowdown_below_one(self):
        with pytest.raises(ValueError, match="slowdown"):
            StragglerModel(probability=0.1, slowdown=0.5)

    def test_rejects_non_probability(self):
        with pytest.raises(ValueError, match="probability"):
            StragglerModel(probability=1.5)


class TestFaultProfile:
    def test_default_profile_is_fault_free(self):
        profile = FaultProfile()
        assert profile.device_failure_probability("E", 1.0) == 0.0
        assert profile.link_dropout_probability("D", "E") == 0.0
        assert profile.straggler_probability == 0.0
        assert profile.straggler_slowdown == 1.0
        assert profile.node_survival("E", "D", 1.0, 100.0, 100.0) == 1.0
        assert profile.edge_survival("E", "A") == 1.0

    def test_component_types_validated(self):
        with pytest.raises(TypeError, match="device_failure"):
            FaultProfile(device_failure=0.3)  # type: ignore[arg-type]
        with pytest.raises(TypeError, match="link_dropout"):
            FaultProfile(link_dropout="lossy")  # type: ignore[arg-type]
        with pytest.raises(TypeError, match="straggler"):
            FaultProfile(straggler=2.0)  # type: ignore[arg-type]

    def test_node_survival_composes_crash_and_both_io_halves(self):
        profile = FaultProfile(
            device_failure=DeviceFailure(rate=0.1),
            link_dropout=LinkDropout(rate=0.2),
        )
        # Off host with both transfer halves: (1-0.1) * (1-0.2) * (1-0.2).
        expected = (1.0 - 0.1) * (1.0 - 0.2) * (1.0 - 0.2)
        assert profile.node_survival("E", "D", 1.0, 64.0, 64.0) == pytest.approx(expected)
        # On the host no transfer halves apply.
        assert profile.node_survival("D", "D", 1.0, 64.0, 64.0) == pytest.approx(0.9)
        # Zero-byte halves do not risk a drop.
        assert profile.node_survival("E", "D", 1.0, 0.0, 64.0) == pytest.approx(0.9 * 0.8)

    def test_referenced_aliases_and_validation(self):
        profile = FaultProfile(
            device_failure=DeviceFailure(rates={"E": 0.1}),
            link_dropout=LinkDropout(rates={("D", "Z"): 0.1}),
        )
        assert profile.referenced_aliases() == ("D", "E", "Z")
        with pytest.raises(KeyError, match=r"unknown device aliases \['Z'\]"):
            profile.validate_aliases(("D", "E", "A"))
        profile.validate_aliases(("D", "E", "Z"))


class TestPlatformAttachment:
    def test_with_faults_attaches_and_detaches(self):
        platform = edge_cluster_platform()
        assert platform.faults is None
        profile = FaultProfile(device_failure=DeviceFailure(rate=0.05))
        faulty = platform.with_faults(profile)
        assert faulty.faults is profile
        assert platform.faults is None  # original untouched
        assert faulty.with_faults(None).faults is None

    def test_derived_platforms_keep_the_profile(self):
        profile = FaultProfile(device_failure=DeviceFailure(rate=0.05))
        platform = edge_cluster_platform().with_faults(profile)
        scaled = platform.with_devices({
            alias: spec for alias, spec in platform.devices.items()
        })
        assert scaled.faults is profile
        relinked = platform.with_links(dict(platform.links))
        assert relinked.faults is profile

    def test_profile_naming_unknown_device_is_rejected(self):
        profile = FaultProfile(device_failure=DeviceFailure(rates={"Z": 0.5}))
        with pytest.raises(KeyError, match=r"unknown device aliases \['Z'\]"):
            edge_cluster_platform().with_faults(profile)
