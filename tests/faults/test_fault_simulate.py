"""Monte-Carlo fault injection: statistical cross-check of the analytic engine."""

from __future__ import annotations

import numpy as np
import pytest

from factories import random_chain, random_graph

from repro.devices import SimulatedExecutor, edge_cluster_platform
from repro.faults import (
    DeviceFailure,
    FaultProfile,
    LinkDropout,
    RetryPolicy,
    StragglerModel,
    TimeoutPolicy,
    build_fault_tables,
    expected_record,
    simulate_chain_with_faults,
    summarize_fault_trials,
)


@pytest.fixture(scope="module")
def platform():
    return edge_cluster_platform()


@pytest.fixture(scope="module")
def chain():
    return random_chain(np.random.default_rng(0), 3)


class TestStatisticalConvergence:
    def test_trial_means_converge_to_analytic_expectations(self, platform, chain):
        profile = FaultProfile(
            device_failure=DeviceFailure(rate=0.02, rates={"E": 0.1, "A": 0.15}),
            link_dropout=LinkDropout(rate=0.02),
            straggler=StragglerModel(probability=0.1, slowdown=2.0),
        )
        retry = RetryPolicy(max_attempts=3, backoff_base_s=0.001)
        placement = ("D", "E", "A")
        analytic = expected_record(
            build_fault_tables(chain, platform, retry=retry, faults=profile), placement
        )
        rng = np.random.default_rng(42)
        records = [
            simulate_chain_with_faults(
                platform, chain, placement, retry=retry, faults=profile, rng=rng
            )
            for _ in range(6000)
        ]
        summary = summarize_fault_trials(records)
        assert summary["n_trials"] == 6000
        assert summary["success_rate"] == pytest.approx(
            analytic.success_probability, abs=0.02
        )
        assert summary["mean_time_ok_s"] == pytest.approx(
            analytic.total_time_s, rel=0.05
        )
        assert summary["mean_attempts_ok"] == pytest.approx(
            analytic.expected_attempts, rel=0.05
        )
        assert summary["mean_energy_ok_j"] == pytest.approx(
            analytic.energy_total_j, rel=0.05
        )

    def test_fault_free_trials_are_deterministic(self, platform, chain):
        rng = np.random.default_rng(0)
        record = simulate_chain_with_faults(
            platform, chain, ("D", "E", "A"), retry=RetryPolicy(), rng=rng
        )
        assert record.status == "ok"
        assert record.attempts == (1, 1, 1)
        classic = SimulatedExecutor(platform).execute(chain, ("D", "E", "A"))
        assert record.total_time_s == classic.total_time_s
        assert record.energy_total_j == classic.energy.total_j


class TestDegradationModes:
    def test_host_fallback_degrades_instead_of_failing(self, platform, chain):
        profile = FaultProfile(device_failure=DeviceFailure(rates={"E": 1.0}))
        record = simulate_chain_with_faults(
            platform,
            chain,
            ("D", "E", "A"),
            retry=RetryPolicy(max_attempts=2),
            faults=profile,
            timeout=TimeoutPolicy(fallback="host"),
            rng=np.random.default_rng(1),
        )
        assert record.status == "degraded"
        assert record.effective_placement == ("D", "D", "A")
        assert record.degraded_tasks == (chain.tasks[1].name,)
        assert record.attempts[1] == 2  # budget exhausted before the fallback
        assert record.failed_task is None

    def test_fail_fallback_names_task_and_device(self, platform, chain):
        profile = FaultProfile(device_failure=DeviceFailure(rates={"E": 1.0}))
        record = simulate_chain_with_faults(
            platform,
            chain,
            ("D", "E", "A"),
            retry=RetryPolicy(max_attempts=3),
            faults=profile,
            rng=np.random.default_rng(1),
        )
        assert record.status == "failed"
        assert record.failed_task == chain.tasks[1].name
        assert record.failed_device == "E"
        assert record.attempts == (1, 3)  # downstream tasks never ran
        # Accounting covers the partial run, not the unreached tail.
        assert record.total_time_s > 0.0
        assert np.isfinite(record.total_time_s)


class TestExecutorEntryPoints:
    def test_simulate_with_faults_is_seeded_and_chain_only(self, platform, chain):
        executor = SimulatedExecutor(platform, seed=9)
        profile = FaultProfile(device_failure=DeviceFailure(rate=0.2))
        retry = RetryPolicy(max_attempts=3)
        first = SimulatedExecutor(platform, seed=9).simulate_with_faults(
            chain, ("D", "E", "A"), retry=retry, faults=profile
        )
        second = SimulatedExecutor(platform, seed=9).simulate_with_faults(
            chain, ("D", "E", "A"), retry=retry, faults=profile
        )
        assert first == second
        graph = random_graph(np.random.default_rng(0), 3)
        with pytest.raises(ValueError, match="chain-only"):
            executor.simulate_with_faults(graph, ("D", "E", "A"), retry=retry)

    def test_execute_with_faults_matches_expected_record(self, platform, chain):
        executor = SimulatedExecutor(platform)
        profile = FaultProfile(device_failure=DeviceFailure(rate=0.1))
        retry = RetryPolicy(max_attempts=2)
        record = executor.execute_with_faults(
            chain, ("D", "E", "A"), retry=retry, faults=profile
        )
        direct = expected_record(
            build_fault_tables(chain, platform, retry=retry, faults=profile),
            ("D", "E", "A"),
        )
        assert record == direct


class TestSummaries:
    def test_empty_trials_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            summarize_fault_trials([])
