"""Retry/timeout policy validation and the truncated-geometric attempt algebra.

The hypothesis test at the bottom is the statistical pin of the closed forms:
simulated truncated-geometric retries must converge to the analytic
``expected_attempts`` values for any drawn failure probability and budget.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import RetryPolicy, TimeoutPolicy, expected_attempts, expected_backoff


class TestRetryPolicyValidation:
    def test_default_is_zero_retry(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 1
        assert policy.delays() == ()

    @pytest.mark.parametrize("bad", [0, -1, 5000])
    def test_attempt_bounds(self, bad):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=bad)

    @pytest.mark.parametrize("bad", [1.5, True, "3"])
    def test_attempts_must_be_int(self, bad):
        with pytest.raises(TypeError, match="max_attempts"):
            RetryPolicy(max_attempts=bad)  # type: ignore[arg-type]

    @pytest.mark.parametrize("bad", [-0.001, float("nan"), float("inf")])
    def test_rejects_invalid_backoff_base(self, bad):
        with pytest.raises(ValueError, match="backoff_base_s"):
            RetryPolicy(max_attempts=3, backoff_base_s=bad)

    @pytest.mark.parametrize("bad", [0.5, float("nan"), float("inf")])
    def test_rejects_invalid_backoff_factor(self, bad):
        with pytest.raises(ValueError, match="backoff_factor"):
            RetryPolicy(max_attempts=3, backoff_factor=bad)

    @pytest.mark.parametrize("bad", [-1.0, float("nan")])
    def test_rejects_invalid_backoff_cap(self, bad):
        with pytest.raises(ValueError, match="backoff_cap_s"):
            RetryPolicy(max_attempts=3, backoff_cap_s=bad)

    def test_exponential_schedule_with_cap(self):
        policy = RetryPolicy(
            max_attempts=5, backoff_base_s=1.0, backoff_factor=2.0, backoff_cap_s=3.0
        )
        assert policy.delays() == (1.0, 2.0, 3.0, 3.0)
        with pytest.raises(ValueError, match="failures >= 1"):
            policy.delay(0)


class TestTimeoutPolicy:
    def test_default_is_unbounded_fail(self):
        policy = TimeoutPolicy()
        assert math.isinf(policy.timeout_s)
        assert policy.fallback == "fail"

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan")])
    def test_rejects_non_positive_timeout(self, bad):
        with pytest.raises(ValueError, match="timeout_s"):
            TimeoutPolicy(timeout_s=bad)

    def test_rejects_unknown_fallback(self):
        with pytest.raises(ValueError, match="fallback"):
            TimeoutPolicy(fallback="retry-forever")


class TestExpectedAttempts:
    def test_fault_free_single_attempt(self):
        assert expected_attempts(0.0, 1) == (1.0, 1.0)
        assert expected_attempts(0.0, 7) == (1.0, 1.0)

    def test_half_failure_three_attempts(self):
        success, attempts = expected_attempts(0.5, 3)
        assert success == pytest.approx(0.875)
        assert attempts == pytest.approx(11.0 / 7.0)

    def test_certain_failure_reports_zero_success_unit_attempts(self):
        # attempts is defined as 1.0 so callers can scale per-attempt costs
        # without manufacturing 0 * inf; success probability 0 is the signal.
        assert expected_attempts(1.0, 5) == (0.0, 1.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="p_fail"):
            expected_attempts(1.5, 3)
        with pytest.raises(ValueError, match="p_fail"):
            expected_attempts(float("nan"), 3)
        with pytest.raises(ValueError, match="max_attempts"):
            expected_attempts(0.5, 0)


class TestExpectedBackoff:
    def test_zero_without_failures_or_budget(self):
        policy = RetryPolicy(max_attempts=3, backoff_base_s=1.0)
        assert expected_backoff(0.0, policy) == 0.0
        assert expected_backoff(1.0, policy) == 0.0  # success impossible
        assert expected_backoff(0.5, RetryPolicy(max_attempts=1)) == 0.0

    def test_hand_computed_value(self):
        policy = RetryPolicy(max_attempts=3, backoff_base_s=1.0, backoff_factor=2.0)
        # delays (1, 2); p=0.5, p^3=0.125:
        # (1*(0.5-0.125) + 2*(0.25-0.125)) / 0.875 = 0.625 / 0.875
        assert expected_backoff(0.5, policy) == pytest.approx(0.625 / 0.875)


@given(
    p_fail=st.floats(min_value=0.0, max_value=0.9),
    max_attempts=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=25, deadline=None)
def test_analytic_attempts_match_simulated_retries(p_fail, max_attempts, seed):
    """The closed forms ARE the mean of sampled truncated-geometric retries."""
    rng = np.random.default_rng(seed)
    n_trials = 20_000
    uniforms = rng.random((n_trials, max_attempts))
    fails = uniforms < p_fail
    succeeded = ~fails.all(axis=1)
    first_success = np.argmax(~fails, axis=1) + 1  # 1-based attempt index

    success, attempts = expected_attempts(p_fail, max_attempts)
    assert np.mean(succeeded) == pytest.approx(success, abs=0.02)
    if succeeded.any():
        simulated = float(np.mean(first_success[succeeded]))
        assert simulated == pytest.approx(attempts, rel=0.05, abs=0.05)

    # The backoff expectation is the matching delay-weighted sum.
    policy = RetryPolicy(max_attempts=max_attempts, backoff_base_s=0.5, backoff_factor=2.0)
    if succeeded.any():
        delays = np.array((0.0,) + policy.delays())
        paid = np.cumsum(delays)[first_success - 1]
        assert float(np.mean(paid[succeeded])) == pytest.approx(
            expected_backoff(p_fail, policy), rel=0.05, abs=0.05
        )
