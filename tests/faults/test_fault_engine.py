"""Differential pins of the vectorized expected-cost-under-faults engine.

Three equivalences anchor the subsystem:

* vectorized :func:`execute_fault_placements` == scalar
  :func:`expected_record`, **bitwise**, on randomized platforms, chains and
  graphs under randomized fault profiles;
* the fault-free profile under a zero-retry policy == the classic engine,
  **bitwise** (the collapse that makes the fault path a strict superset);
* grid engine slices == per-scenario tables, **bitwise**.
"""

from __future__ import annotations

import numpy as np
import pytest

from factories import random_chain, random_graph, random_platform

from repro.devices import build_cost_tables, edge_cluster_platform, execute_placements
from repro.faults import (
    DeviceFailure,
    FaultProfile,
    LinkDropout,
    RetryPolicy,
    StragglerModel,
    TimeoutPolicy,
    build_fault_grid_tables,
    build_fault_tables,
    execute_fault_placements,
    execute_fault_placements_grid,
    expected_record,
)
from repro.offload import placement_matrix
from repro.scenarios import DeviceFailureRate, ScenarioGrid
from repro.tasks import TaskGraph

SCALAR_FIELDS = (
    "total_time_s",
    "success_probability",
    "expected_attempts",
    "energy_total_j",
    "operating_cost",
    "transferred_bytes",
)


def random_profile(rng: np.random.Generator, aliases: tuple[str, ...]) -> FaultProfile:
    """A randomized profile exercising every model component."""
    overrides = {
        alias: float(rng.uniform(0.0, 0.4))
        for alias in rng.choice(aliases, size=min(2, len(aliases)), replace=False)
    }
    return FaultProfile(
        device_failure=DeviceFailure(
            rate=float(rng.uniform(0.0, 0.15)),
            rates=overrides,
            load_scaled=bool(rng.random() < 0.3),
        ),
        link_dropout=LinkDropout(rate=float(rng.uniform(0.0, 0.1))),
        straggler=StragglerModel(
            probability=float(rng.uniform(0.0, 0.3)),
            slowdown=float(rng.uniform(1.0, 4.0)),
        ),
    )


def assert_batch_matches_records(batch, tables, matrix, rows):
    for index in rows:
        record = expected_record(tables, matrix[index])
        for field in SCALAR_FIELDS:
            assert getattr(batch, field)[index] == getattr(record, field), (
                field,
                record.placement,
            )
        busy = [record.busy_time_by_device[alias] for alias in tables.aliases]
        assert list(batch.busy_by_device[index]) == busy
        flops = [record.flops_by_device[alias] for alias in tables.aliases]
        assert list(batch.flops_by_device[index]) == flops


class TestVectorizedMatchesScalarReference:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_chains_bitwise(self, seed):
        rng = np.random.default_rng(seed)
        platform = random_platform(rng, n_devices=int(rng.integers(2, 5)))
        chain = random_chain(rng, n_tasks=int(rng.integers(2, 5)))
        retry = RetryPolicy(
            max_attempts=int(rng.integers(1, 5)),
            backoff_base_s=float(rng.uniform(0.0, 0.01)),
        )
        timeout = TimeoutPolicy(timeout_s=float(rng.uniform(0.05, 5.0)))
        tables = build_fault_tables(
            chain,
            platform,
            retry=retry,
            faults=random_profile(rng, tuple(platform.aliases)),
            timeout=timeout,
        )
        matrix = placement_matrix(len(chain), len(platform.aliases))
        batch = execute_fault_placements(tables, matrix)
        rows = rng.choice(matrix.shape[0], size=min(40, matrix.shape[0]), replace=False)
        assert_batch_matches_records(batch, tables, matrix, rows)

    @pytest.mark.parametrize("seed", [10, 11, 12])
    def test_graphs_bitwise(self, seed):
        rng = np.random.default_rng(seed)
        platform = random_platform(rng, n_devices=3)
        graph = random_graph(rng, n_tasks=4)
        retry = RetryPolicy(max_attempts=3, backoff_base_s=0.002)
        tables = build_fault_tables(
            graph, platform, retry=retry, faults=random_profile(rng, tuple(platform.aliases))
        )
        matrix = placement_matrix(len(graph), len(platform.aliases))
        batch = execute_fault_placements(tables, matrix)
        rows = rng.choice(matrix.shape[0], size=30, replace=False)
        assert_batch_matches_records(batch, tables, matrix, rows)


class TestFaultFreeCollapse:
    @pytest.mark.parametrize("seed", [0, 7])
    def test_equals_classic_engine_bitwise(self, seed):
        rng = np.random.default_rng(seed)
        platform = random_platform(rng, n_devices=3)
        for workload in (random_chain(rng, 4), random_graph(rng, 4)):
            matrix = placement_matrix(len(workload), len(platform.aliases))
            classic = execute_placements(build_cost_tables(workload, platform), matrix)
            fault = execute_fault_placements(
                build_fault_tables(workload, platform, retry=RetryPolicy()), matrix
            )
            assert np.array_equal(fault.total_time_s, classic.total_time_s)
            assert np.array_equal(fault.energy_total_j, classic.energy_total_j)
            assert np.array_equal(fault.operating_cost, classic.operating_cost)
            assert np.array_equal(fault.busy_by_device, classic.busy_by_device)
            assert np.array_equal(fault.transferred_bytes, classic.transferred_bytes)
            assert np.all(fault.success_probability == 1.0)
            assert np.all(fault.expected_attempts == len(workload))

    def test_zero_failure_with_retry_budget_still_collapses(self):
        # p_fail=0: every attempt succeeds first try, so a generous retry
        # budget changes nothing -- bitwise.
        rng = np.random.default_rng(3)
        platform = random_platform(rng, n_devices=3)
        chain = random_chain(rng, 3)
        matrix = placement_matrix(len(chain), len(platform.aliases))
        classic = execute_placements(build_cost_tables(chain, platform), matrix)
        fault = execute_fault_placements(
            build_fault_tables(
                chain, platform, retry=RetryPolicy(max_attempts=4, backoff_base_s=0.5)
            ),
            matrix,
        )
        assert np.array_equal(fault.total_time_s, classic.total_time_s)
        assert np.array_equal(fault.energy_total_j, classic.energy_total_j)
        assert np.all(fault.success_probability == 1.0)


class TestImpossibleTasks:
    def test_certain_failure_yields_failed_records_not_loops(self):
        platform = edge_cluster_platform()
        rng = np.random.default_rng(0)
        chain = random_chain(rng, 3)
        profile = FaultProfile(device_failure=DeviceFailure(rates={"A": 1.0}))
        tables = build_fault_tables(
            chain, platform, retry=RetryPolicy(max_attempts=5), faults=profile
        )
        matrix = placement_matrix(len(chain), len(platform.aliases))
        batch = execute_fault_placements(tables, matrix)
        uses_a = (matrix == platform.aliases.index("A")).any(axis=1)
        assert np.all(batch.success_probability[uses_a] == 0.0)
        assert np.all(np.isinf(batch.total_time_s[uses_a]))
        assert np.all(np.isinf(batch.energy_total_j[uses_a]))
        assert np.all(batch.success_probability[~uses_a] > 0.0)
        assert np.all(np.isfinite(batch.total_time_s[~uses_a]))
        # The scalar reference agrees on an impossible placement.
        row = int(np.flatnonzero(uses_a)[0])
        record = expected_record(tables, matrix[row])
        assert record.success_probability == 0.0
        assert np.isinf(record.total_time_s)

    def test_unreachable_timeout_kills_every_attempt(self):
        platform = edge_cluster_platform()
        rng = np.random.default_rng(1)
        chain = random_chain(rng, 2)
        tables = build_fault_tables(
            chain,
            platform,
            retry=RetryPolicy(max_attempts=3),
            timeout=TimeoutPolicy(timeout_s=1e-12),
        )
        batch = execute_fault_placements(
            tables, placement_matrix(len(chain), len(platform.aliases))
        )
        assert np.all(batch.success_probability == 0.0)
        assert np.all(np.isinf(batch.total_time_s))


class TestGridSlicing:
    def test_grid_equals_per_scenario_tables_bitwise(self):
        platform = edge_cluster_platform()
        rng = np.random.default_rng(5)
        chain = random_chain(rng, 3)
        axis = DeviceFailureRate(devices=("E", "A"))
        scenarios = ScenarioGrid.cartesian([(axis, [0.0, 0.1, 0.3])])
        platforms = scenarios.platforms(platform)
        retry = RetryPolicy(max_attempts=3, backoff_base_s=0.001)
        gt = build_fault_grid_tables(chain, platforms, retry=retry)
        matrix = placement_matrix(len(chain), len(platform.aliases))
        grid = execute_fault_placements_grid(gt, matrix)
        for index in range(len(platforms)):
            single = execute_fault_placements(gt.table(index), matrix)
            assert np.array_equal(grid.total_time_s[index], single.total_time_s)
            assert np.array_equal(grid.success_probability[index], single.success_probability)
            assert np.array_equal(grid.expected_attempts[index], single.expected_attempts)
            assert np.array_equal(grid.energy_total_j[index], single.energy_total_j)
            assert np.array_equal(grid.operating_cost[index], single.operating_cost)
            assert np.array_equal(grid.transferred_bytes[index], single.transferred_bytes)
            assert np.array_equal(grid.flops_by_device[index], single.flops_by_device)
            # A direct build on the scenario platform matches the slice too.
            direct = build_fault_tables(chain, platforms[index], retry=retry)
            assert np.array_equal(gt.node_survival[index], direct.node_survival)


class TestExpectedRecordNormalisation:
    def test_accepts_alias_rows(self):
        platform = edge_cluster_platform()
        rng = np.random.default_rng(2)
        chain = random_chain(rng, 3)
        tables = build_fault_tables(chain, platform, retry=RetryPolicy(max_attempts=2))
        by_alias = expected_record(tables, ("D", "E", "A"))
        by_index = expected_record(
            tables, [platform.aliases.index(a) for a in ("D", "E", "A")]
        )
        assert by_alias == by_index

    def test_unknown_alias_names_candidates(self):
        platform = edge_cluster_platform()
        rng = np.random.default_rng(2)
        chain = random_chain(rng, 2)
        tables = build_fault_tables(chain, platform, retry=RetryPolicy())
        with pytest.raises(ValueError, match=r"uses device 'Z'.*candidates"):
            expected_record(tables, ("D", "Z"))

    def test_wrong_length_names_workload(self):
        platform = edge_cluster_platform()
        rng = np.random.default_rng(2)
        chain = random_chain(rng, 3)
        tables = build_fault_tables(chain, platform, retry=RetryPolicy())
        with pytest.raises(ValueError, match="has 2 entries but workload"):
            expected_record(tables, ("D", "E"))
