"""Resilient planning: ``plan_with_fallback`` vs brute-force enumeration.

The acceptance pin: on small spaces, the primary and every per-device backup
must equal the brute-force optimum over the corresponding device subset, and
every backup must stay feasible under the single-device-failure scenario it
covers (it never schedules the failed device).
"""

from __future__ import annotations

import numpy as np
import pytest

from factories import random_chain, random_graph

from repro.devices import SimulatedExecutor, edge_cluster_platform
from repro.faults import (
    DeviceFailure,
    FaultProfile,
    RetryPolicy,
    build_fault_tables,
    execute_fault_placements,
    plan_with_fallback,
)
from repro.offload import placement_matrix
from repro.search import plan_workload

PROFILE = FaultProfile(device_failure=DeviceFailure(rate=0.02, rates={"E": 0.25, "A": 0.3}))
RETRY = RetryPolicy(max_attempts=3, backoff_base_s=0.001)


@pytest.fixture(scope="module")
def platform():
    return edge_cluster_platform()


def brute_force_best(platform, workload, subset, *, min_success=0.0):
    """Expected-time optimum over ``subset`` by full enumeration."""
    tables = build_fault_tables(
        workload, platform, subset, retry=RETRY, faults=PROFILE
    )
    batch = execute_fault_placements(
        tables, placement_matrix(len(workload), len(subset))
    )
    values = np.where(
        batch.success_probability >= min_success, batch.total_time_s, np.inf
    )
    index = int(np.argmin(values))
    return batch.label(index), float(batch.total_time_s[index])


class TestFaultAwareDifferential:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_primary_and_every_backup_match_brute_force(self, platform, seed):
        rng = np.random.default_rng(seed)
        workload = random_chain(rng, 3) if seed % 2 == 0 else random_graph(rng, 3)
        executor = SimulatedExecutor(platform)
        plan = plan_with_fallback(
            executor, workload, "time", retry=RETRY, faults=PROFILE
        )
        aliases = tuple(platform.aliases)
        label, value = brute_force_best(platform, workload, aliases)
        assert plan.primary.label == label
        assert plan.primary.value == value
        assert plan.primary.method == "fault-stream"
        assert plan.covered_devices() == tuple(a for a in aliases if a != platform.host)
        for failed in plan.covered_devices():
            subset = tuple(a for a in aliases if a != failed)
            label, value = brute_force_best(platform, workload, subset)
            backup = plan.backup_for(failed)
            assert backup.label == label
            assert backup.value == value
            # Feasible under the single-device-failure scenario: the failed
            # device never appears in the backup placement.
            assert failed not in backup.placement
            assert backup.aliases == subset
        assert plan.dispatch_reason is not None

    def test_min_success_filters_the_subspace(self, platform):
        rng = np.random.default_rng(5)
        chain = random_chain(rng, 3)
        executor = SimulatedExecutor(platform)
        plan = plan_with_fallback(
            executor, chain, "time", retry=RETRY, faults=PROFILE, min_success=0.95
        )
        label, _ = brute_force_best(
            platform, chain, tuple(platform.aliases), min_success=0.95
        )
        assert plan.primary.label == label
        assert plan.primary.success_probability >= 0.95

    def test_unreachable_min_success_is_an_error(self, platform):
        rng = np.random.default_rng(5)
        chain = random_chain(rng, 3)
        impossible = FaultProfile(device_failure=DeviceFailure(rate=1.0))
        with pytest.raises(ValueError, match="success probability"):
            plan_with_fallback(
                SimulatedExecutor(platform),
                chain,
                "time",
                retry=RETRY,
                faults=impossible,
                min_success=0.5,
            )


class TestFaultFreePath:
    def test_components_come_from_the_exact_planner(self, platform):
        rng = np.random.default_rng(4)
        chain = random_chain(rng, 3)
        executor = SimulatedExecutor(platform)
        plan = plan_with_fallback(executor, chain, "time")
        assert plan.dispatch_reason is None
        direct = plan_workload(executor, chain, "time")
        assert plan.primary.label == direct.label
        assert plan.primary.value == direct.value
        assert plan.primary.method == direct.method == "chain-dp"
        for failed in plan.covered_devices():
            subset = tuple(a for a in platform.aliases if a != failed)
            reduced = plan_workload(executor, chain, "time", devices=subset)
            backup = plan.backup_for(failed)
            assert backup.label == reduced.label
            assert backup.value == reduced.value
            assert failed not in backup.placement


class TestGuards:
    def test_dp_method_refused_for_fault_aware_plans(self, platform):
        chain = random_chain(np.random.default_rng(0), 3)
        with pytest.raises(ValueError, match="outside\\s+the DP lattice"):
            plan_with_fallback(
                SimulatedExecutor(platform), chain, "time", retry=RETRY, method="dp"
            )

    def test_faults_without_retry_rejected(self, platform):
        chain = random_chain(np.random.default_rng(0), 3)
        with pytest.raises(ValueError, match="retry=RetryPolicy"):
            plan_with_fallback(SimulatedExecutor(platform), chain, "time", faults=PROFILE)

    def test_min_success_bounds(self, platform):
        chain = random_chain(np.random.default_rng(0), 3)
        with pytest.raises(ValueError, match="min_success"):
            plan_with_fallback(
                SimulatedExecutor(platform), chain, "time", retry=RETRY, min_success=1.1
            )

    def test_needs_two_candidates(self, platform):
        chain = random_chain(np.random.default_rng(0), 3)
        with pytest.raises(ValueError, match="at least two"):
            plan_with_fallback(
                SimulatedExecutor(platform), chain, "time", devices=("D",)
            )

    def test_unknown_method(self, platform):
        chain = random_chain(np.random.default_rng(0), 3)
        with pytest.raises(ValueError, match="unknown method"):
            plan_with_fallback(
                SimulatedExecutor(platform), chain, "time", method="brute"
            )

    def test_fallback_limit_bounds_the_enumeration(self, platform):
        chain = random_chain(np.random.default_rng(0), 4)
        with pytest.raises(ValueError, match="shrink the device set"):
            plan_with_fallback(
                SimulatedExecutor(platform),
                chain,
                "time",
                retry=RETRY,
                fallback_limit=10,
            )

    def test_backup_for_unknown_device(self, platform):
        chain = random_chain(np.random.default_rng(0), 3)
        plan = plan_with_fallback(SimulatedExecutor(platform), chain, "time")
        with pytest.raises(KeyError, match="no backup plan for device 'Z'"):
            plan.backup_for("Z")
        with pytest.raises(KeyError, match="covered devices"):
            plan.backup_for(platform.host)

    def test_summary_names_every_component(self, platform):
        chain = random_chain(np.random.default_rng(0), 3)
        plan = plan_with_fallback(
            SimulatedExecutor(platform), chain, "time", retry=RETRY, faults=PROFILE
        )
        text = plan.summary()
        assert "primary" in text
        for alias in plan.covered_devices():
            assert f"-{alias}" in text
