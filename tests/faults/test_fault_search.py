"""Fault-aware search: expected-cost objectives through the streaming drivers."""

from __future__ import annotations

import numpy as np
import pytest

from factories import random_chain

from repro.devices import SimulatedExecutor, edge_cluster_platform
from repro.faults import (
    DeviceFailure,
    FaultProfile,
    RetryPolicy,
    build_fault_tables,
    execute_fault_placements,
)
from repro.offload import placement_matrix
from repro.scenarios import DeviceFailureRate, ScenarioGrid
from repro.search import (
    RegretObjective,
    SuccessProbabilityConstraint,
    WorstCaseObjective,
    search_grid,
    search_space,
)


@pytest.fixture(scope="module")
def platform():
    return edge_cluster_platform()


@pytest.fixture(scope="module")
def chain():
    return random_chain(np.random.default_rng(8), 4)


@pytest.fixture(scope="module")
def profile():
    return FaultProfile(device_failure=DeviceFailure(rate=0.02, rates={"E": 0.2, "A": 0.3}))


RETRY = RetryPolicy(max_attempts=3, backoff_base_s=0.001)


class TestFaultAwareSearchSpace:
    def test_winner_matches_direct_engine_argmin(self, platform, chain, profile):
        executor = SimulatedExecutor(platform)
        result = search_space(
            executor, chain, objectives=("time",), faults=profile, retry=RETRY
        )
        tables = build_fault_tables(chain, platform, retry=RETRY, faults=profile)
        batch = execute_fault_placements(
            tables, placement_matrix(len(chain), len(platform.aliases))
        )
        assert result.best("time") == batch.label(int(np.argmin(batch.total_time_s)))
        assert result.top["time"].values[0] == float(np.min(batch.total_time_s))

    def test_fault_aware_differs_from_fault_blind_here(self, platform):
        # An offload-worthy chain: the fault-blind optimum leans on the edge
        # server/GPU, which a high failure rate makes a bad bet.
        from repro.experiments.faulttolerance import fault_chain

        executor = SimulatedExecutor(platform)
        chain = fault_chain()
        profile = FaultProfile(
            device_failure=DeviceFailure(rates={"E": 0.45, "A": 0.45})
        )
        blind = search_space(executor, chain, objectives=("time",))
        aware = search_space(
            executor, chain, objectives=("time",), faults=profile, retry=RETRY
        )
        assert aware.best("time") != blind.best("time")

    def test_sharded_equals_serial(self, platform, chain, profile):
        executor = SimulatedExecutor(platform)
        serial = search_space(
            executor, chain, objectives=("time",), faults=profile, retry=RETRY
        )
        sharded = search_space(
            executor,
            chain,
            objectives=("time",),
            faults=profile,
            retry=RETRY,
            n_workers=3,
            batch_size=37,
        )
        assert sharded.top["time"].labels == serial.top["time"].labels
        assert np.array_equal(sharded.top["time"].values, serial.top["time"].values)

    def test_success_probability_constraint_filters(self, platform, chain, profile):
        executor = SimulatedExecutor(platform)
        constraint = SuccessProbabilityConstraint(min_success=0.999)
        result = search_space(
            executor,
            chain,
            objectives=("time",),
            constraints=(constraint,),
            faults=profile,
            retry=RETRY,
        )
        tables = build_fault_tables(chain, platform, retry=RETRY, faults=profile)
        batch = execute_fault_placements(
            tables, placement_matrix(len(chain), len(platform.aliases))
        )
        feasible = batch.success_probability >= 0.999
        assert result.n_feasible == int(feasible.sum())
        times = np.where(feasible, batch.total_time_s, np.inf)
        assert result.best("time") == batch.label(int(np.argmin(times)))

    def test_constraint_needs_a_fault_aware_batch(self, platform, chain):
        executor = SimulatedExecutor(platform)
        with pytest.raises(ValueError, match="fault-aware batch"):
            search_space(
                executor,
                chain,
                objectives=("time",),
                constraints=(SuccessProbabilityConstraint(0.9),),
            )

    def test_constraint_validates_bounds(self):
        with pytest.raises(ValueError, match="min_success"):
            SuccessProbabilityConstraint(min_success=1.5)

    def test_planner_method_refused(self, platform, chain, profile):
        executor = SimulatedExecutor(platform)
        with pytest.raises(ValueError, match="DP planner boundary"):
            search_space(
                executor,
                chain,
                objectives=("time",),
                method="planner",
                faults=profile,
                retry=RETRY,
            )

    def test_faults_without_retry_rejected(self, platform, chain, profile):
        executor = SimulatedExecutor(platform)
        with pytest.raises(ValueError, match="retry=RetryPolicy"):
            search_space(executor, chain, objectives=("time",), faults=profile)


class TestFaultAwareSearchGrid:
    @pytest.fixture(scope="class")
    def scenarios(self):
        return ScenarioGrid.cartesian(
            [(DeviceFailureRate(devices=("E", "A")), [0.0, 0.1, 0.3])]
        )

    def test_scenario_platform_profiles_drive_the_grid(
        self, platform, chain, scenarios
    ):
        executor = SimulatedExecutor(platform)
        result = search_grid(
            executor,
            chain,
            scenarios,
            objectives=(WorstCaseObjective(),),
            retry=RETRY,
        )
        # Per scenario, the tracked best must match a direct fault evaluation
        # under that scenario's attached profile.
        matrix = placement_matrix(len(chain), len(platform.aliases))
        for index, scenario_platform in enumerate(scenarios.platforms(platform)):
            tables = build_fault_tables(chain, scenario_platform, retry=RETRY)
            batch = execute_fault_placements(tables, matrix)
            expected = batch.label(int(np.argmin(batch.total_time_s)))
            assert result.scenario_best["time"].labels[index] == expected

    def test_sharded_equals_serial_with_regret(self, platform, chain, scenarios):
        executor = SimulatedExecutor(platform)
        kwargs = dict(
            objectives=(WorstCaseObjective(), RegretObjective()),
            constraints=(SuccessProbabilityConstraint(0.5),),
            retry=RETRY,
        )
        serial = search_grid(executor, chain, scenarios, **kwargs)
        sharded = search_grid(
            executor, chain, scenarios, n_workers=3, batch_size=41, **kwargs
        )
        for name in serial.top:
            assert sharded.top[name].labels == serial.top[name].labels
            assert np.array_equal(sharded.top[name].values, serial.top[name].values)

    def test_planner_baselines_refused_for_fault_aware_regret(
        self, platform, chain, scenarios
    ):
        executor = SimulatedExecutor(platform)
        # "auto" streams the baselines: they must equal the per-scenario
        # fault-aware minima.
        result = search_grid(
            executor,
            chain,
            scenarios,
            objectives=(RegretObjective(),),
            retry=RETRY,
            baseline_method="auto",
        )
        matrix = placement_matrix(len(chain), len(platform.aliases))
        for index, scenario_platform in enumerate(scenarios.platforms(platform)):
            tables = build_fault_tables(chain, scenario_platform, retry=RETRY)
            batch = execute_fault_placements(tables, matrix)
            assert result.baselines["time"][index] == float(np.min(batch.total_time_s))
        # An explicit "planner" request must refuse with the boundary reason.
        with pytest.raises(ValueError, match="outside the DP planner boundary"):
            search_grid(
                executor,
                chain,
                scenarios,
                objectives=(RegretObjective(),),
                retry=RETRY,
                baseline_method="planner",
            )

    def test_faults_without_retry_rejected(self, platform, chain, scenarios, profile):
        executor = SimulatedExecutor(platform)
        with pytest.raises(ValueError, match="retry=RetryPolicy"):
            search_grid(executor, chain, scenarios, faults=profile)
