"""Shared randomized factories for platforms, chains and graphs.

One copy of the ``random_platform`` / ``random_chain`` helpers that used to be
duplicated across ``tests/devices/test_batch.py``, ``test_costmodel.py`` and
``test_grid.py`` (plus the DAG analogue ``random_graph``).  They live in a
plain module -- not ``conftest.py`` -- so hypothesis tests can call them with
drawn seeds (function-scoped fixtures and ``@given`` do not mix);
``tests/conftest.py`` re-exports them as factory fixtures for ordinary tests.
"""

from __future__ import annotations

import numpy as np

from repro.devices import DeviceSpec, LinkSpec, Platform
from repro.tasks import GemmLoopTask, TaskChain, TaskGraph


def random_platform(rng: np.random.Generator, n_devices: int) -> Platform:
    """A fully linked platform with randomized device and link parameters."""
    aliases = ["D", "A", "B", "C"][:n_devices]
    devices = {
        alias: DeviceSpec(
            name=f"dev-{alias}",
            peak_gflops=float(rng.uniform(5.0, 500.0)),
            half_saturation_flops=float(rng.uniform(1e4, 1e7)),
            memory_bandwidth_gbs=float(rng.uniform(2.0, 200.0)),
            kernel_launch_overhead_s=float(rng.uniform(0.0, 1e-4)),
            task_startup_overhead_s=float(rng.uniform(0.0, 1e-3)),
            power_active_w=float(rng.uniform(1.0, 250.0)),
            power_idle_w=float(rng.uniform(0.1, 30.0)),
            cost_per_hour=float(rng.uniform(0.0, 2.0)),
        )
        for alias in aliases
    }
    links = {
        (a, b): random_link(rng, name=f"link-{a}{b}")
        for i, a in enumerate(aliases)
        for b in aliases[i + 1 :]
    }
    return Platform(devices=devices, links=links, host=aliases[0], name="random")


def random_link(rng: np.random.Generator, name: str = "rand") -> LinkSpec:
    return LinkSpec(
        name=name,
        bandwidth_gbs=float(rng.uniform(0.01, 10.0)),
        latency_s=float(rng.uniform(0.0, 1e-2)),
        energy_per_byte_j=float(rng.uniform(0.0, 1e-7)),
    )


def random_chain(rng: np.random.Generator, n_tasks: int) -> TaskChain:
    """A chain of small randomized GEMM loop tasks named ``L1..Ln``."""
    tasks = [
        GemmLoopTask(
            int(rng.integers(8, 96)),
            iterations=int(rng.integers(1, 4)),
            name=f"L{i + 1}",
        )
        for i in range(n_tasks)
    ]
    return TaskChain(tasks, name=f"random-{n_tasks}")


def random_graph(
    rng: np.random.Generator, n_tasks: int, edge_probability: float = 0.5
) -> TaskGraph:
    """A random DAG over the tasks of :func:`random_chain`.

    Each forward pair ``(Li, Lj)`` with ``i < j`` becomes an edge with the
    given probability, so the graph mixes sources, fan-out, fan-in joins and
    independent components -- the structures the DAG engine must handle.
    """
    chain = random_chain(rng, n_tasks)
    names = chain.task_names
    edges = [
        (names[i], names[j])
        for i in range(n_tasks)
        for j in range(i + 1, n_tasks)
        if rng.random() < edge_probability
    ]
    return TaskGraph(chain.tasks, edges=edges, name=f"random-graph-{n_tasks}")
