"""Tests for the three-way bubble sort (Procedures 1-3), including the paper's Figure 2 trace."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Comparison,
    ComparisonCounter,
    MeanComparator,
    PairwiseOracle,
    bind_comparator,
    ranks_are_valid,
    three_way_bubble_sort,
)


class TestPaperWorkedExample:
    """Reproduce the Figure 2 walk-through exactly."""

    INITIAL_ORDER = ["DD", "AA", "DA", "AD"]

    def test_paper_worked_example_final_sequence(self, figure2_oracle):
        result = three_way_bubble_sort(self.INITIAL_ORDER, figure2_oracle)
        assert result.pairs() == [("AD", 1), ("AA", 2), ("DD", 3), ("DA", 3)]

    def test_paper_worked_example_number_of_classes(self, figure2_oracle):
        result = three_way_bubble_sort(self.INITIAL_ORDER, figure2_oracle)
        assert result.n_classes == 3
        assert result.clusters() == {1: ["AD"], 2: ["AA"], 3: ["DD", "DA"]}

    def test_paper_worked_example_intermediate_steps(self, figure2_oracle):
        """The four steps discussed in Section III appear in the trace in order."""
        result = three_way_bubble_sort(self.INITIAL_ORDER, figure2_oracle, record_trace=True)
        trace = result.trace

        # Step 1: DD is worse than AA and the two swap positions.
        step1 = trace[0]
        assert (step1.left, step1.right) == ("DD", "AA")
        assert step1.outcome is Comparison.WORSE and step1.swapped
        assert step1.sequence_after[:2] == ("AA", "DD")
        assert step1.ranks_after == (1, 2, 3, 4)

        # Step 2: DD ~ DA, ranks of the successors are decreased by one.
        step2 = trace[1]
        assert (step2.left, step2.right) == ("DD", "DA")
        assert step2.outcome is Comparison.EQUIVALENT and not step2.swapped
        assert step2.ranks_after == (1, 2, 2, 3)

        # Step 3: DA < AD, swap; AD joins the rank-2 class and DA's rank drops to 2.
        step3 = trace[2]
        assert (step3.left, step3.right) == ("DA", "AD")
        assert step3.swapped
        assert step3.sequence_after == ("AA", "DD", "AD", "DA")
        assert step3.ranks_after == (1, 2, 2, 2)

        # Step 4 of the paper (second pass, positions 2/3): AD defeats DD and is
        # promoted above its class: successors pushed to rank 3.
        step4 = next(
            s for s in trace if s.pass_index == 2 and (s.left, s.right) == ("DD", "AD")
        )
        assert step4.swapped
        assert step4.sequence_after == ("AA", "AD", "DD", "DA")
        assert step4.ranks_after == (1, 2, 3, 3)

    def test_trace_disabled_by_default(self, figure2_oracle):
        result = three_way_bubble_sort(self.INITIAL_ORDER, figure2_oracle)
        assert result.trace == ()

    def test_comparison_count_is_quadratic(self, figure2_oracle):
        counter = ComparisonCounter(figure2_oracle)
        result = three_way_bubble_sort(self.INITIAL_ORDER, counter)
        assert result.n_comparisons == counter.calls == 3 + 2 + 1

    def test_step_describe_mentions_outcome_symbol(self, figure2_oracle):
        result = three_way_bubble_sort(self.INITIAL_ORDER, figure2_oracle, record_trace=True)
        assert "~" in result.trace[1].describe()


class TestSortResult:
    def test_rank_of_and_mapping(self, figure2_oracle):
        result = three_way_bubble_sort(["DD", "AA", "DA", "AD"], figure2_oracle)
        assert result.rank_of("AD") == 1
        assert result.as_mapping()["DA"] == 3

    def test_mismatched_lengths_rejected(self):
        from repro.core.sorting import SortResult

        with pytest.raises(ValueError):
            SortResult(sequence=("a",), ranks=(1, 2))


class TestSortBehaviour:
    def test_duplicate_labels_rejected(self, figure2_oracle):
        with pytest.raises(ValueError):
            three_way_bubble_sort(["DD", "DD"], figure2_oracle)

    def test_single_algorithm(self):
        oracle = PairwiseOracle({})
        result = three_way_bubble_sort(["only"], oracle)
        assert result.pairs() == [("only", 1)]
        assert result.n_comparisons == 0

    def test_all_equivalent_collapse_to_one_class(self):
        oracle = PairwiseOracle({}, default=Comparison.EQUIVALENT)
        result = three_way_bubble_sort(list("abcde"), oracle)
        assert result.n_classes == 1
        assert set(result.ranks) == {1}

    def test_strict_total_order_gives_distinct_classes(self):
        # value order: a < b < c < d (smaller value = better)
        values = {"a": 1, "b": 2, "c": 3, "d": 4}

        def compare(x, y):
            if values[x] == values[y]:
                return Comparison.EQUIVALENT
            return Comparison.BETTER if values[x] < values[y] else Comparison.WORSE

        result = three_way_bubble_sort(["d", "b", "a", "c"], compare)
        assert result.sequence == ("a", "b", "c", "d")
        assert result.ranks == (1, 2, 3, 4)

    def test_reverse_sorted_input(self):
        values = {"a": 1, "b": 2, "c": 3, "d": 4, "e": 5}

        def compare(x, y):
            return Comparison.BETTER if values[x] < values[y] else Comparison.WORSE

        result = three_way_bubble_sort(["e", "d", "c", "b", "a"], compare)
        assert result.sequence == ("a", "b", "c", "d", "e")

    def test_non_comparison_return_raises(self):
        def bad_compare(a, b):
            return "better"

        with pytest.raises(TypeError):
            three_way_bubble_sort(["x", "y"], bad_compare)

    def test_with_measurement_backed_comparator(self, well_separated_measurements):
        compare = bind_comparator(MeanComparator(), well_separated_measurements)
        result = three_way_bubble_sort(list(well_separated_measurements), compare)
        assert result.sequence == ("fast", "medium", "slow", "slowest")
        assert result.ranks == (1, 2, 3, 4)


class TestRankInvariants:
    def test_ranks_are_valid_helper(self):
        assert ranks_are_valid([1, 1, 2, 3, 3])
        assert ranks_are_valid([])
        assert ranks_are_valid([1])
        assert not ranks_are_valid([2, 3])
        assert not ranks_are_valid([1, 3])
        assert not ranks_are_valid([1, 1, 0])

    @given(
        n=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_rank_staircase_invariant_under_random_comparisons(self, n, seed):
        """Whatever the (even inconsistent) comparator does, ranks stay a valid staircase
        and the result is a permutation of the input."""
        rng = np.random.default_rng(seed)
        labels = [f"alg{i}" for i in range(n)]
        outcomes = list(Comparison)

        def random_compare(a, b):
            return outcomes[rng.integers(0, 3)]

        result = three_way_bubble_sort(labels, random_compare)
        assert sorted(result.sequence, key=str) == sorted(labels, key=str)
        assert ranks_are_valid(result.ranks)
        assert 1 <= result.n_classes <= n

    @given(
        n=st.integers(min_value=2, max_value=7),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_consistent_total_order_is_always_recovered(self, n, seed):
        """With a noise-free strict order the sort recovers it regardless of the input permutation."""
        rng = np.random.default_rng(seed)
        labels = [f"alg{i}" for i in range(n)]
        values = {label: i for i, label in enumerate(labels)}

        def compare(a, b):
            if values[a] == values[b]:
                return Comparison.EQUIVALENT
            return Comparison.BETTER if values[a] < values[b] else Comparison.WORSE

        shuffled = list(labels)
        rng.shuffle(shuffled)
        result = three_way_bubble_sort(shuffled, compare)
        assert list(result.sequence) == labels
        assert result.ranks == tuple(range(1, n + 1))

    @given(
        n=st.integers(min_value=2, max_value=7),
        n_classes=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_grouped_order_recovers_classes(self, n, n_classes, seed):
        """With a consistent weak order (ties allowed) the sort groups equivalent algorithms."""
        rng = np.random.default_rng(seed)
        labels = [f"alg{i}" for i in range(n)]
        classes = {label: int(rng.integers(0, n_classes)) for label in labels}

        def compare(a, b):
            if classes[a] == classes[b]:
                return Comparison.EQUIVALENT
            return Comparison.BETTER if classes[a] < classes[b] else Comparison.WORSE

        shuffled = list(labels)
        rng.shuffle(shuffled)
        result = three_way_bubble_sort(shuffled, compare)
        mapping = result.as_mapping()
        # Same class -> same rank; better class -> strictly better rank.
        for a in labels:
            for b in labels:
                if classes[a] == classes[b]:
                    assert mapping[a] == mapping[b]
                elif classes[a] < classes[b]:
                    assert mapping[a] < mapping[b]
