"""Tests for the pairwise comparison engine (caching, precomputation, campaigns)."""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.core import (
    BootstrapComparator,
    CachedCompareFn,
    Comparison,
    ComparisonCounter,
    ComparisonEngine,
    IntervalOverlapComparator,
    MannWhitneyComparator,
    MeanComparator,
    MedianComparator,
    MinimumComparator,
    PairwiseOracle,
    RelativePerformanceAnalyzer,
    relative_scores,
    three_way_bubble_sort,
)

DETERMINISTIC_COMPARATORS = [
    BootstrapComparator(seed=1),
    BootstrapComparator(seed=1, n_resamples=80, quantiles=(0.25, 0.5, 0.75)),
    MeanComparator(rel_tolerance=0.02),
    MedianComparator(rel_tolerance=0.02),
    MinimumComparator(rel_tolerance=0.02),
    MannWhitneyComparator(),
    IntervalOverlapComparator(seed=1),
]


def _ids(comparator) -> str:
    return type(comparator).__name__ + getattr(comparator, "name", "")


@pytest.fixture
def table(rng) -> dict[str, np.ndarray]:
    """Six overlapping algorithms, enough for borderline comparisons."""
    return {
        f"alg{i}": np.abs(rng.normal(2.0 + 0.08 * i, 0.25, size=40)) for i in range(6)
    }


class _CountingComparator:
    """Array-level wrapper counting how often each unordered pair is evaluated."""

    def __init__(self, inner):
        self.inner = inner
        self.stochastic = bool(getattr(inner, "stochastic", False))
        self.pair_counts: dict[tuple[bytes, bytes], int] = {}

    def compare(self, a, b):
        key = tuple(sorted((a.tobytes(), b.tobytes())))
        self.pair_counts[key] = self.pair_counts.get(key, 0) + 1
        return self.inner.compare(a, b)


class TestCachedCompareFn:
    def test_serves_both_directions_from_one_call(self):
        oracle = PairwiseOracle({("a", "b"): Comparison.BETTER})
        cached = CachedCompareFn(oracle)
        for _ in range(5):
            assert cached("a", "b") is Comparison.BETTER
            assert cached("b", "a") is Comparison.WORSE
        assert oracle.calls == 1
        assert cached.calls == 10
        assert cached.misses == 1
        assert cached.hits == 9


class TestEngineOutcomes:
    @pytest.mark.parametrize("comparator", DETERMINISTIC_COMPARATORS, ids=_ids)
    def test_cached_identical_to_uncached_for_every_pair(self, table, comparator):
        """Engine outcomes are bitwise identical to direct comparator calls."""
        engine = ComparisonEngine(table, comparator)
        for a in table:
            for b in table:
                assert engine.compare(a, b) is comparator.compare(table[a], table[b])

    @pytest.mark.parametrize("comparator", DETERMINISTIC_COMPARATORS, ids=_ids)
    def test_outcome_table_is_antisymmetric(self, table, comparator):
        outcomes = ComparisonEngine(table, comparator).outcome_table()
        for a in table:
            for b in table:
                assert outcomes[(a, b)] is outcomes[(b, a)].flipped()
                if a == b:
                    assert outcomes[(a, b)] is Comparison.EQUIVALENT

    def test_precomputed_matrix_matches_lazy_memoization(self, table):
        comparator = BootstrapComparator(seed=3)
        eager = ComparisonEngine(table, comparator, precompute=True)
        lazy = ComparisonEngine(table, comparator, precompute=False)
        assert eager.outcome_table() == lazy.outcome_table()

    def test_zero_margin_exact_tie_is_equivalent_in_every_mode(self):
        """A win fraction of exactly 0.5 is a perfect tie: EQUIVALENT in both
        directions, identically for direct calls, eager and lazy engines."""
        comparator = BootstrapComparator(seed=0, equivalence_margin=0.0)
        data = np.array([1.0, 2.0, 3.0, 4.0])
        table = {"a": data, "b": data.copy()}
        assert comparator.compare(data, data.copy()) is Comparison.EQUIVALENT
        for precompute in (True, False):
            engine = ComparisonEngine(table, comparator, precompute=precompute)
            assert engine.compare("a", "b") is Comparison.EQUIVALENT
            assert engine.compare("b", "a") is Comparison.EQUIVALENT

    def test_win_fraction_matrix_bitwise_identical_to_per_call(self, table):
        comparator = BootstrapComparator(seed=5)
        arrays = list(table.values())
        matrix = comparator.win_fraction_matrix(arrays)
        for i, a in enumerate(arrays):
            for j, b in enumerate(arrays):
                if i == j:
                    assert matrix[i, j] == 0.5
                else:
                    assert matrix[i, j] == comparator.win_fraction(a, b)

    def test_win_fraction_matrix_handles_mixed_lengths(self, rng):
        comparator = BootstrapComparator(seed=0)
        arrays = [rng.normal(1, 0.1, 30), rng.normal(2, 0.1, 45), rng.normal(3, 0.1, 30)]
        matrix = comparator.win_fraction_matrix(arrays)
        for i, a in enumerate(arrays):
            for j, b in enumerate(arrays):
                if i != j:
                    assert matrix[i, j] == comparator.win_fraction(a, b)

    def test_win_fraction_matrix_rejects_stochastic_mode(self, table):
        with pytest.raises(ValueError):
            BootstrapComparator(seed=0, stochastic=True).win_fraction_matrix(
                list(table.values())
            )

    def test_unknown_label_raises_key_error(self, table):
        engine = ComparisonEngine(table, MeanComparator())
        with pytest.raises(KeyError):
            engine.compare("alg0", "missing")

    def test_rejects_comparator_without_compare(self, table):
        with pytest.raises(TypeError):
            ComparisonEngine(table, "not a comparator")


class TestStochasticBypass:
    def test_stochastic_comparator_bypasses_the_cache(self, table):
        """Every call reaches the comparator: borderline pairs may switch outcome."""
        comparator = _CountingComparator(BootstrapComparator(seed=0, stochastic=True))
        engine = ComparisonEngine(table, comparator)
        for _ in range(7):
            engine.compare("alg0", "alg1")
        assert engine.comparator_calls == 7
        assert max(comparator.pair_counts.values()) == 7

    def test_stochastic_engine_preserves_comparator_stream(self, table):
        """Pass-through calls consume the comparator rng exactly like direct calls."""
        engine_comp = BootstrapComparator(seed=9, stochastic=True)
        direct_comp = BootstrapComparator(seed=9, stochastic=True)
        engine = ComparisonEngine(table, engine_comp)
        labels = list(table)
        for a, b in zip(labels, labels[1:]):
            assert engine.compare(a, b) is direct_comp.compare(table[a], table[b])

    def test_stochastic_precompute_requests_are_rejected(self, table):
        comparator = BootstrapComparator(seed=0, stochastic=True)
        with pytest.raises(ValueError):
            ComparisonEngine(table, comparator, precompute=True)
        with pytest.raises(ValueError):
            ComparisonEngine(table, comparator).outcome_table()

    def test_comparator_without_stochastic_attribute_is_never_cached(self, table):
        """Caching is opt-in: unknown comparators might hide per-call randomness."""

        class OpaqueComparator:
            def __init__(self):
                self.calls = 0

            def compare(self, a, b):
                self.calls += 1
                return Comparison.EQUIVALENT

        comparator = OpaqueComparator()
        engine = ComparisonEngine(table, comparator)
        assert engine.stochastic  # pass-through mode
        for _ in range(4):
            engine.compare("alg0", "alg1")
        assert comparator.calls == 4

    def test_comparator_subclass_without_declaration_is_never_cached(self, table):
        """Subclassing the Comparator base alone does not opt into caching."""
        from repro.core import Comparator

        class LegacySubclass(Comparator):
            def __init__(self):
                self.calls = 0

            def compare(self, a, b):
                self.calls += 1
                return Comparison.EQUIVALENT

        comparator = LegacySubclass()
        engine = ComparisonEngine(table, comparator)
        assert engine.stochastic  # no stochastic=False declaration -> pass-through
        for _ in range(3):
            engine.compare("alg0", "alg1")
        assert comparator.calls == 3


class TestProcedure4Complexity:
    def test_procedure_4_bootstraps_each_pair_at_most_once(self, table):
        """Across Rep repetitions every unordered pair reaches the bootstrap <= once,
        while the sorts themselves still perform O(Rep * p^2) label-level comparisons."""
        comparator = _CountingComparator(BootstrapComparator(seed=2))
        engine = ComparisonEngine(table, comparator)
        counter = ComparisonCounter(engine)
        relative_scores(list(table), counter, repetitions=50, rng=0)
        p = len(table)
        assert counter.calls >= 50 * (p * (p - 1) // 2 - (p - 1))  # many label-level calls...
        assert comparator.pair_counts, "the bootstrap was never reached"
        assert max(comparator.pair_counts.values()) == 1  # ...each bootstrapped at most once
        assert len(comparator.pair_counts) <= p * (p - 1) // 2

    def test_precomputed_engine_serves_sorts_without_new_evaluations(self, table):
        analyzer = RelativePerformanceAnalyzer(
            comparator=BootstrapComparator(seed=0), repetitions=30, seed=0
        )
        engine = analyzer.engine_for(table)
        pairs = len(table) * (len(table) - 1) // 2
        assert engine.comparator_calls == pairs
        three_way_bubble_sort(list(table), engine)
        relative_scores(list(table), engine, repetitions=10, rng=0)
        assert engine.comparator_calls == pairs
        engine.precompute()  # idempotent: no recomputation, counters untouched
        assert engine.comparator_calls == pairs


class TestAnalyzerIntegration:
    def test_analyze_routes_through_one_engine(self, table):
        """analyze() == score() + final_assignment + canonical sort, deduplicated."""
        analyzer = RelativePerformanceAnalyzer(seed=4, repetitions=25)
        result = analyzer.analyze(table)
        assert result.score_table == analyzer.score(table)
        canonical = analyzer.rank_once(table)
        assert result.canonical_sort.sequence == canonical.sequence
        assert result.canonical_sort.ranks == canonical.ranks

    def test_rank_once_over_a_subset_only_evaluates_touched_pairs(self, table):
        """No eager p x p precomputation when `order` restricts the sort."""
        comparator = _CountingComparator(BootstrapComparator(seed=0))
        analyzer = RelativePerformanceAnalyzer(comparator=comparator, repetitions=5)
        labels = list(table)[:2]
        analyzer.rank_once(table, order=labels)
        assert len(comparator.pair_counts) == 1  # just the one adjacent pair

    def test_deterministic_analysis_unchanged_by_caching(self, table):
        """Engine-backed analyze equals the uncached seed implementation bit for bit."""
        analyzer = RelativePerformanceAnalyzer(
            comparator=BootstrapComparator(seed=0), repetitions=30, seed=0
        )
        result = analyzer.analyze(table)

        comparator = BootstrapComparator(seed=0)
        arrays = {k: np.asarray(v, float) for k, v in table.items()}
        uncached = relative_scores(
            list(arrays),
            lambda a, b: comparator.compare(arrays[a], arrays[b]),
            repetitions=30,
            rng=0,
        )
        assert result.score_table == uncached


class TestAnalyzeMany:
    def _campaigns(self, table):
        return {
            "base": table,
            "doubled": {k: v * 2.0 for k, v in table.items()},
            "shifted": {k: v + 1.0 for k, v in table.items()},
        }

    def test_matches_sequential_analyze_per_key(self, table):
        analyzer = RelativePerformanceAnalyzer(seed=0, repetitions=20)
        campaigns = self._campaigns(table)
        results = analyzer.analyze_many(campaigns)
        assert list(results) == list(campaigns)
        for key, measurements in campaigns.items():
            solo = RelativePerformanceAnalyzer(seed=0, repetitions=20).analyze(measurements)
            assert results[key].score_table == solo.score_table
            assert results[key].final.as_dict() == solo.final.as_dict()

    def test_stochastic_campaigns_are_order_independent(self, table):
        """Each entry gets an independent comparator copy, so dict order is irrelevant."""
        campaigns = self._campaigns(table)
        reversed_campaigns = dict(reversed(campaigns.items()))

        def analyzer():
            return RelativePerformanceAnalyzer(
                comparator=BootstrapComparator(seed=0, stochastic=True),
                repetitions=15,
                seed=0,
            )

        forward = analyzer().analyze_many(campaigns)
        backward = analyzer().analyze_many(reversed_campaigns)
        for key in campaigns:
            assert forward[key].score_table == backward[key].score_table

    def test_parallel_equals_sequential(self, table):
        campaigns = self._campaigns(table)
        analyzer = RelativePerformanceAnalyzer(seed=1, repetitions=15)
        sequential = analyzer.analyze_many(campaigns)
        parallel = analyzer.analyze_many(campaigns, parallel=True, max_workers=2)
        for key in campaigns:
            assert sequential[key].score_table == parallel[key].score_table
            assert sequential[key].final.as_dict() == parallel[key].final.as_dict()

    def test_empty_campaign_rejected(self):
        with pytest.raises(ValueError):
            RelativePerformanceAnalyzer().analyze_many({})

    def test_does_not_mutate_the_calling_analyzer(self, table):
        """Campaign copies leave the analyzer's own comparator stream untouched."""
        analyzer = RelativePerformanceAnalyzer(
            comparator=BootstrapComparator(seed=0, stochastic=True), repetitions=10, seed=0
        )
        probe = copy.deepcopy(analyzer)
        analyzer.analyze_many(self._campaigns(table))
        assert analyzer.analyze(table).score_table == probe.analyze(table).score_table
