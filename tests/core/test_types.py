"""Tests for the fundamental comparison types."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Comparison, ComparisonCounter, PairwiseOracle, bind_comparator
from repro.core.comparison import MeanComparator


class TestComparison:
    def test_flipped_is_involution(self):
        for outcome in Comparison:
            assert outcome.flipped().flipped() is outcome

    def test_flipped_swaps_better_and_worse(self):
        assert Comparison.BETTER.flipped() is Comparison.WORSE
        assert Comparison.WORSE.flipped() is Comparison.BETTER
        assert Comparison.EQUIVALENT.flipped() is Comparison.EQUIVALENT

    def test_symbols_match_paper_notation(self):
        assert Comparison.BETTER.symbol == ">"
        assert Comparison.WORSE.symbol == "<"
        assert Comparison.EQUIVALENT.symbol == "~"


class TestPairwiseOracle:
    def test_returns_recorded_outcome(self):
        oracle = PairwiseOracle({("a", "b"): Comparison.BETTER})
        assert oracle("a", "b") is Comparison.BETTER

    def test_reverse_direction_is_flipped(self):
        oracle = PairwiseOracle({("a", "b"): Comparison.BETTER})
        assert oracle("b", "a") is Comparison.WORSE

    def test_equivalence_is_symmetric(self):
        oracle = PairwiseOracle({("a", "b"): Comparison.EQUIVALENT})
        assert oracle("b", "a") is Comparison.EQUIVALENT

    def test_self_comparison_is_equivalent(self):
        oracle = PairwiseOracle({})
        assert oracle("x", "x") is Comparison.EQUIVALENT

    def test_unknown_pair_raises_without_default(self):
        oracle = PairwiseOracle({("a", "b"): Comparison.BETTER})
        with pytest.raises(KeyError):
            oracle("a", "c")

    def test_unknown_pair_uses_default(self):
        oracle = PairwiseOracle({}, default=Comparison.EQUIVALENT)
        assert oracle("p", "q") is Comparison.EQUIVALENT

    def test_counts_calls(self):
        oracle = PairwiseOracle({("a", "b"): Comparison.BETTER})
        oracle("a", "b")
        oracle("b", "a")
        assert oracle.calls == 2


class TestComparisonCounter:
    def test_counts_and_delegates(self):
        oracle = PairwiseOracle({("a", "b"): Comparison.WORSE})
        counter = ComparisonCounter(oracle)
        assert counter("a", "b") is Comparison.WORSE
        assert counter("b", "a") is Comparison.BETTER
        assert counter.calls == 2


class TestBindComparator:
    def test_binds_measurements_to_labels(self):
        compare = bind_comparator(
            MeanComparator(), {"fast": [1.0, 1.1], "slow": [5.0, 5.1]}
        )
        assert compare("fast", "slow") is Comparison.BETTER
        assert compare("slow", "fast") is Comparison.WORSE

    def test_missing_label_raises(self):
        compare = bind_comparator(MeanComparator(), {"only": np.array([1.0])})
        with pytest.raises(KeyError):
            compare("only", "missing")
