"""Tests for the vectorised bootstrap utilities."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BootstrapInterval,
    bootstrap_indices,
    bootstrap_quantiles,
    bootstrap_samples,
    bootstrap_statistic,
    percentile_interval,
)


class TestBootstrapIndices:
    def test_shape(self, rng):
        idx = bootstrap_indices(10, 50, rng)
        assert idx.shape == (50, 10)

    def test_values_within_range(self, rng):
        idx = bootstrap_indices(7, 200, rng)
        assert idx.min() >= 0
        assert idx.max() < 7

    @pytest.mark.parametrize("n,n_resamples", [(0, 5), (5, 0), (-1, 5)])
    def test_invalid_arguments_raise(self, rng, n, n_resamples):
        with pytest.raises(ValueError):
            bootstrap_indices(n, n_resamples, rng)


class TestBootstrapSamples:
    def test_resamples_only_original_values(self, rng):
        data = np.array([1.0, 2.0, 3.0])
        samples = bootstrap_samples(data, 100, rng)
        assert set(np.unique(samples)).issubset(set(data))

    def test_rejects_empty(self, rng):
        with pytest.raises(ValueError):
            bootstrap_samples(np.array([]), 10, rng)

    def test_rejects_nan(self, rng):
        with pytest.raises(ValueError):
            bootstrap_samples(np.array([1.0, np.nan]), 10, rng)

    def test_rejects_2d(self, rng):
        with pytest.raises(ValueError):
            bootstrap_samples(np.ones((2, 2)), 10, rng)


class TestBootstrapStatistic:
    def test_mean_statistic_centres_on_sample_mean(self, rng):
        data = rng.normal(5.0, 1.0, size=200)
        means = bootstrap_statistic(data, lambda m: np.mean(m, axis=-1), 500, rng)
        assert means.shape == (500,)
        assert abs(np.mean(means) - np.mean(data)) < 0.1

    def test_statistic_must_keep_resample_axis(self, rng):
        with pytest.raises(ValueError):
            bootstrap_statistic(np.arange(10.0), lambda m: np.mean(m), 50, rng)


class TestBootstrapQuantiles:
    def test_shape(self, rng):
        data = rng.normal(size=50)
        q = bootstrap_quantiles(data, [0.25, 0.5, 0.75], 120, rng)
        assert q.shape == (120, 3)

    def test_rows_are_monotone_in_quantile_level(self, rng):
        data = rng.normal(size=80)
        q = bootstrap_quantiles(data, [0.1, 0.5, 0.9], 100, rng)
        assert np.all(q[:, 0] <= q[:, 1])
        assert np.all(q[:, 1] <= q[:, 2])

    def test_invalid_quantiles_raise(self, rng):
        with pytest.raises(ValueError):
            bootstrap_quantiles(np.arange(5.0), [1.5], 10, rng)
        with pytest.raises(ValueError):
            bootstrap_quantiles(np.arange(5.0), [], 10, rng)

    @given(st.integers(min_value=2, max_value=40))
    @settings(max_examples=20, deadline=None)
    def test_constant_data_gives_constant_quantiles(self, n):
        rng = np.random.default_rng(0)
        data = np.full(n, 3.5)
        q = bootstrap_quantiles(data, [0.2, 0.8], 30, rng)
        assert np.allclose(q, 3.5)


class TestPercentileInterval:
    def test_contains_bulk_of_samples(self, rng):
        samples = rng.normal(0.0, 1.0, size=2000)
        interval = percentile_interval(samples, confidence=0.9)
        inside = np.mean((samples >= interval.low) & (samples <= interval.high))
        assert 0.88 <= inside <= 0.92

    def test_interval_ordering_and_width(self, rng):
        interval = percentile_interval(rng.normal(size=100), confidence=0.5)
        assert interval.low <= interval.high
        assert interval.width == pytest.approx(interval.high - interval.low)

    def test_overlap_detection(self):
        a = BootstrapInterval(0.0, 1.0, 0.95)
        b = BootstrapInterval(0.5, 2.0, 0.95)
        c = BootstrapInterval(1.5, 2.5, 0.95)
        assert a.overlaps(b)
        assert b.overlaps(a)
        assert not a.overlaps(c)

    def test_contains(self):
        interval = BootstrapInterval(1.0, 2.0, 0.95)
        assert interval.contains(1.5)
        assert not interval.contains(2.5)

    def test_invalid_confidence_raises(self, rng):
        with pytest.raises(ValueError):
            percentile_interval(rng.normal(size=10), confidence=1.0)


class TestDeterminism:
    def test_same_seed_same_resamples(self):
        data = np.arange(20.0)
        a = bootstrap_samples(data, 50, np.random.default_rng(3))
        b = bootstrap_samples(data, 50, np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)
