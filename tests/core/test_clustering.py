"""Tests for Procedure 4 (relative scores) and the final cluster assignment."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Comparison,
    PairwiseOracle,
    ScoreTable,
    bind_comparator,
    cluster_algorithms,
    final_assignment,
    get_cluster,
    relative_scores,
)
from repro.core.comparison import BootstrapComparator, MeanComparator


class TestRelativeScoresDeterministicOracle:
    """With a deterministic, consistent oracle the scores are all 1.0."""

    def test_figure2_oracle_scores(self, figure2_oracle):
        table = relative_scores(["DD", "AA", "DA", "AD"], figure2_oracle, repetitions=20, rng=0)
        assert table.score("AD", 1) == pytest.approx(1.0)
        assert table.score("AA", 2) == pytest.approx(1.0)
        assert table.score("DD", 3) == pytest.approx(1.0)
        assert table.score("DA", 3) == pytest.approx(1.0)

    def test_scores_per_algorithm_sum_to_one(self, figure2_oracle):
        table = relative_scores(["DD", "AA", "DA", "AD"], figure2_oracle, repetitions=13, rng=1)
        for label in ["DD", "AA", "DA", "AD"]:
            assert table.total_score(label) == pytest.approx(1.0)

    def test_shuffle_disabled_is_deterministic(self, figure2_oracle):
        a = relative_scores(["DD", "AA", "DA", "AD"], figure2_oracle, repetitions=5, shuffle=False)
        b = relative_scores(["DD", "AA", "DA", "AD"], figure2_oracle, repetitions=5, shuffle=False)
        assert a == b

    def test_invalid_arguments(self, figure2_oracle):
        with pytest.raises(ValueError):
            relative_scores([], figure2_oracle)
        with pytest.raises(ValueError):
            relative_scores(["a", "a"], figure2_oracle)
        with pytest.raises(ValueError):
            relative_scores(["a", "b"], figure2_oracle, repetitions=0)


class TestRelativeScoresNoisyComparator:
    """Reproduce the flavour of the Section III example: a borderline pair splits its score."""

    @pytest.fixture
    def flaky_compare(self):
        """AD vs AA is equivalent roughly one out of three comparisons; the rest is fixed."""
        rng = np.random.default_rng(99)
        base = PairwiseOracle(
            {
                ("AD", "DD"): Comparison.BETTER,
                ("AD", "DA"): Comparison.BETTER,
                ("AA", "DD"): Comparison.BETTER,
                ("AA", "DA"): Comparison.BETTER,
                ("DD", "DA"): Comparison.EQUIVALENT,
            }
        )

        def compare(a, b):
            pair = {a, b}
            if pair == {"AD", "AA"}:
                outcome = (
                    Comparison.EQUIVALENT if rng.random() < 1.0 / 3.0 else Comparison.BETTER
                )
                return outcome if a == "AD" else outcome.flipped()
            return base(a, b)

        return compare

    def test_borderline_algorithm_splits_between_adjacent_ranks(self, flaky_compare):
        table = relative_scores(
            ["DD", "AA", "DA", "AD"], flaky_compare, repetitions=300, rng=7
        )
        # AD is always in the best cluster.
        assert table.score("AD", 1) == pytest.approx(1.0, abs=0.01)
        # AA lands in rank 1 roughly a third of the time and in rank 2 otherwise.
        assert 0.15 <= table.score("AA", 1) <= 0.5
        assert 0.5 <= table.score("AA", 2) <= 0.85
        assert table.score("AA", 1) + table.score("AA", 2) == pytest.approx(1.0)

    def test_final_assignment_matches_paper_style_result(self, flaky_compare):
        table = relative_scores(
            ["DD", "AA", "DA", "AD"], flaky_compare, repetitions=300, rng=7
        )
        final = final_assignment(table)
        assert final.cluster_of("AD") == 1
        assert final.cluster_of("AA") == 2
        assert final.cluster_of("DD") == final.cluster_of("DA") == 3
        # Cumulated scores: every algorithm's final score approaches 1.0 except
        # possibly the borderline ones that also appear in better ranks.
        assert final.score_of("AA") == pytest.approx(1.0, abs=0.01)


class TestGetCluster:
    def test_matches_score_table_entries(self, figure2_oracle):
        entries = get_cluster(["DD", "AA", "DA", "AD"], figure2_oracle, rank=3, repetitions=10, rng=2)
        assert {e.label for e in entries} == {"DD", "DA"}
        assert all(e.score == pytest.approx(1.0) for e in entries)

    def test_absent_rank_returns_empty(self, figure2_oracle):
        entries = get_cluster(["DD", "AA", "DA", "AD"], figure2_oracle, rank=4, repetitions=10, rng=2)
        assert entries == []


class TestFinalAssignmentFromPaperTable:
    def test_section3_worked_example(self):
        """Final clustering C1:{AD}, C2:{AA}, C3:{DD, DA(0.9)} from the published score table."""
        table = ScoreTable(
            {
                1: {"AD": 1.0, "AA": 0.3},
                2: {"AA": 0.7, "DD": 0.3, "DA": 0.3},
                3: {"DD": 0.7, "DA": 0.6},
                4: {"DA": 0.1},
            }
        )
        final = final_assignment(table)
        assert final.n_clusters == 3
        assert final.members(1) == ["AD"]
        assert final.members(2) == ["AA"]
        assert set(final.members(3)) == {"DD", "DA"}
        assert final.score_of("AD") == pytest.approx(1.0)
        assert final.score_of("AA") == pytest.approx(1.0)
        assert final.score_of("DD") == pytest.approx(1.0)
        assert final.score_of("DA") == pytest.approx(0.9)

    def test_empty_rank_disappears_from_final_clustering(self):
        table = ScoreTable({1: {"a": 1.0}, 2: {"b": 0.2}, 3: {"b": 0.8}})
        final = final_assignment(table)
        # b's maximum is at rank 3, rank 2 ends up empty -> renumbered to cluster 2.
        assert final.n_clusters == 2
        assert final.cluster_of("b") == 2
        assert final.score_of("b") == pytest.approx(1.0)


class TestClusterAlgorithmsEndToEnd:
    def test_with_measurements_and_bootstrap_comparator(self, well_separated_measurements):
        compare = bind_comparator(BootstrapComparator(seed=0), well_separated_measurements)
        table, final = cluster_algorithms(
            list(well_separated_measurements), compare, repetitions=30, rng=0
        )
        assert final.n_clusters == 4
        assert final.cluster_of("fast") == 1
        assert final.cluster_of("slowest") == 4

    def test_equivalent_twins_share_a_cluster(self, overlapping_measurements):
        compare = bind_comparator(BootstrapComparator(seed=0), overlapping_measurements)
        _, final = cluster_algorithms(
            list(overlapping_measurements), compare, repetitions=30, rng=0
        )
        assert final.cluster_of("fast") == 1
        assert final.cluster_of("twin_a") == final.cluster_of("twin_b") == 2

    def test_partition_property(self, well_separated_measurements):
        compare = bind_comparator(MeanComparator(), well_separated_measurements)
        table, final = cluster_algorithms(
            list(well_separated_measurements), compare, repetitions=10, rng=1
        )
        assert sorted(final.labels, key=str) == sorted(well_separated_measurements, key=str)


class TestClusteringProperties:
    @given(
        n=st.integers(min_value=1, max_value=6),
        n_classes=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_consistent_oracle_partition_and_scores(self, n, n_classes, seed):
        """For any consistent weak order, the final clustering is a partition whose order
        respects the class order, and every relative score lies in (0, 1]."""
        rng = np.random.default_rng(seed)
        labels = [f"alg{i}" for i in range(n)]
        classes = {label: int(rng.integers(0, n_classes)) for label in labels}

        def compare(a, b):
            if classes[a] == classes[b]:
                return Comparison.EQUIVALENT
            return Comparison.BETTER if classes[a] < classes[b] else Comparison.WORSE

        table, final = cluster_algorithms(labels, compare, repetitions=15, rng=seed)
        # Partition of the label set.
        assert sorted(final.labels, key=str) == sorted(labels, key=str)
        # Scores bounded.
        for rank in table.ranks():
            for _, score in table[rank].items():
                assert 0.0 < score <= 1.0
        # Cluster order respects the class order.
        for a in labels:
            for b in labels:
                if classes[a] < classes[b]:
                    assert final.cluster_of(a) < final.cluster_of(b)
                elif classes[a] == classes[b]:
                    assert final.cluster_of(a) == final.cluster_of(b)
