"""Tests for the three-way comparators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import (
    BootstrapComparator,
    Comparison,
    IntervalOverlapComparator,
    MannWhitneyComparator,
    MeanComparator,
    MedianComparator,
    MinimumComparator,
)


def _sample(rng: np.random.Generator, mean: float, std: float, n: int = 60) -> np.ndarray:
    return np.abs(rng.normal(mean, std, size=n))


ALL_COMPARATORS = [
    BootstrapComparator(seed=1),
    MeanComparator(rel_tolerance=0.02),
    MedianComparator(rel_tolerance=0.02),
    MinimumComparator(rel_tolerance=0.02),
    MannWhitneyComparator(),
    IntervalOverlapComparator(seed=1),
]


@pytest.mark.parametrize("comparator", ALL_COMPARATORS, ids=lambda c: type(c).__name__ + getattr(c, "name", ""))
class TestCommonComparatorBehaviour:
    def test_clear_separation_is_better(self, rng, comparator):
        fast = _sample(rng, 1.0, 0.02)
        slow = _sample(rng, 5.0, 0.1)
        assert comparator.compare(fast, slow) is Comparison.BETTER
        assert comparator.compare(slow, fast) is Comparison.WORSE

    def test_identical_data_is_equivalent(self, rng, comparator):
        data = _sample(rng, 2.0, 0.1)
        assert comparator.compare(data, data.copy()) is Comparison.EQUIVALENT

    def test_rejects_empty_arrays(self, comparator):
        with pytest.raises(ValueError):
            comparator.compare(np.array([]), np.array([1.0]))

    def test_rejects_nan(self, comparator):
        with pytest.raises(ValueError):
            comparator.compare(np.array([1.0, np.nan]), np.array([1.0, 2.0]))


class TestBootstrapComparator:
    def test_overlapping_distributions_are_equivalent(self, rng):
        comparator = BootstrapComparator(seed=3)
        a = _sample(rng, 2.0, 0.3, n=100)
        b = _sample(rng, 2.02, 0.3, n=100)
        assert comparator.compare(a, b) is Comparison.EQUIVALENT

    def test_win_fraction_antisymmetry(self, rng):
        comparator = BootstrapComparator(seed=5)
        a = _sample(rng, 2.0, 0.3)
        b = _sample(rng, 2.2, 0.3)
        assert comparator.win_fraction(a, b) == pytest.approx(1.0 - comparator.win_fraction(b, a))

    def test_comparison_antisymmetry(self, rng):
        comparator = BootstrapComparator(seed=5)
        for _ in range(10):
            a = _sample(rng, rng.uniform(1, 3), 0.3)
            b = _sample(rng, rng.uniform(1, 3), 0.3)
            assert comparator.compare(a, b) is comparator.compare(b, a).flipped()

    def test_deterministic_across_calls(self, rng):
        comparator = BootstrapComparator(seed=11)
        a = _sample(rng, 2.0, 0.4)
        b = _sample(rng, 2.1, 0.4)
        assert comparator.compare(a, b) is comparator.compare(a, b)
        assert comparator.win_fraction(a, b) == comparator.win_fraction(a, b)

    def test_higher_is_better_mode(self, rng):
        comparator = BootstrapComparator(seed=2, lower_is_better=False)
        high = _sample(rng, 10.0, 0.1)
        low = _sample(rng, 1.0, 0.1)
        assert comparator.compare(high, low) is Comparison.BETTER

    def test_min_relative_difference_widens_equivalence(self, rng):
        a = _sample(rng, 2.0, 0.01)
        b = _sample(rng, 2.1, 0.01)
        strict = BootstrapComparator(seed=4, min_relative_difference=0.0)
        loose = BootstrapComparator(seed=4, min_relative_difference=0.2)
        assert strict.compare(a, b) is Comparison.BETTER
        assert loose.compare(a, b) is Comparison.EQUIVALENT

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            BootstrapComparator(equivalence_margin=0.7)
        with pytest.raises(ValueError):
            BootstrapComparator(quantiles=())
        with pytest.raises(ValueError):
            BootstrapComparator(n_resamples=0)
        with pytest.raises(ValueError):
            BootstrapComparator(min_relative_difference=-0.1)

    @given(
        shift=st.floats(min_value=0.0, max_value=3.0),
        scale=st.floats(min_value=0.05, max_value=0.5),
    )
    @settings(max_examples=25, deadline=None)
    def test_antisymmetry_property(self, shift, scale):
        rng = np.random.default_rng(17)
        comparator = BootstrapComparator(seed=17, n_resamples=80)
        a = np.abs(rng.normal(2.0, scale, size=40))
        b = np.abs(rng.normal(2.0 + shift, scale, size=40))
        assert comparator.compare(a, b) is comparator.compare(b, a).flipped()


class TestSingleStatisticComparators:
    def test_mean_comparator_tolerance(self):
        a = np.array([1.00, 1.02, 0.98])
        b = np.array([1.01, 1.03, 0.99])
        assert MeanComparator(rel_tolerance=0.05).compare(a, b) is Comparison.EQUIVALENT
        assert MeanComparator(rel_tolerance=0.0).compare(a, b) is Comparison.BETTER

    def test_minimum_comparator_uses_best_run(self):
        a = np.array([5.0, 1.0, 5.0])
        b = np.array([2.0, 2.0, 2.0])
        assert MinimumComparator().compare(a, b) is Comparison.BETTER

    def test_median_comparator_ignores_outliers(self):
        a = np.array([1.0, 1.0, 1.0, 100.0])
        b = np.array([2.0, 2.0, 2.0, 2.0])
        assert MedianComparator().compare(a, b) is Comparison.BETTER

    def test_zero_measurements_are_equivalent(self):
        assert MeanComparator().compare(np.zeros(3), np.zeros(3)) is Comparison.EQUIVALENT

    def test_higher_is_better(self):
        a = np.array([10.0, 11.0])
        b = np.array([1.0, 2.0])
        comparator = MeanComparator()
        comparator.lower_is_better = False
        assert comparator.compare(a, b) is Comparison.BETTER


class TestMannWhitneyComparator:
    def test_small_shift_large_noise_is_equivalent(self, rng):
        a = rng.normal(2.0, 1.0, size=30)
        b = rng.normal(2.05, 1.0, size=30)
        assert MannWhitneyComparator().compare(a, b) is Comparison.EQUIVALENT

    def test_alpha_controls_sensitivity(self, rng):
        a = rng.normal(2.0, 0.5, size=200)
        b = rng.normal(2.2, 0.5, size=200)
        sensitive = MannWhitneyComparator(alpha=0.2)
        assert sensitive.compare(a, b) is Comparison.BETTER

    def test_significant_test_with_tied_medians_is_equivalent_and_antisymmetric(self):
        """Hugely different distributions with identical medians give no direction:
        both orderings must agree (the median tie-break used to claim WORSE twice)."""
        a = np.array([-10.0] * 50 + [0.0] + [0.5] * 50)
        b = np.array([-0.5] * 50 + [0.0] + [10.0] * 50)
        comparator = MannWhitneyComparator()
        assert comparator.compare(a, b) is Comparison.EQUIVALENT
        assert comparator.compare(b, a) is Comparison.EQUIVALENT


class TestIntervalOverlapComparator:
    def test_custom_statistic(self, rng):
        comparator = IntervalOverlapComparator(
            statistic=lambda m: np.mean(m, axis=-1), seed=3
        )
        fast = _sample(rng, 1.0, 0.05)
        slow = _sample(rng, 3.0, 0.05)
        assert comparator.compare(fast, slow) is Comparison.BETTER

    def test_repeated_comparisons_agree(self, rng):
        """The per-pair generator depends only on the data and the seed."""
        comparator = IntervalOverlapComparator(seed=2)
        a = _sample(rng, 2.0, 0.3)
        b = _sample(rng, 2.1, 0.3)
        first = comparator.compare(a, b)
        for _ in range(5):
            assert comparator.compare(a, b) is first

    def test_antisymmetry(self, rng):
        comparator = IntervalOverlapComparator(seed=2)
        for _ in range(10):
            a = _sample(rng, rng.uniform(1, 3), 0.2)
            b = _sample(rng, rng.uniform(1, 3), 0.2)
            assert comparator.compare(a, b) is comparator.compare(b, a).flipped()

    def test_pairs_draw_independent_resamples(self, rng):
        """Different pairs derive different generators (no shared fixed stream)."""
        from repro.core import derive_pair_rng

        a = _sample(rng, 2.0, 0.3)
        b = _sample(rng, 2.1, 0.3)
        c = _sample(rng, 2.2, 0.3)
        rng_ab = derive_pair_rng(0, a.tobytes(), b.tobytes())
        rng_ac = derive_pair_rng(0, a.tobytes(), c.tobytes())
        assert rng_ab.integers(0, 2**31, 8).tolist() != rng_ac.integers(0, 2**31, 8).tolist()

    def test_default_statistic_is_picklable(self):
        """Needed by analyze_many's process-parallel campaigns."""
        import pickle

        comparator = IntervalOverlapComparator(seed=0)
        restored = pickle.loads(pickle.dumps(comparator))
        data_a = np.array([1.0, 1.1, 0.9, 1.05])
        data_b = np.array([5.0, 5.1, 4.9, 5.05])
        assert restored.compare(data_a, data_b) is comparator.compare(data_a, data_b)
