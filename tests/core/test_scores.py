"""Tests for ScoreTable and FinalClustering containers."""

from __future__ import annotations

import pytest

from repro.core import ClusterEntry, FinalClustering, ScoreTable, make_final_clustering


# The relative scores of the Section III illustration (N = 30 measurements).
SECTION3_SCORES = {
    1: {"AD": 1.0, "AA": 0.3},
    2: {"AA": 0.7, "DD": 0.3, "DA": 0.3},
    3: {"DD": 0.7, "DA": 0.6},
    4: {"DA": 0.1},
}


@pytest.fixture
def section3_table() -> ScoreTable:
    return ScoreTable(SECTION3_SCORES)


class TestClusterEntry:
    def test_score_bounds(self):
        ClusterEntry("x", 0.0)
        ClusterEntry("x", 1.0)
        with pytest.raises(ValueError):
            ClusterEntry("x", 1.5)
        with pytest.raises(ValueError):
            ClusterEntry("x", -0.1)


class TestScoreTable:
    def test_basic_accessors(self, section3_table):
        assert section3_table.n_ranks == 4
        assert section3_table.ranks() == [1, 2, 3, 4]
        assert section3_table.score("AA", 1) == pytest.approx(0.3)
        assert section3_table.score("AA", 4) == 0.0
        assert set(section3_table.labels) == {"AD", "AA", "DD", "DA"}

    def test_entries_sorted_by_score(self, section3_table):
        entries = section3_table.entries(2)
        assert entries[0].label == "AA"
        assert [e.label for e in entries[1:]] == ["DA", "DD"] or [
            e.label for e in entries[1:]
        ] == ["DD", "DA"]

    def test_scores_of(self, section3_table):
        assert section3_table.scores_of("DA") == pytest.approx({2: 0.3, 3: 0.6, 4: 0.1})

    def test_total_score_sums_to_one_for_procedure4_output(self, section3_table):
        for label in section3_table.labels:
            assert section3_table.total_score(label) == pytest.approx(1.0)

    def test_cumulative_score_matches_paper_example(self, section3_table):
        # algDA: rank 3 score 0.6 cumulated with rank 2 score 0.3 -> 0.9
        assert section3_table.cumulative_score("DA", 3) == pytest.approx(0.9)
        assert section3_table.cumulative_score("AA", 2) == pytest.approx(1.0)

    def test_argmax_rank_matches_paper_example(self, section3_table):
        assert section3_table.argmax_rank("AD") == 1
        assert section3_table.argmax_rank("AA") == 2
        assert section3_table.argmax_rank("DD") == 3
        assert section3_table.argmax_rank("DA") == 3

    def test_argmax_rank_tie_prefers_better_rank(self):
        table = ScoreTable({1: {"x": 0.5}, 2: {"x": 0.5}})
        assert table.argmax_rank("x") == 1

    def test_best_rank(self, section3_table):
        assert section3_table.best_rank("DA") == 2
        with pytest.raises(KeyError):
            section3_table.best_rank("nope")

    def test_mapping_protocol(self, section3_table):
        assert 1 in section3_table
        assert 9 not in section3_table
        assert len(section3_table) == 4
        assert list(iter(section3_table)) == [1, 2, 3, 4]
        assert section3_table[1] == {"AD": 1.0, "AA": 0.3}

    def test_to_rows_is_flat_and_ordered(self, section3_table):
        rows = section3_table.to_rows()
        assert rows[0] == (1, "AD", 1.0)
        assert len(rows) == 8

    def test_equality_and_as_dict_roundtrip(self, section3_table):
        assert ScoreTable(section3_table.as_dict()) == section3_table

    def test_invalid_scores_rejected(self):
        with pytest.raises(ValueError):
            ScoreTable({1: {"x": 1.2}})
        with pytest.raises(ValueError):
            ScoreTable({0: {"x": 0.5}})


class TestFinalClustering:
    def test_make_final_clustering_renumbers_consecutively(self):
        clustering = make_final_clustering(
            {2: [ClusterEntry("b", 0.9)], 5: [ClusterEntry("c", 0.8)], 1: [ClusterEntry("a", 1.0)]}
        )
        assert sorted(clustering.clusters) == [1, 2, 3]
        assert clustering.cluster_of("a") == 1
        assert clustering.cluster_of("b") == 2
        assert clustering.cluster_of("c") == 3

    def test_empty_clusters_dropped(self):
        clustering = make_final_clustering({1: [ClusterEntry("a", 1.0)], 2: []})
        assert clustering.n_clusters == 1

    def test_accessors(self):
        clustering = make_final_clustering(
            {1: [ClusterEntry("a", 1.0), ClusterEntry("b", 0.6)], 2: [ClusterEntry("c", 0.9)]}
        )
        assert clustering.members(1) == ["a", "b"]
        assert clustering.best_cluster() == ["a", "b"]
        assert clustering.score_of("c") == pytest.approx(0.9)
        assert clustering.ordered_labels() == ["a", "b", "c"]
        assert set(clustering.labels) == {"a", "b", "c"}
        assert clustering.as_dict() == {1: {"a": 1.0, "b": 0.6}, 2: {"c": 0.9}}

    def test_unknown_label_raises(self):
        clustering = make_final_clustering({1: [ClusterEntry("a", 1.0)]})
        with pytest.raises(KeyError):
            clustering.cluster_of("zzz")
        with pytest.raises(KeyError):
            clustering.score_of("zzz")

    def test_iteration_yields_sorted_clusters(self):
        clustering = make_final_clustering(
            {1: [ClusterEntry("a", 1.0)], 2: [ClusterEntry("b", 1.0)]}
        )
        assert [cluster for cluster, _ in clustering] == [1, 2]
