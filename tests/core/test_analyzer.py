"""Tests for the high-level RelativePerformanceAnalyzer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    MeanComparator,
    RelativePerformanceAnalyzer,
)


class TestConstruction:
    def test_default_comparator_is_bootstrap(self):
        from repro.core import BootstrapComparator

        analyzer = RelativePerformanceAnalyzer(seed=3)
        assert isinstance(analyzer.comparator, BootstrapComparator)

    def test_invalid_repetitions(self):
        with pytest.raises(ValueError):
            RelativePerformanceAnalyzer(repetitions=0)

    def test_invalid_comparator(self):
        with pytest.raises(TypeError):
            RelativePerformanceAnalyzer(comparator="not a comparator")


class TestAnalyze:
    def test_well_separated_algorithms_get_distinct_clusters(self, well_separated_measurements):
        analyzer = RelativePerformanceAnalyzer(seed=0, repetitions=30)
        result = analyzer.analyze(well_separated_measurements)
        assert result.n_clusters == 4
        assert result.cluster_of("fast") == 1
        assert result.cluster_of("slowest") == 4
        assert result.best_algorithms() == ["fast"]

    def test_overlapping_algorithms_share_a_cluster(self, overlapping_measurements):
        analyzer = RelativePerformanceAnalyzer(seed=0, repetitions=30)
        result = analyzer.analyze(overlapping_measurements)
        assert result.cluster_of("twin_a") == result.cluster_of("twin_b")
        assert result.cluster_of("fast") == 1

    def test_result_is_reproducible_with_same_seed(self, overlapping_measurements):
        a = RelativePerformanceAnalyzer(seed=5, repetitions=20).analyze(overlapping_measurements)
        b = RelativePerformanceAnalyzer(seed=5, repetitions=20).analyze(overlapping_measurements)
        assert a.score_table == b.score_table
        assert a.final.as_dict() == b.final.as_dict()

    def test_accepts_lists_and_object_with_as_dict(self):
        class FakeMeasurementSet:
            def as_dict(self):
                return {"x": [1.0, 1.1, 0.9], "y": [3.0, 3.1, 2.9]}

        analyzer = RelativePerformanceAnalyzer(seed=0, repetitions=10)
        result = analyzer.analyze(FakeMeasurementSet())
        assert result.cluster_of("x") == 1

    def test_summary_has_table_header_and_all_algorithms(self, well_separated_measurements):
        analyzer = RelativePerformanceAnalyzer(seed=0, repetitions=10)
        result = analyzer.analyze(well_separated_measurements)
        text = result.summary()
        assert "Cluster" in text and "Relative Score" in text
        for label in well_separated_measurements:
            assert label in text

    def test_cluster_alias(self, well_separated_measurements):
        analyzer = RelativePerformanceAnalyzer(seed=0, repetitions=5)
        assert analyzer.cluster(well_separated_measurements).n_clusters == 4

    def test_empty_measurements_rejected(self):
        with pytest.raises(ValueError):
            RelativePerformanceAnalyzer().analyze({})

    def test_empty_array_rejected(self):
        with pytest.raises(ValueError):
            RelativePerformanceAnalyzer().analyze({"a": []})

    def test_non_mapping_rejected(self):
        with pytest.raises(TypeError):
            RelativePerformanceAnalyzer().analyze([1.0, 2.0])


class TestRankOnce:
    def test_respects_requested_order_and_traces(self, well_separated_measurements):
        analyzer = RelativePerformanceAnalyzer(comparator=MeanComparator(), repetitions=1)
        result = analyzer.rank_once(
            well_separated_measurements,
            order=["slowest", "slow", "medium", "fast"],
            record_trace=True,
        )
        assert result.sequence == ("fast", "medium", "slow", "slowest")
        assert len(result.trace) == result.n_comparisons > 0

    def test_unknown_label_in_order_raises(self, well_separated_measurements):
        analyzer = RelativePerformanceAnalyzer(repetitions=1)
        with pytest.raises(KeyError):
            analyzer.rank_once(well_separated_measurements, order=["fast", "nope"])


class TestScore:
    def test_score_table_covers_all_algorithms(self, overlapping_measurements):
        analyzer = RelativePerformanceAnalyzer(seed=1, repetitions=25)
        table = analyzer.score(overlapping_measurements)
        assert set(table.labels) == set(overlapping_measurements)
        for label in overlapping_measurements:
            assert table.total_score(label) == pytest.approx(1.0)
