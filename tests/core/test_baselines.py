"""Tests for the single-statistic baseline rankers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SingleStatisticRanker, rank_by_statistic


class TestSingleStatisticRanker:
    def test_mean_ranking_order(self, well_separated_measurements):
        ranking = SingleStatisticRanker("mean").rank(well_separated_measurements)
        assert ranking.order == ("fast", "medium", "slow", "slowest")
        assert ranking.ranks["fast"] == 1
        assert ranking.ranks["slowest"] == 4
        assert ranking.best() == "fast"

    def test_named_statistics(self):
        data = {"a": np.array([1.0, 3.0]), "b": np.array([2.0, 2.1])}
        assert SingleStatisticRanker("mean").rank(data).best() == "a"
        assert SingleStatisticRanker("min").rank(data).best() == "a"
        assert SingleStatisticRanker("median").rank(data).best() == "a"
        assert SingleStatisticRanker("max").rank(data).best() == "b"
        assert SingleStatisticRanker("p90").rank(data).best() == "b"

    def test_callable_statistic(self):
        data = {"a": np.array([1.0, 100.0]), "b": np.array([5.0, 6.0])}
        ranking = SingleStatisticRanker(lambda x: float(np.var(x))).rank(data)
        assert ranking.best() == "b"
        assert ranking.statistic == "<lambda>"

    def test_unknown_statistic_rejected(self):
        with pytest.raises(ValueError):
            SingleStatisticRanker("geometric-mean")

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            SingleStatisticRanker("mean", rel_tolerance=-1)

    def test_empty_measurements_rejected(self):
        with pytest.raises(ValueError):
            SingleStatisticRanker("mean").rank({})

    def test_tolerance_groups_near_ties(self):
        data = {"a": np.array([1.00]), "b": np.array([1.01]), "c": np.array([2.0])}
        ranking = SingleStatisticRanker("mean", rel_tolerance=0.05).rank(data)
        assert ranking.ranks["a"] == ranking.ranks["b"] == 1
        assert ranking.ranks["c"] == 2
        assert ranking.n_classes == 2
        assert ranking.clusters() == {1: ["a", "b"], 2: ["c"]}

    def test_zero_tolerance_separates_everything(self):
        data = {"a": np.array([1.00]), "b": np.array([1.000001]), "c": np.array([2.0])}
        ranking = SingleStatisticRanker("mean").rank(data)
        assert ranking.n_classes == 3

    def test_exact_ties_share_rank_even_with_zero_tolerance(self):
        data = {"a": np.array([1.0]), "b": np.array([1.0])}
        ranking = SingleStatisticRanker("mean").rank(data)
        assert ranking.ranks["a"] == ranking.ranks["b"] == 1

    def test_higher_is_better(self):
        data = {"a": np.array([10.0]), "b": np.array([1.0])}
        ranking = SingleStatisticRanker("mean", lower_is_better=False).rank(data)
        assert ranking.best() == "a"


class TestRankByStatistic:
    def test_convenience_wrapper(self, well_separated_measurements):
        ranking = rank_by_statistic(well_separated_measurements, "median")
        assert ranking.best() == "fast"
        assert ranking.statistic == "median"

    def test_instability_of_single_numbers_under_noise(self):
        """The motivating observation of the paper: with noisy, overlapping distributions
        the mean-based winner flips between measurement rounds, even though the two
        algorithms are statistically equivalent."""
        rng = np.random.default_rng(42)
        winners = set()
        for _ in range(20):
            data = {
                "x": rng.lognormal(mean=0.0, sigma=0.25, size=15),
                "y": rng.lognormal(mean=0.01, sigma=0.25, size=15),
            }
            winners.add(rank_by_statistic(data, "mean").best())
        assert winners == {"x", "y"}
