"""Tests for ranking/clustering stability metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    RelativePerformanceAnalyzer,
    SingleStatisticRanker,
    cluster_partition_agreement,
    kendall_tau_distance,
    pairwise_order_agreement,
    stability_across_rounds,
)


class TestPairwiseOrderAgreement:
    def test_identical_rankings_agree_fully(self):
        ranks = {"a": 1, "b": 2, "c": 3}
        assert pairwise_order_agreement(ranks, ranks) == 1.0

    def test_reversed_ranking_has_zero_agreement(self):
        a = {"a": 1, "b": 2, "c": 3}
        b = {"a": 3, "b": 2, "c": 1}
        assert pairwise_order_agreement(a, b) == 0.0

    def test_tied_vs_ordered_counts_as_disagreement(self):
        a = {"a": 1, "b": 1}
        b = {"a": 1, "b": 2}
        assert pairwise_order_agreement(a, b) == 0.0

    def test_single_label(self):
        assert pairwise_order_agreement({"a": 1}, {"a": 5}) == 1.0

    def test_mismatched_label_sets_rejected(self):
        with pytest.raises(ValueError):
            pairwise_order_agreement({"a": 1}, {"b": 1})


class TestKendallTau:
    def test_identical_is_zero(self):
        ranks = {"a": 1, "b": 2, "c": 3}
        assert kendall_tau_distance(ranks, ranks) == 0.0

    def test_reversed_is_one(self):
        a = {"a": 1, "b": 2, "c": 3}
        b = {"a": 3, "b": 2, "c": 1}
        assert kendall_tau_distance(a, b) == 1.0

    def test_ties_are_not_discordant(self):
        a = {"a": 1, "b": 1}
        b = {"a": 1, "b": 2}
        assert kendall_tau_distance(a, b) == 0.0

    def test_partial_disagreement(self):
        a = {"a": 1, "b": 2, "c": 3}
        b = {"a": 2, "b": 1, "c": 3}
        assert kendall_tau_distance(a, b) == pytest.approx(1.0 / 3.0)


class TestPartitionAgreement:
    def test_identical_partitions(self):
        a = {"x": 1, "y": 1, "z": 2}
        assert cluster_partition_agreement(a, a) == 1.0

    def test_fully_split_vs_fully_merged(self):
        merged = {"x": 1, "y": 1, "z": 1}
        split = {"x": 1, "y": 2, "z": 3}
        assert cluster_partition_agreement(merged, split) == 0.0

    def test_relabelled_clusters_are_equivalent(self):
        a = {"x": 1, "y": 1, "z": 2}
        b = {"x": 7, "y": 7, "z": 3}
        assert cluster_partition_agreement(a, b) == 1.0


class TestStabilityAcrossRounds:
    def test_requires_two_rounds(self):
        with pytest.raises(ValueError):
            stability_across_rounds([{"a": 1}])

    def test_perfectly_stable_rounds(self):
        rounds = [{"a": 1, "b": 2, "c": 2}] * 4
        report = stability_across_rounds(rounds)
        assert report.mean_order_agreement == 1.0
        assert report.mean_partition_agreement == 1.0
        assert report.best_class_consistency == 1.0
        assert report.n_rounds == 4
        assert "order-agreement=1.000" in report.summary()

    def test_unstable_best_class(self):
        rounds = [{"a": 1, "b": 2}, {"a": 2, "b": 1}, {"a": 1, "b": 2}]
        report = stability_across_rounds(rounds)
        assert report.best_class_consistency == pytest.approx(2.0 / 3.0)
        assert report.mean_order_agreement < 1.0


class TestClusteringIsMoreStableThanSingleStatistics:
    """Integration-flavoured check of the paper's motivation: under heavy noise the
    relative-performance clustering keeps equivalent algorithms together, whereas a
    mean-based ranking keeps flipping their order."""

    def test_relative_performance_beats_mean_ranking_in_stability(self):
        rng = np.random.default_rng(2024)
        analyzer = RelativePerformanceAnalyzer(seed=0, repetitions=30)
        ranker = SingleStatisticRanker("mean")

        clustering_rounds = []
        mean_rounds = []
        for _ in range(6):
            measurements = {
                "twin1": rng.lognormal(0.0, 0.2, size=25),
                "twin2": rng.lognormal(0.01, 0.2, size=25),
                "slow": rng.lognormal(1.0, 0.2, size=25),
            }
            result = analyzer.analyze(measurements)
            clustering_rounds.append(
                {label: result.final.cluster_of(label) for label in measurements}
            )
            mean_rounds.append(ranker.rank(measurements).ranks)

        clustering_report = stability_across_rounds(clustering_rounds)
        mean_report = stability_across_rounds(mean_rounds)
        assert clustering_report.mean_order_agreement >= mean_report.mean_order_agreement
        assert clustering_report.best_class_consistency >= mean_report.best_class_consistency
