"""End-to-end integration tests across all packages."""

from __future__ import annotations

import numpy as np
import pytest

from repro import RelativePerformanceAnalyzer
from repro.devices import HostExecutor, SimulatedExecutor, cpu_gpu_platform, raspberry_gpu_platform
from repro.experiments import default_analyzer
from repro.measurement import MeasurementRunner
from repro.offload import enumerate_algorithms, measure_algorithms, profile_algorithms
from repro.selection import DecisionModel, FlopsBudgetSelector, pareto_front
from repro.tasks import GemmLoopTask, TaskChain, table1_chain


class TestSimulatedPipeline:
    """Chain → placements → simulated measurements → clustering → selection."""

    @pytest.fixture(scope="class")
    def pipeline(self):
        platform = cpu_gpu_platform()
        chain = table1_chain(loop_size=5)
        algorithms = enumerate_algorithms(chain, platform)
        executor = SimulatedExecutor(platform, seed=3)
        measurements = measure_algorithms(algorithms, executor, repetitions=25)
        analyzer = default_analyzer(seed=0, repetitions=40, n_measurements=25)
        analysis = analyzer.analyze(measurements)
        profiles = profile_algorithms(algorithms, executor)
        return platform, chain, algorithms, measurements, analysis, profiles

    def test_clustering_is_a_partition(self, pipeline):
        _, _, algorithms, _, analysis, _ = pipeline
        assert sorted(analysis.final.labels) == sorted(a.label for a in algorithms)

    def test_cluster_order_is_consistent_with_mean_times(self, pipeline):
        """Cluster 1's algorithms are never slower on average than the worst cluster's."""
        _, _, _, measurements, analysis, _ = pipeline
        clusters = analysis.clusters()
        best = min(clusters)
        worst = max(clusters)
        best_mean = min(measurements.mean(label) for label in clusters[best])
        worst_mean = max(measurements.mean(label) for label in clusters[worst])
        assert best_mean < worst_mean

    def test_selection_policies_agree_on_the_workload_structure(self, pipeline):
        platform, chain, algorithms, _, analysis, profiles = pipeline
        fast = DecisionModel(cost_weight=0.0).decide(analysis.final, profiles).label
        cheap = DecisionModel(cost_weight=1e9).decide(analysis.final, profiles).label
        assert profiles[fast].time_s <= profiles[cheap].time_s
        assert profiles[cheap].operating_cost <= profiles[fast].operating_cost

        budget = FlopsBudgetSelector(device=platform.host, budget_flops=0.2 * chain.total_flops)
        choice = budget.select(analysis.final, {a.label: a for a in algorithms})
        assert choice.device_flops <= 0.2 * chain.total_flops

        front = pareto_front(profiles)
        assert fast in front and "DDD" in front

    def test_other_platform_works_too(self):
        platform = raspberry_gpu_platform()
        chain = TaskChain([GemmLoopTask(48, 2, name="L1"), GemmLoopTask(96, 2, name="L2")])
        algorithms = enumerate_algorithms(chain, platform)
        executor = SimulatedExecutor(platform, seed=0)
        measurements = measure_algorithms(algorithms, executor, repetitions=15)
        analysis = RelativePerformanceAnalyzer(seed=0, repetitions=20).analyze(measurements)
        assert analysis.n_clusters >= 1
        assert set(analysis.final.labels) == {"DD", "DA", "AD", "AA"}


class TestRealMeasurementPipeline:
    """Real host execution (paper footnote 2: accelerator emulated with artificial delays)."""

    def test_host_executor_feeds_the_analyzer(self):
        platform = cpu_gpu_platform()
        chain = TaskChain([GemmLoopTask(24, 1, name="L1"), GemmLoopTask(48, 1, name="L2")])
        executor = HostExecutor(platform, accelerator_speedup=3.0, seed=0)
        measurements = executor.measure_all(chain, ["DD", "DA", "AD", "AA"], repetitions=5, warmup=1)
        analysis = RelativePerformanceAnalyzer(seed=0, repetitions=20).analyze(measurements)
        assert set(analysis.final.labels) == {"DD", "DA", "AD", "AA"}

    def test_measurement_runner_with_chain_callables(self):
        chain = TaskChain([GemmLoopTask(16, 1, name="L1")])
        rng = np.random.default_rng(0)
        runner = MeasurementRunner(repetitions=4, warmup=1)
        measurements = runner.collect({"direct": lambda: chain.run(rng=rng)})
        assert measurements.n_measurements("direct") == 4
