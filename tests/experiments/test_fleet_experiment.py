"""The fleet experiment: fleet-optimal vs per-segment placement divergence."""

import numpy as np
import pytest

from repro.experiments import EXPERIMENTS, FleetConfig, run_experiment


@pytest.fixture(scope="module")
def fleet_result():
    return run_experiment(
        "fleet", FleetConfig(n_users=24, task_sizes=(60, 120, 200), iterations=12)
    )


class TestFleetExperiment:
    def test_registered(self):
        assert "fleet" in EXPERIMENTS

    def test_fleet_pick_diverges_from_at_least_one_segment_optimum(self, fleet_result):
        """The PR's acceptance claim: the fleet's tail-optimal placement is
        not what every segment would pick for itself."""
        assert fleet_result.divergent_segments
        for report in fleet_result.segments:
            if report.segment in fleet_result.divergent_segments:
                assert report.own_optimum != fleet_result.quantile_optimum
                # Its own optimum is optimal for it, so the fleet pick can
                # only cost the segment time.
                assert report.fleet_pick_expected_time_s >= report.own_expected_time_s

    def test_segments_cover_the_fleet(self, fleet_result):
        assert sum(r.n_users for r in fleet_result.segments) == fleet_result.fleet.n_users
        assert sum(r.mass_share for r in fleet_result.segments) == pytest.approx(1.0)
        # Spec masses (6:3:1) survive sampling exactly.
        shares = {r.segment: r.mass_share for r in fleet_result.segments}
        assert shares["office-wifi"] == pytest.approx(0.6)
        assert shares["congested-cell"] == pytest.approx(0.3)
        assert shares["loaded-host"] == pytest.approx(0.1)

    def test_selection_ran_through_the_streaming_search(self, fleet_result):
        search = fleet_result.search
        assert search.n_scenarios == fleet_result.fleet.n_users
        assert search.n_evaluated == search.space_size
        q_name = f"p{fleet_result.config.q * 100:g}-time"
        assert search.top[q_name].labels[0] == fleet_result.quantile_optimum
        assert fleet_result.quantile_value_s > 0.0

    def test_slo_reports_a_miss_fraction(self, fleet_result):
        assert fleet_result.slo_budget_s > 0.0
        assert 0.0 <= fleet_result.slo_miss_fraction <= 1.0

    def test_contention_fixed_point_converges_exactly(self, fleet_result):
        contention = fleet_result.contention
        assert contention.converged
        assert contention.n_iterations == 2
        assert contention.residuals[-1] == 0.0
        # The whole fleet adopted the quantile pick, loading its devices.
        assert set(contention.placements) == {tuple(fleet_result.quantile_optimum)}
        assert np.all(contention.loads >= 1.0)
        assert np.any(contention.loads > 1.0)
        assert float(contention.per_user_values.mean()) > 0.0

    def test_report_tells_the_story(self, fleet_result):
        text = fleet_result.report()
        assert "fleet optimum by p95" in text
        assert "diverges" in text
        assert "contention" in text
        for report in fleet_result.segments:
            assert report.segment in text

    def test_config_validation(self):
        with pytest.raises(ValueError, match="n_users"):
            run_experiment("fleet", FleetConfig(n_users=2))
