"""Tests for the experiment runners (small configurations for speed)."""

from __future__ import annotations

import pytest

from repro.experiments import (
    EXPERIMENTS,
    DecisionModelConfig,
    EnergySwitchingConfig,
    Figure1Config,
    Figure2Config,
    ForkJoinConfig,
    RobustnessConfig,
    Section3Config,
    Table1Config,
    run_experiment,
)
from repro.experiments.figure2 import PAPER_FINAL_SEQUENCE


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        assert {
            "figure1",
            "figure2",
            "section3_scores",
            "table1",
            "decision_model",
            "energy_switching",
            "robustness",
            "forkjoin",
        } <= set(EXPERIMENTS)

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("figure99")


class TestFigure2:
    def test_replay_matches_published_sequence(self):
        result = run_experiment("figure2")
        assert result.matches_paper
        assert tuple(result.sort.pairs()) == PAPER_FINAL_SEQUENCE

    def test_different_initial_order_still_three_classes(self):
        result = run_experiment("figure2", Figure2Config(initial_order=("AD", "DA", "AA", "DD")))
        assert result.sort.n_classes == 3
        assert result.sort.rank_of("AD") == 1

    def test_report_mentions_every_algorithm(self):
        text = run_experiment("figure2").report()
        for label in ("AD", "AA", "DD", "DA"):
            assert label in text


@pytest.fixture(scope="module")
def small_figure1():
    return run_experiment("figure1", Figure1Config(n_measurements=40, repetitions=20, seed=0))


class TestFigure1:
    def test_algorithm_space_is_the_four_splits(self, small_figure1):
        assert sorted(small_figure1.labels) == ["AA", "AD", "DA", "DD"]

    def test_ad_is_the_fastest_class(self, small_figure1):
        assert small_figure1.analysis.cluster_of("AD") == 1

    def test_offloading_only_the_small_loop_beats_everything(self, small_figure1):
        clusters = {label: small_figure1.analysis.cluster_of(label) for label in small_figure1.labels}
        assert clusters["AD"] <= clusters["AA"] <= clusters["DD"]
        assert clusters["DD"] <= clusters["DA"]

    def test_dd_and_da_are_close(self, small_figure1):
        """The paper finds DD ~ DA; on the simulated platform they stay within one class."""
        gap = abs(
            small_figure1.analysis.cluster_of("DD") - small_figure1.analysis.cluster_of("DA")
        )
        assert gap <= 1

    def test_report_contains_figure_parts(self, small_figure1):
        text = small_figure1.report()
        assert "Figure 1a" in text
        assert "Figure 1b" in text
        assert "Clustering" in text
        assert "#" in text  # histogram bars


@pytest.fixture(scope="module")
def table1_result():
    return run_experiment("table1", Table1Config(n_measurements=30, repetitions=40, seed=0))


class TestTable1:
    def test_qualitative_checks_all_pass(self, table1_result):
        checks = table1_result.qualitative_checks()
        failed = [name for name, ok in checks.items() if not ok]
        assert not failed, f"failed qualitative checks: {failed}"

    def test_speedup_is_modest_like_the_paper(self, table1_result):
        assert 1.0 < table1_result.speedup_dda_over_ddd < 1.35

    def test_every_algorithm_clustered(self, table1_result):
        assert sorted(table1_result.analysis.final.labels) == sorted(
            ["DDD", "DDA", "DAD", "DAA", "ADD", "ADA", "AAD", "AAA"]
        )

    def test_profiles_available_for_selection(self, table1_result):
        assert set(table1_result.profiles) == set(table1_result.analysis.final.labels)

    def test_report_lists_checks(self, table1_result):
        text = table1_result.report()
        assert "Qualitative checks" in text
        assert "[x]" in text


class TestSection3:
    def test_small_n_produces_borderline_comparisons(self):
        result = run_experiment(
            "section3_scores", Section3Config(n_measurements=30, repetitions=60, seed=1)
        )
        table = result.score_table
        # Every algorithm's scores sum to one and AD is always in the best class.
        for label in table.labels:
            assert table.total_score(label) == pytest.approx(1.0)
        assert result.final.cluster_of("AD") == 1
        # With only 30 measurements at least one algorithm straddles two ranks.
        assert result.fractional_labels()
        assert "Relative scores per rank" in result.report()


class TestDecisionModel:
    def test_speedup_grows_with_loop_size(self):
        result = run_experiment(
            "decision_model",
            DecisionModelConfig(loop_sizes=(5, 20), cost_weights=(0.0, 1e5), n_measurements=20, repetitions=20),
        )
        speedups = result.speedups()
        assert speedups[20] > speedups[5] > 1.0
        assert result.gaps_s()[20] > result.gaps_s()[5] > 0.0

    def test_cost_weight_switches_the_decision(self):
        result = run_experiment(
            "decision_model",
            DecisionModelConfig(loop_sizes=(10,), cost_weights=(0.0, 1e6), n_measurements=20, repetitions=20),
        )
        assert result.decisions[(10, 0.0)] == "DDA"
        assert result.decisions[(10, 1e6)] == "DDD"
        assert "speed-up" in result.report()


class TestEnergySwitching:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment(
            "energy_switching",
            EnergySwitchingConfig(loop_size=5, n_invocations=120, threshold_j=5.0, dissipation_j=1.0),
        )

    def test_policy_alternates_between_algorithms(self, result):
        assert result.trace.n_switches >= 2
        assert 0.0 < result.trace.usage_fraction("DDD") < 1.0

    def test_switching_saves_edge_energy_compared_to_static_ddd(self, result):
        comparison = result.comparison
        assert (
            comparison["switching"]["device_energy_j"]
            < comparison["static-DDD"]["device_energy_j"]
        )

    def test_budget_selector_offloads_the_big_task(self, result):
        assert result.budget_choice in {"DDA", "DAA", "ADA", "AAA"}

    def test_report(self, result):
        text = result.report()
        assert "Energy-aware switching" in text
        assert "strategy" in text


@pytest.fixture(scope="module")
def robustness_result():
    # A 5-point sweep (the acceptance minimum) with a lighter clustering load.
    return run_experiment(
        "robustness",
        RobustnessConfig(n_points=5, n_measurements=20, repetitions=30, candidates_per_scenario=3),
    )


class TestRobustness:
    def test_sweep_covers_every_scenario_point(self, robustness_result):
        assert len(robustness_result.sweep) == 5
        ts = [point.t for point in robustness_result.sweep]
        assert ts == [0.0, 0.25, 0.5, 0.75, 1.0]
        assert robustness_result.sweep[0].scenario.startswith("link-quality")

    def test_winner_and_class_drift_along_the_degradation(self, robustness_result):
        # The whole point: the best placement and the fastest performance
        # class are NOT stable across the wifi -> lte sweep.
        assert robustness_result.winner_drift() >= 2
        assert robustness_result.class_drift() >= 2
        winners = [point.winner for point in robustness_result.sweep]
        assert winners[0] != winners[-1]

    def test_winner_times_degrade_monotonically(self, robustness_result):
        times = [point.winner_time_s for point in robustness_result.sweep]
        assert times == sorted(times)

    def test_robust_selections_cover_the_whole_sweep(self, robustness_result):
        worst = robustness_result.robust_worst_case
        regret = robustness_result.robust_regret
        labels = robustness_result.grid.labels()
        assert worst.criterion == "worst_case" and regret.criterion == "regret"
        assert str(worst.label) in labels and str(regret.label) in labels
        assert len(worst.per_scenario) == 5
        # The worst-case pick can never be beaten at its own game by the
        # per-scenario winners' worst cases.
        times = robustness_result.grid.total_time_s
        decision_model_values = times + robustness_result.config.cost_weight * (
            robustness_result.grid.operating_cost
        )
        assert worst.objective <= float(decision_model_values.max(axis=0).min()) + 1e-12

    def test_clustered_candidates_are_a_fixed_cross_scenario_set(self, robustness_result):
        assert len(robustness_result.candidates) >= robustness_result.config.candidates_per_scenario
        for point in robustness_result.sweep:
            assert set(point.fastest_class) <= set(robustness_result.candidates)
            assert point.n_clusters >= 1

    def test_report_shows_the_drift(self, robustness_result):
        text = robustness_result.report()
        assert "wifi -> lte" in text
        assert "winner drift" in text and "performance-class drift" in text
        assert "worst case" in text and "regret" in text
        for point in robustness_result.sweep:
            assert point.scenario in text


@pytest.fixture(scope="module")
def forkjoin_result():
    return run_experiment("forkjoin", ForkJoinConfig(n_measurements=20, repetitions=30))


class TestForkJoin:
    def test_dag_planning_beats_chain_planning(self, forkjoin_result):
        # The tentpole claim: on a branchy workload the DAG-aware placement
        # strictly beats the chain-linearized one under the DAG model, and the
        # two plans genuinely pick different placements.
        assert forkjoin_result.planning_gain > 1.0
        assert forkjoin_result.dag_winner != forkjoin_result.chain_winner
        assert (
            forkjoin_result.dag_winner_time_s < forkjoin_result.chain_winner_dag_time_s
        )

    def test_overlap_speedup_vs_serial_model(self, forkjoin_result):
        assert forkjoin_result.overlap_speedup > 1.0
        # On this workload the chain plan co-locates everything on one device,
        # where the DAG model fully serializes too -- the two models coincide
        # exactly.  (For mixed-device placements they may differ either way:
        # branches overlap, but fan-in joins pay one penalty hop per edge.)
        assert len(set(forkjoin_result.chain_winner)) == 1
        assert (
            forkjoin_result.chain_winner_dag_time_s
            == forkjoin_result.chain_winner_serial_time_s
        )

    def test_dag_winner_survives_noise_clustering(self, forkjoin_result):
        assert forkjoin_result.dag_winner in forkjoin_result.fastest_class
        assert forkjoin_result.dag_winner in forkjoin_result.candidates
        assert forkjoin_result.chain_winner in forkjoin_result.candidates

    def test_space_is_complete(self, forkjoin_result):
        graph = forkjoin_result.graph
        assert len(forkjoin_result.graph_batch) == 4 ** len(graph)
        assert len(forkjoin_result.chain_batch) == 4 ** len(graph)
        assert forkjoin_result.graph_batch.labels() == forkjoin_result.chain_batch.labels()

    def test_report_tells_the_story(self, forkjoin_result):
        text = forkjoin_result.report()
        assert "planning gain" in text
        assert forkjoin_result.dag_winner in text
        assert forkjoin_result.chain_winner in text
        assert "fastest performance class" in text


@pytest.fixture(scope="module")
def faulttolerance_result():
    from repro.experiments import FaultToleranceConfig

    return run_experiment(
        "faulttolerance",
        FaultToleranceConfig(
            failure_rates=(0.0, 0.1, 0.35),
            task_sizes=(60, 120, 220),
        ),
    )


class TestFaultTolerance:
    def test_registered(self):
        assert "faulttolerance" in EXPERIMENTS

    def test_blind_pick_is_the_rate_zero_optimum(self, faulttolerance_result):
        first = faulttolerance_result.sweep[0]
        assert first.rate == 0.0
        assert first.aware == faulttolerance_result.blind_label
        assert first.blind_overhead == 0.0

    def test_blind_overhead_never_negative(self, faulttolerance_result):
        # The fault-aware pick minimises expected time per point, so the blind
        # placement can never beat it.
        for point in faulttolerance_result.sweep:
            assert point.blind_time_s >= point.aware_time_s
            assert point.blind_overhead >= 0.0

    def test_success_probabilities_degrade_along_the_sweep(self, faulttolerance_result):
        blind_success = [point.blind_success for point in faulttolerance_result.sweep]
        assert blind_success[0] == 1.0
        assert blind_success == sorted(blind_success, reverse=True)

    def test_crossover_is_reported_when_picks_drift(self, faulttolerance_result):
        result = faulttolerance_result
        drifted = any(p.aware != result.blind_label for p in result.sweep)
        if drifted:
            assert result.crossover_rate in {p.rate for p in result.sweep}
            assert result.pick_drift() >= 2
        else:
            assert result.crossover_rate is None

    def test_fallback_plan_covers_every_non_host_device(self, faulttolerance_result):
        fallback = faulttolerance_result.fallback
        assert set(fallback.covered_devices()) == {"N", "E", "A"}
        for alias in fallback.covered_devices():
            assert alias not in fallback.backup_for(alias).placement

    def test_report_tells_the_story(self, faulttolerance_result):
        text = faulttolerance_result.report()
        assert "blind overhead" in text
        assert faulttolerance_result.blind_label in text
        assert "fallback plan" in text

    def test_config_validation(self):
        from repro.experiments import FaultToleranceConfig
        from repro.experiments.faulttolerance import run

        with pytest.raises(ValueError, match="at least 2"):
            run(FaultToleranceConfig(failure_rates=(0.1,)))
        with pytest.raises(ValueError, match="ascending"):
            run(FaultToleranceConfig(failure_rates=(0.3, 0.1)))
