"""Tests for placements, algorithm spaces and execution binding."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices import SimulatedExecutor, cpu_gpu_platform, smartphone_cloud_platform
from repro.offload import (
    OffloadedAlgorithm,
    Placement,
    enumerate_algorithms,
    enumerate_placements,
    measure_algorithms,
    profile_algorithms,
    sample_algorithms,
)
from repro.tasks import GemmLoopTask, TaskChain, table1_chain


@pytest.fixture
def platform():
    return cpu_gpu_platform()


@pytest.fixture
def chain():
    return TaskChain(
        [GemmLoopTask(16, name="L1"), GemmLoopTask(24, name="L2"), GemmLoopTask(32, name="L3")],
        name="chain3",
    )


class TestPlacement:
    def test_from_string_and_label(self):
        p = Placement.from_string("DDA")
        assert p.label == "DDA"
        assert str(p) == "DDA"
        assert len(p) == 3
        assert list(p) == ["D", "D", "A"]
        assert p[2] == "A"

    def test_uniform(self):
        assert Placement.uniform("D", 3).label == "DDD"
        with pytest.raises(ValueError):
            Placement.uniform("D", 0)

    def test_counting_helpers(self):
        p = Placement.from_string("DAD")
        assert p.count("D") == 2
        assert p.tasks_on("A") == [1]
        assert p.uses("A") and not p.uses("N")
        assert p.n_offloaded("D") == 1

    def test_with_task_on(self):
        p = Placement.from_string("DDD").with_task_on(2, "A")
        assert p.label == "DDA"
        with pytest.raises(IndexError):
            p.with_task_on(5, "A")

    def test_validate(self, platform, chain):
        Placement.from_string("DDA").validate(chain, platform)
        with pytest.raises(ValueError):
            Placement.from_string("DD").validate(chain, platform)
        with pytest.raises(KeyError):
            Placement.from_string("DDZ").validate(chain, platform)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Placement(())
        with pytest.raises(ValueError):
            Placement.from_string("")


class TestEnumeration:
    def test_two_devices_three_tasks_gives_eight_algorithms(self, platform, chain):
        algorithms = enumerate_algorithms(chain, platform)
        labels = [a.label for a in algorithms]
        assert len(labels) == 8
        assert len(set(labels)) == 8
        assert {"DDD", "DDA", "AAA"} <= set(labels)

    def test_figure1_space_is_the_four_paper_algorithms(self, platform):
        from repro.tasks import figure1_chain

        labels = {a.label for a in enumerate_algorithms(figure1_chain(), platform)}
        assert labels == {"DD", "DA", "AD", "AA"}

    def test_max_offloaded_filter(self, platform, chain):
        algorithms = enumerate_algorithms(chain, platform, max_offloaded=1)
        assert {a.label for a in algorithms} == {"DDD", "DDA", "DAD", "ADD"}
        with pytest.raises(ValueError):
            enumerate_algorithms(chain, platform, max_offloaded=-1)

    def test_device_restriction(self, chain):
        platform = smartphone_cloud_platform()
        algorithms = enumerate_algorithms(chain, platform, devices=["D", "N"])
        assert len(algorithms) == 8
        assert all(set(a.placement) <= {"D", "N"} for a in algorithms)

    def test_enumerate_placements_validation(self):
        with pytest.raises(ValueError):
            enumerate_placements(0, ["D"])
        with pytest.raises(ValueError):
            enumerate_placements(2, [])
        with pytest.raises(ValueError):
            enumerate_placements(2, ["D", "D"])

    @given(n_tasks=st.integers(min_value=1, max_value=5), n_devices=st.integers(min_value=1, max_value=3))
    @settings(max_examples=25, deadline=None)
    def test_space_size_is_devices_to_the_tasks(self, n_tasks, n_devices):
        aliases = [chr(ord("A") + i) for i in range(n_devices)]
        placements = enumerate_placements(n_tasks, aliases)
        assert len(placements) == n_devices**n_tasks
        assert len({p.label for p in placements}) == len(placements)


class TestOffloadedAlgorithm:
    def test_flop_accounting(self, chain):
        algorithm = OffloadedAlgorithm(chain, Placement.from_string("DAD"))
        assert algorithm.flops_on("A") == pytest.approx(chain[1].flops)
        assert algorithm.flops_on("D") == pytest.approx(chain[0].flops + chain[2].flops)
        assert algorithm.total_flops == pytest.approx(chain.total_flops)
        by_device = algorithm.flops_by_device()
        assert sum(by_device.values()) == pytest.approx(chain.total_flops)

    def test_offloaded_fraction_and_transfers(self, chain):
        all_local = OffloadedAlgorithm(chain, Placement.from_string("DDD"))
        all_remote = OffloadedAlgorithm(chain, Placement.from_string("AAA"))
        assert all_local.offloaded_fraction("D") == 0.0
        assert all_remote.offloaded_fraction("D") == pytest.approx(1.0)
        assert all_local.transferred_bytes("D") == 0.0
        assert all_remote.transferred_bytes("D") > 0.0

    def test_mismatched_placement_rejected(self, chain):
        with pytest.raises(ValueError):
            OffloadedAlgorithm(chain, Placement.from_string("DD"))

    def test_label_and_str(self, chain):
        algorithm = OffloadedAlgorithm(chain, Placement.from_string("ADA"))
        assert algorithm.label == "ADA"
        assert str(algorithm) == "algADA"


class TestSampling:
    def test_sample_size_and_pinning(self, platform, chain):
        algorithms = enumerate_algorithms(chain, platform)
        sampled = sample_algorithms(algorithms, k=4, rng=0, always_include=["DDD"])
        assert len(sampled) == 4
        assert "DDD" in {a.label for a in sampled}

    def test_sampling_errors(self, platform, chain):
        algorithms = enumerate_algorithms(chain, platform)
        with pytest.raises(ValueError):
            sample_algorithms(algorithms, k=0)
        with pytest.raises(ValueError):
            sample_algorithms(algorithms, k=100)
        with pytest.raises(KeyError):
            sample_algorithms(algorithms, k=2, always_include=["ZZZ"])
        with pytest.raises(ValueError):
            sample_algorithms(algorithms, k=1, always_include=["DDD", "AAA"])


class TestExecutionBinding:
    def test_measure_algorithms_produces_labelled_set(self, platform, chain):
        executor = SimulatedExecutor(platform, seed=0)
        algorithms = enumerate_algorithms(chain, platform)
        ms = measure_algorithms(algorithms, executor, repetitions=8)
        assert set(ms.labels) == {a.label for a in algorithms}
        assert all(ms.n_measurements(label) == 8 for label in ms.labels)

    def test_measure_algorithms_rejects_empty_and_duplicates(self, platform, chain):
        executor = SimulatedExecutor(platform, seed=0)
        with pytest.raises(ValueError):
            measure_algorithms([], executor)
        duplicate = [
            OffloadedAlgorithm(chain, Placement.from_string("DDD")),
            OffloadedAlgorithm(chain, Placement.from_string("DDD")),
        ]
        with pytest.raises(ValueError):
            measure_algorithms(duplicate, executor)

    def test_profiles_expose_selection_quantities(self, platform):
        executor = SimulatedExecutor(platform, seed=0)
        chain = table1_chain(loop_size=2)
        algorithms = enumerate_algorithms(chain, platform)
        profiles = profile_algorithms(algorithms, executor)
        assert set(profiles) == {a.label for a in algorithms}
        ddd = profiles["DDD"]
        assert ddd.time_s > 0
        assert ddd.energy_j > 0
        assert ddd.operating_cost == 0.0
        assert ddd.flops_on("D") == pytest.approx(chain.total_flops)
        assert profiles["AAA"].operating_cost > 0
        assert profiles["AAA"].device_energy("A") > 0
        with pytest.raises(ValueError):
            profile_algorithms([], executor)

    def test_integration_with_analyzer(self, platform):
        """Full pipeline: enumerate -> measure (simulated) -> cluster."""
        from repro.core import RelativePerformanceAnalyzer

        chain = table1_chain(loop_size=2)
        executor = SimulatedExecutor(platform, seed=5)
        algorithms = enumerate_algorithms(chain, platform)
        ms = measure_algorithms(algorithms, executor, repetitions=20)
        result = RelativePerformanceAnalyzer(seed=0, repetitions=30).analyze(ms)
        assert sorted(result.final.labels, key=str) == sorted(ms.labels, key=str)
        assert result.n_clusters >= 2
