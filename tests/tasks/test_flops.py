"""Tests for FLOP-count formulas."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tasks import (
    cholesky_flops,
    frobenius_norm_flops,
    gemm_flops,
    gemv_flops,
    matrix_add_flops,
    regularized_least_squares_flops,
    spd_solve_flops,
    syrk_flops,
    triangular_solve_flops,
)
from repro.tasks.flops import scalar_matrix_flops


class TestFormulas:
    def test_gemm(self):
        assert gemm_flops(2, 3, 4) == 2 * 2 * 3 * 4
        assert gemm_flops(100, 100, 100) == 2e6

    def test_syrk(self):
        assert syrk_flops(3, 5) == 3 * 4 * 5

    def test_gemv(self):
        assert gemv_flops(3, 4) == 24

    def test_cholesky(self):
        assert cholesky_flops(6) == pytest.approx(216 / 3)

    def test_triangular_and_spd_solve(self):
        assert triangular_solve_flops(4, 2) == 32
        assert spd_solve_flops(4, 2) == pytest.approx(cholesky_flops(4) + 64)

    def test_elementwise(self):
        assert matrix_add_flops(3, 4) == 12
        assert scalar_matrix_flops(3, 4) == 12
        assert frobenius_norm_flops(3, 4) == 24

    def test_rls_is_dominated_by_cubic_terms(self):
        n = 200
        flops = regularized_least_squares_flops(n)
        # syrk + 2 gemm + chol/solves ~ 7.3 n^3
        assert 6.5 * n**3 < flops < 8.5 * n**3

    @pytest.mark.parametrize(
        "fn,args",
        [
            (gemm_flops, (0, 1, 1)),
            (syrk_flops, (1, 0)),
            (gemv_flops, (-1, 2)),
            (cholesky_flops, (0,)),
            (triangular_solve_flops, (1, 0)),
            (matrix_add_flops, (0, 1)),
            (frobenius_norm_flops, (1, -2)),
            (regularized_least_squares_flops, (0,)),
        ],
    )
    def test_non_positive_dimensions_rejected(self, fn, args):
        with pytest.raises(ValueError):
            fn(*args)


class TestProperties:
    @given(n=st.integers(min_value=1, max_value=500), m=st.integers(min_value=1, max_value=500))
    @settings(max_examples=50, deadline=None)
    def test_counts_are_positive(self, n, m):
        assert gemm_flops(n, m, n) > 0
        assert syrk_flops(n, m) > 0
        assert spd_solve_flops(n, m) > 0
        assert regularized_least_squares_flops(n) > 0

    @given(n=st.integers(min_value=2, max_value=400))
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_problem_size(self, n):
        assert regularized_least_squares_flops(n) > regularized_least_squares_flops(n - 1)
        assert gemm_flops(n, n, n) > gemm_flops(n - 1, n - 1, n - 1)
        assert cholesky_flops(n) > cholesky_flops(n - 1)

    @given(
        m=st.integers(min_value=1, max_value=100),
        n=st.integers(min_value=1, max_value=100),
        k=st.integers(min_value=1, max_value=100),
    )
    @settings(max_examples=50, deadline=None)
    def test_gemm_symmetry_in_output_dimensions(self, m, n, k):
        assert gemm_flops(m, n, k) == gemm_flops(n, m, k)
