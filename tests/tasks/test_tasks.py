"""Tests for MathTask implementations, TaskCost and task chains."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tasks import (
    FLOAT64_BYTES,
    GemmLoopTask,
    RegularizedLeastSquaresTask,
    TaskChain,
    TaskCost,
    gemm_flops,
    regularized_least_squares_flops,
)


class TestTaskCost:
    def test_validation(self):
        with pytest.raises(ValueError):
            TaskCost(flops=-1, input_bytes=0, output_bytes=0, working_set_bytes=0, kernel_calls=1)
        with pytest.raises(ValueError):
            TaskCost(flops=1, input_bytes=0, output_bytes=0, working_set_bytes=0, kernel_calls=0)

    def test_transferred_bytes(self):
        cost = TaskCost(flops=1, input_bytes=10, output_bytes=5, working_set_bytes=3, kernel_calls=2)
        assert cost.transferred_bytes == 15

    def test_scaled(self):
        cost = TaskCost(flops=10, input_bytes=4, output_bytes=2, working_set_bytes=8, kernel_calls=3)
        doubled = cost.scaled(2)
        assert doubled.flops == 20
        assert doubled.kernel_calls == 6
        assert doubled.working_set_bytes == 8
        with pytest.raises(ValueError):
            cost.scaled(0)


class TestGemmLoopTask:
    def test_square_cost(self):
        task = GemmLoopTask(size=100, iterations=3, name="L1")
        cost = task.cost()
        assert cost.flops == pytest.approx(3 * (gemm_flops(100, 100, 100) + 2 * 100 * 100))
        assert cost.input_bytes == pytest.approx(3 * 2 * 100 * 100 * FLOAT64_BYTES)
        assert cost.output_bytes == FLOAT64_BYTES
        assert cost.kernel_calls == 6

    def test_rectangular_shape_and_return_product(self):
        task = GemmLoopTask(size=(64, 8, 32), iterations=2, name="L2", return_product=True)
        assert task.shape == (64, 8, 32)
        cost = task.cost()
        assert cost.flops == pytest.approx(2 * (gemm_flops(64, 32, 8) + 2 * 64 * 32))
        assert cost.output_bytes == pytest.approx(2 * 64 * 32 * FLOAT64_BYTES)

    def test_generate_on_device_reduces_input_bytes(self):
        local = GemmLoopTask(size=50, generate_on_host=False)
        assert local.cost().input_bytes == FLOAT64_BYTES

    def test_run_returns_positive_penalty(self, rng):
        task = GemmLoopTask(size=16, iterations=2)
        penalty = task.run(0.0, rng=rng)
        assert penalty > 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            GemmLoopTask(size=0)
        with pytest.raises(ValueError):
            GemmLoopTask(size=(2, 2))
        with pytest.raises(ValueError):
            GemmLoopTask(size=4, iterations=0)
        with pytest.raises(ValueError):
            GemmLoopTask(size=4, name="")


class TestRegularizedLeastSquaresTask:
    def test_cost_matches_flop_formula(self):
        task = RegularizedLeastSquaresTask(size=30, iterations=4, name="L1")
        assert task.cost().flops == pytest.approx(4 * regularized_least_squares_flops(30))
        assert task.flops == task.cost().flops

    def test_run_reduces_residual_sensibly(self, rng):
        task = RegularizedLeastSquaresTask(size=12, iterations=3)
        penalty = task.run(0.0, rng=rng)
        assert np.isfinite(penalty)
        assert penalty >= 0

    def test_run_with_large_incoming_penalty_is_stable(self, rng):
        task = RegularizedLeastSquaresTask(size=8, iterations=1)
        penalty = task.run(1e6, rng=rng)
        assert np.isfinite(penalty)

    def test_solution_matches_direct_inverse(self, rng):
        """One iteration of the kernel equals the textbook formula (Procedure 6, line 4)."""
        n = 10
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))
        lam = 0.7
        expected = np.linalg.solve(a.T @ a + lam * np.eye(n), a.T @ b)
        from scipy import linalg

        gram = a.T @ a
        gram.flat[:: n + 1] += lam
        z = linalg.cho_solve(linalg.cho_factor(gram, lower=True), a.T @ b)
        np.testing.assert_allclose(z, expected, rtol=1e-8)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RegularizedLeastSquaresTask(size=0)
        with pytest.raises(ValueError):
            RegularizedLeastSquaresTask(size=5, iterations=-1)


class TestTaskChain:
    def _chain(self) -> TaskChain:
        return TaskChain(
            [GemmLoopTask(8, name="L1"), GemmLoopTask(16, name="L2"), GemmLoopTask(4, name="L3")],
            name="demo",
        )

    def test_sequence_protocol(self):
        chain = self._chain()
        assert len(chain) == 3
        assert chain.task_names == ["L1", "L2", "L3"]
        assert chain[1].name == "L2"
        assert [t.name for t in chain] == ["L1", "L2", "L3"]

    def test_total_flops_is_sum(self):
        chain = self._chain()
        assert chain.total_flops == pytest.approx(sum(t.flops for t in chain))
        assert chain.flops_by_task()["L2"] == chain[1].flops
        assert len(chain.costs()) == 3

    def test_run_propagates_penalty(self, rng):
        assert self._chain().run(rng=rng) > 0

    def test_subchain(self):
        sub = self._chain().subchain(["L1", "L3"])
        assert sub.task_names == ["L1", "L3"]
        with pytest.raises(KeyError):
            self._chain().subchain(["L9"])

    def test_subchain_unknown_name_lists_available_tasks(self):
        """Regression: the KeyError must name the unknown AND available tasks
        (mirroring the get_platform error style)."""
        with pytest.raises(KeyError, match=r"unknown tasks \['L9'\].*available.*'L1', 'L2', 'L3'"):
            self._chain().subchain(["L1", "L9"])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            TaskChain([GemmLoopTask(4, name="L1"), GemmLoopTask(4, name="L1")])

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            TaskChain([])


class TestWorkloads:
    def test_registry_contains_paper_workloads(self):
        from repro.tasks import WORKLOADS, get_workload

        assert {"figure1", "table1"} <= set(WORKLOADS)
        assert len(get_workload("figure1")) == 2
        assert len(get_workload("table1")) == 3
        with pytest.raises(KeyError):
            get_workload("does-not-exist")

    def test_fork_join_graph_shape(self):
        from repro.tasks import fork_join_graph

        graph = fork_join_graph(branches=4)
        assert graph.task_names == ["prep", "b1", "b2", "b3", "b4", "join"]
        assert graph.sources == ("prep",) and graph.sinks == ("join",)
        assert graph.levels == (("prep",), ("b1", "b2", "b3", "b4"), ("join",))
        with pytest.raises(ValueError):
            fork_join_graph(branches=1)

    def test_table1_sizes_match_procedure5(self):
        from repro.tasks import table1_chain

        chain = table1_chain(loop_size=10)
        assert [t.size for t in chain] == [50, 75, 300]
        assert all(t.iterations == 10 for t in chain)
        assert chain.task_names == ["L1", "L2", "L3"]

    def test_multiscale_and_object_detection_workloads(self):
        from repro.tasks import multiscale_chain, object_detection_chain

        assert len(multiscale_chain(scales=(10, 20, 30))) == 3
        with pytest.raises(ValueError):
            multiscale_chain(scales=(10,))
        detection = object_detection_chain(low_fidelity=16, high_fidelity=32, frames=2)
        assert detection.task_names == ["detect", "refine"]

    @given(loop_size=st.integers(min_value=1, max_value=20))
    @settings(max_examples=15, deadline=None)
    def test_table1_flops_scale_linearly_with_loop_size(self, loop_size):
        from repro.tasks import table1_chain

        base = table1_chain(loop_size=1).total_flops
        assert table1_chain(loop_size=loop_size).total_flops == pytest.approx(base * loop_size)
