"""The benchmark trajectory report must fail actionably on malformed JSON."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

REPORT_PATH = Path(__file__).resolve().parents[2] / "benchmarks" / "report.py"
spec = importlib.util.spec_from_file_location("bench_report", REPORT_PATH)
report = importlib.util.module_from_spec(spec)
spec.loader.exec_module(report)


GOOD_PAYLOAD = {
    "written_at": "2026-01-01T00:00:00Z",
    "workload": {"n_tasks": 3, "n_placements": 64},
    "seconds": {"engine": 0.01},
    "speedups": {"engine": 12.0},
    "floors": {"engine": 2.0},
}


def write(directory: Path, name: str, text: str) -> Path:
    path = directory / name
    path.write_text(text)
    return path


class TestLoadResults:
    def test_loads_well_formed_files(self, tmp_path):
        write(tmp_path, "BENCH_engine.json", json.dumps(GOOD_PAYLOAD))
        results = report.load_results(tmp_path)
        assert len(results) == 1
        assert results[0]["benchmark"] == "engine"

    def test_truncated_file_names_path_and_remedy(self, tmp_path):
        # A benchmark killed mid-write leaves a truncated JSON behind.
        bad = write(tmp_path, "BENCH_faults.json", json.dumps(GOOD_PAYLOAD)[:40])
        with pytest.raises(report.BenchFileError) as excinfo:
            report.load_results(tmp_path)
        message = str(excinfo.value)
        assert str(bad) in message
        assert "rerun the benchmark" in message
        assert "benchmarks/bench_faults.py" in message

    def test_small_variant_remedy_points_at_the_base_benchmark(self, tmp_path):
        write(tmp_path, "BENCH_engine_small.json", "{not json")
        with pytest.raises(report.BenchFileError, match="benchmarks/bench_engine.py"):
            report.load_results(tmp_path)

    def test_non_object_payload_is_malformed(self, tmp_path):
        bad = write(tmp_path, "BENCH_engine.json", "[1, 2, 3]")
        with pytest.raises(report.BenchFileError) as excinfo:
            report.load_results(tmp_path)
        message = str(excinfo.value)
        assert str(bad) in message
        assert "expected a JSON object" in message

    def test_one_bad_file_does_not_hide_which_one(self, tmp_path):
        write(tmp_path, "BENCH_engine.json", json.dumps(GOOD_PAYLOAD))
        write(tmp_path, "BENCH_planner.json", "")
        with pytest.raises(report.BenchFileError, match="BENCH_planner.json"):
            report.load_results(tmp_path)


class TestMain:
    def test_malformed_file_fails_the_run_with_the_path(self, tmp_path, capsys):
        bad = write(tmp_path, "BENCH_faults.json", "{truncated")
        assert report.main(["report.py", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "ERROR" in out
        assert str(bad) in out
        assert "rerun the benchmark" in out

    def test_well_formed_directory_still_reports(self, tmp_path, capsys):
        write(tmp_path, "BENCH_engine.json", json.dumps(GOOD_PAYLOAD))
        assert report.main(["report.py", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Benchmark speedup trajectory" in out

    def test_floor_violation_still_detected(self, tmp_path, capsys):
        payload = dict(GOOD_PAYLOAD, speedups={"engine": 1.0})
        write(tmp_path, "BENCH_engine.json", json.dumps(payload))
        assert report.main(["report.py", str(tmp_path)]) == 1
        assert "FLOOR VIOLATION" in capsys.readouterr().out


THROUGHPUT_PAYLOAD = {
    "written_at": "2026-01-02T00:00:00Z",
    "workload": {"n_users": 100000, "n_placements": 16},
    "seconds": {"end_to_end": 1.5},
    "throughputs": {"fleet_pairs_per_s": 1_000_000.0},
    "floors": {"fleet_pairs_per_s": 10_000.0},
}


class TestThroughputRows:
    def test_throughputs_render_as_per_second_rows(self, tmp_path, capsys):
        write(tmp_path, "BENCH_fleet.json", json.dumps(THROUGHPUT_PAYLOAD))
        assert report.main(["report.py", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "fleet_pairs_per_s" in out
        assert "1,000,000/s" in out
        assert "10,000/s" in out
        assert "n_users=100000" in out

    def test_throughput_below_floor_is_a_violation(self, tmp_path, capsys):
        payload = dict(THROUGHPUT_PAYLOAD, throughputs={"fleet_pairs_per_s": 500.0})
        write(tmp_path, "BENCH_fleet.json", json.dumps(payload))
        assert report.main(["report.py", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "FLOOR VIOLATION" in out
        assert "below floor 10,000/s" in out

    def test_throughput_without_floor_is_informational(self, tmp_path):
        payload = dict(THROUGHPUT_PAYLOAD, floors={})
        write(tmp_path, "BENCH_fleet.json", json.dumps(payload))
        rows, violations = report.trajectory_rows(report.load_results(tmp_path))
        assert violations == []
        assert any(row[1] == "fleet_pairs_per_s" and row[3] == "-" for row in rows)
