"""Tests for MeasurementSet and summaries."""

from __future__ import annotations

import numpy as np
import pytest

from repro.measurement import MeasurementSet


class TestConstruction:
    def test_from_mapping(self):
        ms = MeasurementSet({"a": [1.0, 2.0], "b": np.array([3.0])})
        assert set(ms.labels) == {"a", "b"}
        assert ms.n_measurements("a") == 2
        np.testing.assert_array_equal(ms["b"], [3.0])

    def test_rejects_empty_vector(self):
        with pytest.raises(ValueError):
            MeasurementSet({"a": []})

    def test_rejects_nan_and_inf(self):
        with pytest.raises(ValueError):
            MeasurementSet({"a": [1.0, np.nan]})
        with pytest.raises(ValueError):
            MeasurementSet({"a": [1.0, np.inf]})

    def test_rejects_non_positive_by_default(self):
        with pytest.raises(ValueError):
            MeasurementSet({"a": [0.0, 1.0]})
        with pytest.raises(ValueError):
            MeasurementSet({"a": [-1.0]})

    def test_allows_non_positive_when_requested(self):
        ms = MeasurementSet({"a": [-1.0, 0.0]}, require_positive=False, metric="delta", unit="ms")
        assert ms.metric == "delta"
        assert ms.unit == "ms"


class TestMutation:
    def test_record_appends(self):
        ms = MeasurementSet()
        ms.record("x", 1.0)
        ms.record("x", 2.0)
        np.testing.assert_array_equal(ms["x"], [1.0, 2.0])

    def test_extend_appends_vector(self):
        ms = MeasurementSet({"x": [1.0]})
        ms.extend("x", [2.0, 3.0])
        assert ms.n_measurements("x") == 3
        ms.extend("y", [4.0])
        assert "y" in ms

    def test_add_replaces(self):
        ms = MeasurementSet({"x": [1.0, 2.0]})
        ms.add("x", [5.0])
        np.testing.assert_array_equal(ms["x"], [5.0])

    def test_merge_and_subset(self):
        a = MeasurementSet({"x": [1.0], "y": [2.0]})
        b = MeasurementSet({"y": [9.0], "z": [3.0]})
        merged = a.merge(b)
        assert set(merged.labels) == {"x", "y", "z"}
        np.testing.assert_array_equal(merged["y"], [9.0])
        sub = merged.subset(["z", "x"])
        assert sub.labels == ["z", "x"]
        with pytest.raises(KeyError):
            merged.subset(["missing"])


class TestInterop:
    def test_mapping_protocol(self):
        ms = MeasurementSet({"a": [1.0], "b": [2.0]})
        assert len(ms) == 2
        assert "a" in ms and "c" not in ms
        assert list(iter(ms)) == ["a", "b"]
        assert dict(ms.items()).keys() == {"a", "b"}

    def test_as_dict_feeds_analyzer(self):
        from repro.core import RelativePerformanceAnalyzer

        rng = np.random.default_rng(0)
        ms = MeasurementSet(
            {"fast": rng.normal(1.0, 0.01, 40), "slow": rng.normal(3.0, 0.03, 40)}
        )
        result = RelativePerformanceAnalyzer(seed=0, repetitions=10).analyze(ms)
        assert result.cluster_of("fast") == 1
        assert result.cluster_of("slow") == 2


class TestStatistics:
    def test_summary_values(self):
        ms = MeasurementSet({"a": [1.0, 2.0, 3.0, 4.0]})
        s = ms.summary("a")
        assert s.n == 4
        assert s.mean == pytest.approx(2.5)
        assert s.minimum == 1.0 and s.maximum == 4.0
        assert s.median == pytest.approx(2.5)
        assert s.q25 <= s.median <= s.q75
        assert s.coefficient_of_variation > 0
        assert len(s.as_row()) == 9

    def test_single_measurement_has_zero_std(self):
        ms = MeasurementSet({"a": [2.0]})
        assert ms.summary("a").std == 0.0

    def test_summaries_order(self):
        ms = MeasurementSet({"b": [1.0], "a": [2.0]})
        assert [s.label for s in ms.summaries()] == ["b", "a"]

    def test_speedup(self):
        ms = MeasurementSet({"base": [2.0, 2.0], "fast": [1.0, 1.0]})
        assert ms.speedup("base", "fast") == pytest.approx(2.0)
        assert ms.mean("base") == pytest.approx(2.0)


class TestFromMatrix:
    def test_rows_become_labelled_vectors(self):
        matrix = np.array([[1.0, 2.0], [3.0, 4.0]])
        ms = MeasurementSet.from_matrix(["a", "b"], matrix, metric="energy", unit="J")
        assert ms.labels == ["a", "b"]
        assert ms.metric == "energy" and ms.unit == "J"
        np.testing.assert_array_equal(ms["a"], [1.0, 2.0])
        np.testing.assert_array_equal(ms["b"], [3.0, 4.0])

    def test_equivalent_to_per_label_add(self):
        rng = np.random.default_rng(0)
        matrix = np.abs(rng.normal(1.0, 0.1, size=(4, 9)))
        labels = ["w", "x", "y", "z"]
        fast = MeasurementSet.from_matrix(labels, matrix)
        slow = MeasurementSet()
        for label, row in zip(labels, matrix):
            slow.add(label, row)
        assert fast.labels == slow.labels
        for label in labels:
            np.testing.assert_array_equal(fast[label], slow[label])

    def test_validation(self):
        with pytest.raises(ValueError):
            MeasurementSet.from_matrix(["a"], np.array([1.0, 2.0]))  # 1-D
        with pytest.raises(ValueError):
            MeasurementSet.from_matrix(["a", "b"], np.ones((1, 3)))  # label count
        with pytest.raises(ValueError):
            MeasurementSet.from_matrix(["a", "a"], np.ones((2, 3)))  # duplicates
        with pytest.raises(ValueError):
            MeasurementSet.from_matrix(["a"], np.empty((1, 0)))  # empty rows
        with pytest.raises(ValueError):
            MeasurementSet.from_matrix(["a"], np.array([[1.0, np.nan]]))  # non-finite
        with pytest.raises(ValueError):
            MeasurementSet.from_matrix(["a"], np.array([[1.0, -1.0]]))  # non-positive
        negatives = MeasurementSet.from_matrix(
            ["a"], np.array([[1.0, -1.0]]), require_positive=False
        )
        np.testing.assert_array_equal(negatives["a"], [1.0, -1.0])
