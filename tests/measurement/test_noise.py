"""Tests for the measurement-noise models."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.measurement import (
    AdditiveJitter,
    CompositeNoise,
    DriftNoise,
    GaussianNoise,
    LognormalNoise,
    NoNoise,
    OutlierNoise,
    default_system_noise,
)


ALL_MODELS = [
    NoNoise(),
    LognormalNoise(sigma=0.05),
    GaussianNoise(rel_sigma=0.03),
    OutlierNoise(probability=0.1, scale=2.0),
    DriftNoise(total_drift=0.1),
    AdditiveJitter(scale_seconds=1e-4),
    default_system_noise(),
]


@pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: type(m).__name__)
class TestCommonBehaviour:
    def test_output_shape_and_positivity(self, model, rng):
        samples = model(0.01, 50, rng)
        assert samples.shape == (50,)
        assert np.all(samples > 0)

    def test_samples_centre_near_base(self, model, rng):
        base = 0.5
        samples = model(base, 400, rng)
        assert abs(np.median(samples) - base) / base < 0.25

    def test_invalid_arguments(self, model, rng):
        with pytest.raises(ValueError):
            model(0.0, 10, rng)
        with pytest.raises(ValueError):
            model(1.0, 0, rng)

    def test_deterministic_given_seed(self, model):
        a = model(0.1, 20, np.random.default_rng(3))
        b = model(0.1, 20, np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)


class TestSpecificModels:
    def test_no_noise_is_exact(self, rng):
        np.testing.assert_array_equal(NoNoise()(2.0, 5, rng), np.full(5, 2.0))

    def test_lognormal_spread_grows_with_sigma(self, rng):
        low = LognormalNoise(0.01)(1.0, 2000, np.random.default_rng(1))
        high = LognormalNoise(0.2)(1.0, 2000, np.random.default_rng(1))
        assert high.std() > low.std()

    def test_outlier_fraction_close_to_probability(self):
        model = OutlierNoise(probability=0.2, scale=3.0)
        samples = model(1.0, 5000, np.random.default_rng(0))
        fraction = np.mean(samples > 2.0)
        assert 0.15 <= fraction <= 0.25

    def test_drift_is_monotone(self, rng):
        samples = DriftNoise(total_drift=0.5)(1.0, 10, rng)
        assert np.all(np.diff(samples) >= 0)
        assert samples[-1] == pytest.approx(1.5)

    def test_drift_single_sample(self, rng):
        assert DriftNoise(0.5)(1.0, 1, rng)[0] == pytest.approx(1.0)

    def test_additive_jitter_only_adds(self, rng):
        samples = AdditiveJitter(1e-3)(0.5, 100, rng)
        assert np.all(samples >= 0.5)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            LognormalNoise(sigma=-0.1)
        with pytest.raises(ValueError):
            GaussianNoise(rel_sigma=-0.1)
        with pytest.raises(ValueError):
            OutlierNoise(probability=1.5)
        with pytest.raises(ValueError):
            OutlierNoise(scale=0.5)
        with pytest.raises(ValueError):
            AdditiveJitter(scale_seconds=-1)
        with pytest.raises(ValueError):
            default_system_noise(level=-1)


class TestComposite:
    def test_empty_composite_is_identity(self, rng):
        np.testing.assert_array_equal(CompositeNoise(())(1.5, 4, rng), np.full(4, 1.5))

    def test_composition_of_known_models(self, rng):
        model = CompositeNoise((LognormalNoise(0.05), AdditiveJitter(1e-4), OutlierNoise(0.0)))
        samples = model(0.2, 300, rng)
        assert samples.shape == (300,)
        assert np.all(samples > 0)
        assert abs(np.median(samples) - 0.2) < 0.02

    def test_composition_with_custom_model_falls_back(self, rng):
        from repro.measurement.noise import NoiseModel

        class Shift(NoiseModel):
            def sample(self, base, n, generator):
                return np.full(n, base * 1.1)

        model = CompositeNoise((Shift(), GaussianNoise(0.0)))
        samples = model(1.0, 3, rng)
        np.testing.assert_allclose(samples, 1.1)

    @given(level=st.floats(min_value=0.0, max_value=3.0))
    @settings(max_examples=20, deadline=None)
    def test_default_system_noise_positive_for_any_level(self, level):
        model = default_system_noise(level)
        samples = model(0.05, 50, np.random.default_rng(7))
        assert np.all(samples > 0)


class TestSampleFromHooks:
    """The vectorized sample_from hook every model exposes (batch engine API)."""

    @pytest.mark.parametrize("model", ALL_MODELS)
    def test_matches_scalar_sample_stream(self, model):
        """sample(base, n) and sample_from(full(n, base)) draw the same stream."""
        base, n = 0.25, 40
        a = model.sample(base, n, np.random.default_rng(11))
        b = model.sample_from(np.full(n, base), np.random.default_rng(11))
        np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("model", ALL_MODELS)
    def test_matrix_input_keeps_shape(self, model, rng):
        samples = np.full((5, 7), 0.4)
        out = model.sample_from(samples, rng)
        assert np.shape(out) == (5, 7)

    def test_custom_model_inherits_per_sample_fallback(self, rng):
        from repro.measurement.noise import NoiseModel

        class Shift(NoiseModel):
            def sample(self, base, n, generator):
                return np.full(n, base * 1.1)

        out = Shift().sample_from(np.array([[1.0, 2.0], [3.0, 4.0]]), rng)
        np.testing.assert_allclose(out, [[1.1, 2.2], [3.3, 4.4]])

    def test_drift_ramps_along_last_axis(self, rng):
        out = DriftNoise(total_drift=1.0).sample_from(np.full((2, 5), 1.0), rng)
        np.testing.assert_allclose(out[0], 1.0 + np.arange(5) / 4.0)
        np.testing.assert_array_equal(out[0], out[1])

    def test_sample_from_does_not_mutate_input(self, rng):
        samples = np.full(10, 0.3)
        for model in ALL_MODELS:
            model.sample_from(samples, rng)
        np.testing.assert_array_equal(samples, np.full(10, 0.3))


class TestSampleMany:
    def test_shape_and_positivity(self, rng):
        bases = np.array([0.01, 0.5, 2.0])
        out = default_system_noise().sample_many(bases, 50, rng)
        assert out.shape == (3, 50)
        assert np.all(out > 0)

    def test_rows_center_on_their_base(self):
        bases = np.array([0.1, 1.0, 10.0])
        out = default_system_noise().sample_many(bases, 400, np.random.default_rng(0))
        medians = np.median(out, axis=1)
        np.testing.assert_allclose(medians, bases, rtol=0.1)

    def test_no_noise_rows_are_exact(self, rng):
        bases = np.array([0.25, 4.0])
        out = NoNoise().sample_many(bases, 3, rng)
        np.testing.assert_array_equal(out, np.repeat(bases[:, None], 3, axis=1))

    def test_validation(self, rng):
        model = default_system_noise()
        with pytest.raises(ValueError):
            model.sample_many(np.array([1.0, -1.0]), 5, rng)
        with pytest.raises(ValueError):
            model.sample_many(np.array([]), 5, rng)
        with pytest.raises(ValueError):
            model.sample_many(np.array([1.0]), 0, rng)
        with pytest.raises(ValueError):
            model.sample_many(np.ones((2, 2)), 5, rng)
