"""Tests for the measurement-noise models."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.measurement import (
    AdditiveJitter,
    CompositeNoise,
    DriftNoise,
    GaussianNoise,
    LognormalNoise,
    NoNoise,
    OutlierNoise,
    default_system_noise,
)


ALL_MODELS = [
    NoNoise(),
    LognormalNoise(sigma=0.05),
    GaussianNoise(rel_sigma=0.03),
    OutlierNoise(probability=0.1, scale=2.0),
    DriftNoise(total_drift=0.1),
    AdditiveJitter(scale_seconds=1e-4),
    default_system_noise(),
]


@pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: type(m).__name__)
class TestCommonBehaviour:
    def test_output_shape_and_positivity(self, model, rng):
        samples = model(0.01, 50, rng)
        assert samples.shape == (50,)
        assert np.all(samples > 0)

    def test_samples_centre_near_base(self, model, rng):
        base = 0.5
        samples = model(base, 400, rng)
        assert abs(np.median(samples) - base) / base < 0.25

    def test_invalid_arguments(self, model, rng):
        with pytest.raises(ValueError):
            model(0.0, 10, rng)
        with pytest.raises(ValueError):
            model(1.0, 0, rng)

    def test_deterministic_given_seed(self, model):
        a = model(0.1, 20, np.random.default_rng(3))
        b = model(0.1, 20, np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)


class TestSpecificModels:
    def test_no_noise_is_exact(self, rng):
        np.testing.assert_array_equal(NoNoise()(2.0, 5, rng), np.full(5, 2.0))

    def test_lognormal_spread_grows_with_sigma(self, rng):
        low = LognormalNoise(0.01)(1.0, 2000, np.random.default_rng(1))
        high = LognormalNoise(0.2)(1.0, 2000, np.random.default_rng(1))
        assert high.std() > low.std()

    def test_outlier_fraction_close_to_probability(self):
        model = OutlierNoise(probability=0.2, scale=3.0)
        samples = model(1.0, 5000, np.random.default_rng(0))
        fraction = np.mean(samples > 2.0)
        assert 0.15 <= fraction <= 0.25

    def test_drift_is_monotone(self, rng):
        samples = DriftNoise(total_drift=0.5)(1.0, 10, rng)
        assert np.all(np.diff(samples) >= 0)
        assert samples[-1] == pytest.approx(1.5)

    def test_drift_single_sample(self, rng):
        assert DriftNoise(0.5)(1.0, 1, rng)[0] == pytest.approx(1.0)

    def test_additive_jitter_only_adds(self, rng):
        samples = AdditiveJitter(1e-3)(0.5, 100, rng)
        assert np.all(samples >= 0.5)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            LognormalNoise(sigma=-0.1)
        with pytest.raises(ValueError):
            GaussianNoise(rel_sigma=-0.1)
        with pytest.raises(ValueError):
            OutlierNoise(probability=1.5)
        with pytest.raises(ValueError):
            OutlierNoise(scale=0.5)
        with pytest.raises(ValueError):
            AdditiveJitter(scale_seconds=-1)
        with pytest.raises(ValueError):
            default_system_noise(level=-1)


class TestComposite:
    def test_empty_composite_is_identity(self, rng):
        np.testing.assert_array_equal(CompositeNoise(())(1.5, 4, rng), np.full(4, 1.5))

    def test_composition_of_known_models(self, rng):
        model = CompositeNoise((LognormalNoise(0.05), AdditiveJitter(1e-4), OutlierNoise(0.0)))
        samples = model(0.2, 300, rng)
        assert samples.shape == (300,)
        assert np.all(samples > 0)
        assert abs(np.median(samples) - 0.2) < 0.02

    def test_composition_with_custom_model_falls_back(self, rng):
        from repro.measurement.noise import NoiseModel

        class Shift(NoiseModel):
            def sample(self, base, n, generator):
                return np.full(n, base * 1.1)

        model = CompositeNoise((Shift(), GaussianNoise(0.0)))
        samples = model(1.0, 3, rng)
        np.testing.assert_allclose(samples, 1.1)

    @given(level=st.floats(min_value=0.0, max_value=3.0))
    @settings(max_examples=20, deadline=None)
    def test_default_system_noise_positive_for_any_level(self, level):
        model = default_system_noise(level)
        samples = model(0.05, 50, np.random.default_rng(7))
        assert np.all(samples > 0)
