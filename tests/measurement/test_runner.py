"""Tests for timers and the measurement runner."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.measurement import (
    MeasurementRunner,
    ProcessTimeTimer,
    WallClockTimer,
    measure_callable,
)


class TestTimers:
    def test_wall_clock_measures_elapsed_time(self):
        duration = WallClockTimer.time(lambda: time.sleep(0.01))
        assert duration >= 0.009

    def test_process_time_ignores_sleep(self):
        duration = ProcessTimeTimer.time(lambda: time.sleep(0.01))
        assert duration < 0.009

    def test_timer_names(self):
        assert WallClockTimer.name == "perf_counter"
        assert ProcessTimeTimer.name == "process_time"


class TestMeasureCallable:
    def test_returns_requested_number_of_measurements(self):
        times = measure_callable(lambda: sum(range(1000)), repetitions=7, warmup=2)
        assert times.shape == (7,)
        assert np.all(times >= 0)

    def test_warmup_calls_happen(self):
        calls = []
        measure_callable(lambda: calls.append(1), repetitions=3, warmup=2)
        assert len(calls) == 5

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            measure_callable(lambda: None, repetitions=0)
        with pytest.raises(ValueError):
            measure_callable(lambda: None, repetitions=1, warmup=-1)


class TestMeasurementRunner:
    def test_collects_all_algorithms(self):
        runner = MeasurementRunner(repetitions=4, warmup=1)
        ms = runner.collect({"a": lambda: sum(range(200)), "b": lambda: sum(range(2000))})
        assert set(ms.labels) == {"a", "b"}
        assert ms.n_measurements("a") == 4
        assert ms.n_measurements("b") == 4

    def test_faster_algorithm_measures_faster(self):
        runner = MeasurementRunner(repetitions=8, warmup=1)
        ms = runner.collect(
            {"cheap": lambda: sum(range(100)), "costly": lambda: sum(range(300_000))}
        )
        assert ms.mean("cheap") < ms.mean("costly")

    @pytest.mark.parametrize("schedule", ["grouped", "round-robin", "shuffled"])
    def test_schedules_produce_same_counts(self, schedule):
        runner = MeasurementRunner(repetitions=3, warmup=0, schedule=schedule, seed=1)
        ms = runner.collect({"x": lambda: None, "y": lambda: None})
        assert ms.n_measurements("x") == 3
        assert ms.n_measurements("y") == 3

    def test_execution_order_counts_per_schedule(self):
        labels = ["a", "b", "c"]
        grouped = MeasurementRunner(repetitions=2, schedule="grouped")._execution_order(labels)
        assert grouped == ["a", "a", "b", "b", "c", "c"]
        rr = MeasurementRunner(repetitions=2, schedule="round-robin")._execution_order(labels)
        assert rr == ["a", "b", "c", "a", "b", "c"]
        shuffled = MeasurementRunner(repetitions=2, schedule="shuffled", seed=0)._execution_order(labels)
        assert sorted(shuffled) == sorted(grouped)

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            MeasurementRunner(repetitions=0)
        with pytest.raises(ValueError):
            MeasurementRunner(warmup=-1)
        with pytest.raises(ValueError):
            MeasurementRunner(schedule="random")
        with pytest.raises(ValueError):
            MeasurementRunner().collect({})

    def test_warmup_not_recorded(self):
        counter = {"n": 0}

        def fn():
            counter["n"] += 1

        MeasurementRunner(repetitions=3, warmup=2).collect({"only": fn})
        assert counter["n"] == 5


class TestCollectBuffering:
    """collect buffers per-label values and extends once (not O(n^2) appends)."""

    def _replica_collect(self, runner, algorithms):
        """The old per-measurement record() loop, for output comparison."""
        from repro.measurement import MeasurementSet

        labels = list(algorithms)
        for label in labels:
            for _ in range(runner.warmup):
                algorithms[label]()
        measurements = MeasurementSet(metric=runner.metric, unit=runner.unit)
        for label in runner._execution_order(labels):
            duration = runner.timer.time(algorithms[label])
            measurements.record(label, max(duration, 1e-12))
        return measurements

    @pytest.mark.parametrize("schedule", ["grouped", "round-robin", "shuffled"])
    def test_same_resulting_set_as_per_measurement_appends(self, schedule):
        runner = MeasurementRunner(repetitions=4, warmup=0, schedule=schedule, seed=3)
        algorithms = {name: (lambda: sum(range(200))) for name in ("x", "y", "z")}
        collected = runner.collect(dict(algorithms))
        replica = self._replica_collect(runner, dict(algorithms))
        # Same labels in the same (first-occurrence) insertion order, same sizes.
        assert collected.labels == replica.labels
        for label in collected.labels:
            assert collected.n_measurements(label) == replica.n_measurements(label)

    def test_collect_scales_linearly_in_repetitions(self):
        # Smoke-check the O(n) path: many repetitions of a trivial callable
        # complete quickly (the old concatenate-per-record path was quadratic).
        runner = MeasurementRunner(repetitions=5000, warmup=0, schedule="grouped")
        start = time.perf_counter()
        ms = runner.collect({"only": lambda: None})
        assert ms.n_measurements("only") == 5000
        assert time.perf_counter() - start < 2.0
