"""Streaming search-and-selection over arbitrarily large placement spaces.

:class:`SpaceSearch` is a mergeable accumulator: feed it
:class:`~repro.devices.batch.BatchExecutionResult` chunks (in any order, under
any chunking) and it maintains, in memory bounded by ``O(top_k + frontier)``:

* top-K selections under any number of scalar objectives,
* an incremental Pareto frontier over configurable criteria,
* vectorized feasibility filtering (deadline / energy budget / offload bound),

without ever materialising per-placement profile objects.  :func:`search_space`
drives it over ``SimulatedExecutor.iter_execute_batches``, optionally sharding
the placement-index range across worker processes; shard accumulators merge
associatively, so the parallel sweep returns the exact same
:class:`SearchResult` as the serial one.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

import numpy as np

from ..offload.space import MAX_ENUMERABLE_INDEX, indices_to_matrix, space_size
from .constraints import Constraint, feasible_mask
from .frontier import StreamingFrontier
from .objectives import Objective, as_objectives
from .topk import StreamingTopK

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..devices.batch import BatchExecutionResult
    from ..devices.platform import Platform
    from ..devices.simulator import SimulatedExecutor
    from ..tasks.chain import TaskChain
    from ..tasks.graph import TaskGraph

__all__ = ["SpaceSearch", "SearchResult", "TopSelection", "FrontierSelection", "search_space"]

#: Default criteria of the streaming frontier -- the three axes of Section IV.
DEFAULT_FRONTIER = ("time", "energy", "cost")


@dataclass(frozen=True)
class TopSelection:
    """Top-K winners under one scalar objective, best first."""

    objective: str
    indices: np.ndarray
    values: np.ndarray
    labels: tuple[str, ...]

    def __len__(self) -> int:
        return self.indices.size

    @property
    def best(self) -> str:
        if not len(self):
            raise ValueError(f"no feasible placement under objective {self.objective!r}")
        return self.labels[0]


@dataclass(frozen=True)
class FrontierSelection:
    """The non-dominated placements over the frontier criteria, by index order."""

    criteria: tuple[str, ...]
    indices: np.ndarray
    values: np.ndarray
    labels: tuple[str, ...]

    def __len__(self) -> int:
        return self.indices.size

    def as_dict(self) -> dict[str, dict[str, float]]:
        """``label -> {criterion: value}``, the shape ``pareto_front`` returns."""
        return {
            label: {name: float(value) for name, value in zip(self.criteria, row)}
            for label, row in zip(self.labels, self.values)
        }


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one (possibly sharded) streaming sweep."""

    n_tasks: int
    aliases: tuple[str, ...]
    n_evaluated: int
    n_feasible: int
    top: Mapping[str, TopSelection]
    frontier: FrontierSelection | None

    def __post_init__(self) -> None:
        # Read-only snapshot: a frozen result must not be corruptible through
        # a mutable attribute (same contract as Decision.objectives).
        object.__setattr__(self, "top", MappingProxyType(dict(self.top)))

    def __reduce__(self):
        # MappingProxyType cannot be pickled; rebuild through __init__.
        return (
            self.__class__,
            (
                self.n_tasks,
                self.aliases,
                self.n_evaluated,
                self.n_feasible,
                dict(self.top),
                self.frontier,
            ),
        )

    @property
    def space_size(self) -> int:
        return space_size(self.n_tasks, len(self.aliases))

    def best(self, objective: str | None = None) -> str:
        """Label of the top-1 placement under one objective (the only one if unambiguous)."""
        if objective is None:
            if len(self.top) != 1:
                raise ValueError(
                    f"result ranks {sorted(self.top)} -- name the objective explicitly"
                )
            objective = next(iter(self.top))
        return self.top[objective].best

    def summary(self) -> str:
        lines = [
            f"searched {self.n_evaluated} of {self.space_size} placements "
            f"({self.n_feasible} feasible) over {len(self.aliases)} devices x "
            f"{self.n_tasks} tasks"
        ]
        for name, selection in self.top.items():
            if len(selection):
                lines.append(
                    f"  top-{len(selection)} by {name}: best {selection.labels[0]} "
                    f"({selection.values[0]:.6g})"
                )
            else:
                lines.append(f"  top-K by {name}: no feasible placement")
        if self.frontier is not None:
            lines.append(
                f"  Pareto frontier over {'/'.join(self.frontier.criteria)}: "
                f"{len(self.frontier)} placements"
            )
        return "\n".join(lines)


def _constraints_compatible(
    a: Sequence[Constraint], b: Sequence[Constraint]
) -> bool:
    """True when two constraint tuples describe the same filtering.

    Dataclass constraints compare by value (surviving the pickle round-trip
    shard accumulators go through); custom Constraint objects without value
    equality fall back to a type check, since ``!=`` would compare identities
    and spuriously reject every cross-process merge.
    """
    if len(a) != len(b):
        return False
    for x, y in zip(a, b):
        if type(x) is not type(y):
            return False
        if type(x).__eq__ is not object.__eq__ and x != y:
            return False
    return True


class SpaceSearch:
    """Mergeable streaming selector over batch-execution chunks.

    Feed chunks with :meth:`update`; combine independently filled accumulators
    (e.g. per-shard) with :meth:`merge`; extract the final selections with
    :meth:`result`.  The outcome is a pure function of the multiset of
    placements fed, so any chunking or shard-merge tree yields the identical
    result.
    """

    def __init__(
        self,
        objectives: Sequence[str | Objective] = ("time",),
        top_k: int = 10,
        frontier: Sequence[str | Objective] | None = DEFAULT_FRONTIER,
        constraints: Sequence[Constraint] = (),
    ):
        self._objectives = as_objectives(objectives)
        if top_k < 0:
            raise ValueError("top_k must be non-negative")
        self.top_k = int(top_k)
        self._criteria = as_objectives(frontier) if frontier is not None else ()
        if not self.top_k and not self._criteria:
            raise ValueError("nothing to select: top_k is 0 and the frontier is disabled")
        self._constraints = tuple(constraints)
        self._top = (
            {objective.name: StreamingTopK(self.top_k) for objective in self._objectives}
            if self.top_k
            else {}
        )
        self._frontier = StreamingFrontier(len(self._criteria)) if self._criteria else None
        self.n_evaluated = 0
        self.n_feasible = 0
        self._cursor = 0
        self._n_tasks: int | None = None
        self._aliases: tuple[str, ...] | None = None

    # ------------------------------------------------------------------
    def _bind_space(self, n_tasks: int, aliases: tuple[str, ...]) -> None:
        if self._n_tasks is None:
            self._n_tasks = n_tasks
            self._aliases = aliases
        elif (self._n_tasks, self._aliases) != (n_tasks, aliases):
            raise ValueError(
                f"chunk belongs to a {len(aliases)}-device x {n_tasks}-task space, "
                f"but this search accumulated a {len(self._aliases)}-device x "
                f"{self._n_tasks}-task one"
            )

    def update(self, batch: "BatchExecutionResult", start_index: int | None = None) -> None:
        """Fold one executed chunk into the running selections.

        ``start_index`` is the global placement index of the chunk's first row
        (its offset in the lexicographic enumeration).  When omitted, chunks
        are assumed to arrive contiguously from index 0 -- the
        ``iter_execute_batches`` streaming pattern.
        """
        self._bind_space(batch.tables.n_tasks, batch.aliases)
        n = len(batch)
        start = self._cursor if start_index is None else int(start_index)
        self._cursor = start + n
        indices = np.arange(n, dtype=np.int64) + np.int64(start)
        mask = feasible_mask(batch, self._constraints)
        self.n_evaluated += n
        feasible = indices[mask]
        self.n_feasible += int(feasible.size)
        if not feasible.size:
            return
        if self._top:
            for objective in self._objectives:
                self._top[objective.name].update(objective(batch)[mask], feasible)
        if self._frontier is not None:
            columns = np.stack([criterion(batch)[mask] for criterion in self._criteria], axis=1)
            self._frontier.update(columns, feasible)

    def merge(self, other: "SpaceSearch") -> None:
        """Fold another accumulator (e.g. a shard's) into this one."""
        if [o.name for o in self._objectives] != [o.name for o in other._objectives]:
            raise ValueError("cannot merge searches over different objectives")
        if self.top_k != other.top_k:
            raise ValueError("cannot merge searches with different top_k")
        if [c.name for c in self._criteria] != [c.name for c in other._criteria]:
            raise ValueError("cannot merge searches over different frontier criteria")
        if not _constraints_compatible(self._constraints, other._constraints):
            raise ValueError("cannot merge searches under different constraints")
        if other._n_tasks is not None:
            self._bind_space(other._n_tasks, other._aliases)
        self.n_evaluated += other.n_evaluated
        self.n_feasible += other.n_feasible
        self._cursor = max(self._cursor, other._cursor)
        for name, accumulator in self._top.items():
            accumulator.merge(other._top[name])
        if self._frontier is not None:
            self._frontier.merge(other._frontier)

    # ------------------------------------------------------------------
    def _labels(self, indices: np.ndarray) -> tuple[str, ...]:
        from ..devices.batch import placement_labels

        matrix = indices_to_matrix(indices, self._n_tasks, len(self._aliases))
        return tuple(placement_labels(matrix, self._aliases))

    def result(self) -> SearchResult:
        """Materialise the final selections (labels decoded only for winners)."""
        if self._n_tasks is None:
            raise ValueError("no chunk has been fed to this search yet")
        top: dict[str, TopSelection] = {}
        if self._top:
            for objective in self._objectives:
                accumulator = self._top[objective.name]
                top[objective.name] = TopSelection(
                    objective=objective.name,
                    indices=accumulator.indices.copy(),
                    values=accumulator.values.copy(),
                    labels=self._labels(accumulator.indices),
                )
        frontier = None
        if self._frontier is not None:
            indices = self._frontier.indices
            frontier = FrontierSelection(
                criteria=tuple(criterion.name for criterion in self._criteria),
                indices=indices,
                values=self._frontier.values.copy(),
                labels=self._labels(indices),
            )
        return SearchResult(
            n_tasks=self._n_tasks,
            aliases=self._aliases,
            n_evaluated=self.n_evaluated,
            n_feasible=self.n_feasible,
            top=top,
            frontier=frontier,
        )


# ----------------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------------

def _shard_ranges(start: int, stop: int, n_shards: int) -> list[tuple[int, int]]:
    """Split [start, stop) into at most ``n_shards`` contiguous non-empty ranges."""
    total = stop - start
    n_shards = max(1, min(n_shards, total))
    bounds = [start + (total * i) // n_shards for i in range(n_shards + 1)]
    return [(a, b) for a, b in zip(bounds[:-1], bounds[1:]) if b > a]


def _run_shard(
    platform: "Platform",
    chain: "TaskChain | TaskGraph",
    devices: Sequence[str] | None,
    objectives: Sequence[Objective],
    top_k: int,
    frontier: Sequence[Objective] | None,
    constraints: Sequence[Constraint],
    shard_start: int,
    shard_stop: int,
    batch_size: int,
    fault_spec: tuple | None = None,
) -> SpaceSearch:
    """Sweep one contiguous placement range (runs inside a worker process).

    ``fault_spec`` is the pickled ``(faults, retry, timeout)`` triple of a
    fault-aware sweep; the worker rebuilds the fault tables locally (cheap
    relative to a shard) and streams expected-cost batches instead.
    """
    from ..devices.batch import build_cost_tables, execute_placements
    from ..offload.space import iter_placement_batches

    if fault_spec is not None:
        from ..faults.engine import execute_fault_placements as run
        from ..faults.tables import build_fault_tables

        faults, retry, timeout = fault_spec
        tables = build_fault_tables(
            chain, platform, devices, retry=retry, faults=faults, timeout=timeout
        )
    else:
        run = execute_placements
        tables = build_cost_tables(chain, platform, devices)
    search = SpaceSearch(
        objectives=objectives, top_k=top_k, frontier=frontier, constraints=constraints
    )
    cursor = shard_start
    for matrix in iter_placement_batches(
        tables.n_tasks, tables.n_devices, batch_size, start=shard_start, stop=shard_stop
    ):
        batch = run(tables, matrix)
        search.update(batch, start_index=cursor)
        cursor += len(batch)
    return search


def _planner_search(
    executor: "SimulatedExecutor",
    chain: "TaskChain | TaskGraph",
    objectives: Sequence[Objective],
    devices: Sequence[str] | None,
    tables,
) -> SearchResult:
    """Serve a top-1 full-space request with one exact DP per objective.

    The :class:`SearchResult` shape is preserved with two documented semantic
    shifts: ``n_evaluated``/``n_feasible`` count the DP's *lattice states*
    (the whole point -- the ``m**k`` placements were never enumerated), and an
    index is ``-1`` when the space is too large for the lexicographic
    placement index to fit an int64 (the label and value are still exact).
    """
    from .planner import plan_workload

    top: dict[str, TopSelection] = {}
    n_states = 0
    for objective in objectives:
        plan = plan_workload(executor, chain, objective, devices=devices, method="dp")
        n_states += plan.n_states
        index = plan.placement_index
        top[objective.name] = TopSelection(
            objective=objective.name,
            indices=np.array(
                [index if index <= MAX_ENUMERABLE_INDEX else -1], dtype=np.int64
            ),
            values=np.array([plan.value]),
            labels=(plan.label,),
        )
    return SearchResult(
        n_tasks=tables.n_tasks,
        aliases=tables.aliases,
        n_evaluated=n_states,
        n_feasible=n_states,
        top=top,
        frontier=None,
    )


def search_space(
    executor: "SimulatedExecutor",
    chain: "TaskChain | TaskGraph",
    *,
    objectives: Sequence[str | Objective] = ("time",),
    top_k: int = 10,
    frontier: Sequence[str | Objective] | None = DEFAULT_FRONTIER,
    constraints: Sequence[Constraint] = (),
    devices: Sequence[str] | None = None,
    batch_size: int = 65536,
    start: int = 0,
    stop: int | None = None,
    n_workers: int | None = None,
    method: str = "stream",
    faults=None,
    retry=None,
    timeout=None,
) -> SearchResult:
    """Sweep a placement-space range and select winners in bounded memory.

    Streams ``executor.iter_execute_batches`` chunks through a
    :class:`SpaceSearch`: per-placement memory never exceeds one
    ``batch_size`` chunk plus the O(top_k + frontier) selection state, so the
    full ``m**k`` space of the paper's combinatorial-explosion regime can be
    searched without materialising profiles.  ``chain`` may be a
    :class:`~repro.tasks.chain.TaskChain` or a
    :class:`~repro.tasks.graph.TaskGraph` -- graph workloads stream through
    the DAG engine with nothing else changing.  With ``n_workers > 1`` the index
    range is sharded into contiguous sub-ranges swept by worker processes
    whose accumulators merge associatively -- the result is identical to the
    serial sweep, independent of worker count and chunking.

    ``method`` selects the engine: ``"stream"`` (default) enumerates;
    ``"planner"`` answers through :mod:`repro.search.planner`'s exact DP --
    requiring a top-1, full-range, unconstrained, frontier-free request over
    DP-plannable objectives and workloads, and raising with the violated
    requirement otherwise; ``"auto"`` plans when those conditions hold and
    streams when they do not.

    With ``retry=`` given the sweep ranks placements by *expected* cost under
    the fault profile (``faults`` defaulting to the platform's attached one);
    fault-aware batches carry success probabilities, so
    :class:`~repro.search.constraints.SuccessProbabilityConstraint` filters
    work.  Expected-cost objectives are outside the DP planner boundary:
    ``method="planner"`` raises, ``"auto"`` streams.
    """
    if method not in ("stream", "planner", "auto"):
        raise ValueError(f"unknown method {method!r}; choose 'stream', 'planner' or 'auto'")
    if retry is not None and method == "planner":
        raise ValueError(
            "method='planner' cannot serve fault-aware search: expected cost "
            "under faults couples tasks through survival factors outside the "
            "DP planner boundary; use method='stream' (or 'auto') to enumerate"
        )
    tables = executor.cost_tables(chain, devices, faults=faults, retry=retry, timeout=timeout)
    total = space_size(tables.n_tasks, tables.n_devices)
    if stop is None:
        stop = total
    if not 0 <= start <= stop <= total:
        raise ValueError(f"invalid slice [{start}, {stop}) of a space of {total} placements")
    if start == stop:
        raise ValueError("cannot search an empty placement range")

    coerced_objectives = as_objectives(objectives)
    coerced_frontier = as_objectives(frontier) if frontier is not None else None

    if method in ("planner", "auto") and retry is None:
        from .planner import dispatch_reason

        reason = dispatch_reason(
            tables,
            coerced_objectives,
            top_k=top_k,
            frontier=coerced_frontier,
            constraints=tuple(constraints),
            start=start,
            stop=stop,
            total=total,
        )
        if reason is None:
            return _planner_search(executor, chain, coerced_objectives, devices, tables)
        if method == "planner":
            raise ValueError(
                f"method='planner' cannot serve this request: {reason}; "
                "use method='stream' (or 'auto') to enumerate"
            )

    if n_workers is not None and n_workers > 1:
        from concurrent.futures import ProcessPoolExecutor

        ranges = _shard_ranges(start, stop, n_workers)
        if len(ranges) > 1:
            with ProcessPoolExecutor(max_workers=len(ranges)) as pool:
                shards: Iterable[SpaceSearch] = pool.map(
                    _run_shard,
                    *zip(
                        *[
                            (
                                executor.platform,
                                chain,
                                devices,
                                coerced_objectives,
                                top_k,
                                coerced_frontier,
                                tuple(constraints),
                                shard_start,
                                shard_stop,
                                batch_size,
                                (faults, retry, timeout) if retry is not None else None,
                            )
                            for shard_start, shard_stop in ranges
                        ]
                    ),
                )
                merged: SpaceSearch | None = None
                for shard in shards:
                    if merged is None:
                        merged = shard
                    else:
                        merged.merge(shard)
            return merged.result()

    search = SpaceSearch(
        objectives=coerced_objectives,
        top_k=top_k,
        frontier=coerced_frontier,
        constraints=constraints,
    )
    cursor = start
    for batch in executor.iter_execute_batches(
        chain, devices, batch_size, start=start, stop=stop,
        faults=faults, retry=retry, timeout=timeout,
    ):
        search.update(batch, start_index=cursor)
        cursor += len(batch)
    return search.result()
