"""Robust objectives and the streaming grid-search driver.

A placement that wins on today's platform may be the worst choice after the
Wi-Fi link falls back to LTE.  This module selects placements that stay good
across a whole :class:`~repro.scenarios.ScenarioGrid`:

* **robust objectives** collapse the ``(n_conditions, n_placements)`` metric
  grid to one (minimised) scalar per placement -- the worst case over
  scenarios (:class:`WorstCaseObjective`), the scenario-weighted expectation
  (:class:`ExpectedValueObjective`), the weighted tail quantile
  (:class:`QuantileObjective`, e.g. a fleet's p95 latency), the weighted
  fraction of scenarios missing a budget (:class:`SLOObjective`), or the
  maximum regret against each scenario's own best placement
  (:class:`RegretObjective`);
* :func:`search_grid` streams the placement space chunk by chunk through
  :func:`~repro.devices.grid.execute_placements_grid`, folds each chunk into
  bounded :class:`~repro.search.topk.StreamingTopK` state per robust
  objective, and tracks each scenario's individual winner so condition drift
  is visible in the result.

Everything is free of lambdas and mutable shared state, like the rest of the
search layer: objective specs are value-type dataclasses that survive
pickling.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from types import MappingProxyType
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

import numpy as np

from ..offload.space import indices_to_matrix, iter_placement_batches, space_size
from .constraints import Constraint, feasible_mask
from .driver import TopSelection, _shard_ranges
from .objectives import Objective, as_objective
from .topk import StreamingTopK

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..devices.grid import GridCostTables, GridExecutionResult
    from ..devices.simulator import SimulatedExecutor
    from ..scenarios import Scenario, ScenarioGrid
    from ..tasks.chain import TaskChain
    from ..tasks.graph import TaskGraph

__all__ = [
    "RobustObjective",
    "WorstCaseObjective",
    "ExpectedValueObjective",
    "QuantileObjective",
    "SLOObjective",
    "RegretObjective",
    "ScenarioBest",
    "GridSearchResult",
    "as_robust_objectives",
    "search_grid",
]


def _validate_weights(weights: Sequence[float]) -> tuple[float, ...]:
    """Coerce and validate per-scenario weights shared by weighted objectives.

    NaN compares ``False`` against every bound, so a bare ``w < 0`` check
    would wave non-finite weights through into ``weights @ values`` and turn
    every robust value into NaN with no error -- hence the explicit
    finiteness guard.
    """
    coerced = tuple(float(w) for w in weights)
    for i, w in enumerate(coerced):
        if not math.isfinite(w) or w < 0:
            raise ValueError(
                f"scenario weights must be finite and non-negative, got weights[{i}]={w!r}"
            )
    if sum(coerced) <= 0:
        raise ValueError("at least one scenario weight must be positive")
    return coerced


def _base_values(base: "str | Objective", grid: "GridExecutionResult") -> np.ndarray:
    """``(n_conditions, n_placements)`` values of the base objective.

    Metric names read the grid columns directly; general objectives are
    evaluated on each scenario's batch view and stacked.
    """
    if isinstance(base, str):
        return grid.metric_values(base)
    return np.stack([base(batch) for batch in grid.batches()], axis=0)


def _base_name(base: "str | Objective") -> str:
    return base if isinstance(base, str) else base.name


@dataclass(frozen=True)
class RobustObjective:
    """Base class: a per-scenario objective plus a reduction over scenarios.

    ``base`` is a metric name (``"time"``/``"energy"``/``"cost"``) or any
    search :class:`~repro.search.objectives.Objective`; subclasses implement
    :meth:`reduce`, mapping the ``(n_conditions, n_placements)`` base values
    to one scalar per placement (lower is better).
    """

    base: "str | Objective" = "time"
    label: str = ""

    #: Whether :meth:`reduce` needs the per-scenario minima of the base
    #: objective over the whole (feasible) space -- triggers the extra
    #: baseline pass in :func:`search_grid`.
    requires_baseline = False

    def __post_init__(self) -> None:
        if not isinstance(self.base, str):
            as_objective(self.base)  # validate early: needs .name and __call__

    @property
    def name(self) -> str:
        return self.label or f"{self._prefix}-{_base_name(self.base)}"

    _prefix = "robust"

    def values(self, grid: "GridExecutionResult") -> np.ndarray:
        """Per-scenario base values of one grid chunk, shape ``(s, n)``."""
        return _base_values(self.base, grid)

    def bind_weights(self, weights: Sequence[float]) -> "RobustObjective":
        """Bind the searched grid's scenario weights where the objective wants
        them and was constructed without explicit weights; the driver calls
        this once per sweep.  Unweighted objectives return themselves."""
        return self

    def reduce(
        self, values: np.ndarray, baselines: np.ndarray | None = None
    ) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, grid: "GridExecutionResult") -> np.ndarray:
        """Robust scalar per placement of a *complete* grid (no streaming).

        For :class:`RegretObjective` the per-scenario baselines are taken
        from the grid itself, i.e. the grid must hold the entire candidate
        space; :func:`search_grid` handles the streaming case.
        """
        values = self.values(grid)
        baselines = values.min(axis=1) if self.requires_baseline else None
        return self.reduce(values, baselines)


@dataclass(frozen=True)
class WorstCaseObjective(RobustObjective):
    """Minimise the worst value the placement attains over the scenarios."""

    _prefix = "worst"

    def reduce(self, values: np.ndarray, baselines: np.ndarray | None = None) -> np.ndarray:
        return values.max(axis=0)


@dataclass(frozen=True)
class ExpectedValueObjective(RobustObjective):
    """Minimise the scenario-weighted expectation of the base objective.

    ``weights`` (one non-negative weight per scenario, not necessarily
    normalised) defaults to the scenario weights of the grid being searched,
    or uniform when constructed directly over a bare values matrix.
    """

    weights: tuple[float, ...] | None = None

    _prefix = "expected"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.weights is not None:
            object.__setattr__(self, "weights", _validate_weights(self.weights))

    def with_weights(self, weights: Sequence[float]) -> "ExpectedValueObjective":
        """Copy with explicit weights (the driver binds grid weights here)."""
        return ExpectedValueObjective(base=self.base, label=self.label, weights=tuple(weights))

    def bind_weights(self, weights: Sequence[float]) -> "ExpectedValueObjective":
        return self if self.weights is not None else self.with_weights(weights)

    def reduce(self, values: np.ndarray, baselines: np.ndarray | None = None) -> np.ndarray:
        if self.weights is None:
            return values.mean(axis=0)
        if len(self.weights) != values.shape[0]:
            raise ValueError(
                f"expected {values.shape[0]} scenario weights, got {len(self.weights)}"
            )
        weights = np.array(self.weights)
        return weights @ values / weights.sum()


def _weighted_quantile_columns(
    values: np.ndarray, weights: np.ndarray, q: float
) -> np.ndarray:
    """Weighted ``q``-quantile of each column of a ``(s, n)`` value matrix.

    Per column: sort the scenario values (stable, so ties keep grid order),
    accumulate the correspondingly permuted weights, and return the first
    sorted value whose cumulative weight reaches ``q`` times the total.  This
    is the left-continuous inverse of the weighted empirical CDF: with equal
    weights and ``q = 1.0`` it is exactly the column maximum, and scenarios
    carrying zero weight can never be picked ahead of the quantile point.
    The reduction touches each column independently, so it is invariant to
    how the placement axis is chunked.
    """
    order = np.argsort(values, axis=0, kind="stable")
    sorted_values = np.take_along_axis(values, order, axis=0)
    cumulative = np.cumsum(weights[order], axis=0)
    target = q * cumulative[-1]
    picks = (cumulative >= target).argmax(axis=0)
    return sorted_values[picks, np.arange(values.shape[1])]


@dataclass(frozen=True)
class QuantileObjective(RobustObjective):
    """Minimise a weighted tail quantile of the base objective over scenarios.

    The fleet-scale risk measure: with one scenario per sampled user,
    ``QuantileObjective(q=0.95)`` ranks placements by the latency the worst
    5% (by weight) of the fleet experiences.  ``weights`` defaults to the
    scenario weights of the grid being searched (uniform when the objective
    is applied directly to a bare grid).  The quantile is the left-continuous
    inverse of the weighted empirical CDF; with equal weights ``q=1.0``
    coincides with :class:`WorstCaseObjective` exactly.

    The reduction is a pure per-placement function of the complete
    ``(n_scenarios, n_placements)`` value matrix, and :func:`search_grid`
    reassembles scenario-sharded chunks along the scenario axis *before* any
    reduction runs -- sharded weighted quantiles are therefore bitwise
    identical to the serial sweep.
    """

    q: float = 0.95
    weights: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.q <= 1.0:
            raise ValueError(f"quantile q must lie in (0, 1], got {self.q!r}")
        if self.weights is not None:
            object.__setattr__(self, "weights", _validate_weights(self.weights))

    @property
    def name(self) -> str:
        return self.label or f"p{self.q * 100:g}-{_base_name(self.base)}"

    def with_weights(self, weights: Sequence[float]) -> "QuantileObjective":
        return QuantileObjective(
            base=self.base, label=self.label, q=self.q, weights=tuple(weights)
        )

    def bind_weights(self, weights: Sequence[float]) -> "QuantileObjective":
        return self if self.weights is not None else self.with_weights(weights)

    def reduce(self, values: np.ndarray, baselines: np.ndarray | None = None) -> np.ndarray:
        if self.weights is None:
            weights = np.ones(values.shape[0])
        elif len(self.weights) != values.shape[0]:
            raise ValueError(
                f"expected {values.shape[0]} scenario weights, got {len(self.weights)}"
            )
        else:
            weights = np.array(self.weights)
        return _weighted_quantile_columns(values, weights, self.q)


@dataclass(frozen=True)
class SLOObjective(RobustObjective):
    """Minimise the weighted fraction of scenarios that miss a budget.

    The service-level view of a fleet: with one scenario per sampled user and
    ``base="time"``, ``SLOObjective(budget=0.25)`` ranks placements by the
    weighted share of users whose end-to-end latency exceeds 250 ms (strictly
    ``value > budget`` counts as a miss, so meeting the budget exactly is a
    hit).  Values are miss fractions in ``[0, 1]``; minimising them maximises
    SLO attainment.  ``weights`` defaults to the searched grid's scenario
    weights, like :class:`ExpectedValueObjective`.

    Like the quantile, the reduction is per-placement over the full scenario
    axis, so scenario-sharded sweeps are bitwise identical to serial ones.
    """

    budget: float = 0.0
    weights: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if not math.isfinite(self.budget):
            raise ValueError(f"SLO budget must be finite, got {self.budget!r}")
        if self.weights is not None:
            object.__setattr__(self, "weights", _validate_weights(self.weights))

    @property
    def name(self) -> str:
        return self.label or f"slo-{_base_name(self.base)}@{self.budget:g}"

    def with_weights(self, weights: Sequence[float]) -> "SLOObjective":
        return SLOObjective(
            base=self.base, label=self.label, budget=self.budget, weights=tuple(weights)
        )

    def bind_weights(self, weights: Sequence[float]) -> "SLOObjective":
        return self if self.weights is not None else self.with_weights(weights)

    def reduce(self, values: np.ndarray, baselines: np.ndarray | None = None) -> np.ndarray:
        misses = (values > self.budget).astype(float)
        if self.weights is None:
            return misses.mean(axis=0)
        if len(self.weights) != values.shape[0]:
            raise ValueError(
                f"expected {values.shape[0]} scenario weights, got {len(self.weights)}"
            )
        weights = np.array(self.weights)
        return weights @ misses / weights.sum()


@dataclass(frozen=True)
class RegretObjective(RobustObjective):
    """Minimise the maximum regret against each scenario's own best placement.

    The regret of placement ``p`` in scenario ``s`` is ``value[s, p] -
    min_q value[s, q]`` (how much worse than the best the scenario admits);
    the objective is the maximum over scenarios.  The minima are taken over
    the feasible placements actually searched, so under :func:`search_grid`
    the space is streamed twice: one pass to find the per-scenario baselines,
    one to select.
    """

    requires_baseline = True
    _prefix = "regret"

    def reduce(self, values: np.ndarray, baselines: np.ndarray | None = None) -> np.ndarray:
        if baselines is None:
            raise ValueError(
                f"{self.name} needs per-scenario baselines; search the grid via "
                "search_grid, or call the objective on a grid holding the full space"
            )
        baselines = np.asarray(baselines, dtype=float)
        if baselines.shape != (values.shape[0],):
            raise ValueError(
                f"expected {values.shape[0]} baselines, got shape {baselines.shape}"
            )
        return (values - baselines[:, None]).max(axis=0)


def as_robust_objectives(
    specs: "Sequence[str | RobustObjective]",
) -> tuple[RobustObjective, ...]:
    """Coerce specs (metric names become worst-case) with unique names."""
    objectives = tuple(
        WorstCaseObjective(base=spec) if isinstance(spec, str) else spec for spec in specs
    )
    for objective in objectives:
        if not isinstance(objective, RobustObjective):
            raise TypeError(
                f"cannot interpret {objective!r} as a robust objective; pass a metric "
                "name (selected by worst case) or a RobustObjective instance"
            )
    names = [objective.name for objective in objectives]
    if len(set(names)) != len(names):
        raise ValueError(f"robust objective names must be unique, got {names}")
    return objectives


# ----------------------------------------------------------------------------
# Result types
# ----------------------------------------------------------------------------

@dataclass(frozen=True)
class ScenarioBest:
    """Each scenario's individual best feasible placement under one base objective."""

    objective: str
    scenario_names: tuple[str, ...]
    indices: np.ndarray
    values: np.ndarray
    labels: tuple[str, ...]

    def __len__(self) -> int:
        return len(self.scenario_names)

    def drift(self) -> dict[str, str]:
        """``scenario -> winning label``, the condition-drift view."""
        return dict(zip(self.scenario_names, self.labels))


@dataclass(frozen=True)
class GridSearchResult:
    """Outcome of one streaming robust sweep over (scenario, placement) pairs."""

    n_tasks: int
    aliases: tuple[str, ...]
    scenario_names: tuple[str, ...]
    n_evaluated: int
    n_feasible: int
    top: Mapping[str, TopSelection]
    scenario_best: Mapping[str, ScenarioBest]
    #: Per-scenario minima used as regret baselines, keyed by base-objective name.
    baselines: Mapping[str, np.ndarray]

    def __post_init__(self) -> None:
        object.__setattr__(self, "top", MappingProxyType(dict(self.top)))
        object.__setattr__(self, "scenario_best", MappingProxyType(dict(self.scenario_best)))
        object.__setattr__(self, "baselines", MappingProxyType(dict(self.baselines)))

    def __reduce__(self):
        # MappingProxyType cannot be pickled; rebuild through __init__.
        return (
            self.__class__,
            (
                self.n_tasks,
                self.aliases,
                self.scenario_names,
                self.n_evaluated,
                self.n_feasible,
                dict(self.top),
                dict(self.scenario_best),
                dict(self.baselines),
            ),
        )

    @property
    def space_size(self) -> int:
        return space_size(self.n_tasks, len(self.aliases))

    @property
    def n_scenarios(self) -> int:
        return len(self.scenario_names)

    def best(self, objective: str | None = None) -> str:
        """Label of the robust top-1 under one objective (the only one if unambiguous)."""
        if objective is None:
            if len(self.top) != 1:
                raise ValueError(
                    f"result ranks {sorted(self.top)} -- name the objective explicitly"
                )
            objective = next(iter(self.top))
        return self.top[objective].best

    def summary(self) -> str:
        lines = [
            f"searched {self.n_evaluated} of {self.space_size} placements under "
            f"{self.n_scenarios} scenarios ({self.n_feasible} robust-feasible) over "
            f"{len(self.aliases)} devices x {self.n_tasks} tasks"
        ]
        for name, selection in self.top.items():
            if len(selection):
                lines.append(
                    f"  top-{len(selection)} by {name}: best {selection.labels[0]} "
                    f"({selection.values[0]:.6g})"
                )
            else:
                lines.append(f"  top-K by {name}: no feasible placement")
        for name, best in self.scenario_best.items():
            shifts = len(dict.fromkeys(best.labels))
            lines.append(
                f"  per-scenario winners by {name}: "
                f"{' -> '.join(dict.fromkeys(best.labels))} ({shifts} distinct)"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------------
# Streaming driver
# ----------------------------------------------------------------------------

def _scenario_entries(scenarios) -> tuple["ScenarioGrid", tuple[str, ...], np.ndarray]:
    """Coerce a ScenarioGrid / scenario list to (grid, names, weights).

    No platform derivation happens here: grid tables are built in array
    space from the base platform plus the scenario definitions, and
    per-scenario platforms only materialize if something asks for them.
    """
    from ..scenarios import Scenario, ScenarioGrid

    if not isinstance(scenarios, ScenarioGrid):
        entries = tuple(scenarios)
        if not entries:
            raise ValueError("at least one scenario is required")
        for entry in entries:
            if not isinstance(entry, Scenario):
                raise TypeError(
                    f"expected Scenario instances or a ScenarioGrid, got {entry!r}"
                )
        scenarios = ScenarioGrid(entries)
    names = tuple(scenario.name for scenario in scenarios)
    weights = np.array([scenario.weight for scenario in scenarios], dtype=float)
    return scenarios, names, weights


def _iter_grid_chunks(
    tables: "GridCostTables", batch_size: int, start: int, stop: int
) -> "Iterable[tuple[int, GridExecutionResult]]":
    from ..devices.grid import execute_placements_grid
    from ..faults.engine import execute_fault_placements_grid
    from ..faults.tables import FaultGridCostTables

    run = (
        execute_fault_placements_grid
        if isinstance(tables, FaultGridCostTables)
        else execute_placements_grid
    )
    cursor = start
    for matrix in iter_placement_batches(
        tables.n_tasks, tables.n_devices, batch_size, start=start, stop=stop
    ):
        yield cursor, run(tables, matrix)
        cursor += matrix.shape[0]


def _feasible(
    grid: "GridExecutionResult", constraints: Sequence[Constraint]
) -> np.ndarray:
    """Robust feasibility: a placement must satisfy the constraints in *every* scenario."""
    if not constraints:
        return np.ones(len(grid), dtype=bool)
    mask = np.ones(len(grid), dtype=bool)
    for batch in grid.batches():
        mask &= feasible_mask(batch, constraints)
    return mask


@dataclass
class _BaselinePass:
    """Mergeable outcome of one baseline-shard sweep (per-scenario minima)."""

    minima: dict[str, np.ndarray]
    any_feasible: bool

    def merge(self, other: "_BaselinePass") -> None:
        for name, values in self.minima.items():
            np.minimum(values, other.minima[name], out=values)
        self.any_feasible = self.any_feasible or other.any_feasible


@dataclass
class _SelectionPass:
    """Mergeable outcome of one selection-shard sweep.

    Merging is associative and order-independent: top-K accumulators merge
    through :meth:`StreamingTopK.merge`, counters add, and each scenario's
    winner merges under the serial sweep's exact tie rule -- strictly smaller
    value wins, equal values keep the smaller placement index (the serial loop
    streams ascending indices and replaces only on strict ``<``).
    """

    selectors: dict[str, StreamingTopK]
    scenario_best_idx: dict[str, np.ndarray]
    scenario_best_val: dict[str, np.ndarray]
    n_evaluated: int
    n_feasible: int

    def merge(self, other: "_SelectionPass") -> None:
        for name, selector in self.selectors.items():
            selector.merge(other.selectors[name])
        for name, current_val in self.scenario_best_val.items():
            current_idx = self.scenario_best_idx[name]
            other_val = other.scenario_best_val[name]
            other_idx = other.scenario_best_idx[name]
            better = (other_val < current_val) | (
                (other_val == current_val)
                & (other_idx >= 0)
                & ((current_idx < 0) | (other_idx < current_idx))
            )
            current_val[better] = other_val[better]
            current_idx[better] = other_idx[better]
        self.n_evaluated += other.n_evaluated
        self.n_feasible += other.n_feasible


def _grid_chunk_stream(
    tables: "GridCostTables",
    bases: Mapping[str, "str | Objective"],
    constraints: Sequence[Constraint],
    batch_size: int,
    start: int,
    stop: int,
) -> "Iterable[tuple[int, int, np.ndarray, dict[str, np.ndarray] | None]]":
    """Stream ``(chunk_start, n, feasible_mask, base_values)`` tuples.

    ``base_values`` maps base-objective names to their raw ``(s, n)`` value
    matrices -- **unmasked**, so the chunks of a scenario-sharded sweep can be
    concatenated along the scenario axis before the merged mask is applied
    (reductions like the weighted expectation are chunk-width dependent in
    floating point, so every path must reduce the exact same matrix).  It is
    ``None`` when no placement of the chunk is feasible.
    """
    for chunk_start, grid in _iter_grid_chunks(tables, batch_size, start, stop):
        mask = _feasible(grid, constraints)
        values = (
            {name: _base_values(base, grid) for name, base in bases.items()}
            if mask.any()
            else None
        )
        yield chunk_start, len(grid), mask, values


def _fold_baselines(
    n_scenarios: int,
    chunks: "Iterable[tuple[int, int, np.ndarray, dict[str, np.ndarray] | None]]",
    baseline_names: Sequence[str],
) -> _BaselinePass:
    """Fold a chunk stream into per-scenario minima (the regret baselines)."""
    minima = {name: np.full(n_scenarios, np.inf) for name in baseline_names}
    any_feasible = False
    for _, _, mask, chunk_values in chunks:
        if chunk_values is None:
            continue
        any_feasible = True
        for name in baseline_names:
            values = chunk_values[name][:, mask]
            np.minimum(minima[name], values.min(axis=1), out=minima[name])
    return _BaselinePass(minima=minima, any_feasible=any_feasible)


def _fold_selection(
    n_scenarios: int,
    chunks: "Iterable[tuple[int, int, np.ndarray, dict[str, np.ndarray] | None]]",
    coerced: Sequence[RobustObjective],
    bases: Mapping[str, "str | Objective"],
    top_k: int,
    baselines: Mapping[str, np.ndarray],
) -> _SelectionPass:
    """Fold a chunk stream into top-K selections and per-scenario winners."""
    base_names = list(bases)
    selectors = {objective.name: StreamingTopK(top_k) for objective in coerced}
    scenario_best_idx = {
        name: np.full(n_scenarios, -1, dtype=np.int64) for name in base_names
    }
    scenario_best_val = {name: np.full(n_scenarios, np.inf) for name in base_names}
    n_evaluated = 0
    n_feasible = 0
    for chunk_start, n, mask, raw_values in chunks:
        n_evaluated += n
        feasible_count = int(np.count_nonzero(mask))
        n_feasible += feasible_count
        if not feasible_count or raw_values is None:
            continue
        indices = np.arange(n, dtype=np.int64)[mask] + np.int64(chunk_start)
        chunk_values = {name: raw_values[name][:, mask] for name in base_names}
        for objective in coerced:
            values = chunk_values[_base_name(objective.base)]
            reduced = objective.reduce(
                values, baselines.get(_base_name(objective.base))
            ) if objective.requires_baseline else objective.reduce(values)
            selectors[objective.name].update(reduced, indices)
        for name in base_names:
            values = chunk_values[name]
            rows = np.arange(values.shape[0])
            arg = values.argmin(axis=1)
            candidate = values[rows, arg]
            better = candidate < scenario_best_val[name]
            scenario_best_val[name][better] = candidate[better]
            scenario_best_idx[name][better] = indices[arg[better]]
    return _SelectionPass(
        selectors=selectors,
        scenario_best_idx=scenario_best_idx,
        scenario_best_val=scenario_best_val,
        n_evaluated=n_evaluated,
        n_feasible=n_feasible,
    )


def _sweep_baselines(
    tables: "GridCostTables",
    bases: Mapping[str, "str | Objective"],
    baseline_names: Sequence[str],
    constraints: Sequence[Constraint],
    batch_size: int,
    start: int,
    stop: int,
) -> _BaselinePass:
    chunks = _grid_chunk_stream(tables, bases, constraints, batch_size, start, stop)
    return _fold_baselines(tables.n_scenarios, chunks, baseline_names)


def _sweep_selection(
    tables: "GridCostTables",
    coerced: Sequence[RobustObjective],
    bases: Mapping[str, "str | Objective"],
    top_k: int,
    constraints: Sequence[Constraint],
    baselines: Mapping[str, np.ndarray],
    batch_size: int,
    start: int,
    stop: int,
) -> _SelectionPass:
    chunks = _grid_chunk_stream(tables, bases, constraints, batch_size, start, stop)
    return _fold_selection(tables.n_scenarios, chunks, coerced, bases, top_k, baselines)


def _build_shard_tables(
    chain: "TaskChain | TaskGraph",
    platform,
    scenarios: "ScenarioGrid",
    devices: Sequence[str] | None,
    fault_spec: tuple | None,
) -> "GridCostTables":
    """Grid tables of one worker: fault-augmented when ``fault_spec`` is set."""
    from ..devices.tables import build_tables

    if fault_spec is not None:
        faults, retry, timeout = fault_spec
        return build_tables(
            chain, platform, devices=devices, scenarios=scenarios,
            faults=faults, retry=retry, timeout=timeout,
        )
    return build_tables(chain, platform, devices=devices, scenarios=scenarios)


def _run_baseline_shard(
    platform,
    scenarios: "ScenarioGrid",
    chain: "TaskChain | TaskGraph",
    devices: Sequence[str] | None,
    bases: dict,
    baseline_names: tuple,
    constraints: tuple,
    batch_size: int,
    shard_start: int,
    shard_stop: int,
    fault_spec: tuple | None = None,
) -> _BaselinePass:
    """Baseline sweep of one contiguous range (runs inside a worker process)."""
    tables = _build_shard_tables(chain, platform, scenarios, devices, fault_spec)
    return _sweep_baselines(
        tables, bases, baseline_names, constraints, batch_size, shard_start, shard_stop
    )


def _run_selection_shard(
    platform,
    scenarios: "ScenarioGrid",
    chain: "TaskChain | TaskGraph",
    devices: Sequence[str] | None,
    coerced: tuple,
    bases: dict,
    top_k: int,
    constraints: tuple,
    baselines: dict,
    batch_size: int,
    shard_start: int,
    shard_stop: int,
    fault_spec: tuple | None = None,
) -> _SelectionPass:
    """Selection sweep of one contiguous range (runs inside a worker process)."""
    tables = _build_shard_tables(chain, platform, scenarios, devices, fault_spec)
    return _sweep_selection(
        tables, coerced, bases, top_k, constraints, baselines, batch_size,
        shard_start, shard_stop,
    )


# -- scenario sharding -------------------------------------------------------
#
# Each scenario shard is a single-worker process pool whose initializer builds
# the grid tables of one contiguous scenario block.  For every placement
# chunk, all shards evaluate the same placements against their scenario rows;
# the parent ANDs the feasibility masks and concatenates the raw value
# matrices along the scenario axis (in shard order), reconstructing exactly
# the serial sweep's ``(s, n)`` chunk -- every fold, reduction and tie rule
# then runs on bit-identical inputs.

_SCENARIO_SHARD: dict = {}


def _init_scenario_shard(
    platform,
    scenarios: "ScenarioGrid",
    chain: "TaskChain | TaskGraph",
    devices: Sequence[str] | None,
    fault_spec: tuple | None,
    bases: dict,
    constraints: tuple,
) -> None:
    """Build one scenario block's tables inside its worker process."""
    _SCENARIO_SHARD["tables"] = _build_shard_tables(
        chain, platform, scenarios, devices, fault_spec
    )
    _SCENARIO_SHARD["bases"] = bases
    _SCENARIO_SHARD["constraints"] = constraints


def _scenario_shard_chunk(
    start: int, stop: int
) -> tuple[np.ndarray, dict[str, np.ndarray] | None]:
    """Evaluate one placement chunk against this worker's scenario block.

    Returns the shard-local feasibility mask and the **raw, unmasked**
    ``(s_shard, n)`` base-value matrices; masking happens in the parent after
    the shard masks are merged.
    """
    chunks = _grid_chunk_stream(
        _SCENARIO_SHARD["tables"],
        _SCENARIO_SHARD["bases"],
        _SCENARIO_SHARD["constraints"],
        stop - start,
        start,
        stop,
    )
    (_, _, mask, values), = chunks
    return mask, values


def _scenario_sharded_chunks(
    pools: Sequence,
    batch_size: int,
    start: int,
    stop: int,
) -> "Iterable[tuple[int, int, np.ndarray, dict[str, np.ndarray] | None]]":
    """Merge per-shard chunk evaluations back into the serial chunk stream."""
    cursor = start
    while cursor < stop:
        chunk_stop = min(cursor + batch_size, stop)
        futures = [pool.submit(_scenario_shard_chunk, cursor, chunk_stop) for pool in pools]
        parts = [future.result() for future in futures]
        mask = parts[0][0].copy()
        for shard_mask, _ in parts[1:]:
            mask &= shard_mask
        values: dict[str, np.ndarray] | None = None
        if mask.any():
            # A surviving placement is feasible in every shard, so every shard
            # produced a value matrix.
            names = parts[0][1].keys()
            values = {
                name: np.concatenate(
                    [part_values[name] for _, part_values in parts], axis=0
                )
                for name in names
            }
        yield cursor, chunk_stop - cursor, mask, values
        cursor = chunk_stop


def _planner_baseline_reason(
    chain: "TaskChain | TaskGraph",
    constraints: Sequence[Constraint],
    start: int,
    stop: int,
    total: int,
    bases: Mapping[str, "str | Objective"],
    baseline_names: Sequence[str],
    fault_aware: bool = False,
) -> str | None:
    """Why the regret baselines cannot come from the exact per-scenario DP."""
    from ..tasks.graph import TaskGraph
    from .planner import planner_objective_weights

    if fault_aware:
        return (
            "expected-cost-under-faults bases are outside the DP planner "
            "boundary (survival factors couple consecutive tasks)"
        )
    if constraints:
        return "feasibility constraints require the streaming baseline pass"
    if (start, stop) != (0, total):
        return "baselines over an index slice require the streaming pass"
    if isinstance(chain, TaskGraph) and not chain.is_linear:
        return "planner baselines are exact for chain workloads only"
    for name in baseline_names:
        if planner_objective_weights(bases[name]) is None:
            return f"base objective {name!r} is not DP-plannable"
    return None


def search_grid(
    executor: "SimulatedExecutor",
    chain: "TaskChain | TaskGraph",
    scenarios: "ScenarioGrid | Sequence[Scenario]",
    *,
    objectives: "Sequence[str | RobustObjective]" = (WorstCaseObjective(),),
    top_k: int = 10,
    constraints: Sequence[Constraint] = (),
    devices: Sequence[str] | None = None,
    batch_size: int = 16384,
    start: int = 0,
    stop: int | None = None,
    n_workers: int | None = None,
    scenario_shards: int | None = None,
    baseline_method: str = "auto",
    faults=None,
    retry=None,
    timeout=None,
) -> GridSearchResult:
    """Stream a placement range under every scenario and select robust winners.

    Chunks of the placement space are evaluated against the whole condition
    grid in one vectorized pass each (:func:`execute_placements_grid`); per
    robust objective a :class:`StreamingTopK` keeps the best ``top_k``
    placements, and each scenario's individual winner is tracked per base
    objective so the drift between conditions is part of the result.  Peak
    memory is one ``(n_scenarios, batch_size)`` chunk plus the O(top_k)
    selection state.  With ``n_workers > 1`` the index range is sharded
    across worker processes exactly like :func:`~repro.search.search_space`;
    shard results merge associatively, so the outcome is identical to the
    serial sweep.

    ``scenario_shards`` splits along the *other* axis: each worker process
    holds the grid tables of one contiguous scenario block and evaluates
    every placement chunk against its block; the parent stitches the
    per-shard value matrices back together along the scenario axis before
    any reduction runs, so the result is bitwise identical to the serial
    sweep.  Scenario sharding pays off when the scenario count dominates the
    chunk cost; it is mutually exclusive with ``n_workers > 1`` (shard one
    axis or the other, not both).

    Constraints are enforced *robustly*: a placement is feasible only if it
    satisfies every constraint under every scenario.  Regret objectives need
    each scenario's best feasible value over the searched range --
    ``baseline_method`` picks how it is found: ``"stream"`` runs the classic
    extra streaming pass over the whole range; ``"planner"`` computes each
    scenario's optimum with one exact chain DP
    (:func:`repro.search.planner.grid_baselines`, bitwise the streamed
    minimum, at ``O(s * k * m**2)`` instead of ``O(s * m**k)``), raising when
    the request is outside the planner boundary (constraints, index slices,
    non-linear graphs, non-plannable bases); ``"auto"`` (default) plans when
    eligible and streams otherwise.

    With ``retry=`` given every (scenario, placement) pair is evaluated under
    faults: each scenario uses its own platform's attached profile (the shape
    the :class:`~repro.scenarios.DeviceFailureRate` /
    :class:`~repro.scenarios.LinkDropoutRate` axes produce) unless an
    explicit ``faults`` profile overrides them all.  Fault-aware bases are
    outside the DP planner boundary, so regret baselines stream
    (``baseline_method="planner"`` raises with that reason).
    """
    if retry is None and (faults is not None or timeout is not None):
        raise ValueError(
            "fault-aware evaluation needs retry=RetryPolicy(...); "
            "got faults/timeout without a retry policy"
        )
    grid, scenario_names, grid_weights = _scenario_entries(scenarios)
    fault_spec = (faults, retry, timeout) if retry is not None else None
    # The driving process serves its tables from the executor's shared
    # content-addressed cache (shard workers, living in other processes,
    # rebuild locally via the same build_tables path).
    tables = executor.grid_cost_tables(
        chain,
        grid,
        devices,
        faults=faults,
        retry=retry,
        timeout=timeout,
    )
    total = space_size(tables.n_tasks, tables.n_devices)
    if stop is None:
        stop = total
    if not 0 <= start <= stop <= total:
        raise ValueError(f"invalid slice [{start}, {stop}) of a space of {total} placements")
    if start == stop:
        raise ValueError("cannot search an empty placement range")
    if top_k <= 0:
        raise ValueError("top_k must be positive")
    if baseline_method not in ("auto", "planner", "stream"):
        raise ValueError(
            f"unknown baseline_method {baseline_method!r}; choose 'auto', 'planner' or 'stream'"
        )

    coerced = as_robust_objectives(objectives)
    # Bind the grid's scenario weights to weighted objectives left unbound
    # (expectation, quantile, SLO -- each decides through bind_weights).
    coerced = tuple(objective.bind_weights(grid_weights) for objective in coerced)
    # Objectives sharing a base *name* must share the base itself: chunk values
    # are computed once per base name, so a silent last-wins collision would
    # rank one objective by another's values.
    bases: dict[str, "str | Objective"] = {}
    for objective in coerced:
        name = _base_name(objective.base)
        if name in bases and bases[name] != objective.base:
            raise ValueError(
                f"robust objectives disagree on the base objective named {name!r}: "
                f"{bases[name]!r} vs {objective.base!r}"
            )
        bases.setdefault(name, objective.base)
    base_names = list(bases)

    ranges = _shard_ranges(start, stop, n_workers) if n_workers and n_workers > 1 else []
    sharded = len(ranges) > 1

    if scenario_shards is not None and scenario_shards < 1:
        raise ValueError("scenario_shards must be >= 1")
    n_shards = min(scenario_shards, tables.n_scenarios) if scenario_shards else 1
    if n_shards > 1 and sharded:
        raise ValueError(
            "scenario_shards and n_workers > 1 are mutually exclusive: "
            "shard across scenarios or across placements, not both"
        )
    scenario_pools: list = []
    if n_shards > 1:
        from concurrent.futures import ProcessPoolExecutor

        from ..scenarios import ScenarioGrid

        for lo, hi in _shard_ranges(0, tables.n_scenarios, n_shards):
            scenario_pools.append(
                ProcessPoolExecutor(
                    max_workers=1,
                    initializer=_init_scenario_shard,
                    initargs=(
                        executor.platform,
                        ScenarioGrid(grid.scenarios[lo:hi]),
                        chain,
                        devices,
                        fault_spec,
                        bases,
                        tuple(constraints),
                    ),
                )
            )

    try:
        return _search_grid_passes(
            executor=executor,
            chain=chain,
            grid=grid,
            scenario_names=scenario_names,
            tables=tables,
            coerced=coerced,
            bases=bases,
            base_names=base_names,
            top_k=top_k,
            constraints=constraints,
            devices=devices,
            batch_size=batch_size,
            start=start,
            stop=stop,
            total=total,
            ranges=ranges,
            sharded=sharded,
            scenario_pools=scenario_pools,
            baseline_method=baseline_method,
            fault_spec=fault_spec,
        )
    finally:
        for pool in scenario_pools:
            pool.shutdown()


def _search_grid_passes(
    *,
    executor: "SimulatedExecutor",
    chain: "TaskChain | TaskGraph",
    grid: "ScenarioGrid",
    scenario_names: tuple[str, ...],
    tables: "GridCostTables",
    coerced: tuple[RobustObjective, ...],
    bases: "dict[str, str | Objective]",
    base_names: list,
    top_k: int,
    constraints: Sequence[Constraint],
    devices: Sequence[str] | None,
    batch_size: int,
    start: int,
    stop: int,
    total: int,
    ranges: list,
    sharded: bool,
    scenario_pools: list,
    baseline_method: str,
    fault_spec: tuple | None,
) -> GridSearchResult:
    """The two streaming passes of :func:`search_grid` (pools already set up)."""
    # -- pass 1 (only when regret objectives are present): baselines --------
    baseline_names = tuple(
        dict.fromkeys(
            _base_name(objective.base) for objective in coerced if objective.requires_baseline
        )
    )
    baselines: dict[str, np.ndarray] = {}
    if baseline_names:
        planner_reason = _planner_baseline_reason(
            chain, tuple(constraints), start, stop, total, bases, baseline_names,
            fault_aware=fault_spec is not None,
        )
        if baseline_method == "planner" and planner_reason is not None:
            raise ValueError(
                f"baseline_method='planner' cannot serve this request: {planner_reason}; "
                "use baseline_method='stream' (or 'auto')"
            )
        if baseline_method in ("auto", "planner") and planner_reason is None:
            from .planner import grid_baselines

            try:
                baselines = {
                    name: grid_baselines(tables, bases[name]) for name in baseline_names
                }
            except KeyError:
                # No feasible placement at all: same contract as the streaming
                # pass, which leaves the baselines empty.
                baselines = {}
        elif sharded:
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(max_workers=len(ranges)) as pool:
                shards = pool.map(
                    _run_baseline_shard,
                    *zip(
                        *[
                            (
                                executor.platform,
                                grid,
                                chain,
                                devices,
                                bases,
                                baseline_names,
                                tuple(constraints),
                                batch_size,
                                shard_start,
                                shard_stop,
                                fault_spec,
                            )
                            for shard_start, shard_stop in ranges
                        ]
                    ),
                )
                merged_baselines: _BaselinePass | None = None
                for shard in shards:
                    if merged_baselines is None:
                        merged_baselines = shard
                    else:
                        merged_baselines.merge(shard)
            if merged_baselines.any_feasible:
                baselines = merged_baselines.minima
        elif scenario_pools:
            sweep = _fold_baselines(
                tables.n_scenarios,
                _scenario_sharded_chunks(scenario_pools, batch_size, start, stop),
                baseline_names,
            )
            if sweep.any_feasible:
                baselines = sweep.minima
        else:
            sweep = _sweep_baselines(
                tables, bases, baseline_names, constraints, batch_size, start, stop
            )
            if sweep.any_feasible:
                baselines = sweep.minima

    # -- selection pass ------------------------------------------------------
    if sharded:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=len(ranges)) as pool:
            shards = pool.map(
                _run_selection_shard,
                *zip(
                    *[
                        (
                            executor.platform,
                            grid,
                            chain,
                            devices,
                            coerced,
                            bases,
                            top_k,
                            tuple(constraints),
                            baselines,
                            batch_size,
                            shard_start,
                            shard_stop,
                            fault_spec,
                        )
                        for shard_start, shard_stop in ranges
                    ]
                ),
            )
            selection: _SelectionPass | None = None
            for shard in shards:
                if selection is None:
                    selection = shard
                else:
                    selection.merge(shard)
    elif scenario_pools:
        selection = _fold_selection(
            tables.n_scenarios,
            _scenario_sharded_chunks(scenario_pools, batch_size, start, stop),
            coerced,
            bases,
            top_k,
            baselines,
        )
    else:
        selection = _sweep_selection(
            tables, coerced, bases, top_k, constraints, baselines, batch_size, start, stop
        )
    selectors = selection.selectors
    scenario_best_idx = selection.scenario_best_idx
    scenario_best_val = selection.scenario_best_val
    n_evaluated = selection.n_evaluated
    n_feasible = selection.n_feasible

    def _labels(indices: np.ndarray) -> tuple[str, ...]:
        from ..devices.batch import placement_labels

        matrix = indices_to_matrix(indices, tables.n_tasks, tables.n_devices)
        return tuple(placement_labels(matrix, tables.aliases))

    top: dict[str, TopSelection] = {}
    for objective in coerced:
        selector = selectors[objective.name]
        top[objective.name] = TopSelection(
            objective=objective.name,
            indices=selector.indices.copy(),
            values=selector.values.copy(),
            labels=_labels(selector.indices),
        )
    scenario_best: dict[str, ScenarioBest] = {}
    if n_feasible:
        for name in base_names:
            idx = scenario_best_idx[name]
            scenario_best[name] = ScenarioBest(
                objective=name,
                scenario_names=scenario_names,
                indices=idx.copy(),
                values=scenario_best_val[name].copy(),
                labels=_labels(idx),
            )
    return GridSearchResult(
        n_tasks=tables.n_tasks,
        aliases=tables.aliases,
        scenario_names=scenario_names,
        n_evaluated=n_evaluated,
        n_feasible=n_feasible,
        top=top,
        scenario_best=scenario_best,
        baselines=baselines,
    )
