"""Robust objectives and the streaming grid-search driver.

A placement that wins on today's platform may be the worst choice after the
Wi-Fi link falls back to LTE.  This module selects placements that stay good
across a whole :class:`~repro.scenarios.ScenarioGrid`:

* **robust objectives** collapse the ``(n_conditions, n_placements)`` metric
  grid to one (minimised) scalar per placement -- the worst case over
  scenarios (:class:`WorstCaseObjective`), the scenario-weighted expectation
  (:class:`ExpectedValueObjective`), or the maximum regret against each
  scenario's own best placement (:class:`RegretObjective`);
* :func:`search_grid` streams the placement space chunk by chunk through
  :func:`~repro.devices.grid.execute_placements_grid`, folds each chunk into
  bounded :class:`~repro.search.topk.StreamingTopK` state per robust
  objective, and tracks each scenario's individual winner so condition drift
  is visible in the result.

Everything is free of lambdas and mutable shared state, like the rest of the
search layer: objective specs are value-type dataclasses that survive
pickling.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

import numpy as np

from ..offload.space import indices_to_matrix, iter_placement_batches, space_size
from .constraints import Constraint, feasible_mask
from .driver import TopSelection
from .objectives import Objective, as_objective
from .topk import StreamingTopK

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..devices.grid import GridCostTables, GridExecutionResult
    from ..devices.simulator import SimulatedExecutor
    from ..scenarios import Scenario, ScenarioGrid
    from ..tasks.chain import TaskChain
    from ..tasks.graph import TaskGraph

__all__ = [
    "RobustObjective",
    "WorstCaseObjective",
    "ExpectedValueObjective",
    "RegretObjective",
    "ScenarioBest",
    "GridSearchResult",
    "as_robust_objectives",
    "search_grid",
]


def _base_values(base: "str | Objective", grid: "GridExecutionResult") -> np.ndarray:
    """``(n_conditions, n_placements)`` values of the base objective.

    Metric names read the grid columns directly; general objectives are
    evaluated on each scenario's batch view and stacked.
    """
    if isinstance(base, str):
        return grid.metric_values(base)
    return np.stack([base(batch) for batch in grid.batches()], axis=0)


def _base_name(base: "str | Objective") -> str:
    return base if isinstance(base, str) else base.name


@dataclass(frozen=True)
class RobustObjective:
    """Base class: a per-scenario objective plus a reduction over scenarios.

    ``base`` is a metric name (``"time"``/``"energy"``/``"cost"``) or any
    search :class:`~repro.search.objectives.Objective`; subclasses implement
    :meth:`reduce`, mapping the ``(n_conditions, n_placements)`` base values
    to one scalar per placement (lower is better).
    """

    base: "str | Objective" = "time"
    label: str = ""

    #: Whether :meth:`reduce` needs the per-scenario minima of the base
    #: objective over the whole (feasible) space -- triggers the extra
    #: baseline pass in :func:`search_grid`.
    requires_baseline = False

    def __post_init__(self) -> None:
        if not isinstance(self.base, str):
            as_objective(self.base)  # validate early: needs .name and __call__

    @property
    def name(self) -> str:
        return self.label or f"{self._prefix}-{_base_name(self.base)}"

    _prefix = "robust"

    def values(self, grid: "GridExecutionResult") -> np.ndarray:
        """Per-scenario base values of one grid chunk, shape ``(s, n)``."""
        return _base_values(self.base, grid)

    def reduce(
        self, values: np.ndarray, baselines: np.ndarray | None = None
    ) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, grid: "GridExecutionResult") -> np.ndarray:
        """Robust scalar per placement of a *complete* grid (no streaming).

        For :class:`RegretObjective` the per-scenario baselines are taken
        from the grid itself, i.e. the grid must hold the entire candidate
        space; :func:`search_grid` handles the streaming case.
        """
        values = self.values(grid)
        baselines = values.min(axis=1) if self.requires_baseline else None
        return self.reduce(values, baselines)


@dataclass(frozen=True)
class WorstCaseObjective(RobustObjective):
    """Minimise the worst value the placement attains over the scenarios."""

    _prefix = "worst"

    def reduce(self, values: np.ndarray, baselines: np.ndarray | None = None) -> np.ndarray:
        return values.max(axis=0)


@dataclass(frozen=True)
class ExpectedValueObjective(RobustObjective):
    """Minimise the scenario-weighted expectation of the base objective.

    ``weights`` (one non-negative weight per scenario, not necessarily
    normalised) defaults to the scenario weights of the grid being searched,
    or uniform when constructed directly over a bare values matrix.
    """

    weights: tuple[float, ...] | None = None

    _prefix = "expected"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.weights is not None:
            weights = tuple(float(w) for w in self.weights)
            if any(w < 0 for w in weights):
                raise ValueError("scenario weights must be non-negative")
            if sum(weights) <= 0:
                raise ValueError("at least one scenario weight must be positive")
            object.__setattr__(self, "weights", weights)

    def with_weights(self, weights: Sequence[float]) -> "ExpectedValueObjective":
        """Copy with explicit weights (the driver binds grid weights here)."""
        return ExpectedValueObjective(base=self.base, label=self.label, weights=tuple(weights))

    def reduce(self, values: np.ndarray, baselines: np.ndarray | None = None) -> np.ndarray:
        if self.weights is None:
            return values.mean(axis=0)
        if len(self.weights) != values.shape[0]:
            raise ValueError(
                f"expected {values.shape[0]} scenario weights, got {len(self.weights)}"
            )
        weights = np.array(self.weights)
        return weights @ values / weights.sum()


@dataclass(frozen=True)
class RegretObjective(RobustObjective):
    """Minimise the maximum regret against each scenario's own best placement.

    The regret of placement ``p`` in scenario ``s`` is ``value[s, p] -
    min_q value[s, q]`` (how much worse than the best the scenario admits);
    the objective is the maximum over scenarios.  The minima are taken over
    the feasible placements actually searched, so under :func:`search_grid`
    the space is streamed twice: one pass to find the per-scenario baselines,
    one to select.
    """

    requires_baseline = True
    _prefix = "regret"

    def reduce(self, values: np.ndarray, baselines: np.ndarray | None = None) -> np.ndarray:
        if baselines is None:
            raise ValueError(
                f"{self.name} needs per-scenario baselines; search the grid via "
                "search_grid, or call the objective on a grid holding the full space"
            )
        baselines = np.asarray(baselines, dtype=float)
        if baselines.shape != (values.shape[0],):
            raise ValueError(
                f"expected {values.shape[0]} baselines, got shape {baselines.shape}"
            )
        return (values - baselines[:, None]).max(axis=0)


def as_robust_objectives(
    specs: "Sequence[str | RobustObjective]",
) -> tuple[RobustObjective, ...]:
    """Coerce specs (metric names become worst-case) with unique names."""
    objectives = tuple(
        WorstCaseObjective(base=spec) if isinstance(spec, str) else spec for spec in specs
    )
    for objective in objectives:
        if not isinstance(objective, RobustObjective):
            raise TypeError(
                f"cannot interpret {objective!r} as a robust objective; pass a metric "
                "name (selected by worst case) or a RobustObjective instance"
            )
    names = [objective.name for objective in objectives]
    if len(set(names)) != len(names):
        raise ValueError(f"robust objective names must be unique, got {names}")
    return objectives


# ----------------------------------------------------------------------------
# Result types
# ----------------------------------------------------------------------------

@dataclass(frozen=True)
class ScenarioBest:
    """Each scenario's individual best feasible placement under one base objective."""

    objective: str
    scenario_names: tuple[str, ...]
    indices: np.ndarray
    values: np.ndarray
    labels: tuple[str, ...]

    def __len__(self) -> int:
        return len(self.scenario_names)

    def drift(self) -> dict[str, str]:
        """``scenario -> winning label``, the condition-drift view."""
        return dict(zip(self.scenario_names, self.labels))


@dataclass(frozen=True)
class GridSearchResult:
    """Outcome of one streaming robust sweep over (scenario, placement) pairs."""

    n_tasks: int
    aliases: tuple[str, ...]
    scenario_names: tuple[str, ...]
    n_evaluated: int
    n_feasible: int
    top: Mapping[str, TopSelection]
    scenario_best: Mapping[str, ScenarioBest]
    #: Per-scenario minima used as regret baselines, keyed by base-objective name.
    baselines: Mapping[str, np.ndarray]

    def __post_init__(self) -> None:
        object.__setattr__(self, "top", MappingProxyType(dict(self.top)))
        object.__setattr__(self, "scenario_best", MappingProxyType(dict(self.scenario_best)))
        object.__setattr__(self, "baselines", MappingProxyType(dict(self.baselines)))

    def __reduce__(self):
        # MappingProxyType cannot be pickled; rebuild through __init__.
        return (
            self.__class__,
            (
                self.n_tasks,
                self.aliases,
                self.scenario_names,
                self.n_evaluated,
                self.n_feasible,
                dict(self.top),
                dict(self.scenario_best),
                dict(self.baselines),
            ),
        )

    @property
    def space_size(self) -> int:
        return space_size(self.n_tasks, len(self.aliases))

    @property
    def n_scenarios(self) -> int:
        return len(self.scenario_names)

    def best(self, objective: str | None = None) -> str:
        """Label of the robust top-1 under one objective (the only one if unambiguous)."""
        if objective is None:
            if len(self.top) != 1:
                raise ValueError(
                    f"result ranks {sorted(self.top)} -- name the objective explicitly"
                )
            objective = next(iter(self.top))
        return self.top[objective].best

    def summary(self) -> str:
        lines = [
            f"searched {self.n_evaluated} of {self.space_size} placements under "
            f"{self.n_scenarios} scenarios ({self.n_feasible} robust-feasible) over "
            f"{len(self.aliases)} devices x {self.n_tasks} tasks"
        ]
        for name, selection in self.top.items():
            if len(selection):
                lines.append(
                    f"  top-{len(selection)} by {name}: best {selection.labels[0]} "
                    f"({selection.values[0]:.6g})"
                )
            else:
                lines.append(f"  top-K by {name}: no feasible placement")
        for name, best in self.scenario_best.items():
            shifts = len(dict.fromkeys(best.labels))
            lines.append(
                f"  per-scenario winners by {name}: "
                f"{' -> '.join(dict.fromkeys(best.labels))} ({shifts} distinct)"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------------
# Streaming driver
# ----------------------------------------------------------------------------

def _scenario_platforms(executor: "SimulatedExecutor", scenarios) -> tuple[list, tuple[str, ...], np.ndarray]:
    """Derive (platforms, names, weights) from a ScenarioGrid / scenario list."""
    from ..scenarios import Scenario, ScenarioGrid, apply_conditions

    if isinstance(scenarios, ScenarioGrid):
        entries: Sequence[Scenario] = tuple(scenarios)
    else:
        entries = tuple(scenarios)
        if not entries:
            raise ValueError("at least one scenario is required")
        for entry in entries:
            if not isinstance(entry, Scenario):
                raise TypeError(
                    f"expected Scenario instances or a ScenarioGrid, got {entry!r}"
                )
    platforms = [apply_conditions(executor.platform, scenario) for scenario in entries]
    names = tuple(scenario.name for scenario in entries)
    weights = np.array([scenario.weight for scenario in entries], dtype=float)
    return platforms, names, weights


def _iter_grid_chunks(
    tables: "GridCostTables", batch_size: int, start: int, stop: int
) -> "Iterable[tuple[int, GridExecutionResult]]":
    from ..devices.grid import execute_placements_grid

    cursor = start
    for matrix in iter_placement_batches(
        tables.n_tasks, tables.n_devices, batch_size, start=start, stop=stop
    ):
        yield cursor, execute_placements_grid(tables, matrix)
        cursor += matrix.shape[0]


def _feasible(
    grid: "GridExecutionResult", constraints: Sequence[Constraint]
) -> np.ndarray:
    """Robust feasibility: a placement must satisfy the constraints in *every* scenario."""
    if not constraints:
        return np.ones(len(grid), dtype=bool)
    mask = np.ones(len(grid), dtype=bool)
    for batch in grid.batches():
        mask &= feasible_mask(batch, constraints)
    return mask


def search_grid(
    executor: "SimulatedExecutor",
    chain: "TaskChain | TaskGraph",
    scenarios: "ScenarioGrid | Sequence[Scenario]",
    *,
    objectives: "Sequence[str | RobustObjective]" = (WorstCaseObjective(),),
    top_k: int = 10,
    constraints: Sequence[Constraint] = (),
    devices: Sequence[str] | None = None,
    batch_size: int = 16384,
    start: int = 0,
    stop: int | None = None,
) -> GridSearchResult:
    """Stream a placement range under every scenario and select robust winners.

    Chunks of the placement space are evaluated against the whole condition
    grid in one vectorized pass each (:func:`execute_placements_grid`); per
    robust objective a :class:`StreamingTopK` keeps the best ``top_k``
    placements, and each scenario's individual winner is tracked per base
    objective so the drift between conditions is part of the result.  Peak
    memory is one ``(n_scenarios, batch_size)`` chunk plus the O(top_k)
    selection state.

    Constraints are enforced *robustly*: a placement is feasible only if it
    satisfies every constraint under every scenario.  Regret objectives need
    each scenario's best feasible value over the searched range, so their
    presence adds one extra streaming pass before selection.
    """
    platforms, scenario_names, grid_weights = _scenario_platforms(executor, scenarios)
    from ..devices.grid import build_grid_tables

    tables = build_grid_tables(chain, platforms, devices)
    total = space_size(tables.n_tasks, tables.n_devices)
    if stop is None:
        stop = total
    if not 0 <= start <= stop <= total:
        raise ValueError(f"invalid slice [{start}, {stop}) of a space of {total} placements")
    if start == stop:
        raise ValueError("cannot search an empty placement range")
    if top_k <= 0:
        raise ValueError("top_k must be positive")

    coerced = as_robust_objectives(objectives)
    # Bind the grid's scenario weights to expectation objectives left unbound.
    coerced = tuple(
        objective.with_weights(grid_weights)
        if isinstance(objective, ExpectedValueObjective) and objective.weights is None
        else objective
        for objective in coerced
    )
    # Objectives sharing a base *name* must share the base itself: chunk values
    # are computed once per base name, so a silent last-wins collision would
    # rank one objective by another's values.
    bases: dict[str, "str | Objective"] = {}
    for objective in coerced:
        name = _base_name(objective.base)
        if name in bases and bases[name] != objective.base:
            raise ValueError(
                f"robust objectives disagree on the base objective named {name!r}: "
                f"{bases[name]!r} vs {objective.base!r}"
            )
        bases.setdefault(name, objective.base)
    base_names = list(bases)

    # -- pass 1 (only when regret objectives are present): baselines --------
    baseline_names = [
        _base_name(objective.base) for objective in coerced if objective.requires_baseline
    ]
    baselines: dict[str, np.ndarray] = {}
    if baseline_names:
        minima = {name: np.full(tables.n_scenarios, np.inf) for name in baseline_names}
        any_feasible = False
        for _, grid in _iter_grid_chunks(tables, batch_size, start, stop):
            mask = _feasible(grid, constraints)
            if not mask.any():
                continue
            any_feasible = True
            for name in baseline_names:
                values = _base_values(bases[name], grid)[:, mask]
                np.minimum(minima[name], values.min(axis=1), out=minima[name])
        if any_feasible:
            baselines = minima

    # -- selection pass ------------------------------------------------------
    selectors = {objective.name: StreamingTopK(top_k) for objective in coerced}
    scenario_best_idx = {
        name: np.full(tables.n_scenarios, -1, dtype=np.int64) for name in base_names
    }
    scenario_best_val = {name: np.full(tables.n_scenarios, np.inf) for name in base_names}
    n_evaluated = 0
    n_feasible = 0
    for chunk_start, grid in _iter_grid_chunks(tables, batch_size, start, stop):
        n = len(grid)
        n_evaluated += n
        mask = _feasible(grid, constraints)
        feasible_count = int(np.count_nonzero(mask))
        n_feasible += feasible_count
        if not feasible_count:
            continue
        indices = np.arange(n, dtype=np.int64)[mask] + np.int64(chunk_start)
        chunk_values = {name: _base_values(bases[name], grid)[:, mask] for name in base_names}
        for objective in coerced:
            values = chunk_values[_base_name(objective.base)]
            reduced = objective.reduce(
                values, baselines.get(_base_name(objective.base))
            ) if objective.requires_baseline else objective.reduce(values)
            selectors[objective.name].update(reduced, indices)
        for name in base_names:
            values = chunk_values[name]
            rows = np.arange(values.shape[0])
            arg = values.argmin(axis=1)
            candidate = values[rows, arg]
            better = candidate < scenario_best_val[name]
            scenario_best_val[name][better] = candidate[better]
            scenario_best_idx[name][better] = indices[arg[better]]

    def _labels(indices: np.ndarray) -> tuple[str, ...]:
        from ..devices.batch import placement_labels

        matrix = indices_to_matrix(indices, tables.n_tasks, tables.n_devices)
        return tuple(placement_labels(matrix, tables.aliases))

    top: dict[str, TopSelection] = {}
    for objective in coerced:
        selector = selectors[objective.name]
        top[objective.name] = TopSelection(
            objective=objective.name,
            indices=selector.indices.copy(),
            values=selector.values.copy(),
            labels=_labels(selector.indices),
        )
    scenario_best: dict[str, ScenarioBest] = {}
    if n_feasible:
        for name in base_names:
            idx = scenario_best_idx[name]
            scenario_best[name] = ScenarioBest(
                objective=name,
                scenario_names=scenario_names,
                indices=idx.copy(),
                values=scenario_best_val[name].copy(),
                labels=_labels(idx),
            )
    return GridSearchResult(
        n_tasks=tables.n_tasks,
        aliases=tables.aliases,
        scenario_names=scenario_names,
        n_evaluated=n_evaluated,
        n_feasible=n_feasible,
        top=top,
        scenario_best=scenario_best,
        baselines=baselines,
    )
