"""Incremental Pareto frontier over chunked multi-criteria values.

The frontier keeps only the currently non-dominated ``(criteria row, placement
index)`` pairs: each chunk is first thinned against the running frontier with
one vectorized dominance sweep, and the survivors recompete through
:func:`~repro.search.pareto.pareto_mask`.  Because dominance only ever
compares value rows, the final frontier is a pure function of the multiset of
fed rows -- any chunking, feeding order, or shard-merge tree produces the
identical frontier (the property the equivalence tests pin down).
"""

from __future__ import annotations

import numpy as np

from .pareto import dominated_by, pareto_mask

__all__ = ["StreamingFrontier"]


class StreamingFrontier:
    """Maintain the non-dominated set of a stream of objective-vector rows."""

    def __init__(self, n_criteria: int):
        if n_criteria <= 0:
            raise ValueError("at least one criterion is required")
        self.n_criteria = int(n_criteria)
        self._values = np.empty((0, self.n_criteria), dtype=float)
        self._indices = np.empty(0, dtype=np.int64)

    def __len__(self) -> int:
        return self._indices.size

    @property
    def values(self) -> np.ndarray:
        """Criteria rows of the current frontier, ordered by placement index."""
        order = np.argsort(self._indices, kind="stable")
        return self._values[order]

    @property
    def indices(self) -> np.ndarray:
        """Global placement indices of the current frontier, ascending."""
        return np.sort(self._indices)

    def update(self, values: np.ndarray, indices: np.ndarray) -> None:
        """Fold one chunk of (criteria row, global index) pairs into the frontier."""
        values = np.asarray(values, dtype=float)
        indices = np.asarray(indices, dtype=np.int64)
        if values.ndim != 2 or values.shape[1] != self.n_criteria:
            raise ValueError(
                f"expected an (n, {self.n_criteria}) criteria matrix, got shape {values.shape}"
            )
        if values.shape[0] != indices.shape[0]:
            raise ValueError(
                f"got {values.shape[0]} criteria rows for {indices.shape[0]} indices"
            )
        if not values.size:
            return
        if len(self):
            # Discard the bulk of the chunk against the running frontier first:
            # the frontier is usually tiny, so this is a handful of row sweeps
            # over the chunk instead of a quadratic pass including it.
            keep = ~dominated_by(self._values, values)
            values, indices = values[keep], indices[keep]
            if not values.size:
                return
        combined_values = np.concatenate([self._values, values])
        combined_indices = np.concatenate([self._indices, indices])
        mask = pareto_mask(combined_values)
        self._values = combined_values[mask]
        self._indices = combined_indices[mask]

    def merge(self, other: "StreamingFrontier") -> None:
        """Fold another frontier (e.g. a shard's) into this one."""
        if other.n_criteria != self.n_criteria:
            raise ValueError(
                f"cannot merge a {other.n_criteria}-criteria frontier "
                f"into a {self.n_criteria}-criteria one"
            )
        self.update(other._values, other._indices)
