"""Scalar objectives over :class:`~repro.devices.batch.BatchExecutionResult` columns.

An *objective* maps a batch to one float per placement (lower is better).  The
streaming selectors consume objectives for top-K ranking and as frontier
criteria, so everything here is vectorized and -- deliberately -- free of
lambdas: objective specs must survive pickling into the sharded worker
processes of :func:`repro.search.driver.search_space`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Protocol, Sequence, runtime_checkable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..devices.batch import BatchExecutionResult

__all__ = [
    "Objective",
    "MetricObjective",
    "WeightedSumObjective",
    "DecisionObjective",
    "as_objective",
    "as_objectives",
]


@runtime_checkable
class Objective(Protocol):
    """Anything that turns a batch into one (minimised) scalar per placement."""

    @property
    def name(self) -> str:  # pragma: no cover - protocol
        ...

    def __call__(self, batch: "BatchExecutionResult") -> np.ndarray:  # pragma: no cover
        ...


@dataclass(frozen=True)
class MetricObjective:
    """One raw metric column of the batch: ``"time"``, ``"energy"`` or ``"cost"``."""

    metric: str = "time"

    @property
    def name(self) -> str:
        return self.metric

    def __call__(self, batch: "BatchExecutionResult") -> np.ndarray:
        return batch.metric_values(self.metric)


@dataclass(frozen=True)
class WeightedSumObjective:
    """Weighted combination of the three metric columns (all minimised)."""

    time_weight: float = 1.0
    energy_weight: float = 0.0
    cost_weight: float = 0.0
    label: str = "weighted"

    def __post_init__(self) -> None:
        if self.time_weight < 0 or self.energy_weight < 0 or self.cost_weight < 0:
            raise ValueError("objective weights must be non-negative")

    @property
    def name(self) -> str:
        return self.label

    def __call__(self, batch: "BatchExecutionResult") -> np.ndarray:
        values = self.time_weight * batch.total_time_s
        if self.energy_weight:
            values = values + self.energy_weight * batch.energy_total_j
        if self.cost_weight:
            values = values + self.cost_weight * batch.operating_cost
        return values


@dataclass(frozen=True)
class DecisionObjective:
    """The :class:`~repro.selection.decision.DecisionModel` objective, vectorized.

    Wraps ``model.batch_objective`` so huge sweeps rank placements by exactly
    the scalar the decision model minimises (``time + cost_weight * operating
    cost``; the cluster-confidence penalty needs per-label scores and is only
    available once a clustering exists -- see ``DecisionModel.decide_from_batch``).
    """

    model: Any  # DecisionModel; typed loosely to avoid a selection <-> search cycle
    label: str = "decision"

    @property
    def name(self) -> str:
        return self.label

    def __call__(self, batch: "BatchExecutionResult") -> np.ndarray:
        return self.model.batch_objective(batch)


def as_objective(spec: "str | Objective | Callable[..., np.ndarray]") -> Objective:
    """Coerce a spec to an objective: a metric name or any named callable."""
    if isinstance(spec, str):
        return MetricObjective(spec)
    if callable(spec) and hasattr(spec, "name"):
        return spec  # type: ignore[return-value]
    raise TypeError(
        f"cannot interpret {spec!r} as an objective; pass a metric name "
        "('time'/'energy'/'cost') or an object with a .name and batch -> values __call__"
    )


def as_objectives(specs: "Sequence[str | Objective]") -> tuple[Objective, ...]:
    """Coerce a sequence of specs, requiring unique objective names."""
    objectives = tuple(as_objective(spec) for spec in specs)
    names = [objective.name for objective in objectives]
    if len(set(names)) != len(names):
        raise ValueError(f"objective names must be unique, got {names}")
    return objectives
