"""Bounded-memory streaming top-K selection over chunked objective values.

The accumulator keeps at most ``k`` ``(value, placement index)`` pairs at any
time, so selecting winners from an ``m**k`` space costs O(k) memory no matter
how many chunks stream through.  Ties break on the smaller global placement
index, which makes the result a pure function of the *set* of fed pairs:
feeding chunks in any order, or merging independently filled accumulators
(shards), yields the identical selection.
"""

from __future__ import annotations

import numpy as np

__all__ = ["StreamingTopK"]


class StreamingTopK:
    """Retain the ``k`` smallest (value, index) pairs of a stream."""

    def __init__(self, k: int):
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = int(k)
        self._values = np.empty(0, dtype=float)
        self._indices = np.empty(0, dtype=np.int64)

    @property
    def values(self) -> np.ndarray:
        """Current best values, best first (ties by ascending placement index)."""
        return self._values

    @property
    def indices(self) -> np.ndarray:
        """Global placement indices of the current best values, best first."""
        return self._indices

    def __len__(self) -> int:
        return self._values.size

    def update(self, values: np.ndarray, indices: np.ndarray) -> None:
        """Fold one chunk of (value, global index) pairs into the selection."""
        values = np.asarray(values, dtype=float)
        indices = np.asarray(indices, dtype=np.int64)
        if values.shape != indices.shape or values.ndim != 1:
            raise ValueError(
                f"values and indices must be matching 1-D arrays, "
                f"got shapes {values.shape} and {indices.shape}"
            )
        if values.size and np.isnan(values).any():
            raise ValueError("objective values must not contain NaN")
        if not values.size:
            return
        if values.size > 4 * self.k:
            # Pre-shrink big chunks with an O(n) partition on the values, then
            # widen to *every* entry tied with the k-th value: ties must reach
            # the exact lexsort below or the (value, index) tie-break would
            # depend on how the stream was chunked.
            part = np.argpartition(values, self.k - 1)
            boundary = values[part[: self.k]].max()
            keep = values <= boundary
            values, indices = values[keep], indices[keep]
        merged_values = np.concatenate([self._values, values])
        merged_indices = np.concatenate([self._indices, indices])
        order = np.lexsort((merged_indices, merged_values))[: self.k]
        self._values = merged_values[order]
        self._indices = merged_indices[order]

    def merge(self, other: "StreamingTopK") -> None:
        """Fold another accumulator (e.g. a shard's) into this one."""
        if other.k != self.k:
            raise ValueError(f"cannot merge top-{other.k} into top-{self.k}")
        self.update(other._values, other._indices)
