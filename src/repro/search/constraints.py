"""Vectorized feasibility filters applied chunk by chunk during a sweep.

Each constraint turns a :class:`~repro.devices.batch.BatchExecutionResult`
into a boolean keep-mask (one entry per placement).  Filtering happens *before*
the streaming selectors see the chunk, so infeasible placements cost one array
comparison instead of ever entering a frontier or top-K heap.  Like the
objectives, constraints are lambda-free dataclasses so sharded worker
processes can unpickle them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, Sequence, runtime_checkable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..devices.batch import BatchExecutionResult

__all__ = [
    "Constraint",
    "DeadlineConstraint",
    "EnergyBudgetConstraint",
    "CostBudgetConstraint",
    "MaxOffloadedConstraint",
    "SuccessProbabilityConstraint",
    "feasible_mask",
]


@runtime_checkable
class Constraint(Protocol):
    """Anything that maps a batch to a boolean keep-mask."""

    def mask(self, batch: "BatchExecutionResult") -> np.ndarray:  # pragma: no cover
        ...


def _require_positive(name: str, value: float) -> None:
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


@dataclass(frozen=True)
class DeadlineConstraint:
    """Keep placements whose noise-free execution time meets a deadline."""

    max_time_s: float

    def __post_init__(self) -> None:
        _require_positive("max_time_s", self.max_time_s)

    def mask(self, batch: "BatchExecutionResult") -> np.ndarray:
        return batch.total_time_s <= self.max_time_s


@dataclass(frozen=True)
class EnergyBudgetConstraint:
    """Keep placements whose total energy stays within a budget (J)."""

    max_energy_j: float

    def __post_init__(self) -> None:
        _require_positive("max_energy_j", self.max_energy_j)

    def mask(self, batch: "BatchExecutionResult") -> np.ndarray:
        return batch.energy_total_j <= self.max_energy_j


@dataclass(frozen=True)
class CostBudgetConstraint:
    """Keep placements whose operating cost stays within a budget."""

    max_cost: float

    def __post_init__(self) -> None:
        if self.max_cost < 0:
            raise ValueError(f"max_cost must be non-negative, got {self.max_cost!r}")

    def mask(self, batch: "BatchExecutionResult") -> np.ndarray:
        return batch.operating_cost <= self.max_cost


@dataclass(frozen=True)
class MaxOffloadedConstraint:
    """Keep placements that offload at most ``max_offloaded`` tasks off the host.

    The streaming counterpart of ``enumerate_algorithms(..., max_offloaded=...)``:
    the same granularity bound, but evaluated on the integer placement matrix
    instead of a placement-object predicate.
    """

    max_offloaded: int
    #: Host alias; defaults to the platform host of the batch being filtered.
    host: str | None = None

    def __post_init__(self) -> None:
        if self.max_offloaded < 0:
            raise ValueError("max_offloaded must be non-negative")

    def mask(self, batch: "BatchExecutionResult") -> np.ndarray:
        return batch.n_offloaded(self.host) <= self.max_offloaded


@dataclass(frozen=True)
class SuccessProbabilityConstraint:
    """Keep placements whose end-to-end success probability meets a floor.

    Only meaningful on fault-aware batches
    (:class:`~repro.faults.engine.FaultBatchExecutionResult`, produced by
    ``search_space(..., retry=...)`` or ``execute_batch(..., retry=...)``);
    filtering a classic batch raises rather than silently keeping everything.
    """

    min_success: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_success <= 1.0:
            raise ValueError(
                f"min_success must be a probability in [0, 1], got {self.min_success!r}"
            )

    def mask(self, batch: "BatchExecutionResult") -> np.ndarray:
        success = getattr(batch, "success_probability", None)
        if success is None:
            raise ValueError(
                "SuccessProbabilityConstraint needs a fault-aware batch; "
                "evaluate with retry=RetryPolicy(...) (e.g. "
                "search_space(..., retry=...)) so batches carry success "
                "probabilities"
            )
        return success >= self.min_success


def feasible_mask(
    batch: "BatchExecutionResult", constraints: Sequence[Constraint]
) -> np.ndarray:
    """AND of every constraint mask over one batch (all-True when unconstrained)."""
    mask = np.ones(len(batch), dtype=bool)
    for constraint in constraints:
        keep = np.asarray(constraint.mask(batch), dtype=bool)
        if keep.shape != mask.shape:
            raise ValueError(
                f"constraint {constraint!r} returned a mask of shape {keep.shape} "
                f"for a batch of {len(batch)} placements"
            )
        mask &= keep
        if not mask.any():
            break
    return mask
