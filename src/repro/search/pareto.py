"""Vectorized Pareto-dominance kernel shared by the search and selection layers.

``a`` dominates ``b`` (all objectives minimised) iff ``a <= b`` everywhere and
``a < b`` somewhere -- exactly the pairwise :func:`repro.selection.pareto.dominates`.
:func:`pareto_mask` computes the non-dominated subset of an ``(n, c)`` value
matrix without the O(n**2 * c) Python double loop: it sweeps pivot rows over a
shrinking survivor set, removing everything each pivot dominates in one array
comparison.  Exact duplicates of a non-dominated row are all kept (none of
them dominates the others), matching the label-level facade.
"""

from __future__ import annotations

import numpy as np

__all__ = ["pareto_mask", "dominated_by"]


def _as_value_matrix(values: np.ndarray) -> np.ndarray:
    matrix = np.asarray(values, dtype=float)
    if matrix.ndim != 2:
        raise ValueError(f"expected an (n, c) objective matrix, got shape {matrix.shape}")
    if matrix.shape[1] == 0:
        raise ValueError("at least one objective column is required")
    if matrix.size and np.isnan(matrix).any():
        # +-inf is totally ordered and compares fine; NaN would make dominance
        # silently inconsistent, so reject it outright.
        raise ValueError("objective values must not contain NaN")
    return matrix


def pareto_mask(values: np.ndarray) -> np.ndarray:
    """Boolean mask of the rows not dominated by any other row (minimisation).

    Rows with identical values are either all on the front or all dominated
    together, so the masked set is a pure function of the *multiset* of rows --
    the property the streaming frontier's chunk/shard merging relies on.
    """
    matrix = _as_value_matrix(values)
    n = matrix.shape[0]
    if n == 0:
        return np.zeros(0, dtype=bool)
    # Visit rows in lexicographic value order: early pivots tend to dominate
    # large swaths of the survivor set, so it collapses quickly.  The result
    # is order-independent; only the pruning speed depends on it.
    order = np.lexsort(matrix.T[::-1])
    survivors = order
    ranked = matrix[order]
    pivot = 0
    while pivot < ranked.shape[0]:
        row = ranked[pivot]
        # Keep rows that beat the pivot somewhere (they are not dominated by
        # it) and rows equal to it everywhere (mutual non-domination).
        keep = np.any(ranked < row, axis=1)
        keep |= np.all(ranked == row, axis=1)
        survivors = survivors[keep]
        ranked = ranked[keep]
        pivot = int(np.count_nonzero(keep[:pivot])) + 1
    mask = np.zeros(n, dtype=bool)
    mask[survivors] = True
    return mask


def dominated_by(frontier: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Mask of ``values`` rows dominated by at least one ``frontier`` row.

    Used to discard the bulk of a chunk against the running frontier before
    the (quadratic-ish) :func:`pareto_mask` pass over the remainder.
    """
    front = _as_value_matrix(frontier)
    matrix = _as_value_matrix(values)
    if front.shape[1] != matrix.shape[1]:
        raise ValueError(
            f"frontier has {front.shape[1]} objectives but values have {matrix.shape[1]}"
        )
    dominated = np.zeros(matrix.shape[0], dtype=bool)
    for row in front:
        candidate = ~dominated
        if not candidate.any():
            break
        sub = matrix[candidate]
        hit = np.all(row <= sub, axis=1) & np.any(row < sub, axis=1)
        dominated[candidate] |= hit
    return dominated
