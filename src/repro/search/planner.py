"""Exact polynomial-time placement planning: Viterbi DP over the (task, device) lattice.

Every enumeration engine in this repository pays ``m**k``: the batch executor
made *evaluating* a placement cheap, but the space itself still explodes
combinatorially (the regime the paper's conclusion worries about).  For a
*chain*, however, every shipped scalar objective is **additive along the
placement path**: the total is a left fold of per-task terms (depending only on
the task's device) and per-hop terms (depending only on consecutive device
pairs).  Minimising an additive path cost over the ``k x m`` lattice of
``(task, device)`` states is a shortest-path problem, solved exactly by a
Viterbi-style dynamic program in ``O(k * m**2)`` -- each of the ``k`` stages is
one ``m x m`` NumPy broadcast -- instead of ``m**k`` enumeration.

Additive decompositions (``T`` = total time, folded exactly like the engine):

* ``time``:    ``T = sum_t  busy(t, d_t) + (hostio(t, d_t) + pen(d_{t-1}, d_t))``
  -- the DP accumulates this *exact* IEEE-754 fold, so for the ``time``
  objective the optimal value is **bitwise** the enumerator's minimum.
* ``energy``:  ``active + idle + transfer``.  Since ``T >= busy_d`` for every
  device, ``idle = T * P_idle_total - sum_d busy_d * p_idle(d)`` where
  ``P_idle_total`` sums the idle power of *all* platform devices (non-candidate
  devices idle for the whole run).  Substituting the time fold makes energy
  node+edge additive: exact in real arithmetic (the float op *order* differs
  from the engine, so the winner is re-scored through the engine and the
  reported value is bitwise the enumerator's value for that placement).
* ``cost``:    ``sum_d cost_per_hour(d) * busy_d / 3600`` -- purely node
  additive (no edge term).
* weighted sums combine the three with non-negative weights.

**DAG boundary.**  A :class:`~repro.tasks.graph.TaskGraph`'s makespan is a
critical path with device serialization -- not path-additive in general.  The
planner is exact on *barrier-decomposable* graphs: every edge spans consecutive
topological levels, and each consecutive level pair is either fed by a
width-one level or fully bipartite (every task joins the whole previous
level).  There every task of level ``l`` becomes ready at the same barrier
``R_l`` (the max finish of level ``l-1``), so a level-DP over *joint level
assignments* (``m**w`` states for a width-``w`` level) is exact: for ``time``
the DP propagates absolute barriers through the engine's own max/plus fold
(transition monotone in the barrier, hence Bellman-exact *and* bitwise); for
the other objectives the level deltas are additive in real arithmetic.  Linear
graphs and the shipped :func:`~repro.tasks.workloads.fork_join_graph` satisfy
the condition.  Everything else -- non-decomposable graphs, level state counts
above ``max_level_states``, non-additive objectives, Pareto frontiers,
deadline/budget constraints, ``top_k > 1`` -- falls back to the streaming
enumerators (:func:`~repro.search.driver.search_space` /
:func:`~repro.search.robust.search_grid`), explicitly and with the reason
recorded.

**Scenario grids** (robust planning over chains): the expected value of
additive objectives is additive (scenario-weighted average of the per-scenario
lattices -> one scalar DP); worst-case and regret are min-max problems solved
exactly by a *Pareto-label* DP that keeps, per ``(stage, device)`` state, the
non-dominated per-scenario cost vectors of all prefixes (dominance pruning is
sound because ``max`` is monotone in every component).  Regret baselines are
one scalar DP per scenario -- each scenario's true optimum, replacing
:func:`search_grid`'s first streaming pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from ..devices.batch import (
    ChainCostTables,
    GraphCostTables,
    execute_placements,
    placement_labels,
)
from ..offload.space import indices_to_matrix, placement_matrix, space_size
from .objectives import MetricObjective, Objective, WeightedSumObjective, as_objective
from .pareto import pareto_mask

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..devices.grid import GridCostTables, GridExecutionResult
    from ..devices.simulator import SimulatedExecutor
    from ..tasks.chain import TaskChain
    from ..tasks.graph import TaskGraph

__all__ = [
    "PlanResult",
    "GridPlanResult",
    "plan_workload",
    "plan_grid",
    "grid_baselines",
    "planner_objective_weights",
    "decomposable_levels",
    "dispatch_reason",
    "DEFAULT_MAX_LEVEL_STATES",
    "DEFAULT_MAX_LABELS",
    "DEFAULT_FALLBACK_LIMIT",
]

#: Cap on the ``m**w`` joint-assignment states of a single DAG level; wider
#: levels make the graph fall back to streaming enumeration.
DEFAULT_MAX_LEVEL_STATES = 1024

#: Cap on the Pareto-label frontier of the robust (min-max) chain DP.
DEFAULT_MAX_LABELS = 100_000

#: Largest space the planner will *enumerate* when it has to fall back.
DEFAULT_FALLBACK_LIMIT = 1 << 20


# ----------------------------------------------------------------------------
# Objective compilation
# ----------------------------------------------------------------------------

def planner_objective_weights(objective: "str | Objective") -> tuple[float, float, float] | None:
    """``(time, energy, cost)`` weights of a DP-plannable objective, else ``None``.

    The planner handles exactly the objectives that are additive over the
    lattice: the three metric columns and their non-negative weighted sums.
    Anything else (decision objectives, custom callables) returns ``None`` and
    is routed to the streaming fallback.
    """
    obj = as_objective(objective)
    if isinstance(obj, MetricObjective):
        weights = {"time": (1.0, 0.0, 0.0), "energy": (0.0, 1.0, 0.0), "cost": (0.0, 0.0, 1.0)}
        return weights.get(obj.metric)
    if isinstance(obj, WeightedSumObjective):
        return (obj.time_weight, obj.energy_weight, obj.cost_weight)
    return None


def _device_arrays(tables: ChainCostTables) -> tuple[float, np.ndarray, np.ndarray, np.ndarray]:
    """``(P_idle_total, power_active, power_idle, cost_per_hour)`` over the candidates.

    ``P_idle_total`` sums the idle power of **all** platform devices --
    non-candidate devices never run a task, but they idle for the whole
    execution and their energy enters the engine's total.
    """
    platform = tables.platform
    p_all = float(sum(platform.device(alias).power_idle_w for alias in platform.devices))
    power_active = np.array([platform.device(a).power_active_w for a in tables.aliases])
    power_idle = np.array([platform.device(a).power_idle_w for a in tables.aliases])
    cost_per_hour = np.array([platform.device(a).cost_per_hour for a in tables.aliases])
    return p_all, power_active, power_idle, cost_per_hour


def _chain_lattice(
    tables: ChainCostTables, weights: tuple[float, float, float]
) -> tuple[np.ndarray, np.ndarray]:
    """Compile one additive objective into lattice costs ``(first, trans)``.

    ``first[d]`` is the cost of placing task 0 on device ``d``;
    ``trans[t-1, d, d']`` the cost of placing task ``t`` on ``d'`` after task
    ``t-1`` ran on ``d``.  The path sum over these arrays equals the objective
    of the placement -- for pure ``time`` with the *identical* float fold as
    the engine (``busy + (hostio + pen)`` per stage), for energy/cost in real
    arithmetic.  Transitions crossing a missing platform link are ``+inf``.
    """
    tw, ew, cw = weights
    # Time parts double as the missing-link carrier: hostio is NaN for a
    # missing host link, pen for a missing device pair.
    first_time = tables.busy[0] + (tables.hostio_time[0] + tables.first_penalty_time)
    trans_time = tables.busy[1:, None, :] + (
        tables.hostio_time[1:, None, :] + tables.penalty_time[None, :, :]
    )

    first_parts: list[np.ndarray] = []
    trans_parts: list[np.ndarray] = []
    if tw:
        first_parts.append(first_time if tw == 1.0 else tw * first_time)
        trans_parts.append(trans_time if tw == 1.0 else tw * trans_time)
    if ew:
        p_all, power_active, power_idle, _ = _device_arrays(tables)
        node = (
            tables.energy_in
            + tables.energy_out
            + tables.busy * (power_active - power_idle + p_all)
            + tables.hostio_time * p_all
        )
        edge = tables.penalty_energy + tables.penalty_time * p_all
        first_parts.append(
            ew * (node[0] + (tables.first_penalty_energy + tables.first_penalty_time * p_all))
        )
        trans_parts.append(ew * (node[1:, None, :] + edge[None, :, :]))
    if cw:
        _, _, _, cost_per_hour = _device_arrays(tables)
        node = (cost_per_hour[None, :] * tables.busy) / 3600.0
        first_parts.append(cw * node[0])
        trans_parts.append(cw * node[1:, None, :])

    first = sum(first_parts) if first_parts else np.zeros_like(first_time)
    trans = sum(trans_parts) if trans_parts else 0.0
    # Infeasible transitions (missing links) become +inf so the DP routes
    # around them; a cost-only compile has no NaN of its own, hence the mask
    # from the time parts.
    first = np.where(np.isnan(first_time), np.inf, first)
    first = np.where(np.isnan(first), np.inf, first)
    trans = np.where(np.isnan(trans_time), np.inf, trans)
    trans = np.where(np.isnan(trans), np.inf, trans)
    return first, trans


def _viterbi(first: np.ndarray, trans: np.ndarray) -> tuple[float, np.ndarray]:
    """Minimise an additive lattice cost; returns ``(value, device path)``.

    One ``m x m`` broadcast per stage: ``cand[d, d'] = acc[d] + trans[t, d, d']``,
    minimised over ``d`` with backpointers.  Because float addition is
    performed in exactly the path order, each state's accumulated value is
    bitwise the fold the engine would compute for the best prefix reaching it.
    """
    m = first.shape[0]
    acc = first
    n_stages = trans.shape[0]
    backs = np.empty((n_stages, m), dtype=np.intp)
    cols = np.arange(m)
    for t in range(n_stages):
        cand = acc[:, None] + trans[t]
        arg = cand.argmin(axis=0)
        backs[t] = arg
        acc = cand[arg, cols]
    end = int(acc.argmin())
    value = float(acc[end])
    path = np.empty(n_stages + 1, dtype=np.intp)
    path[-1] = end
    for t in range(n_stages - 1, -1, -1):
        path[t] = backs[t, path[t + 1]]
    return value, path


# ----------------------------------------------------------------------------
# DAG decomposition: barrier-synchronized levels
# ----------------------------------------------------------------------------

def decomposable_levels(
    pred_positions: Sequence[Sequence[int]],
    n_devices: int,
    max_level_states: int = DEFAULT_MAX_LEVEL_STATES,
) -> tuple[list[list[int]] | None, str | None]:
    """Topological levels of a barrier-decomposable DAG, or ``(None, reason)``.

    The condition under which the level DP is exact: every task's predecessors
    all sit on the immediately previous level, and each level is either fed by
    a width-one level or joins it completely (full bipartite fan-in).  Then
    every task of a level becomes ready at the same scalar barrier, and the
    makespan decomposes over consecutive level assignments.
    """
    level_of: list[int] = []
    for preds in pred_positions:
        level_of.append(0 if not preds else 1 + max(level_of[p] for p in preds))
    levels: list[list[int]] = [[] for _ in range(max(level_of) + 1)]
    for position, level in enumerate(level_of):
        levels[level].append(position)
    for index in range(1, len(levels)):
        prev = levels[index - 1]
        for t in levels[index]:
            if any(level_of[p] != index - 1 for p in pred_positions[t]):
                return None, (
                    f"task at position {t} depends across non-consecutive levels; "
                    "the level barrier does not decompose"
                )
            if len(prev) > 1 and list(pred_positions[t]) != prev:
                return None, (
                    f"task at position {t} joins only part of level {index - 1}; "
                    "partial fan-in breaks the level barrier"
                )
    for level in levels:
        states = n_devices ** len(level)
        if states > max_level_states:
            return None, (
                f"a level of width {len(level)} needs {states} joint states "
                f"(> max_level_states={max_level_states})"
            )
    return levels, None


def _level_serialize(
    tables: GraphCostTables,
    level: Sequence[int],
    prev_level: Sequence[int] | None,
    states_prev: np.ndarray | None,
    states: np.ndarray,
    base: np.ndarray,
) -> np.ndarray:
    """Barrier after one level, per (previous state, level state) pair.

    Replays the engine's schedule for the level's tasks in topological order
    starting from barrier ``base[a]``: same-device tasks serialize
    (``avail`` starts at the barrier -- cross-level availability never exceeds
    it), durations fold ``busy + (hostio + pen)`` with fan-in penalties summed
    in canonical edge order, and the returned ``(A, B)`` array is the max
    finish -- the next barrier, computed through the engine's exact float op
    sequence.  Infeasible (missing-link) combinations come out ``+inf``.
    """
    A = 1 if states_prev is None else states_prev.shape[0]
    B = states.shape[0]
    m = tables.n_devices
    rows = np.arange(B)
    avail = np.empty((A, B, m))
    avail[...] = base[:, None, None]
    column_of = {p: c for c, p in enumerate(prev_level)} if prev_level else {}
    barrier: np.ndarray | None = None
    for j, t in enumerate(level):
        dst = states[:, j]
        preds = tables.pred_positions[t]
        if preds:
            pen = np.zeros((A, B))
            for p in preds:
                pen += tables.penalty_time[states_prev[:, column_of[p]][:, None], dst[None, :]]
        else:
            pen = tables.first_penalty_time[dst][None, :]
        dur = tables.busy[t, dst][None, :] + (tables.hostio_time[t, dst][None, :] + pen)
        dur = np.where(np.isnan(dur), np.inf, dur)
        start = avail[:, rows, dst]
        finish = start + dur
        avail[:, rows, dst] = finish
        barrier = finish if barrier is None else np.maximum(barrier, finish)
    return barrier


def _level_transition(
    tables: GraphCostTables,
    level: Sequence[int],
    prev_level: Sequence[int] | None,
    states_prev: np.ndarray | None,
    states: np.ndarray,
    weights: tuple[float, float, float],
    consts: tuple[float, np.ndarray, np.ndarray, np.ndarray],
) -> np.ndarray:
    """Additive transition cost of one level, per (previous state, state) pair.

    ``node + edge + coeff * delta`` where ``delta`` is the level's barrier
    advance (the serialization with base 0) and ``coeff = tw + ew * P_idle_total``
    folds the time-proportional part of time and idle energy.  Exact in real
    arithmetic on barrier-decomposable graphs (winners are re-scored through
    the engine).
    """
    tw, ew, cw = weights
    p_all, power_active, power_idle, cost_per_hour = consts
    A = 1 if states_prev is None else states_prev.shape[0]
    B = states.shape[0]
    column_of = {p: c for c, p in enumerate(prev_level)} if prev_level else {}
    delta = _level_serialize(tables, level, prev_level, states_prev, states, np.zeros(A))
    total = np.zeros((A, B))
    for j, t in enumerate(level):
        dst = states[:, j]
        if ew:
            node = (
                tables.energy_in[t, dst]
                + tables.energy_out[t, dst]
                + tables.busy[t, dst] * (power_active[dst] - power_idle[dst])
            )
            preds = tables.pred_positions[t]
            if preds:
                edge = np.zeros((A, B))
                for p in preds:
                    edge += tables.penalty_energy[
                        states_prev[:, column_of[p]][:, None], dst[None, :]
                    ]
            else:
                edge = tables.first_penalty_energy[dst][None, :]
            total = total + ew * (node[None, :] + edge)
        if cw:
            total = total + cw * ((cost_per_hour[dst] * tables.busy[t, dst]) / 3600.0)[None, :]
    coeff = tw + ew * p_all
    if coeff:
        total = total + coeff * delta
    # delta is +inf exactly where the combination crosses a missing link; use
    # it as the feasibility mask even when coeff == 0 (pure cost has no link
    # term of its own but the engine still rejects such placements).
    return np.where(np.isfinite(delta), np.where(np.isnan(total), np.inf, total), np.inf)


def _plan_levels(
    tables: GraphCostTables,
    levels: list[list[int]],
    weights: tuple[float, float, float],
) -> tuple[float, np.ndarray, int]:
    """Level DP over joint level assignments; returns ``(value, path, n_states)``.

    Pure ``time`` propagates absolute barriers through the engine's max/plus
    fold (monotone in the barrier, so taking the per-state minimum barrier is
    Bellman-exact -- and the optimal value is bitwise the engine's makespan).
    Other objectives accumulate the additive level transitions.
    """
    m = tables.n_devices
    maxplus = weights == (1.0, 0.0, 0.0)
    consts = _device_arrays(tables)
    states = [placement_matrix(len(level), m).astype(np.intp) for level in levels]
    n_states = sum(s.shape[0] for s in states)

    if maxplus:
        acc = _level_serialize(tables, levels[0], None, None, states[0], np.zeros(1))[0]
    else:
        acc = _level_transition(tables, levels[0], None, None, states[0], weights, consts)[0]
    backs: list[np.ndarray] = []
    for index in range(1, len(levels)):
        prev_states, next_states = states[index - 1], states[index]
        if maxplus:
            cand = _level_serialize(
                tables, levels[index], levels[index - 1], prev_states, next_states, acc
            )
        else:
            trans = _level_transition(
                tables, levels[index], levels[index - 1], prev_states, next_states, weights, consts
            )
            cand = acc[:, None] + trans
        arg = cand.argmin(axis=0)
        backs.append(arg)
        acc = cand[arg, np.arange(next_states.shape[0])]
    end = int(acc.argmin())
    value = float(acc[end])

    state_path = [0] * len(levels)
    state_path[-1] = end
    for index in range(len(levels) - 2, -1, -1):
        state_path[index] = int(backs[index][state_path[index + 1]])
    path = np.empty(tables.n_tasks, dtype=np.intp)
    for index, level in enumerate(levels):
        assignment = states[index][state_path[index]]
        for j, t in enumerate(level):
            path[t] = assignment[j]
    return value, path, n_states


# ----------------------------------------------------------------------------
# Plan results
# ----------------------------------------------------------------------------

@dataclass(frozen=True)
class PlanResult:
    """A provably-optimal placement for one scalar objective.

    ``value`` is the engine's exact (bitwise) objective value of the chosen
    placement -- the planner re-scores its winner through
    :func:`~repro.devices.batch.execute_placements`; ``dp_value`` is the DP
    accumulation (bitwise equal to ``value`` for pure ``time``, equal in real
    arithmetic otherwise).  ``method`` records how the optimum was obtained:
    ``"chain-dp"`` / ``"level-dp"`` (polynomial) or ``"enumeration"`` (the
    streaming fallback, with ``fallback_reason`` set).
    """

    objective: str
    placement: tuple[str, ...]
    label: str
    value: float
    dp_value: float
    method: str
    exact: bool
    fallback_reason: str | None
    n_tasks: int
    aliases: tuple[str, ...]
    #: Lattice states evaluated by the DP (or placements, for enumeration).
    n_states: int
    batch: "object"

    @property
    def space_size(self) -> int:
        """``m**k`` -- the space the DP did *not* have to enumerate."""
        return space_size(self.n_tasks, len(self.aliases))

    @property
    def placement_index(self) -> int:
        """Lexicographic index of the placement (a Python int; may exceed int64)."""
        index = 0
        alias_position = {alias: i for i, alias in enumerate(self.aliases)}
        for alias in self.placement:
            index = index * len(self.aliases) + alias_position[alias]
        return index

    def record(self):
        """The full sequential-equivalent execution record of the placement."""
        return self.batch.record(0)

    def summary(self) -> str:
        kind = "exact optimum" if self.exact else "selection"
        lines = [
            f"{kind} by {self.objective}: {self.label} ({self.value:.6g}) via "
            f"{self.method} over {self.n_states} states "
            f"(space: {len(self.aliases)}**{self.n_tasks})"
        ]
        if self.fallback_reason:
            lines.append(f"  fallback: {self.fallback_reason}")
        return "\n".join(lines)


@dataclass(frozen=True)
class GridPlanResult:
    """A provably-optimal placement for one robust (scenario-grid) objective.

    ``value`` is the exact robust value of the placement (per-scenario engine
    values reduced by the robust objective); ``scenario_values`` the engine's
    per-scenario values; ``baselines`` the exact per-scenario optima (regret
    only).  ``n_labels`` counts the Pareto-label states the min-max DP kept
    (0 for the scalar expected-value DP).
    """

    objective: str
    base: str
    placement: tuple[str, ...]
    label: str
    value: float
    dp_value: float
    method: str
    exact: bool
    scenario_names: tuple[str, ...]
    scenario_values: np.ndarray
    baselines: np.ndarray | None
    n_tasks: int
    aliases: tuple[str, ...]
    n_labels: int

    @property
    def space_size(self) -> int:
        return space_size(self.n_tasks, len(self.aliases))

    def summary(self) -> str:
        per_scenario = ", ".join(
            f"{name}={value:.6g}" for name, value in zip(self.scenario_names, self.scenario_values)
        )
        return (
            f"exact robust optimum by {self.objective}: {self.label} "
            f"({self.value:.6g}) via {self.method}; per-scenario: {per_scenario}"
        )


# ----------------------------------------------------------------------------
# Chain / DAG planning
# ----------------------------------------------------------------------------

def _infeasible_error(tables: ChainCostTables, name: str) -> KeyError:
    return KeyError(
        f"no feasible placement under objective {name!r}: every assignment of "
        f"{tables.n_tasks} tasks over {list(tables.aliases)} crosses a missing "
        f"platform link (missing: {sorted(tables.missing_links)})"
    )


def _plannable_reason(
    tables: ChainCostTables,
    objective: Objective,
    max_level_states: int,
) -> tuple[str | None, list[list[int]] | None, tuple[float, float, float] | None]:
    """Why the workload/objective pair cannot be DP-planned (``None`` if it can)."""
    weights = planner_objective_weights(objective)
    if weights is None:
        return (
            f"objective {objective.name!r} is not additive over the placement "
            "lattice (the planner handles 'time'/'energy'/'cost' and "
            "WeightedSumObjective)",
            None,
            None,
        )
    levels: list[list[int]] | None = None
    if isinstance(tables, GraphCostTables):
        levels, why = decomposable_levels(
            tables.pred_positions, tables.n_devices, max_level_states
        )
        if levels is None:
            return f"graph workload is not barrier-decomposable: {why}", None, weights
    return None, levels, weights


def plan_workload(
    executor: "SimulatedExecutor",
    workload: "TaskChain | TaskGraph",
    objective: "str | Objective" = "time",
    *,
    devices: Sequence[str] | None = None,
    method: str = "auto",
    max_level_states: int = DEFAULT_MAX_LEVEL_STATES,
    fallback_limit: int = DEFAULT_FALLBACK_LIMIT,
) -> PlanResult:
    """Provably-optimal placement of a workload under one scalar objective.

    ``method="dp"`` demands the polynomial planner (raising with the reason
    when the workload/objective pair is outside its boundary), ``"enumerate"``
    forces the streaming sweep, and ``"auto"`` (default) plans where the DP is
    exact and falls back to enumeration otherwise -- but only up to
    ``fallback_limit`` placements; beyond that an explicit error names both
    the fallback reason and the space size, rather than silently burning
    ``m**k`` work.
    """
    if method not in ("auto", "dp", "enumerate"):
        raise ValueError(f"unknown method {method!r}; choose 'auto', 'dp' or 'enumerate'")
    tables = executor.cost_tables(workload, devices)
    obj = as_objective(objective)
    reason, levels, weights = _plannable_reason(tables, obj, max_level_states)
    if method == "dp" and reason is not None:
        raise ValueError(f"method='dp' cannot plan this workload: {reason}")
    if method == "enumerate":
        reason = reason or "enumeration requested"
    if reason is not None:
        return _enumeration_plan(executor, workload, obj, devices, tables, reason, fallback_limit)

    if isinstance(tables, GraphCostTables):
        dp_value, path, n_states = _plan_levels(tables, levels, weights)
        dp_method = "level-dp"
    else:
        first, trans = _chain_lattice(tables, weights)
        dp_value, path = _viterbi(first, trans)
        n_states = tables.n_tasks * tables.n_devices
        dp_method = "chain-dp"
    if not np.isfinite(dp_value):
        raise _infeasible_error(tables, obj.name)
    batch = execute_placements(tables, path[None, :])
    value = float(obj(batch)[0])
    return PlanResult(
        objective=obj.name,
        placement=tuple(tables.aliases[d] for d in path),
        label=placement_labels(path[None, :], tables.aliases)[0],
        value=value,
        dp_value=dp_value,
        method=dp_method,
        exact=True,
        fallback_reason=None,
        n_tasks=tables.n_tasks,
        aliases=tables.aliases,
        n_states=n_states,
        batch=batch,
    )


def _enumeration_plan(
    executor: "SimulatedExecutor",
    workload: "TaskChain | TaskGraph",
    objective: Objective,
    devices: Sequence[str] | None,
    tables: ChainCostTables,
    reason: str,
    fallback_limit: int,
) -> PlanResult:
    """The documented fallback: a streaming top-1 sweep of the whole space."""
    total = space_size(tables.n_tasks, tables.n_devices)
    if total > fallback_limit:
        raise ValueError(
            f"cannot plan this workload exactly ({reason}) and the fallback "
            f"would enumerate {total} placements (> fallback_limit="
            f"{fallback_limit}); use search_space/search_grid to stream the "
            "space explicitly, or raise fallback_limit"
        )
    from .driver import search_space

    result = search_space(
        executor,
        workload,
        objectives=(objective,),
        top_k=1,
        frontier=None,
        devices=devices,
    )
    selection = result.top[objective.name]
    if not len(selection):
        raise _infeasible_error(tables, objective.name)
    row = indices_to_matrix(selection.indices[:1], tables.n_tasks, tables.n_devices)
    batch = execute_placements(tables, row)
    return PlanResult(
        objective=objective.name,
        placement=tuple(tables.aliases[d] for d in row[0]),
        label=selection.labels[0],
        value=float(selection.values[0]),
        dp_value=float(selection.values[0]),
        method="enumeration",
        exact=True,
        fallback_reason=reason,
        n_tasks=tables.n_tasks,
        aliases=tables.aliases,
        n_states=total,
        batch=batch,
    )


def dispatch_reason(
    tables: ChainCostTables,
    objectives: Sequence[Objective],
    *,
    top_k: int,
    frontier: Sequence[Objective] | None,
    constraints: Sequence[object],
    start: int,
    stop: int,
    total: int,
    max_level_states: int = DEFAULT_MAX_LEVEL_STATES,
) -> str | None:
    """Why ``search_space(..., method="planner")`` cannot serve this request.

    ``None`` means the planner can answer it exactly; otherwise the returned
    string names the first violated requirement (the documented boundary:
    top-1 selection over additive objectives on the full space, no frontier,
    no constraints, decomposable workload).
    """
    if constraints:
        return "feasibility constraints require streaming enumeration"
    if frontier:
        return "a Pareto frontier requires streaming enumeration"
    if top_k != 1:
        return f"the planner proves only the optimum (top_k=1), not top_k={top_k}"
    if (start, stop) != (0, total):
        return "the planner optimises over the full space, not an index slice"
    for objective in objectives:
        reason, _, _ = _plannable_reason(tables, objective, max_level_states)
        if reason is not None:
            return reason
    return None


# ----------------------------------------------------------------------------
# Scenario-grid (robust) planning
# ----------------------------------------------------------------------------

def _grid_lattices(
    tables: "GridCostTables", weights: tuple[float, float, float]
) -> tuple[np.ndarray, np.ndarray]:
    """Per-scenario compiled lattices, stacked ``(s, m)`` / ``(s, k-1, m, m)``."""
    firsts = []
    transes = []
    for index in range(tables.n_scenarios):
        first, trans = _chain_lattice(tables.table(index), weights)
        firsts.append(first)
        transes.append(trans)
    return np.stack(firsts), np.stack(transes)


def _grid_chain_tables(
    workload: "TaskChain | TaskGraph", tables: "GridCostTables"
) -> str | None:
    """Why the robust planner cannot handle this workload (chains only)."""
    from ..tasks.graph import TaskGraph

    if isinstance(workload, TaskGraph) and not workload.is_linear:
        return (
            "robust planning is exact for chain workloads only; fall back to "
            "search_grid for non-linear graphs"
        )
    return None


def grid_baselines(tables: "GridCostTables", base: "str | Objective") -> np.ndarray:
    """Exact per-scenario optima of a plannable base objective (one DP each).

    Replaces :func:`~repro.search.robust.search_grid`'s first streaming pass
    for regret objectives: each scenario's minimum comes from a chain DP over
    that scenario's lattice, re-scored through the engine so the returned
    value is bitwise the minimum the streaming sweep would have found.
    """
    obj = as_objective(base)
    weights = planner_objective_weights(obj)
    if weights is None:
        raise ValueError(
            f"base objective {obj.name!r} is not DP-plannable; stream the "
            "baseline pass instead"
        )
    out = np.empty(tables.n_scenarios)
    for index in range(tables.n_scenarios):
        scenario_tables = tables.table(index)
        first, trans = _chain_lattice(scenario_tables, weights)
        dp_value, path = _viterbi(first, trans)
        if not np.isfinite(dp_value):
            raise _infeasible_error(scenario_tables, obj.name)
        batch = execute_placements(scenario_tables, path[None, :])
        out[index] = float(obj(batch)[0])
    return out


def _label_dp(
    firsts: np.ndarray,
    transes: np.ndarray,
    score: Callable[[np.ndarray], np.ndarray],
    max_labels: int,
) -> tuple[float, np.ndarray, int]:
    """Exact min-max DP: per (stage, device), the Pareto front of per-scenario
    prefix-cost vectors.

    Dominance pruning is sound because the final score (a max over scenario
    components, possibly shifted by baselines) is monotone non-decreasing in
    every component: a dominated prefix can never finish strictly better.
    Returns ``(value, device path, peak label count)``; raises when the label
    frontier exceeds ``max_labels`` (the caller falls back to streaming).
    """
    s, m = firsts.shape[0], firsts.shape[1]
    labels = firsts.T.copy()  # (N, s): one label per start device
    device_of = np.arange(m, dtype=np.intp)
    feasible = np.isfinite(labels).all(axis=1)
    labels, device_of = labels[feasible], device_of[feasible]
    parents: list[np.ndarray] = []
    devices_by_stage: list[np.ndarray] = [device_of]
    peak = labels.shape[0]
    n_stages = transes.shape[1]
    for t in range(n_stages):
        new_labels: list[np.ndarray] = []
        new_parent: list[np.ndarray] = []
        new_device: list[np.ndarray] = []
        for d2 in range(m):
            step = transes[:, t, device_of, d2].T  # (N, s)
            cand = labels + step
            finite = np.isfinite(cand).all(axis=1)
            if not finite.any():
                continue
            candidates = np.flatnonzero(finite)
            keep = candidates[pareto_mask(cand[candidates])]
            new_labels.append(cand[keep])
            new_parent.append(keep)
            new_device.append(np.full(keep.size, d2, dtype=np.intp))
        if not new_labels:
            raise KeyError(
                "no feasible placement: every path through the scenario lattice "
                "crosses a missing link"
            )
        labels = np.concatenate(new_labels)
        parent = np.concatenate(new_parent)
        device_of = np.concatenate(new_device)
        peak = max(peak, labels.shape[0])
        if labels.shape[0] > max_labels:
            raise ValueError(
                f"the Pareto-label frontier grew to {labels.shape[0]} states "
                f"(> max_labels={max_labels}); fall back to search_grid's "
                "streaming enumeration for this grid"
            )
        parents.append(parent)
        devices_by_stage.append(device_of)
    if not labels.size:
        raise KeyError(
            "no feasible placement: every path through the scenario lattice "
            "crosses a missing link"
        )
    scores = score(labels)
    best = int(scores.argmin())
    value = float(scores[best])
    path = np.empty(n_stages + 1, dtype=np.intp)
    cursor = best
    for t in range(n_stages, 0, -1):
        path[t] = devices_by_stage[t][cursor]
        cursor = int(parents[t - 1][cursor])
    path[0] = devices_by_stage[0][cursor]
    return value, path, peak


def plan_grid(
    executor: "SimulatedExecutor",
    workload: "TaskChain | TaskGraph",
    scenarios,
    objective="time",
    *,
    devices: Sequence[str] | None = None,
    max_labels: int = DEFAULT_MAX_LABELS,
) -> GridPlanResult:
    """Provably-optimal robust placement of a chain over a scenario grid.

    ``objective`` is a metric name (planned by worst case, matching
    :func:`~repro.search.robust.search_grid`) or a
    :class:`~repro.search.robust.RobustObjective` whose base is DP-plannable.
    Expected value reduces to one scalar DP over the weight-averaged lattice;
    worst case and regret run the exact Pareto-label DP (regret's baselines
    are each scenario's own DP optimum).  The winner is re-scored through
    :func:`~repro.devices.grid.execute_placements_grid`, so ``value`` and
    ``scenario_values`` are bitwise the enumerator's values for that
    placement.  Non-linear graphs and non-plannable bases raise with a
    pointer to ``search_grid``.
    """
    from ..devices.grid import execute_placements_grid
    from .robust import (
        ExpectedValueObjective,
        RegretObjective,
        RobustObjective,
        WorstCaseObjective,
        _scenario_entries,
    )

    if isinstance(objective, str):
        robust: RobustObjective = WorstCaseObjective(base=objective)
    elif isinstance(objective, RobustObjective):
        robust = objective
    else:
        raise TypeError(
            f"cannot interpret {objective!r} as a robust objective; pass a metric "
            "name (planned by worst case) or a RobustObjective instance"
        )
    base_obj = as_objective(robust.base)
    weights = planner_objective_weights(base_obj)
    if weights is None:
        raise ValueError(
            f"base objective {base_obj.name!r} is not DP-plannable; fall back "
            "to search_grid's streaming enumeration"
        )

    grid, scenario_names, grid_weights = _scenario_entries(scenarios)
    # Served from the executor's content-addressed table cache: keyed by the
    # (base platform, scenario grid) fingerprints, so a sweep re-planning the
    # same configuration skips the rebuild (grids build in array space).
    tables = executor.grid_cost_tables(workload, grid, devices)
    reason = _grid_chain_tables(workload, tables)
    if reason is not None:
        raise ValueError(reason)

    firsts, transes = _grid_lattices(tables, weights)
    baselines: np.ndarray | None = None
    n_labels = 0
    if isinstance(robust, ExpectedValueObjective):
        scenario_weights = (
            np.array(robust.weights, dtype=float) if robust.weights is not None else grid_weights
        )
        if scenario_weights.shape[0] != tables.n_scenarios:
            raise ValueError(
                f"expected {tables.n_scenarios} scenario weights, got {scenario_weights.shape[0]}"
            )
        share = scenario_weights / scenario_weights.sum()
        first = np.einsum("s,sm->m", share, firsts)
        trans = np.einsum("s,skab->kab", share, transes)
        # A zero-weight scenario times an infeasible (+inf) lattice entry is
        # NaN; the entry is infeasible for every scenario alike, so pin +inf.
        first = np.where(np.isnan(first), np.inf, first)
        trans = np.where(np.isnan(trans), np.inf, trans)
        dp_value, path = _viterbi(first, trans)
        if not np.isfinite(dp_value):
            raise _infeasible_error(tables.table(0), robust.name)
        method = "chain-dp"
        robust = robust if robust.weights is not None else robust.with_weights(grid_weights)
    elif isinstance(robust, RegretObjective):
        baselines = grid_baselines(tables, robust.base)
        fixed = baselines

        def regret_score(labels: np.ndarray) -> np.ndarray:
            return (labels - fixed[None, :]).max(axis=1)

        dp_value, path, n_labels = _label_dp(firsts, transes, regret_score, max_labels)
        method = "label-dp"
    elif isinstance(robust, WorstCaseObjective):

        def worst_score(labels: np.ndarray) -> np.ndarray:
            return labels.max(axis=1)

        dp_value, path, n_labels = _label_dp(firsts, transes, worst_score, max_labels)
        method = "label-dp"
    else:
        raise ValueError(
            f"robust objective {robust.name!r} is not DP-plannable; fall back "
            "to search_grid's streaming enumeration"
        )

    grid = execute_placements_grid(tables, path[None, :])
    values = robust.values(grid)  # (s, 1)
    reduced = robust.reduce(values, baselines) if robust.requires_baseline else robust.reduce(values)
    return GridPlanResult(
        objective=robust.name,
        base=base_obj.name,
        placement=tuple(tables.aliases[d] for d in path),
        label=placement_labels(path[None, :].astype(np.intp), tables.aliases)[0],
        value=float(reduced[0]),
        dp_value=dp_value,
        method=method,
        exact=True,
        scenario_names=scenario_names,
        scenario_values=values[:, 0].copy(),
        baselines=None if baselines is None else baselines.copy(),
        n_tasks=tables.n_tasks,
        aliases=tables.aliases,
        n_labels=n_labels,
    )
