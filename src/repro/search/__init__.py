"""Streaming placement-space search & selection (the conclusion's "subset of solutions").

The paper's methodology meets an ``m**k`` wall: the batch engine makes
*executing* every placement fast, but selecting winners used to require a
fully materialised ``label -> AlgorithmProfile`` mapping.  This subpackage
selects directly from :class:`~repro.devices.batch.BatchExecutionResult`
chunks in bounded memory: top-K under scalar objectives, an incremental
Pareto frontier, and vectorized feasibility constraints, with optional
multi-process sharding of the placement range (:func:`search_space`).
``repro.selection.pareto`` keeps the materialised-profiles facade over the
same dominance kernel (:func:`pareto_mask`).

:mod:`repro.search.planner` escapes enumeration altogether where the
objective is additive over the placement lattice: :func:`plan_workload` is an
exact ``O(k * m**2)`` Viterbi DP (chains; level-DP on barrier-decomposable
graphs) and :func:`plan_grid` its robust scenario-grid counterpart, both
differential-pinned against the streaming enumerators.
"""

from .constraints import (
    Constraint,
    CostBudgetConstraint,
    DeadlineConstraint,
    EnergyBudgetConstraint,
    MaxOffloadedConstraint,
    SuccessProbabilityConstraint,
    feasible_mask,
)
from .driver import (
    FrontierSelection,
    SearchResult,
    SpaceSearch,
    TopSelection,
    search_space,
)
from .frontier import StreamingFrontier
from .objectives import (
    DecisionObjective,
    MetricObjective,
    Objective,
    WeightedSumObjective,
    as_objective,
    as_objectives,
)
from .pareto import dominated_by, pareto_mask
from .planner import (
    GridPlanResult,
    PlanResult,
    dispatch_reason,
    grid_baselines,
    plan_grid,
    plan_workload,
    planner_objective_weights,
)
from .robust import (
    ExpectedValueObjective,
    GridSearchResult,
    QuantileObjective,
    RegretObjective,
    RobustObjective,
    ScenarioBest,
    SLOObjective,
    WorstCaseObjective,
    as_robust_objectives,
    search_grid,
)
from .topk import StreamingTopK

__all__ = [
    "search_space",
    "search_grid",
    "plan_workload",
    "plan_grid",
    "grid_baselines",
    "planner_objective_weights",
    "dispatch_reason",
    "PlanResult",
    "GridPlanResult",
    "GridSearchResult",
    "ScenarioBest",
    "RobustObjective",
    "WorstCaseObjective",
    "ExpectedValueObjective",
    "QuantileObjective",
    "SLOObjective",
    "RegretObjective",
    "as_robust_objectives",
    "SpaceSearch",
    "SearchResult",
    "TopSelection",
    "FrontierSelection",
    "StreamingTopK",
    "StreamingFrontier",
    "pareto_mask",
    "dominated_by",
    "Objective",
    "MetricObjective",
    "WeightedSumObjective",
    "DecisionObjective",
    "as_objective",
    "as_objectives",
    "Constraint",
    "DeadlineConstraint",
    "EnergyBudgetConstraint",
    "CostBudgetConstraint",
    "MaxOffloadedConstraint",
    "SuccessProbabilityConstraint",
    "feasible_mask",
]
