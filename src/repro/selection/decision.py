"""Cost/speed trade-off decision model (Section IV of the paper).

Once the algorithms are clustered into performance classes, selecting one is a
trade-off: the fastest class may require renting or powering an accelerator
("there is an operating cost involved in executing the code on the
accelerator"), whereas the all-on-device algorithm is free but slower.  The
:class:`DecisionModel` scores every algorithm by a weighted combination of its
expected execution time, its operating cost and (optionally) the confidence of
its cluster assignment, and picks the best one.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import TYPE_CHECKING, Callable, Mapping

import numpy as np

from ..core.scores import FinalClustering
from ..core.types import Label
from ..offload.execution import AlgorithmProfile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..devices.batch import BatchExecutionResult

__all__ = ["DecisionModel", "Decision"]


@dataclass(frozen=True)
class Decision:
    """Outcome of a decision-model evaluation."""

    label: Label
    objective: float
    time_s: float
    operating_cost: float
    cluster: int
    relative_score: float
    #: Objective values of every candidate, for inspection / reporting.
    #: Exposed as a read-only snapshot: a frozen Decision must not be
    #: corruptible through a mutable attribute after the fact.
    objectives: Mapping[Label, float]

    def __post_init__(self) -> None:
        object.__setattr__(self, "objectives", MappingProxyType(dict(self.objectives)))

    def __reduce__(self):
        # MappingProxyType cannot be pickled/deepcopied; reconstruct through
        # __init__ from a plain dict (re-wrapped by __post_init__).
        return (
            self.__class__,
            (
                self.label,
                self.objective,
                self.time_s,
                self.operating_cost,
                self.cluster,
                self.relative_score,
                dict(self.objectives),
            ),
        )

    def summary(self) -> str:
        return (
            f"selected {self.label} (cluster C{self.cluster}, score {self.relative_score:.2f}): "
            f"time {self.time_s * 1e3:.2f} ms, operating cost {self.operating_cost:.4g}, "
            f"objective {self.objective:.4g}"
        )


@dataclass
class DecisionModel:
    """Select an algorithm by trading execution time against operating cost.

    The objective minimised is::

        objective(alg) = time(alg) + cost_weight * operating_cost(alg)
                         + score_penalty * (1 - relative_score(alg))

    * ``cost_weight`` converts the operating cost (e.g. dollars per run) into
      seconds -- "the weight on the operating cost would depend on the
      importance of speed-up for the application".  A latency-critical
      application uses a small weight (every millisecond counts); a
      cost-sensitive deployment uses a large one.
    * ``score_penalty`` (seconds) discounts algorithms whose cluster
      assignment has low confidence.
    * ``restrict_to_clusters`` optionally limits the candidates to the given
      performance classes (e.g. only the fastest class).
    """

    cost_weight: float = 0.0
    score_penalty: float = 0.0
    restrict_to_clusters: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.cost_weight < 0:
            raise ValueError("cost_weight must be non-negative")
        if self.score_penalty < 0:
            raise ValueError("score_penalty must be non-negative")

    def objective(self, profile: AlgorithmProfile, relative_score: float) -> float:
        """Objective value of one candidate (lower is better)."""
        if not 0.0 <= relative_score <= 1.0:
            raise ValueError("relative_score must lie in [0, 1]")
        return (
            profile.time_s
            + self.cost_weight * profile.operating_cost
            + self.score_penalty * (1.0 - relative_score)
        )

    def batch_objective(
        self,
        batch: "BatchExecutionResult",
        relative_scores: np.ndarray | None = None,
    ) -> np.ndarray:
        """Vectorized objective over every placement of a batch (lower is better).

        The array form of :meth:`objective`, computed straight from the batch
        columns -- the hook the streaming search layer
        (:class:`repro.search.DecisionObjective`) ranks huge spaces with.
        ``relative_scores`` (one score per placement, in ``[0, 1]``) activates
        the cluster-confidence penalty; without it the penalty term is zero,
        as unclustered placements carry no confidence information.
        """
        values = batch.total_time_s + self.cost_weight * batch.operating_cost
        if relative_scores is not None:
            scores = np.asarray(relative_scores, dtype=float)
            if scores.shape != values.shape:
                raise ValueError(
                    f"expected {values.shape[0]} relative scores, got shape {scores.shape}"
                )
            if not np.all((scores >= 0.0) & (scores <= 1.0)):
                # NaN fails both comparisons, so it is rejected here exactly
                # like the scalar objective() rejects it.
                raise ValueError("relative scores must lie in [0, 1]")
            values = values + self.score_penalty * (1.0 - scores)
        return values

    def _candidates(self, clustering: FinalClustering) -> list[Label]:
        candidates: list[Label] = []
        for cluster, entries in clustering:
            if self.restrict_to_clusters is not None and cluster not in self.restrict_to_clusters:
                continue
            candidates.extend(entry.label for entry in entries)
        if not candidates:
            raise ValueError("no candidate algorithms after cluster restriction")
        return candidates

    def _decision(
        self,
        clustering: FinalClustering,
        objectives: dict[Label, float],
        time_and_cost: "Callable[[Label], tuple[float, float]]",
    ) -> Decision:
        best = min(objectives, key=lambda label: (objectives[label], str(label)))
        time_s, operating_cost = time_and_cost(best)
        return Decision(
            label=best,
            objective=objectives[best],
            time_s=time_s,
            operating_cost=operating_cost,
            cluster=clustering.cluster_of(best),
            relative_score=clustering.score_of(best),
            objectives=objectives,
        )

    def decide(
        self,
        clustering: FinalClustering,
        profiles: Mapping[Label, AlgorithmProfile],
    ) -> Decision:
        """Pick the algorithm minimising the objective among the admissible candidates."""
        candidates = self._candidates(clustering)
        missing = [label for label in candidates if label not in profiles]
        if missing:
            raise KeyError(f"missing profiles for algorithms {missing!r}")
        objectives = {
            label: self.objective(profiles[label], clustering.score_of(label))
            for label in candidates
        }
        return self._decision(
            clustering,
            objectives,
            lambda label: (profiles[label].time_s, profiles[label].operating_cost),
        )

    def decide_from_batch(
        self,
        clustering: FinalClustering,
        batch: "BatchExecutionResult",
    ) -> Decision:
        """:meth:`decide` straight from a batch execution -- no profile objects.

        ``batch`` must contain every clustered candidate (extra placements are
        ignored).  The batch columns are bitwise identical to the sequential
        profile fields and the objective uses the same arithmetic, so the
        returned Decision is identical to :meth:`decide` over materialised
        profiles of the same space.
        """
        candidates = self._candidates(clustering)
        row_of: dict[str, int] = {}
        for index, label in enumerate(batch.labels()):
            row_of.setdefault(label, index)
        missing = [label for label in candidates if str(label) not in row_of]
        if missing:
            raise KeyError(f"missing batch placements for algorithms {missing!r}")
        rows = np.array([row_of[str(label)] for label in candidates], dtype=np.intp)
        scores = np.array([clustering.score_of(label) for label in candidates], dtype=float)
        if not np.all((scores >= 0.0) & (scores <= 1.0)):
            raise ValueError("relative_score must lie in [0, 1]")
        values = self.batch_objective(batch, relative_scores=None)[rows]
        if self.score_penalty:
            values = values + self.score_penalty * (1.0 - scores)
        objectives = {label: float(value) for label, value in zip(candidates, values)}

        def time_and_cost(label: Label) -> tuple[float, float]:
            row = row_of[str(label)]
            return float(batch.total_time_s[row]), float(batch.operating_cost[row])

        return self._decision(clustering, objectives, time_and_cost)
