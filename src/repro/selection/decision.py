"""Cost/speed trade-off decision model (Section IV of the paper).

Once the algorithms are clustered into performance classes, selecting one is a
trade-off: the fastest class may require renting or powering an accelerator
("there is an operating cost involved in executing the code on the
accelerator"), whereas the all-on-device algorithm is free but slower.  The
:class:`DecisionModel` scores every algorithm by a weighted combination of its
expected execution time, its operating cost and (optionally) the confidence of
its cluster assignment, and picks the best one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..core.scores import FinalClustering
from ..core.types import Label
from ..offload.execution import AlgorithmProfile

__all__ = ["DecisionModel", "Decision"]


@dataclass(frozen=True)
class Decision:
    """Outcome of a decision-model evaluation."""

    label: Label
    objective: float
    time_s: float
    operating_cost: float
    cluster: int
    relative_score: float
    #: Objective values of every candidate, for inspection / reporting.
    objectives: Mapping[Label, float]

    def summary(self) -> str:
        return (
            f"selected {self.label} (cluster C{self.cluster}, score {self.relative_score:.2f}): "
            f"time {self.time_s * 1e3:.2f} ms, operating cost {self.operating_cost:.4g}, "
            f"objective {self.objective:.4g}"
        )


@dataclass
class DecisionModel:
    """Select an algorithm by trading execution time against operating cost.

    The objective minimised is::

        objective(alg) = time(alg) + cost_weight * operating_cost(alg)
                         + score_penalty * (1 - relative_score(alg))

    * ``cost_weight`` converts the operating cost (e.g. dollars per run) into
      seconds -- "the weight on the operating cost would depend on the
      importance of speed-up for the application".  A latency-critical
      application uses a small weight (every millisecond counts); a
      cost-sensitive deployment uses a large one.
    * ``score_penalty`` (seconds) discounts algorithms whose cluster
      assignment has low confidence.
    * ``restrict_to_clusters`` optionally limits the candidates to the given
      performance classes (e.g. only the fastest class).
    """

    cost_weight: float = 0.0
    score_penalty: float = 0.0
    restrict_to_clusters: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.cost_weight < 0:
            raise ValueError("cost_weight must be non-negative")
        if self.score_penalty < 0:
            raise ValueError("score_penalty must be non-negative")

    def objective(self, profile: AlgorithmProfile, relative_score: float) -> float:
        """Objective value of one candidate (lower is better)."""
        if not 0.0 <= relative_score <= 1.0:
            raise ValueError("relative_score must lie in [0, 1]")
        return (
            profile.time_s
            + self.cost_weight * profile.operating_cost
            + self.score_penalty * (1.0 - relative_score)
        )

    def decide(
        self,
        clustering: FinalClustering,
        profiles: Mapping[Label, AlgorithmProfile],
    ) -> Decision:
        """Pick the algorithm minimising the objective among the admissible candidates."""
        candidates: list[Label] = []
        for cluster, entries in clustering:
            if self.restrict_to_clusters is not None and cluster not in self.restrict_to_clusters:
                continue
            candidates.extend(entry.label for entry in entries)
        if not candidates:
            raise ValueError("no candidate algorithms after cluster restriction")
        missing = [label for label in candidates if label not in profiles]
        if missing:
            raise KeyError(f"missing profiles for algorithms {missing!r}")

        objectives = {
            label: self.objective(profiles[label], clustering.score_of(label))
            for label in candidates
        }
        best = min(objectives, key=lambda label: (objectives[label], str(label)))
        profile = profiles[best]
        return Decision(
            label=best,
            objective=objectives[best],
            time_s=profile.time_s,
            operating_cost=profile.operating_cost,
            cluster=clustering.cluster_of(best),
            relative_score=clustering.score_of(best),
            objectives=objectives,
        )
