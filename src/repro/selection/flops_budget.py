"""FLOPs-budget selection: pick, within a performance class, the algorithm that
keeps the edge device below a FLOP budget.

Section IV: "One way to control the resource utilization on a device is by
restricting the number of floating point operations (FLOPs) performed by the
scientific code on that device."  Given the clustering and the per-algorithm
FLOP attribution, this policy answers: *from the subset of equivalently fast
algorithms, which one performs at most X FLOPs on the energy-constrained
device?*
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..core.scores import FinalClustering
from ..core.types import Label
from ..offload.algorithm import OffloadedAlgorithm

__all__ = ["FlopsBudgetSelector", "BudgetedSelection"]


@dataclass(frozen=True)
class BudgetedSelection:
    """Result of a FLOPs-budget selection."""

    label: Label
    cluster: int
    device_flops: float
    budget: float
    #: True when the selection had to fall back to a slower cluster to satisfy the budget.
    degraded: bool

    @property
    def within_budget(self) -> bool:
        return self.device_flops <= self.budget


@dataclass
class FlopsBudgetSelector:
    """Select the fastest admissible algorithm under a per-device FLOP budget.

    Parameters
    ----------
    device:
        Alias of the budget-constrained device (typically the host/edge device).
    budget_flops:
        Maximum number of FLOPs the scientific code may execute on that device.
    allow_degradation:
        If True (default), when no algorithm of the fastest class satisfies the
        budget the selector walks down the cluster hierarchy; if False it
        raises instead.
    """

    device: str
    budget_flops: float
    allow_degradation: bool = True

    def __post_init__(self) -> None:
        if self.budget_flops < 0:
            raise ValueError("budget_flops must be non-negative")

    def select(
        self,
        clustering: FinalClustering,
        algorithms: Mapping[Label, OffloadedAlgorithm],
    ) -> BudgetedSelection:
        """Pick the algorithm: best cluster first, lowest device-FLOPs within a cluster."""
        missing = [label for label in clustering.labels if label not in algorithms]
        if missing:
            raise KeyError(f"missing algorithm definitions for {missing!r}")

        first_cluster = None
        for cluster, entries in clustering:
            if first_cluster is None:
                first_cluster = cluster
            admissible = [
                (algorithms[entry.label].flops_on(self.device), str(entry.label), entry.label)
                for entry in entries
                if algorithms[entry.label].flops_on(self.device) <= self.budget_flops
            ]
            if admissible:
                flops, _, label = min(admissible)
                return BudgetedSelection(
                    label=label,
                    cluster=cluster,
                    device_flops=flops,
                    budget=self.budget_flops,
                    degraded=cluster != first_cluster,
                )
            if not self.allow_degradation:
                break

        raise ValueError(
            f"no algorithm keeps device {self.device!r} within a budget of {self.budget_flops:g} FLOPs"
        )

    def best_effort(
        self,
        clustering: FinalClustering,
        algorithms: Mapping[Label, OffloadedAlgorithm],
    ) -> BudgetedSelection:
        """Like :meth:`select`, but if nothing satisfies the budget return the algorithm
        of the best cluster with the fewest FLOPs on the device (flagged as over budget)."""
        try:
            return self.select(clustering, algorithms)
        except ValueError:
            best_cluster = min(cluster for cluster, _ in clustering)
            entries = dict(iter(clustering))[best_cluster]
            flops, _, label = min(
                (algorithms[e.label].flops_on(self.device), str(e.label), e.label) for e in entries
            )
            return BudgetedSelection(
                label=label,
                cluster=best_cluster,
                device_flops=flops,
                budget=self.budget_flops,
                degraded=False,
            )
