"""Robust algorithm selection across a scenario grid (Section IV under drift).

The :class:`~repro.selection.decision.DecisionModel` trades execution time
against operating cost for *one* platform; under environment drift the same
trade-off must hold up across every condition the deployment may encounter.
:class:`RobustDecisionModel` composes the existing decision model with a
robustness criterion: the decision objective is evaluated per scenario
(through ``DecisionModel.batch_objective``, bitwise the same arithmetic as
single-platform decisions) and collapsed over the condition axis by worst
case, scenario-weighted expectation, minimax regret, a weighted tail
quantile (``"quantile"``, the fleet's p95/p99 view), or a weighted SLO miss
fraction (``"slo"``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from ..core.scores import FinalClustering
from ..core.types import Label
from ..search.robust import (
    ExpectedValueObjective,
    QuantileObjective,
    RegretObjective,
    SLOObjective,
    WorstCaseObjective,
)
from .decision import DecisionModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..devices.grid import GridExecutionResult

__all__ = ["RobustDecisionModel", "RobustDecision"]

_CRITERIA = ("worst_case", "expected", "regret", "quantile", "slo")


@dataclass(frozen=True)
class RobustDecision:
    """Outcome of a robust decision across a scenario grid."""

    label: Label
    criterion: str
    objective: float
    #: The winner's per-scenario decision-objective values, by scenario name.
    per_scenario: Mapping[str, float]
    cluster: int | None
    relative_score: float | None
    #: Robust objective values of every candidate (read-only snapshot).
    objectives: Mapping[Label, float]

    def __post_init__(self) -> None:
        object.__setattr__(self, "per_scenario", MappingProxyType(dict(self.per_scenario)))
        object.__setattr__(self, "objectives", MappingProxyType(dict(self.objectives)))

    def __reduce__(self):
        # MappingProxyType cannot be pickled; rebuild through __init__.
        return (
            self.__class__,
            (
                self.label,
                self.criterion,
                self.objective,
                dict(self.per_scenario),
                self.cluster,
                self.relative_score,
                dict(self.objectives),
            ),
        )

    def spread(self) -> float:
        """Best-to-worst spread of the winner's objective across scenarios."""
        values = list(self.per_scenario.values())
        return max(values) - min(values)

    def summary(self) -> str:
        cluster = "" if self.cluster is None else f" (cluster C{self.cluster})"
        return (
            f"selected {self.label}{cluster} by {self.criterion} across "
            f"{len(self.per_scenario)} scenarios: robust objective {self.objective:.4g}, "
            f"per-scenario spread {self.spread():.4g}"
        )


@dataclass
class RobustDecisionModel:
    """Pick the placement whose decision objective stays best under drift.

    Parameters
    ----------
    model:
        The single-platform :class:`DecisionModel` providing the per-scenario
        objective (``time + cost_weight * operating_cost``, plus the optional
        cluster-confidence penalty).
    criterion:
        ``"worst_case"`` minimises the maximum objective over scenarios;
        ``"expected"`` the (weighted) mean; ``"regret"`` the maximum gap to
        each scenario's own best candidate; ``"quantile"`` the weighted
        ``q``-quantile over scenarios (the fleet tail view); ``"slo"`` the
        weighted fraction of scenarios whose objective exceeds
        ``slo_budget``.
    weights:
        Scenario weights for ``"expected"`` / ``"quantile"`` / ``"slo"``
        (defaults to uniform; ignored by the other criteria).
    q:
        The quantile of the ``"quantile"`` criterion (default p95).
    slo_budget:
        The objective budget of the ``"slo"`` criterion (required for it).
    """

    model: DecisionModel = field(default_factory=DecisionModel)
    criterion: str = "worst_case"
    weights: Sequence[float] | None = None
    q: float = 0.95
    slo_budget: float | None = None

    def __post_init__(self) -> None:
        if self.criterion not in _CRITERIA:
            raise ValueError(
                f"unknown criterion {self.criterion!r}; choose one of {_CRITERIA}"
            )
        if self.weights is not None:
            # One validation source: the expectation objective owns the rules.
            self.weights = ExpectedValueObjective(weights=tuple(self.weights)).weights
        if self.criterion == "quantile":
            QuantileObjective(q=self.q)  # validate q early
        if self.criterion == "slo":
            if self.slo_budget is None:
                raise ValueError("criterion 'slo' needs slo_budget=<objective budget>")
            SLOObjective(budget=self.slo_budget)  # validate early

    # ------------------------------------------------------------------
    def scenario_objectives(self, grid: "GridExecutionResult") -> np.ndarray:
        """Decision objective per (scenario, placement), before reduction."""
        return np.stack([self.model.batch_objective(batch) for batch in grid.batches()], axis=0)

    def reduce(self, values: np.ndarray) -> np.ndarray:
        """Collapse ``(n_scenarios, n_candidates)`` objectives per the criterion.

        Delegates to the search layer's robust reductions -- one source of the
        worst-case / expectation / regret semantics.  Regret baselines are the
        per-scenario minima over the *same* candidate set.
        """
        if self.criterion == "worst_case":
            return WorstCaseObjective().reduce(values)
        if self.criterion == "expected":
            return ExpectedValueObjective(weights=self.weights).reduce(values)
        if self.criterion == "quantile":
            return QuantileObjective(q=self.q, weights=self.weights).reduce(values)
        if self.criterion == "slo":
            return SLOObjective(budget=self.slo_budget, weights=self.weights).reduce(values)
        return RegretObjective().reduce(values, values.min(axis=1))

    # ------------------------------------------------------------------
    def decide_grid(
        self,
        grid: "GridExecutionResult",
        clustering: FinalClustering | None = None,
    ) -> RobustDecision:
        """Pick the robustly best placement of a (materialised) grid.

        Without a clustering every placement of the grid is a candidate.
        With one, candidates are restricted exactly like
        :meth:`DecisionModel.decide_from_batch` (honouring
        ``restrict_to_clusters``) and the model's cluster-confidence penalty
        is added to the per-scenario objectives before reduction -- scores do
        not vary with conditions, so the penalty shifts every scenario
        equally.
        """
        labels = grid.labels()
        values = self.scenario_objectives(grid)
        cluster: int | None = None
        relative_score: float | None = None
        row_of: dict[str, int] = {}
        for index, label in enumerate(labels):
            row_of.setdefault(label, index)
        if clustering is None:
            candidates: list[Label] = list(dict.fromkeys(labels))
        else:
            candidates = self.model._candidates(clustering)
            missing = [label for label in candidates if str(label) not in row_of]
            if missing:
                raise KeyError(f"missing grid placements for algorithms {missing!r}")
            scores = np.array([clustering.score_of(label) for label in candidates], dtype=float)
            if not np.all((scores >= 0.0) & (scores <= 1.0)):
                raise ValueError("relative_score must lie in [0, 1]")
        rows = np.array([row_of[str(label)] for label in candidates], dtype=np.intp)
        values = values[:, rows]
        if clustering is not None and self.model.score_penalty:
            values = values + self.model.score_penalty * (1.0 - scores)[None, :]
        robust = self.reduce(values)
        objectives = {label: float(value) for label, value in zip(candidates, robust)}
        best = min(objectives, key=lambda label: (objectives[label], str(label)))
        best_column = candidates.index(best)
        per_scenario = {
            name: float(value)
            for name, value in zip(
                (platform.name for platform in grid.tables.platforms),
                values[:, best_column],
            )
        }
        if clustering is not None:
            cluster = clustering.cluster_of(best)
            relative_score = clustering.score_of(best)
        return RobustDecision(
            label=best,
            criterion=self.criterion,
            objective=objectives[best],
            per_scenario=per_scenario,
            cluster=cluster,
            relative_score=relative_score,
            objectives=objectives,
        )
