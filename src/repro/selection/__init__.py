"""Algorithm-selection policies built on top of the performance clusters (Section IV)."""

from .decision import Decision, DecisionModel
from .flops_budget import BudgetedSelection, FlopsBudgetSelector
from .pareto import DEFAULT_CRITERIA, Criterion, dominates, pareto_front
from .robust import RobustDecision, RobustDecisionModel
from .switching import EnergyAwareSwitcher, SwitchingPolicy, SwitchingStep, SwitchingTrace

__all__ = [
    "DecisionModel",
    "Decision",
    "RobustDecisionModel",
    "RobustDecision",
    "FlopsBudgetSelector",
    "BudgetedSelection",
    "EnergyAwareSwitcher",
    "SwitchingPolicy",
    "SwitchingTrace",
    "SwitchingStep",
    "pareto_front",
    "dominates",
    "Criterion",
    "DEFAULT_CRITERIA",
]
