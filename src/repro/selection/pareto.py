"""Multi-criteria (Pareto) view over the algorithm space.

Algorithm selection on the edge is rarely single-objective: execution time,
energy on the constrained device, data moved over the network and operating
cost all matter.  :func:`pareto_front` extracts the non-dominated algorithms
with respect to an arbitrary set of (minimised) criteria, which complements
the cluster-based selection of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from ..core.types import Label
from ..offload.execution import AlgorithmProfile

__all__ = ["Criterion", "pareto_front", "dominates", "DEFAULT_CRITERIA"]


@dataclass(frozen=True)
class Criterion:
    """A named, minimised objective extracted from an :class:`AlgorithmProfile`."""

    name: str
    extract: Callable[[AlgorithmProfile], float]

    def __call__(self, profile: AlgorithmProfile) -> float:
        return float(self.extract(profile))


#: Execution time, total energy and operating cost -- the three axes of Section IV.
DEFAULT_CRITERIA: tuple[Criterion, ...] = (
    Criterion("time_s", lambda p: p.time_s),
    Criterion("energy_j", lambda p: p.energy_j),
    Criterion("operating_cost", lambda p: p.operating_cost),
)


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True if objective vector ``a`` dominates ``b`` (<= everywhere, < somewhere)."""
    if len(a) != len(b):
        raise ValueError("objective vectors must have the same length")
    return all(x <= y for x, y in zip(a, b)) and any(x < y for x, y in zip(a, b))


def pareto_front(
    profiles: Mapping[Label, AlgorithmProfile],
    criteria: Sequence[Criterion] = DEFAULT_CRITERIA,
) -> dict[Label, dict[str, float]]:
    """Non-dominated algorithms and their objective values.

    Returns a mapping ``label -> {criterion name: value}`` containing only the
    algorithms not dominated by any other algorithm.
    """
    if not profiles:
        raise ValueError("at least one profile is required")
    if not criteria:
        raise ValueError("at least one criterion is required")
    vectors = {
        label: [criterion(profile) for criterion in criteria] for label, profile in profiles.items()
    }
    front: dict[Label, dict[str, float]] = {}
    for label, vector in vectors.items():
        if not any(dominates(other, vector) for other_label, other in vectors.items() if other_label != label):
            front[label] = {criterion.name: value for criterion, value in zip(criteria, vector)}
    return front
