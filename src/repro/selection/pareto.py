"""Multi-criteria (Pareto) view over the algorithm space.

Algorithm selection on the edge is rarely single-objective: execution time,
energy on the constrained device, data moved over the network and operating
cost all matter.  :func:`pareto_front` extracts the non-dominated algorithms
with respect to an arbitrary set of (minimised) criteria, which complements
the cluster-based selection of the paper.

This module is the thin *materialised-profiles facade* over the vectorized
dominance kernel in :mod:`repro.search.pareto`: criterion values are stacked
into one ``(p, c)`` matrix and the non-dominated mask is computed by
:func:`~repro.search.pareto.pareto_mask` (the previous implementation called
:func:`dominates` for every ordered pair -- O(p**2 * c) in pure Python).  For
spaces too large to materialise profiles at all, stream chunks through
:class:`repro.search.SpaceSearch` instead; both paths share the same kernel
and return element-for-element identical frontiers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from ..core.types import Label
from ..offload.execution import AlgorithmProfile
from ..search.pareto import pareto_mask

__all__ = ["Criterion", "pareto_front", "dominates", "DEFAULT_CRITERIA"]


@dataclass(frozen=True)
class Criterion:
    """A named, minimised objective extracted from an :class:`AlgorithmProfile`."""

    name: str
    extract: Callable[[AlgorithmProfile], float]

    def __call__(self, profile: AlgorithmProfile) -> float:
        return float(self.extract(profile))


#: Execution time, total energy and operating cost -- the three axes of Section IV.
DEFAULT_CRITERIA: tuple[Criterion, ...] = (
    Criterion("time_s", lambda p: p.time_s),
    Criterion("energy_j", lambda p: p.energy_j),
    Criterion("operating_cost", lambda p: p.operating_cost),
)


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True if objective vector ``a`` dominates ``b`` (<= everywhere, < somewhere)."""
    if len(a) != len(b):
        raise ValueError("objective vectors must have the same length")
    return all(x <= y for x, y in zip(a, b)) and any(x < y for x, y in zip(a, b))


def pareto_front(
    profiles: Mapping[Label, AlgorithmProfile],
    criteria: Sequence[Criterion] = DEFAULT_CRITERIA,
) -> dict[Label, dict[str, float]]:
    """Non-dominated algorithms and their objective values.

    Returns a mapping ``label -> {criterion name: value}`` containing only the
    algorithms not dominated by any other algorithm.
    """
    if not profiles:
        raise ValueError("at least one profile is required")
    if not criteria:
        raise ValueError("at least one criterion is required")
    labels = list(profiles)
    values = np.array(
        [[criterion(profiles[label]) for criterion in criteria] for label in labels],
        dtype=float,
    )
    mask = pareto_mask(values)
    return {
        label: {criterion.name: float(value) for criterion, value in zip(criteria, row)}
        for label, row, keep in zip(labels, values, mask)
        if keep
    }
