"""Energy-aware algorithm switching (the duty-cycle scenario of Section IV).

"Consider another application where it is ideal to run the whole code on the
edge device (algDDD); however, the device cannot persistently handle all the
computations because of energy constraints.  Therefore, in regular intervals,
the amount of computations on the edge has to be reduced for a small period of
time.  In such a case, one can switch to algDAA [...], as it offloads most of
the computations to the accelerator, and then switch back to algDDD when the
device cools down."

:class:`EnergyAwareSwitcher` implements exactly that policy as a discrete
simulation over successive invocations of the scientific code: the edge device
accumulates an energy (thermal) budget while the preferred algorithm runs;
when the accumulated energy crosses the threshold, the policy switches to the
cool-down algorithm until the budget has drained.

Draining only happens when ``dissipation_j_per_invocation`` exceeds the
cool-down algorithm's own draw on the constrained device (the accumulator
moves by ``cooldown_draw - dissipation`` per cooling invocation).  A
configuration whose cool-down phase cannot drain would silently run the
cool-down algorithm forever, so :class:`EnergyAwareSwitcher` rejects it at
construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..core.types import Label
from ..offload.execution import AlgorithmProfile

__all__ = ["SwitchingPolicy", "EnergyAwareSwitcher", "SwitchingTrace", "SwitchingStep"]


@dataclass(frozen=True)
class SwitchingStep:
    """One invocation of the scientific code under the switching policy."""

    index: int
    algorithm: Label
    device_energy_j: float
    accumulated_j: float
    execution_time_s: float
    switched: bool


@dataclass(frozen=True)
class SwitchingTrace:
    """Full trace of a switching simulation."""

    steps: tuple[SwitchingStep, ...]
    preferred: Label
    cooldown: Label

    @property
    def n_invocations(self) -> int:
        return len(self.steps)

    @property
    def n_switches(self) -> int:
        return sum(1 for step in self.steps if step.switched)

    @property
    def total_time_s(self) -> float:
        return sum(step.execution_time_s for step in self.steps)

    @property
    def total_device_energy_j(self) -> float:
        return sum(step.device_energy_j for step in self.steps)

    def usage_fraction(self, label: Label) -> float:
        """Fraction of invocations executed with the given algorithm."""
        if not self.steps:
            return 0.0
        return sum(1 for step in self.steps if step.algorithm == label) / len(self.steps)

    @property
    def peak_accumulated_j(self) -> float:
        return max((step.accumulated_j for step in self.steps), default=0.0)


@dataclass(frozen=True)
class SwitchingPolicy:
    """Static description of the duty-cycle policy."""

    #: Algorithm to run while the device energy budget allows it (e.g. ``"DDD"``).
    preferred: Label
    #: Algorithm to run while the device cools down (e.g. ``"DAA"``).
    cooldown: Label
    #: Device whose energy is constrained (the edge device).
    device: str
    #: Accumulated device energy (J) at which the policy switches to the cool-down algorithm.
    threshold_j: float
    #: Energy (J) drained from the accumulator per invocation while cooling down
    #: (passive dissipation in addition to the smaller active consumption).
    dissipation_j_per_invocation: float = 0.0

    def __post_init__(self) -> None:
        if self.threshold_j <= 0:
            raise ValueError("threshold_j must be positive")
        if self.dissipation_j_per_invocation < 0:
            raise ValueError("dissipation_j_per_invocation must be non-negative")


@dataclass
class EnergyAwareSwitcher:
    """Simulate the duty-cycle switching policy over repeated code invocations.

    Requires a *net drain* while cooling: ``policy.dissipation_j_per_invocation``
    must be strictly greater than the cool-down algorithm's energy draw on the
    constrained device whenever the preferred algorithm can ever trigger the
    threshold.  Otherwise the accumulator is monotonically non-decreasing
    during cool-down and the trace would silently run the cool-down algorithm
    forever -- contradicting the paper's "switch back when the device cools
    down" scenario -- so such configurations raise ``ValueError`` here instead.
    """

    policy: SwitchingPolicy
    profiles: Mapping[Label, AlgorithmProfile] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for label in (self.policy.preferred, self.policy.cooldown):
            if label not in self.profiles:
                raise KeyError(f"no profile provided for algorithm {label!r}")
        self._validate_drain()

    def _validate_drain(self) -> None:
        """Reject policies whose cool-down phase can start but never drain."""
        preferred_draw = self._device_energy(self.policy.preferred)
        if preferred_draw <= 0.0 or math.isinf(self.policy.threshold_j):
            return  # the threshold is never reached; cool-down never starts
        cooldown_draw = self._device_energy(self.policy.cooldown)
        net_drain = self.policy.dissipation_j_per_invocation - cooldown_draw
        if net_drain <= 0.0:
            raise ValueError(
                f"cool-down phase can never drain: algorithm "
                f"{self.policy.cooldown!r} draws {cooldown_draw:.6g} J per invocation "
                f"on device {self.policy.device!r} but dissipation_j_per_invocation "
                f"is {self.policy.dissipation_j_per_invocation:.6g} J; the accumulated "
                f"energy would never fall back to zero and the policy would run the "
                f"cool-down algorithm forever.  Increase dissipation_j_per_invocation "
                f"above {cooldown_draw:.6g} J or pick a cool-down algorithm that "
                f"draws less on {self.policy.device!r}."
            )

    def _device_energy(self, label: Label) -> float:
        return self.profiles[label].device_energy(self.policy.device)

    def simulate(self, n_invocations: int) -> SwitchingTrace:
        """Run the policy for ``n_invocations`` invocations of the scientific code."""
        if n_invocations <= 0:
            raise ValueError("n_invocations must be positive")
        steps: list[SwitchingStep] = []
        accumulated = 0.0
        cooling = False
        for index in range(n_invocations):
            switched = False
            if not cooling and accumulated >= self.policy.threshold_j:
                cooling = True
                switched = True
            elif cooling and accumulated <= 0.0:
                cooling = False
                switched = True
            label = self.policy.cooldown if cooling else self.policy.preferred
            profile = self.profiles[label]
            device_energy = self._device_energy(label)
            if cooling:
                accumulated = max(
                    0.0,
                    accumulated + device_energy - self.policy.dissipation_j_per_invocation,
                )
            else:
                accumulated += device_energy
            steps.append(
                SwitchingStep(
                    index=index,
                    algorithm=label,
                    device_energy_j=device_energy,
                    accumulated_j=accumulated,
                    execution_time_s=profile.time_s,
                    switched=switched,
                )
            )
        return SwitchingTrace(
            steps=tuple(steps), preferred=self.policy.preferred, cooldown=self.policy.cooldown
        )

    def compare_with_static(self, n_invocations: int) -> dict[str, dict[str, float]]:
        """Compare the switching policy with running either algorithm statically.

        Returns, for each strategy, the total execution time and the total
        energy drawn from the constrained device.
        """
        trace = self.simulate(n_invocations)
        out: dict[str, dict[str, float]] = {
            "switching": {
                "time_s": trace.total_time_s,
                "device_energy_j": trace.total_device_energy_j,
            }
        }
        for label in (self.policy.preferred, self.policy.cooldown):
            profile = self.profiles[label]
            out[f"static-{label}"] = {
                "time_s": profile.time_s * n_invocations,
                "device_energy_j": self._device_energy(label) * n_invocations,
            }
        return out
