"""Fleet-scale simulation: sampled user populations over the scenario engine.

ROADMAP item 3: the production north star serves *millions of users*, and a
user base is a distribution over platforms and conditions -- not a cartesian
grid.  This subpackage models it in three layers, all riding the existing
vectorized grid substrate (PR 4's scenario grids, PR 9's fused array-space
builds, delta rebuilds, and scenario sharding):

* **specification** (:mod:`repro.fleet.segments`): a :class:`FleetSpec` of
  weighted :class:`UserSegment` entries, each a bundle of per-axis
  distributions (:class:`UniformAxis` / :class:`NormalAxis` /
  :class:`ChoiceAxis`);
* **sampling** (:mod:`repro.fleet.sample`): :func:`sample_fleet` draws a
  seeded, reproducible :class:`SampledFleet` -- one weighted scenario per
  user -- whose grid flows unchanged through ``build_tables`` /
  ``search_grid`` / ``plan_grid`` / ``PlacementService``; redrawing a subset
  (:meth:`SampledFleet.resample_users`) yields the replacement map for
  delta rebuilds;
* **coupling** (:mod:`repro.fleet.contention`): :class:`ContentionModel`
  turns per-device tenant counts into
  :class:`~repro.scenarios.DeviceLoadFactor` values and
  :func:`solve_contention` iterates the placements -> counts -> loads fixed
  point (fixed-assignment or best-response), differential-testable against
  direct evaluation at the returned loads.

Fleet-level risk measures live in :mod:`repro.search.robust`:
:class:`~repro.search.QuantileObjective` (weighted p95/p99 across the fleet)
and :class:`~repro.search.SLOObjective` (weighted miss fraction of a
deadline/energy budget), both exact under scenario sharding.
"""

from .contention import ContentionModel, ContentionResult, solve_contention
from .sample import SampledFleet, sample_fleet
from .segments import (
    AxisSampler,
    ChoiceAxis,
    FleetSpec,
    NormalAxis,
    UniformAxis,
    UserSegment,
)

__all__ = [
    "AxisSampler",
    "UniformAxis",
    "NormalAxis",
    "ChoiceAxis",
    "UserSegment",
    "FleetSpec",
    "SampledFleet",
    "sample_fleet",
    "ContentionModel",
    "ContentionResult",
    "solve_contention",
]
