"""Multi-tenant contention: device load as a function of who places where.

A fleet is not just many independent users: devices shared by several users'
chains slow down *because* they are shared.  :class:`ContentionModel` maps a
device's expected tenant count to a :class:`~repro.scenarios.DeviceLoadFactor`
value (load ``L >= 1`` divides the device's effective throughput by ``L``),
and :func:`solve_contention` iterates the resulting fixed point:

    placements -> tenant counts -> device loads -> (re-)evaluate/choose
    placements -> ...

Two modes share the loop:

* **fixed assignment** (``placements=``): each user's placement is pinned, so
  tenant counts are load-independent and the iteration converges after one
  recount -- this is the "what does sharing cost us" question;
* **best response** (``candidates=``): each user picks the candidate that is
  best *for them* under the current loads, loads are recomputed from the
  picks, and the loop runs until the load vector stops moving (bounded
  iterations, optional damping) -- a discrete approximation of the selfish
  equilibrium.

Loads enter evaluation as ordinary per-device ``DeviceLoadFactor`` settings
appended to every user's scenario, so the contended grid is built by the same
fused vectorized engine as every other grid, and the returned fixed point is
**differential-testable**: rebuilding the loaded grid directly and evaluating
the returned placements reproduces :attr:`ContentionResult.per_user_values`
bitwise (the contract ``tests/fleet`` pins).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..scenarios.conditions import DeviceLoadFactor, Scenario
from ..scenarios.grid import ScenarioGrid
from .sample import SampledFleet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..devices.simulator import SimulatedExecutor
    from ..tasks.chain import TaskChain
    from ..tasks.graph import TaskGraph

__all__ = ["ContentionModel", "ContentionResult", "solve_contention"]


@dataclass(frozen=True)
class ContentionModel:
    """Tenant count -> device load factor: ``1 + alpha * max(n - 1, 0)**exponent``.

    One tenant runs uncontended (load ``1``); each additional expected tenant
    adds ``alpha`` (scaled by the ``exponent`` power law -- ``1`` is linear
    queueing-style slowdown, ``> 1`` models thrash).  ``devices`` optionally
    restricts contention to some aliases (``None`` = every device, including
    the host); excluded devices keep load ``1``.
    """

    alpha: float = 0.5
    exponent: float = 1.0
    devices: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if not math.isfinite(self.alpha) or self.alpha < 0:
            raise ValueError(f"contention alpha must be finite and non-negative, got {self.alpha!r}")
        if not math.isfinite(self.exponent) or self.exponent <= 0:
            raise ValueError(f"contention exponent must be finite and positive, got {self.exponent!r}")
        if self.devices is not None:
            object.__setattr__(self, "devices", tuple(self.devices))

    def load(self, counts: np.ndarray) -> np.ndarray:
        """Elementwise load factors (``>= 1``) of expected tenant counts."""
        counts = np.asarray(counts, dtype=float)
        return 1.0 + self.alpha * np.maximum(counts - 1.0, 0.0) ** self.exponent

    def contended(self, aliases: Sequence[str]) -> tuple[bool, ...]:
        """Which of ``aliases`` this model applies contention to."""
        if self.devices is None:
            return tuple(True for _ in aliases)
        selected = set(self.devices)
        unknown = selected - set(aliases)
        if unknown:
            raise ValueError(
                f"contention model names unknown devices {sorted(unknown)}; "
                f"available: {list(aliases)}"
            )
        return tuple(alias in selected for alias in aliases)


@dataclass(frozen=True)
class ContentionResult:
    """The fixed point (or last iterate) of one contention solve.

    ``residuals[i]`` is the max-abs load change of iteration ``i``;
    ``converged`` is whether the final residual fell to ``tol`` within the
    iteration budget.  ``grid`` is the *loaded* grid at the returned loads --
    re-evaluating ``placements`` on it reproduces ``per_user_values`` bitwise.
    """

    aliases: tuple[str, ...]
    loads: np.ndarray
    counts: np.ndarray
    placements: tuple[tuple[str, ...], ...]
    per_user_values: np.ndarray
    metric: str
    converged: bool
    n_iterations: int
    residuals: tuple[float, ...]
    grid: ScenarioGrid

    def summary(self) -> str:
        state = "converged" if self.converged else "NOT converged"
        loaded = ", ".join(
            f"{alias}={load:.3g}x({count:.3g})"
            for alias, load, count in zip(self.aliases, self.loads, self.counts)
            if load > 1.0
        )
        return (
            f"contention {state} after {self.n_iterations} iteration(s), "
            f"residual {self.residuals[-1]:.3g}; loaded devices: {loaded or 'none'}; "
            f"mean user {self.metric} {float(self.per_user_values.mean()):.6g}"
        )


def _placement_matrix(
    placements: "Sequence[Sequence[str] | str]",
    aliases: tuple[str, ...],
    n_tasks: int,
) -> np.ndarray:
    """Alias tuples / label strings -> an ``(n, k)`` device-index matrix."""
    column = {alias: i for i, alias in enumerate(aliases)}
    rows = []
    for placement in placements:
        parts = tuple(placement)
        if len(parts) != n_tasks:
            raise ValueError(
                f"placement {placement!r} has {len(parts)} devices for {n_tasks} tasks"
            )
        try:
            rows.append([column[alias] for alias in parts])
        except KeyError as exc:
            raise ValueError(
                f"placement {placement!r} uses unknown device {exc.args[0]!r}; "
                f"available: {list(aliases)}"
            ) from None
    return np.array(rows, dtype=np.int64)


def _loaded_grid(
    fleet: SampledFleet, aliases: tuple[str, ...], loads: np.ndarray
) -> ScenarioGrid:
    """The fleet's grid with per-device load settings appended to every user.

    Loads at exactly ``1.0`` are omitted (the axis' neutral value -- fewer
    settings, identical tables); each loaded device gets its own
    single-device :class:`DeviceLoadFactor` setting so the load composes
    multiplicatively with any load axis the user's own scenario pins.
    """
    extra = tuple(
        (DeviceLoadFactor(devices=(alias,)), float(load))
        for alias, load in zip(aliases, loads)
        if load != 1.0
    )
    if not extra:
        return fleet.grid
    return ScenarioGrid(
        tuple(
            Scenario(
                name=scenario.name,
                settings=scenario.settings + extra,
                weight=scenario.weight,
            )
            for scenario in fleet.grid.scenarios
        )
    )


def _tenant_counts(
    choices: np.ndarray,
    matrix: np.ndarray,
    weights: np.ndarray,
    n_users: int,
    n_devices: int,
) -> np.ndarray:
    """Expected tenants per device under the users' current placements.

    A user counts once per device its placement touches (several tasks on
    the same device are still one tenant); user ``u`` contributes
    ``n_users * w_u / sum(w)`` tenants -- with uniform weights exactly "how
    many users run here".
    """
    uses = np.zeros((matrix.shape[0], n_devices))
    rows = np.repeat(np.arange(matrix.shape[0]), matrix.shape[1])
    uses[rows, matrix.ravel()] = 1.0
    share = n_users * weights / weights.sum()
    return share @ uses[choices]


def solve_contention(
    executor: "SimulatedExecutor",
    chain: "TaskChain | TaskGraph",
    fleet: SampledFleet,
    model: ContentionModel,
    *,
    placements: "Sequence[Sequence[str] | str] | None" = None,
    candidates: "Sequence[Sequence[str] | str] | None" = None,
    metric: str = "time",
    max_iterations: int = 25,
    tol: float = 1e-9,
    damping: float = 1.0,
) -> ContentionResult:
    """Iterate placements -> tenant counts -> loads to a fixed point.

    Exactly one of ``placements`` (one placement per user, or a single shared
    placement -- fixed-assignment mode) and ``candidates`` (a menu every user
    picks from by argmin of its own ``metric`` -- best-response mode) must be
    given.  Each iteration appends the current loads to every user's scenario
    as per-device :class:`~repro.scenarios.DeviceLoadFactor` settings,
    rebuilds the contended grid through the executor's cached fused build,
    evaluates the placements, recounts tenants, and damps the load update by
    ``damping`` (``1`` = plain fixed-point iteration).

    Ties in best-response argmin break toward the earlier candidate, so the
    iteration is deterministic.  The loop stops when the max-abs load change
    falls to ``tol`` or the iteration budget runs out -- inspect
    :attr:`ContentionResult.converged` / ``residuals`` for diagnostics.
    """
    from ..devices.grid import execute_placements_grid

    if (placements is None) == (candidates is None):
        raise ValueError("pass exactly one of placements= (fixed) or candidates= (best response)")
    if max_iterations < 1:
        raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
    if not 0.0 < damping <= 1.0:
        raise ValueError(f"damping must lie in (0, 1], got {damping!r}")

    tables = executor.grid_cost_tables(chain, fleet.grid)
    aliases = tables.aliases
    n_users = fleet.n_users
    n_tasks = tables.n_tasks

    if placements is not None:
        if isinstance(placements, str) or (
            placements and isinstance(placements[0], str) and len(placements) != n_users
        ):
            # A single shared placement (label string or one alias tuple).
            placements = [placements] * n_users  # type: ignore[list-item]
        if len(placements) == 1 and n_users > 1:
            placements = list(placements) * n_users
        if len(placements) != n_users:
            raise ValueError(
                f"expected one placement per user ({n_users}), got {len(placements)}"
            )
        matrix, choice_of_user = np.unique(
            _placement_matrix(placements, aliases, n_tasks), axis=0, return_inverse=True
        )
        choices = choice_of_user.astype(np.int64)
    else:
        matrix = _placement_matrix(candidates, aliases, n_tasks)
        if matrix.shape[0] == 0:
            raise ValueError("candidates must be non-empty")
        choices = np.zeros(n_users, dtype=np.int64)

    weights = fleet.grid.weights
    contended = np.array(model.contended(aliases))
    loads = np.ones(len(aliases))
    values = None
    residuals: list[float] = []
    converged = False
    grid = fleet.grid

    for _ in range(max_iterations):
        grid = _loaded_grid(fleet, aliases, loads)
        loaded_tables = executor.grid_cost_tables(chain, grid)
        result = execute_placements_grid(loaded_tables, matrix)
        values = result.metric_values(metric)  # (n_users, n_placements)
        if candidates is not None:
            choices = values.argmin(axis=1).astype(np.int64)
        counts = _tenant_counts(choices, matrix, weights, n_users, len(aliases))
        target = np.where(contended, model.load(counts), 1.0)
        new_loads = (1.0 - damping) * loads + damping * target
        residual = float(np.abs(new_loads - loads).max())
        residuals.append(residual)
        loads = new_loads
        if residual <= tol:
            converged = True
            break

    per_user = values[np.arange(n_users), choices]
    chosen = tuple(
        tuple(aliases[d] for d in matrix[choice]) for choice in choices
    )
    return ContentionResult(
        aliases=aliases,
        loads=loads,
        counts=counts,
        placements=chosen,
        per_user_values=per_user,
        metric=metric,
        converged=converged,
        n_iterations=len(residuals),
        residuals=tuple(residuals),
        grid=grid,
    )
