"""Sampling a concrete fleet: spec -> weighted ``ScenarioGrid``.

:func:`sample_fleet` draws ``n_users`` users from a :class:`FleetSpec` with a
seeded generator and materialises them as one weighted
:class:`~repro.scenarios.ScenarioGrid` -- one scenario per user, named
``"<segment>/u<index>"``, carrying the user's sampled axis values as ordinary
scenario settings.  The grid flows through the existing vectorized grid
engine *unchanged*: fused array-space builds, ``TableCache`` slice caching,
scenario sharding, and robust objectives all apply to fleets for free.

Scenario weights are ``segment.weight / n_segment_users``: each segment's
probability mass is split evenly over its sampled users, so the fleet's
weighted objectives estimate the population-level quantity regardless of how
the user count is apportioned (weights are finite and positive by
construction -- the guarantee the weight-validation sweep of this PR pins).

:meth:`SampledFleet.resample_users` redraws a subset of users in place and
returns the ``{index: Scenario}`` replacement map that
:meth:`~repro.devices.simulator.SimulatedExecutor.update_grid_tables` /
``GridCostTables.updated_many`` consume -- a drifted fleet is a delta
rebuild, not a full build.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..scenarios.conditions import Scenario
from ..scenarios.grid import ScenarioGrid
from .segments import FleetSpec, UserSegment

__all__ = ["SampledFleet", "sample_fleet"]


def _as_rng(seed: "int | np.random.Generator") -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _sample_segment_users(
    segment: UserSegment,
    indices: Sequence[int],
    weight: float,
    rng: np.random.Generator,
) -> list[Scenario]:
    """One scenario per user of one segment, axes drawn column-wise.

    Each axis sampler draws all of the segment's users in one vectorized call
    (column-major), so redrawing the same index set with the same generator
    state reproduces the draws bit-for-bit.
    """
    n = len(indices)
    columns = [sampler.sample(rng, n) for sampler in segment.axes]
    scenarios = []
    for row, index in enumerate(indices):
        settings = tuple(
            (sampler.axis, float(column[row]))
            for sampler, column in zip(segment.axes, columns)
        )
        scenarios.append(
            Scenario(name=f"{segment.name}/u{index}", settings=settings, weight=weight)
        )
    return scenarios


@dataclass(frozen=True)
class SampledFleet:
    """A sampled user population: the spec, the grid, and the user->segment map.

    ``grid`` is a plain :class:`~repro.scenarios.ScenarioGrid` (one weighted
    scenario per user) -- anything that consumes a grid consumes a fleet.
    ``segment_of_user[i]`` is the index into ``spec.segments`` of user ``i``.
    """

    spec: FleetSpec
    grid: ScenarioGrid
    segment_of_user: tuple[int, ...]
    seed: "int | None" = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "segment_of_user", tuple(self.segment_of_user))
        if len(self.segment_of_user) != len(self.grid):
            raise ValueError(
                f"segment_of_user has {len(self.segment_of_user)} entries for "
                f"{len(self.grid)} users"
            )

    @property
    def n_users(self) -> int:
        return len(self.grid)

    def __len__(self) -> int:
        return len(self.grid)

    def users_of_segment(self, name: str) -> tuple[int, ...]:
        """Indices of the users sampled from one segment."""
        target = self.spec.names.index(name) if name in self.spec.names else None
        if target is None:
            raise KeyError(f"unknown segment {name!r}; available: {list(self.spec.names)}")
        return tuple(i for i, s in enumerate(self.segment_of_user) if s == target)

    def segment_grid(self, name: str) -> ScenarioGrid:
        """The sub-grid of one segment's users (weights carried over)."""
        indices = self.users_of_segment(name)
        if not indices:
            raise ValueError(f"segment {name!r} received no users in this sample")
        return ScenarioGrid(tuple(self.grid[i] for i in indices))

    def resample_users(
        self,
        indices: Sequence[int],
        seed: "int | np.random.Generator",
    ) -> "tuple[SampledFleet, dict[int, Scenario]]":
        """Redraw some users from their segments' distributions.

        Returns the drifted fleet plus the ``{index: Scenario}`` replacement
        map for :meth:`GridCostTables.updated_many` /
        :meth:`SimulatedExecutor.update_grid_tables` -- the delta-rebuild
        path: untouched users' condition slices are reused, only the redrawn
        ones are recomputed.  Weights and segment membership are preserved
        (drift moves a user's conditions, not its probability mass).
        """
        rng = _as_rng(seed)
        indices = list(dict.fromkeys(int(i) for i in indices))
        for i in indices:
            if not 0 <= i < self.n_users:
                raise IndexError(f"user index {i} out of range [0, {self.n_users})")
        replacements: dict[int, Scenario] = {}
        # Group by segment so each segment's axis draws stay vectorized.
        by_segment: dict[int, list[int]] = {}
        for i in indices:
            by_segment.setdefault(self.segment_of_user[i], []).append(i)
        for segment_index, users in by_segment.items():
            segment = self.spec.segments[segment_index]
            weight = self.grid[users[0]].weight
            for user, scenario in zip(
                users, _sample_segment_users(segment, users, weight, rng)
            ):
                replacements[user] = scenario
        scenarios = list(self.grid.scenarios)
        for i, scenario in replacements.items():
            scenarios[i] = scenario
        drifted = SampledFleet(
            spec=self.spec,
            grid=ScenarioGrid(tuple(scenarios)),
            segment_of_user=self.segment_of_user,
            seed=None,
        )
        return drifted, replacements


def sample_fleet(
    spec: FleetSpec,
    n_users: int,
    seed: "int | np.random.Generator" = 0,
) -> SampledFleet:
    """Draw a concrete fleet of ``n_users`` weighted user scenarios.

    Users are apportioned to segments by largest remainder on the segment
    weights (:meth:`FleetSpec.apportion`), laid out segment-block by
    segment-block in spec order, and each user's axis values are drawn from
    its segment's samplers with the seeded generator -- the same
    ``(spec, n_users, seed)`` triple always reproduces the same grid.

    Each scenario's weight is ``segment.weight / n_segment_users``, so
    segment masses survive sampling exactly and fleet-weighted objectives
    (:class:`~repro.search.ExpectedValueObjective`,
    :class:`~repro.search.QuantileObjective`,
    :class:`~repro.search.SLOObjective`) estimate population quantities.
    Segments whose largest-remainder share rounds to zero users contribute no
    scenarios (their mass is simply absent from this sample; raise
    ``n_users`` to resolve them).
    """
    rng = _as_rng(seed)
    counts = spec.apportion(n_users)
    scenarios: list[Scenario] = []
    segment_of_user: list[int] = []
    cursor = 0
    for segment_index, (segment, count) in enumerate(zip(spec.segments, counts)):
        if count == 0:
            continue
        indices = range(cursor, cursor + count)
        weight = segment.weight / count
        scenarios.extend(_sample_segment_users(segment, indices, weight, rng))
        segment_of_user.extend([segment_index] * count)
        cursor += count
    return SampledFleet(
        spec=spec,
        grid=ScenarioGrid(tuple(scenarios)),
        segment_of_user=tuple(segment_of_user),
        seed=seed if isinstance(seed, int) else None,
    )
