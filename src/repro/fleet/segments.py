"""Fleet specifications: weighted user segments over condition distributions.

ROADMAP item 3's "millions of users" is not a cartesian grid -- it is a
*population*: segments of users ("office Wi-Fi", "congested cellular",
"loaded shared host") with per-segment probability mass and, within each
segment, a distribution over condition-axis values.  This module describes
that population as data:

* an **axis sampler** pairs one :class:`~repro.scenarios.ConditionAxis` with
  a distribution over its values -- :class:`UniformAxis`, :class:`NormalAxis`
  (optionally clipped to the axis domain), or :class:`ChoiceAxis`;
* a :class:`UserSegment` is a named, weighted bundle of axis samplers;
* a :class:`FleetSpec` is the full population: a tuple of segments whose
  weights are relative probability masses (not necessarily normalised).

Everything here is a frozen value-type dataclass (picklable, hashable up to
array-free fields) so fleet specs can cross process boundaries in sharded
sweeps; actual sampling lives in :func:`repro.fleet.sample_fleet`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..scenarios.conditions import ConditionAxis

__all__ = [
    "AxisSampler",
    "UniformAxis",
    "NormalAxis",
    "ChoiceAxis",
    "UserSegment",
    "FleetSpec",
]


@dataclass(frozen=True)
class AxisSampler:
    """One condition axis plus a distribution over its values.

    Subclasses implement :meth:`sample`, drawing ``n`` float64 values from
    the distribution.  Domain validation (e.g. ``DeviceLoadFactor >= 1``)
    happens where it always has -- inside the axis' own ``apply`` /
    ``scale_arrays`` -- so a sampler whose distribution strays outside the
    axis domain fails loudly at grid-build time, naming the offending value.
    """

    axis: ConditionAxis = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if not isinstance(self.axis, ConditionAxis):
            raise TypeError(f"axis must be a ConditionAxis, got {self.axis!r}")

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError


@dataclass(frozen=True)
class UniformAxis(AxisSampler):
    """Axis values drawn uniformly from ``[low, high]``."""

    low: float = 0.0
    high: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not (math.isfinite(self.low) and math.isfinite(self.high)):
            raise ValueError(f"uniform bounds must be finite, got [{self.low!r}, {self.high!r}]")
        if self.low > self.high:
            raise ValueError(f"uniform bounds must satisfy low <= high, got [{self.low}, {self.high}]")

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=n)


@dataclass(frozen=True)
class NormalAxis(AxisSampler):
    """Axis values drawn from ``Normal(mean, std)``, optionally clipped.

    ``low`` / ``high`` clip the draws into the axis domain (e.g. a load
    factor must stay >= 1); ``None`` leaves the corresponding side open.
    """

    mean: float = 0.0
    std: float = 1.0
    low: float | None = None
    high: float | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if not (math.isfinite(self.mean) and math.isfinite(self.std)):
            raise ValueError(f"normal parameters must be finite, got mean={self.mean!r} std={self.std!r}")
        if self.std < 0:
            raise ValueError(f"normal std must be non-negative, got {self.std}")
        if self.low is not None and self.high is not None and self.low > self.high:
            raise ValueError(f"clip bounds must satisfy low <= high, got [{self.low}, {self.high}]")

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        values = rng.normal(self.mean, self.std, size=n)
        if self.low is not None or self.high is not None:
            values = np.clip(values, self.low, self.high)
        return values

# NormalAxis clipping is deliberate truncation-by-projection (mass piles up at
# the bounds), not rejection sampling: it is O(n), deterministic in the draw
# count, and the piled-up boundary mass models saturation ("fully loaded")
# rather than discarding it.


@dataclass(frozen=True)
class ChoiceAxis(AxisSampler):
    """Axis values drawn from a finite set, optionally with probabilities.

    ``probs=None`` means uniform over ``values``; otherwise one finite
    non-negative probability per value (normalised internally).
    """

    values: tuple[float, ...] = ()
    probs: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        values = tuple(float(v) for v in self.values)
        if not values:
            raise ValueError("ChoiceAxis needs at least one value")
        object.__setattr__(self, "values", values)
        if self.probs is not None:
            probs = tuple(float(p) for p in self.probs)
            if len(probs) != len(values):
                raise ValueError(
                    f"expected {len(values)} probabilities (one per value), got {len(probs)}"
                )
            for i, p in enumerate(probs):
                if not math.isfinite(p) or p < 0:
                    raise ValueError(
                        f"probabilities must be finite and non-negative, got probs[{i}]={p!r}"
                    )
            if sum(probs) <= 0:
                raise ValueError("at least one choice probability must be positive")
            object.__setattr__(self, "probs", probs)

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        probs = None
        if self.probs is not None:
            probs = np.array(self.probs)
            probs = probs / probs.sum()
        return rng.choice(np.array(self.values), size=n, p=probs)


@dataclass(frozen=True)
class UserSegment:
    """A named, weighted user segment: one distribution per condition axis.

    ``weight`` is the segment's share of the fleet's probability mass (not
    necessarily normalised across segments).  Sampling one user draws one
    value per axis sampler, pinning that user's scenario.
    """

    name: str
    weight: float = 1.0
    axes: tuple[AxisSampler, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("segment name must be non-empty")
        if not math.isfinite(self.weight) or self.weight <= 0:
            raise ValueError(
                f"segment weight must be finite and positive, got {self.weight!r}"
            )
        axes = tuple(self.axes)
        for sampler in axes:
            if not isinstance(sampler, AxisSampler):
                raise TypeError(f"expected AxisSampler instances, got {sampler!r}")
        object.__setattr__(self, "axes", axes)


@dataclass(frozen=True)
class FleetSpec:
    """A user population: weighted segments with per-axis distributions."""

    segments: tuple[UserSegment, ...]

    def __post_init__(self) -> None:
        segments = tuple(self.segments)
        if not segments:
            raise ValueError("a fleet spec needs at least one segment")
        for segment in segments:
            if not isinstance(segment, UserSegment):
                raise TypeError(f"expected UserSegment instances, got {segment!r}")
        names = [segment.name for segment in segments]
        if len(set(names)) != len(names):
            duplicates = sorted({name for name in names if names.count(name) > 1})
            raise ValueError(f"segment names must be unique, duplicated: {duplicates}")
        object.__setattr__(self, "segments", segments)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(segment.name for segment in self.segments)

    def segment(self, name: str) -> UserSegment:
        for candidate in self.segments:
            if candidate.name == name:
                return candidate
        raise KeyError(f"unknown segment {name!r}; available: {list(self.names)}")

    def apportion(self, n_users: int) -> tuple[int, ...]:
        """Users per segment via largest-remainder on the segment weights.

        Deterministic, sums to ``n_users`` exactly, and every segment with
        positive weight gets its proportional share rounded fairly (ties on
        equal remainders break toward earlier segments).
        """
        if n_users <= 0:
            raise ValueError(f"n_users must be positive, got {n_users}")
        weights = np.array([segment.weight for segment in self.segments])
        shares = n_users * weights / weights.sum()
        floors = np.floor(shares).astype(int)
        short = n_users - int(floors.sum())
        if short:
            remainders = shares - floors
            # argsort is stable, so equal remainders resolve toward earlier
            # segments -- the deterministic tie rule the docstring promises.
            for i in np.argsort(-remainders, kind="stable")[:short]:
                floors[i] += 1
        return tuple(int(c) for c in floors)
