"""Relative-performance analysis core (the paper's primary contribution).

Public surface:

* three-way comparators (:mod:`repro.core.comparison`),
* the comparison engine with outcome-matrix precomputation and caching
  (:mod:`repro.core.engine`),
* the bubble sort with rank merging (:mod:`repro.core.sorting`),
* relative-score clustering and final assignment (:mod:`repro.core.clustering`),
* score/clustering containers (:mod:`repro.core.scores`),
* the high-level :class:`~repro.core.analyzer.RelativePerformanceAnalyzer`,
* single-statistic baseline rankers and stability metrics for ablations.
"""

from .analyzer import AnalysisResult, RelativePerformanceAnalyzer
from .baselines import SingleStatisticRanker, SingleStatisticRanking, rank_by_statistic
from .bootstrap import (
    BootstrapInterval,
    bootstrap_indices,
    bootstrap_quantiles,
    bootstrap_samples,
    bootstrap_statistic,
    percentile_interval,
)
from .clustering import cluster_algorithms, final_assignment, get_cluster, relative_scores
from .comparison import (
    DEFAULT_QUANTILES,
    BootstrapComparator,
    Comparator,
    IntervalOverlapComparator,
    MannWhitneyComparator,
    MeanComparator,
    MedianComparator,
    MinimumComparator,
    SingleStatisticComparator,
    derive_pair_rng,
)
from .engine import CachedCompareFn, ComparisonEngine, coerce_measurements
from .scores import ClusterEntry, FinalClustering, ScoreTable, make_final_clustering
from .sorting import SortResult, SortStep, ranks_are_valid, three_way_bubble_sort
from .stability import (
    StabilityReport,
    cluster_partition_agreement,
    kendall_tau_distance,
    pairwise_order_agreement,
    stability_across_rounds,
)
from .types import (
    Comparison,
    ComparisonCounter,
    Label,
    PairwiseOracle,
    bind_comparator,
)

__all__ = [
    # types
    "Comparison",
    "Label",
    "PairwiseOracle",
    "ComparisonCounter",
    "bind_comparator",
    # bootstrap
    "bootstrap_indices",
    "bootstrap_samples",
    "bootstrap_statistic",
    "bootstrap_quantiles",
    "percentile_interval",
    "BootstrapInterval",
    # comparators
    "Comparator",
    "BootstrapComparator",
    "SingleStatisticComparator",
    "MeanComparator",
    "MedianComparator",
    "MinimumComparator",
    "MannWhitneyComparator",
    "IntervalOverlapComparator",
    "DEFAULT_QUANTILES",
    "derive_pair_rng",
    # engine
    "ComparisonEngine",
    "CachedCompareFn",
    "coerce_measurements",
    # sorting
    "three_way_bubble_sort",
    "SortResult",
    "SortStep",
    "ranks_are_valid",
    # clustering / scores
    "relative_scores",
    "get_cluster",
    "final_assignment",
    "cluster_algorithms",
    "ScoreTable",
    "FinalClustering",
    "ClusterEntry",
    "make_final_clustering",
    # analyzer
    "RelativePerformanceAnalyzer",
    "AnalysisResult",
    # baselines / stability
    "SingleStatisticRanker",
    "SingleStatisticRanking",
    "rank_by_statistic",
    "pairwise_order_agreement",
    "kendall_tau_distance",
    "cluster_partition_agreement",
    "stability_across_rounds",
    "StabilityReport",
]
