"""Baseline ranking strategies the paper argues against.

The conventional way to compare algorithms is to summarise each measurement
distribution into a single number (mean, median or minimum execution time) and
sort by it.  Section I of the paper points out that under system noise such a
ranking "might not be consistent when the performance measurements are
repeated".  These baselines exist so that the benchmarks can quantify that
instability and contrast it with the relative-performance clustering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from .types import Label

__all__ = ["SingleStatisticRanking", "SingleStatisticRanker", "rank_by_statistic"]


@dataclass(frozen=True)
class SingleStatisticRanking:
    """Result of a single-number ranking.

    Attributes
    ----------
    order:
        Labels sorted from best to worst according to the statistic.
    values:
        The summarised statistic per label.
    ranks:
        Dense ranks (1 = best).  Ties (within the ranker's tolerance) share a rank.
    statistic:
        Name of the statistic used.
    """

    order: tuple[Label, ...]
    values: Mapping[Label, float]
    ranks: Mapping[Label, int]
    statistic: str

    @property
    def n_classes(self) -> int:
        return max(self.ranks.values(), default=0)

    def best(self) -> Label:
        return self.order[0]

    def clusters(self) -> dict[int, list[Label]]:
        out: dict[int, list[Label]] = {}
        for label in self.order:
            out.setdefault(self.ranks[label], []).append(label)
        return out


@dataclass
class SingleStatisticRanker:
    """Rank algorithms by one summary statistic of their measurements.

    Parameters
    ----------
    statistic:
        Reduction applied to each measurement array ("mean", "median", "min",
        "max", "p90" or any callable).
    rel_tolerance:
        Two adjacent algorithms whose statistics differ by less than this
        fraction (relative to the midpoint) are put into the same rank; with
        the default of 0.0 every algorithm gets its own rank unless the values
        are exactly equal.
    lower_is_better:
        Whether smaller statistics are better.
    """

    statistic: str | Callable[[np.ndarray], float] = "mean"
    rel_tolerance: float = 0.0
    lower_is_better: bool = True

    _NAMED: dict[str, Callable[[np.ndarray], float]] = field(
        default=None, init=False, repr=False, compare=False
    )  # type: ignore[assignment]

    def __post_init__(self) -> None:
        named: dict[str, Callable[[np.ndarray], float]] = {
            "mean": np.mean,
            "median": np.median,
            "min": np.min,
            "max": np.max,
            "p90": lambda a: float(np.quantile(a, 0.9)),
        }
        object.__setattr__(self, "_NAMED", named)
        if isinstance(self.statistic, str) and self.statistic not in named:
            raise ValueError(
                f"unknown statistic {self.statistic!r}; choose from {sorted(named)} or pass a callable"
            )
        if self.rel_tolerance < 0:
            raise ValueError("rel_tolerance must be non-negative")

    @property
    def statistic_name(self) -> str:
        return self.statistic if isinstance(self.statistic, str) else getattr(
            self.statistic, "__name__", "custom"
        )

    def _reduce(self, values: np.ndarray) -> float:
        fn = self._NAMED[self.statistic] if isinstance(self.statistic, str) else self.statistic
        return float(fn(values))

    def rank(
        self, measurements: Mapping[Label, np.ndarray | Sequence[float]]
    ) -> SingleStatisticRanking:
        """Summarise, sort and densely rank the given measurement table."""
        if not measurements:
            raise ValueError("at least one algorithm is required")
        values = {
            label: self._reduce(np.asarray(data, dtype=float))
            for label, data in measurements.items()
        }
        reverse = not self.lower_is_better
        order = tuple(sorted(values, key=lambda label: values[label], reverse=reverse))

        ranks: dict[Label, int] = {}
        current_rank = 1
        previous_value: float | None = None
        for label in order:
            value = values[label]
            if previous_value is not None:
                midpoint = 0.5 * (abs(value) + abs(previous_value))
                tied = (
                    value == previous_value
                    or (midpoint > 0 and abs(value - previous_value) <= self.rel_tolerance * midpoint)
                )
                if not tied:
                    current_rank += 1
            ranks[label] = current_rank
            previous_value = value
        return SingleStatisticRanking(
            order=order, values=values, ranks=ranks, statistic=self.statistic_name
        )


def rank_by_statistic(
    measurements: Mapping[Label, np.ndarray | Sequence[float]],
    statistic: str = "mean",
    rel_tolerance: float = 0.0,
) -> SingleStatisticRanking:
    """Convenience wrapper around :class:`SingleStatisticRanker`."""
    return SingleStatisticRanker(statistic=statistic, rel_tolerance=rel_tolerance).rank(measurements)
