"""Three-way comparators: decide *better*, *worse* or *equivalent* between two algorithms.

The clustering methodology of the paper consumes comparisons through a narrow
interface (:class:`repro.core.types.ArrayComparator`): given the raw
measurement arrays of two algorithms, return a :class:`Comparison`.  The
canonical comparator is the **bootstrap quantile-profile comparator** of the
companion work [15] cited by the paper: statistics are repeatedly evaluated on
resampled data and the *win fraction* over the bootstrap rounds determines the
outcome, with an equivalence band around 0.5 capturing "the distributions
significantly overlap".

Several alternative comparators are provided for baselines and ablations:
single-statistic comparators with a relative tolerance (mean / median /
minimum), a Mann-Whitney rank-sum comparator, and a confidence-interval
overlap comparator.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np
from scipy import stats

from .bootstrap import (
    batched_quantile_profiles,
    bootstrap_indices,
    bootstrap_quantiles,
    bootstrap_statistic,
    percentile_interval,
)
from .types import Comparison

__all__ = [
    "Comparator",
    "BootstrapComparator",
    "SingleStatisticComparator",
    "MeanComparator",
    "MedianComparator",
    "MinimumComparator",
    "MannWhitneyComparator",
    "IntervalOverlapComparator",
    "DEFAULT_QUANTILES",
    "derive_pair_rng",
]

#: Quantile profile used by default: the bulk of the distribution, ignoring
#: extreme tails which are dominated by system noise (cf. the caching /
#: system-noise discussion of the paper's Section I).
DEFAULT_QUANTILES: tuple[float, ...] = (0.1, 0.25, 0.5, 0.75, 0.9)


def _validate_one(a: np.ndarray | Sequence[float]) -> np.ndarray:
    va = np.asarray(a, dtype=float).ravel()
    if va.size == 0:
        raise ValueError("measurement arrays must be non-empty")
    if not np.all(np.isfinite(va)):
        raise ValueError("measurement arrays must be finite")
    return va


def _validate(a: np.ndarray | Sequence[float], b: np.ndarray | Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    return _validate_one(a), _validate_one(b)


def derive_pair_rng(seed: int, bytes_a: bytes, bytes_b: bytes) -> np.random.Generator:
    """Generator derived from a pair of measurement blobs and a seed.

    Comparators that bootstrap inside ``compare`` use this to stay reproducible
    *per pair* regardless of how many other pairs were compared before: the
    stream depends only on the data and the seed, not on call order, so
    repeated comparisons of the same pair agree while different pairs draw
    independent resamples.
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(bytes_a)
    h.update(b"|")
    h.update(bytes_b)
    return np.random.default_rng([int.from_bytes(h.digest(), "little"), seed])


class Comparator:
    """Base class providing the callable interface and convenience predicates."""

    #: If True (the default for execution time / energy), smaller values are better.
    lower_is_better: bool = True

    # Deterministic contract (opt-in, per concrete class): a comparator whose
    # ``compare(a, b)`` depends only on the data and fixed parameters/seeds --
    # never on call order or per-call randomness -- declares ``stochastic =
    # False``, which lets the comparison engine cache its outcomes.  The base
    # class deliberately does NOT declare it: a subclass that draws fresh
    # randomness per call and predates (or ignores) the contract is then
    # conservatively never cached instead of silently frozen.

    def compare(self, a: np.ndarray, b: np.ndarray) -> Comparison:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, a: np.ndarray, b: np.ndarray) -> Comparison:
        return self.compare(a, b)

    # Convenience predicates -------------------------------------------------
    def is_better(self, a: np.ndarray, b: np.ndarray) -> bool:
        return self.compare(a, b) is Comparison.BETTER

    def is_worse(self, a: np.ndarray, b: np.ndarray) -> bool:
        return self.compare(a, b) is Comparison.WORSE

    def is_equivalent(self, a: np.ndarray, b: np.ndarray) -> bool:
        return self.compare(a, b) is Comparison.EQUIVALENT

    def _oriented(self, a_better: bool) -> Comparison:
        """Map a "first argument has the smaller metric" verdict to an outcome."""
        if self.lower_is_better:
            return Comparison.BETTER if a_better else Comparison.WORSE
        return Comparison.WORSE if a_better else Comparison.BETTER


@dataclass
class BootstrapComparator(Comparator):
    """Bootstrap quantile-profile comparator (the paper's comparison strategy).

    Both measurement sets are resampled with replacement ``n_resamples`` times
    and, for every quantile level of the profile, the bootstrap distribution of
    that quantile is summarised by a two-sided percentile interval.  Algorithm
    ``a`` *wins* a quantile level when its interval lies entirely below ``b``'s
    (and the midpoints differ by more than ``min_relative_difference``);
    levels whose intervals overlap are ties and count half for each side.  The
    per-level scores are averaged into a win fraction ``f in [0, 1]``:

    * ``f >= 0.5 + equivalence_margin``  ->  ``a`` is **better**;
    * ``f <= 0.5 - equivalence_margin``  ->  ``a`` is **worse**;
    * otherwise the distributions overlap significantly -> **equivalent**.

    Because the intervals shrink with the number of measurements ``N``, two
    partially overlapping distributions may be equivalent at ``N = 30`` but
    distinguishable at ``N = 500`` -- exactly the behaviour discussed in
    Section III of the paper ("overlaps become more evident when the number
    of measurements N is small").

    In the default deterministic mode a generator is derived from the data and
    the seed, so repeated comparisons of the same pair agree and
    ``compare(a, b)`` is exactly the flip of ``compare(b, a)``.  With
    ``stochastic=True`` every call draws fresh resamples; this reproduces the
    behaviour the paper relies on for the relative scores of Procedure 4,
    where a borderline pair "switches between < and ~" across repetitions.

    Parameters
    ----------
    quantiles:
        Quantile levels forming the profile that is compared.
    n_resamples:
        Number of bootstrap rounds.
    confidence:
        Confidence level of the per-quantile percentile intervals.
    equivalence_margin:
        Half-width of the equivalence band around a win fraction of 0.5.
    min_relative_difference:
        Relative difference (w.r.t. the midpoint of the two quantile
        estimates) under which a quantile level is always counted as a tie.
    lower_is_better:
        Whether smaller measurements are better (True for time and energy).
    stochastic:
        Draw fresh resamples on every call instead of deriving them from the
        data (see above).
    seed:
        Seed for the internal random generator.
    """

    quantiles: Sequence[float] = DEFAULT_QUANTILES
    n_resamples: int = 200
    confidence: float = 0.95
    equivalence_margin: float = 0.15
    min_relative_difference: float = 0.0
    lower_is_better: bool = True
    stochastic: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        q = np.asarray(self.quantiles, dtype=float)
        if q.size == 0 or np.any((q < 0) | (q > 1)):
            raise ValueError("quantiles must be a non-empty sequence within [0, 1]")
        if not 0.0 <= self.equivalence_margin < 0.5:
            raise ValueError("equivalence_margin must lie in [0, 0.5)")
        if self.min_relative_difference < 0:
            raise ValueError("min_relative_difference must be non-negative")
        if self.n_resamples <= 0:
            raise ValueError("n_resamples must be positive")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError("confidence must lie strictly between 0 and 1")
        self._stochastic_rng = np.random.default_rng(self.seed)

    # ------------------------------------------------------------------
    def _rng_for(self, bytes_a: bytes, bytes_b: bytes) -> np.random.Generator:
        """Derive a per-pair generator so comparisons are reproducible regardless of call order."""
        return derive_pair_rng(self.seed, bytes_a, bytes_b)

    def _level_scores(self, qa: np.ndarray, qb: np.ndarray, axis: int) -> np.ndarray:
        """Per-quantile-level scores for ``a`` (1 win, 0.5 tie, 0 loss) from
        paired bootstrap quantile profiles.

        ``axis`` is the resample axis: 0 for a single pair's ``(n_resamples,
        len(quantiles))`` profiles, 1 for a batch of pairs stacked as
        ``(pairs, n_resamples, len(quantiles))``.  Both the per-call and the
        batched matrix path go through this one implementation, so the two can
        never diverge.
        """
        alpha = 1.0 - self.confidence
        lo_a, hi_a = np.quantile(qa, [alpha / 2.0, 1.0 - alpha / 2.0], axis=axis)
        lo_b, hi_b = np.quantile(qb, [alpha / 2.0, 1.0 - alpha / 2.0], axis=axis)
        mid_a = np.median(qa, axis=axis)
        mid_b = np.median(qb, axis=axis)
        tol = self.min_relative_difference * 0.5 * (np.abs(mid_a) + np.abs(mid_b))
        a_wins = (hi_a < lo_b) & (mid_b - mid_a > tol)
        b_wins = (hi_b < lo_a) & (mid_a - mid_b > tol)
        return np.where(a_wins, 1.0, np.where(b_wins, 0.0, 0.5))

    def _score_levels(self, va: np.ndarray, vb: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Per-quantile-level scores for ``a``: 1 win, 0.5 tie, 0 loss."""
        qa = bootstrap_quantiles(va, self.quantiles, self.n_resamples, rng)
        qb = bootstrap_quantiles(vb, self.quantiles, self.n_resamples, rng)
        return self._level_scores(qa, qb, axis=0)

    def win_fraction(self, a: np.ndarray, b: np.ndarray) -> float:
        """Fraction of quantile levels won by ``a`` (ties count 0.5).

        In the deterministic mode the pair is internally canonicalised so that
        ``win_fraction(a, b) == 1 - win_fraction(b, a)`` holds exactly, which
        makes the resulting three-way comparison antisymmetric.
        """
        va, vb = _validate(a, b)
        if self.stochastic:
            return float(self._score_levels(va, vb, self._stochastic_rng).mean())
        bytes_a = np.ascontiguousarray(va).tobytes()
        bytes_b = np.ascontiguousarray(vb).tobytes()
        if bytes_a == bytes_b:
            return 0.5
        if bytes_b < bytes_a:
            return 1.0 - self.win_fraction(vb, va)
        rng = self._rng_for(bytes_a, bytes_b)
        return float(self._score_levels(va, vb, rng).mean())

    def _from_fraction(self, f: float) -> Comparison:
        """Map a win fraction to the three-way outcome via the equivalence band.

        A fraction of exactly 0.5 is a perfect tie and is always equivalent,
        even with ``equivalence_margin=0`` -- otherwise both directions of the
        pair would claim ``BETTER`` and the relation would lose antisymmetry.
        """
        if f > 0.5 and f >= 0.5 + self.equivalence_margin:
            return self._oriented(a_better=True)
        if f < 0.5 and f <= 0.5 - self.equivalence_margin:
            return self._oriented(a_better=False)
        return Comparison.EQUIVALENT

    def compare(self, a: np.ndarray, b: np.ndarray) -> Comparison:
        return self._from_fraction(self.win_fraction(a, b))

    # -- batched precomputation (used by the comparison engine) --------------
    def win_fraction_matrix(self, arrays: Sequence[np.ndarray]) -> np.ndarray:
        """Antisymmetric ``(p, p)`` matrix of win fractions in one vectorized pass.

        Entry ``[i, j]`` equals ``win_fraction(arrays[i], arrays[j])`` bit for
        bit: per pair the same canonicalisation and per-pair generator are
        used, but the bootstrap quantile profiles of *all* pairs are stacked
        into a single batch (:func:`repro.core.bootstrap.batched_quantile_profiles`)
        and summarised with a handful of vectorized reductions instead of two
        ``np.quantile`` round-trips per pair.  Only available in the
        deterministic mode -- with ``stochastic=True`` every comparison must
        draw fresh resamples, so there is no fixed matrix to precompute.
        """
        if self.stochastic:
            raise ValueError(
                "win_fraction_matrix requires the deterministic mode; "
                "stochastic comparators draw fresh resamples per call"
            )
        vecs = [_validate_one(a) for a in arrays]
        blobs = [np.ascontiguousarray(v).tobytes() for v in vecs]
        p = len(vecs)
        fractions = np.full((p, p), 0.5)
        slots: list[tuple[int, int]] = []  # canonical (row, column) of each computed pair
        for i in range(p):
            for j in range(i + 1, p):
                if blobs[i] == blobs[j]:
                    continue  # identical data: win fraction stays 0.5
                slots.append((i, j) if blobs[i] < blobs[j] else (j, i))
        # Batch in chunks: peak memory is 2 * chunk * n_resamples * N floats
        # regardless of p, while each chunk still amortises np.quantile over
        # hundreds of pairs (per-slice results are independent, so chunking
        # does not change a single bit).
        chunk_pairs = 256
        for start in range(0, len(slots), chunk_pairs):
            chunk = slots[start : start + chunk_pairs]
            sample_matrices: list[np.ndarray] = []
            for x, y in chunk:
                rng = self._rng_for(blobs[x], blobs[y])
                # Same stream order as win_fraction: resample x first, then y.
                sample_matrices.append(
                    vecs[x][bootstrap_indices(vecs[x].size, self.n_resamples, rng)]
                )
                sample_matrices.append(
                    vecs[y][bootstrap_indices(vecs[y].size, self.n_resamples, rng)]
                )
            profiles = batched_quantile_profiles(sample_matrices, self.quantiles)
            qa, qb = profiles[0::2], profiles[1::2]  # (pairs, n_resamples, len(quantiles))
            level_scores = self._level_scores(qa, qb, axis=1)
            for (x, y), f in zip(chunk, level_scores.mean(axis=1)):
                fractions[x, y] = float(f)
                fractions[y, x] = 1.0 - float(f)
        return fractions

    def outcome_matrix(self, arrays: Sequence[np.ndarray]) -> list[list[Comparison]]:
        """Full antisymmetric outcome matrix over a list of measurement arrays.

        ``matrix[i][j]`` is the outcome of comparing ``arrays[i]`` against
        ``arrays[j]`` (diagonal entries are ``EQUIVALENT``), computed from the
        batched :meth:`win_fraction_matrix`.
        """
        fractions = self.win_fraction_matrix(arrays)
        p = len(fractions)
        return [
            [
                Comparison.EQUIVALENT if i == j else self._from_fraction(fractions[i, j])
                for j in range(p)
            ]
            for i in range(p)
        ]


@dataclass
class SingleStatisticComparator(Comparator):
    """Baseline comparator: reduce each distribution to one number and compare.

    This is the strategy the paper argues against -- "a single number (such as
    statistical mean, median or minimum) cannot reliably capture the
    performance of an algorithm" -- and is included as the baseline for the
    stability ablations.  Two algorithms are equivalent when their statistics
    differ by less than ``rel_tolerance`` relative to their midpoint.
    """

    statistic: Callable[[np.ndarray], float] = np.mean
    rel_tolerance: float = 0.0
    lower_is_better: bool = True
    name: str = "statistic"

    # Pure function of the data: opts into engine caching (not a dataclass field).
    stochastic = False

    def compare(self, a: np.ndarray, b: np.ndarray) -> Comparison:
        va, vb = _validate(a, b)
        sa = float(self.statistic(va))
        sb = float(self.statistic(vb))
        midpoint = 0.5 * (abs(sa) + abs(sb))
        if midpoint == 0.0 or abs(sa - sb) <= self.rel_tolerance * midpoint:
            return Comparison.EQUIVALENT
        return self._oriented(a_better=sa < sb)


def MeanComparator(rel_tolerance: float = 0.0, lower_is_better: bool = True) -> SingleStatisticComparator:
    """Single-statistic comparator using the arithmetic mean."""
    return SingleStatisticComparator(np.mean, rel_tolerance, lower_is_better, name="mean")


def MedianComparator(rel_tolerance: float = 0.0, lower_is_better: bool = True) -> SingleStatisticComparator:
    """Single-statistic comparator using the median."""
    return SingleStatisticComparator(np.median, rel_tolerance, lower_is_better, name="median")


def MinimumComparator(rel_tolerance: float = 0.0, lower_is_better: bool = True) -> SingleStatisticComparator:
    """Single-statistic comparator using the minimum (best observed run)."""
    return SingleStatisticComparator(np.min, rel_tolerance, lower_is_better, name="minimum")


@dataclass
class MannWhitneyComparator(Comparator):
    """Three-way comparison via the Mann-Whitney U rank-sum test.

    If the two samples are not significantly different at level ``alpha`` the
    algorithms are equivalent; otherwise the direction is taken from the
    medians.  Provided as a classical-statistics alternative to bootstrapping.
    """

    alpha: float = 0.05
    lower_is_better: bool = True

    # Pure function of the data: opts into engine caching (not a dataclass field).
    stochastic = False

    def compare(self, a: np.ndarray, b: np.ndarray) -> Comparison:
        va, vb = _validate(a, b)
        if np.array_equal(va, vb):
            return Comparison.EQUIVALENT
        result = stats.mannwhitneyu(va, vb, alternative="two-sided")
        if result.pvalue >= self.alpha:
            return Comparison.EQUIVALENT
        med_a = float(np.median(va))
        med_b = float(np.median(vb))
        if med_a == med_b:
            # A significant rank difference with *exactly* tied medians gives
            # no defensible direction; calling it equivalent keeps the
            # relation antisymmetric (the alternative would claim WORSE from
            # both points of view).
            return Comparison.EQUIVALENT
        return self._oriented(a_better=med_a < med_b)


def _median_profile(m: np.ndarray) -> np.ndarray:
    """Default interval statistic: the median of each resample (picklable, unlike a lambda)."""
    return np.median(m, axis=-1)


@dataclass
class IntervalOverlapComparator(Comparator):
    """Compare bootstrap confidence intervals of a summary statistic.

    The statistic (median by default) is bootstrapped for both algorithms; if
    the two percentile confidence intervals overlap the algorithms are
    equivalent, otherwise the direction is given by the interval ordering.

    Resamples are drawn from a per-pair generator derived from the data and
    the seed (like :meth:`BootstrapComparator._rng_for`), with the pair
    internally canonicalised: repeated comparisons of the same pair agree,
    different pairs draw independent resamples, and ``compare(a, b)`` is
    exactly the flip of ``compare(b, a)``.
    """

    statistic: Callable[[np.ndarray], np.ndarray] = _median_profile
    confidence: float = 0.95
    n_resamples: int = 200
    lower_is_better: bool = True
    seed: int = 0

    # Per-pair derived generators make this a pure function of data and seed.
    stochastic = False

    def compare(self, a: np.ndarray, b: np.ndarray) -> Comparison:
        va, vb = _validate(a, b)
        bytes_a = np.ascontiguousarray(va).tobytes()
        bytes_b = np.ascontiguousarray(vb).tobytes()
        if bytes_a == bytes_b:
            return Comparison.EQUIVALENT
        if bytes_b < bytes_a:
            return self.compare(vb, va).flipped()
        rng = derive_pair_rng(self.seed, bytes_a, bytes_b)
        sa = bootstrap_statistic(va, self.statistic, self.n_resamples, rng)
        sb = bootstrap_statistic(vb, self.statistic, self.n_resamples, rng)
        ia = percentile_interval(sa, self.confidence)
        ib = percentile_interval(sb, self.confidence)
        if ia.overlaps(ib):
            return Comparison.EQUIVALENT
        return self._oriented(a_better=ia.high < ib.low)
