"""Containers for relative scores and final cluster assignments.

Procedure 4 of the paper produces, for every rank ``r``, the set of algorithms
that obtained rank ``r`` in at least one of the ``Rep`` repetitions of the
sorting procedure, together with a *relative score* -- the fraction of
repetitions in which the algorithm obtained that rank.  An algorithm can
therefore appear in several clusters with different confidences.

:class:`ScoreTable` stores that rank -> {algorithm: score} structure.
:class:`FinalClustering` stores the deterministic assignment derived from it
(each algorithm goes to the cluster where it scored highest and its scores
from better ranks are cumulated), which is the representation used for
algorithm selection in Section IV.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from .types import Label

__all__ = ["ScoreTable", "FinalClustering", "ClusterEntry", "make_final_clustering"]


@dataclass(frozen=True)
class ClusterEntry:
    """An algorithm's membership in one cluster, with its (relative) score."""

    label: Label
    score: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.score <= 1.0 + 1e-12:
            raise ValueError(f"score must lie in [0, 1], got {self.score}")


class ScoreTable:
    """Relative scores per rank, as produced by Procedure 4.

    The table behaves like a mapping ``rank -> {label: score}``.  Ranks are
    1-based and contiguous from 1 to :attr:`n_ranks`.
    """

    def __init__(self, scores: Mapping[int, Mapping[Label, float]]):
        cleaned: dict[int, dict[Label, float]] = {}
        for rank, entries in scores.items():
            if rank < 1:
                raise ValueError(f"ranks are 1-based, got {rank}")
            cleaned[int(rank)] = {label: float(score) for label, score in entries.items()}
        for rank, entries in cleaned.items():
            for label, score in entries.items():
                if not 0.0 <= score <= 1.0 + 1e-12:
                    raise ValueError(
                        f"relative score of {label!r} at rank {rank} must lie in [0, 1], got {score}"
                    )
        self._scores: dict[int, dict[Label, float]] = dict(sorted(cleaned.items()))

    # -- mapping-like interface ------------------------------------------------
    def __getitem__(self, rank: int) -> dict[Label, float]:
        return dict(self._scores[rank])

    def __contains__(self, rank: int) -> bool:
        return rank in self._scores

    def __iter__(self) -> Iterator[int]:
        return iter(self._scores)

    def __len__(self) -> int:
        return len(self._scores)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ScoreTable):
            return NotImplemented
        return self._scores == other._scores

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ScoreTable({self._scores!r})"

    # -- accessors ---------------------------------------------------------------
    @property
    def n_ranks(self) -> int:
        """Largest rank present in the table."""
        return max(self._scores, default=0)

    @property
    def labels(self) -> list[Label]:
        """All algorithms mentioned anywhere in the table."""
        seen: dict[Label, None] = {}
        for entries in self._scores.values():
            for label in entries:
                seen.setdefault(label, None)
        return list(seen)

    def ranks(self) -> list[int]:
        return list(self._scores)

    def score(self, label: Label, rank: int) -> float:
        """Relative score of ``label`` at ``rank`` (0.0 if it never obtained that rank)."""
        return self._scores.get(rank, {}).get(label, 0.0)

    def scores_of(self, label: Label) -> dict[int, float]:
        """All non-zero scores of one algorithm, keyed by rank."""
        return {
            rank: entries[label]
            for rank, entries in self._scores.items()
            if label in entries
        }

    def entries(self, rank: int) -> list[ClusterEntry]:
        """Entries of one rank sorted by decreasing score then label order."""
        items = self._scores.get(rank, {})
        return [
            ClusterEntry(label, score)
            for label, score in sorted(items.items(), key=lambda kv: (-kv[1], str(kv[0])))
        ]

    def total_score(self, label: Label) -> float:
        """Sum of an algorithm's scores over all ranks (== 1 for Procedure 4 output)."""
        return sum(self.scores_of(label).values())

    def cumulative_score(self, label: Label, rank: int) -> float:
        """Score of ``label`` at ``rank`` plus all its scores from *better* (smaller) ranks."""
        return sum(score for r, score in self.scores_of(label).items() if r <= rank)

    def best_rank(self, label: Label) -> int:
        """The best (smallest) rank the algorithm ever obtained."""
        scores = self.scores_of(label)
        if not scores:
            raise KeyError(f"{label!r} does not appear in the score table")
        return min(scores)

    def argmax_rank(self, label: Label) -> int:
        """The rank at which the algorithm obtained its maximum relative score.

        Ties are broken towards the better (smaller) rank, consistent with the
        paper's preference for the best defensible class.
        """
        scores = self.scores_of(label)
        if not scores:
            raise KeyError(f"{label!r} does not appear in the score table")
        best = max(scores.values())
        return min(rank for rank, score in scores.items() if score >= best - 1e-12)

    def as_dict(self) -> dict[int, dict[Label, float]]:
        """Plain-dict copy of the table."""
        return {rank: dict(entries) for rank, entries in self._scores.items()}

    def to_rows(self) -> list[tuple[int, Label, float]]:
        """Flat ``(rank, label, score)`` rows in Table I order."""
        rows: list[tuple[int, Label, float]] = []
        for rank in self._scores:
            for entry in self.entries(rank):
                rows.append((rank, entry.label, entry.score))
        return rows


@dataclass(frozen=True)
class FinalClustering:
    """Deterministic one-cluster-per-algorithm assignment derived from a :class:`ScoreTable`.

    Attributes
    ----------
    clusters:
        Mapping cluster index (1 = best) to the entries assigned to it.  The
        entry scores are the *cumulated* relative scores (score at the chosen
        rank plus the scores from all better ranks), as in the final
        clustering example of Section III.
    source:
        The score table this assignment was derived from.
    """

    clusters: Mapping[int, tuple[ClusterEntry, ...]]
    source: ScoreTable | None = field(default=None, compare=False, repr=False)

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)

    @property
    def labels(self) -> list[Label]:
        return [entry.label for entries in self.clusters.values() for entry in entries]

    def cluster_of(self, label: Label) -> int:
        for cluster, entries in self.clusters.items():
            if any(entry.label == label for entry in entries):
                return cluster
        raise KeyError(f"{label!r} is not assigned to any cluster")

    def score_of(self, label: Label) -> float:
        for entries in self.clusters.values():
            for entry in entries:
                if entry.label == label:
                    return entry.score
        raise KeyError(f"{label!r} is not assigned to any cluster")

    def members(self, cluster: int) -> list[Label]:
        return [entry.label for entry in self.clusters[cluster]]

    def best_cluster(self) -> list[Label]:
        """Labels of the fastest performance class."""
        if not self.clusters:
            return []
        return self.members(min(self.clusters))

    def as_dict(self) -> dict[int, dict[Label, float]]:
        return {
            cluster: {entry.label: entry.score for entry in entries}
            for cluster, entries in self.clusters.items()
        }

    def ordered_labels(self) -> list[Label]:
        """All labels ordered by cluster, then by decreasing score."""
        out: list[Label] = []
        for cluster in sorted(self.clusters):
            out.extend(entry.label for entry in self.clusters[cluster])
        return out

    def __iter__(self) -> Iterator[tuple[int, tuple[ClusterEntry, ...]]]:
        return iter(sorted(self.clusters.items()))


def make_final_clustering(
    entries_by_cluster: Mapping[int, Iterable[ClusterEntry]],
    source: ScoreTable | None = None,
) -> FinalClustering:
    """Build a :class:`FinalClustering`, normalising cluster numbering to 1..k."""
    ordered = [
        (cluster, tuple(sorted(entries, key=lambda e: (-e.score, str(e.label)))))
        for cluster, entries in sorted(entries_by_cluster.items())
    ]
    ordered = [(cluster, entries) for cluster, entries in ordered if entries]
    clusters: dict[int, tuple[ClusterEntry, ...]] = {
        new_index: entries for new_index, (_, entries) in enumerate(ordered, start=1)
    }
    return FinalClustering(clusters=clusters, source=source)
