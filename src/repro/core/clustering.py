"""Relative-score clustering (Procedure 4) and the final cluster assignment.

When measurement distributions partially overlap, the outcome of the
three-way bubble sort depends on the (shuffled) initial order and on the
randomness inside the comparator; the clustering is therefore *not*
deterministic.  Procedure 4 embraces this: the sort is repeated ``Rep`` times
over shuffled inputs and each algorithm receives, for every rank it ever
obtained, a **relative score** equal to the fraction of repetitions in which
it obtained that rank.

The paper then derives a deterministic clustering for downstream use (e.g. as
ground truth for training performance models): each algorithm is assigned to
the rank where its relative score is maximal, and its final score cumulates
the scores from better ranks (Section III, "Computing the relative scores").
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from .scores import ClusterEntry, FinalClustering, ScoreTable, make_final_clustering
from .sorting import SortResult, three_way_bubble_sort
from .types import CompareFn, Label

__all__ = [
    "relative_scores",
    "get_cluster",
    "final_assignment",
    "cluster_algorithms",
]


def _normalise_labels(labels: Iterable[Label]) -> list[Label]:
    out = list(labels)
    if len(out) == 0:
        raise ValueError("at least one algorithm is required")
    if len(set(out)) != len(out):
        raise ValueError("algorithm labels must be unique")
    return out


def relative_scores(
    labels: Iterable[Label],
    compare: CompareFn,
    repetitions: int = 100,
    rng: np.random.Generator | int | None = None,
    shuffle: bool = True,
) -> ScoreTable:
    """Repeat the three-way sort over shuffled inputs and tally per-rank relative scores.

    This is Procedure 4 generalised to all ranks at once: the paper's
    ``GetCluster_r`` is recovered by :func:`get_cluster` or by indexing the
    returned :class:`~repro.core.scores.ScoreTable` with ``r``.

    Parameters
    ----------
    labels:
        Algorithm identifiers.
    compare:
        Label-level three-way comparison (bind a comparator to measurements
        with :func:`repro.core.types.bind_comparator`, or hand in a
        :class:`repro.core.engine.ComparisonEngine` directly -- the engine
        caches deterministic comparators so each pair is bootstrapped at most
        once across all repetitions).  The measurements are *not* re-collected
        between repetitions -- only the procedure is repeated, exactly as in
        the paper (footnote 5).
    repetitions:
        Number of repetitions ``Rep``.
    rng:
        Random generator or seed controlling the shuffles.
    shuffle:
        If False the input order is kept for every repetition (useful for
        deterministic comparators, where shuffling is the only randomness).
    """
    algorithms = _normalise_labels(labels)
    if repetitions <= 0:
        raise ValueError("repetitions must be positive")
    generator = np.random.default_rng(rng)

    counts: dict[int, dict[Label, int]] = {}
    order = list(algorithms)
    for _ in range(repetitions):
        if shuffle:
            generator.shuffle(order)
        result = three_way_bubble_sort(order, compare)
        for label, rank in result.pairs():
            counts.setdefault(rank, {}).setdefault(label, 0)
            counts[rank][label] += 1

    scores = {
        rank: {label: count / repetitions for label, count in entries.items()}
        for rank, entries in counts.items()
    }
    return ScoreTable(scores)


def get_cluster(
    labels: Iterable[Label],
    compare: CompareFn,
    rank: int,
    repetitions: int = 100,
    rng: np.random.Generator | int | None = None,
) -> list[ClusterEntry]:
    """Procedure 4 (``GetCluster_r``): algorithms assigned to ``rank`` with their relative scores."""
    table = relative_scores(labels, compare, repetitions=repetitions, rng=rng)
    return table.entries(rank) if rank in table else []


def final_assignment(table: ScoreTable) -> FinalClustering:
    """Assign every algorithm to the cluster where its relative score is maximal.

    The final score of an algorithm is its relative score at the chosen rank
    plus the scores it obtained at *better* ranks, as in the worked example of
    Section III (``alg_DA``: rank 3 with 0.6 plus rank 2 with 0.3 -> final
    score 0.9 in cluster 3).  Cluster indices are re-numbered consecutively
    so that empty ranks disappear.
    """
    assignments: dict[int, list[ClusterEntry]] = {}
    for label in table.labels:
        rank = table.argmax_rank(label)
        score = table.cumulative_score(label, rank)
        assignments.setdefault(rank, []).append(ClusterEntry(label, min(score, 1.0)))
    return make_final_clustering(assignments, source=table)


def cluster_algorithms(
    labels: Iterable[Label],
    compare: CompareFn,
    repetitions: int = 100,
    rng: np.random.Generator | int | None = None,
    shuffle: bool = True,
) -> tuple[ScoreTable, FinalClustering]:
    """End-to-end clustering: relative scores plus the derived final assignment."""
    table = relative_scores(labels, compare, repetitions=repetitions, rng=rng, shuffle=shuffle)
    return table, final_assignment(table)


def single_sort(
    labels: Sequence[Label],
    compare: CompareFn,
    record_trace: bool = False,
) -> SortResult:
    """Convenience re-export of one sorting pass (Procedure 1) for callers of this module."""
    return three_way_bubble_sort(labels, compare, record_trace=record_trace)
