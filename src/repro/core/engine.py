"""Pairwise comparison engine: precomputed outcome matrices and comparison caching.

The sorting/clustering procedures consume comparisons through the label-level
:data:`~repro.core.types.CompareFn` protocol, but Procedure 4 repeats the
three-way bubble sort ``Rep`` times over the *same* measurement table: with a
deterministic comparator the same pair of algorithms is re-bootstrapped up to
``Rep`` times for an outcome that is guaranteed identical on every call.  The
:class:`ComparisonEngine` sits between an
:class:`~repro.core.types.ArrayComparator` and those procedures and removes
that redundancy without changing a single outcome:

* for **deterministic** comparators (``stochastic`` attribute explicitly
  ``False``, declared by every deterministic built-in) every unique pair is
  evaluated at most once -- either eagerly, through the
  comparator's vectorized ``outcome_matrix`` batch (the
  :class:`~repro.core.comparison.BootstrapComparator` stacks all pairs'
  bootstrap quantile profiles into one ``(pairs, n_resamples, quantiles)``
  batch), or lazily through a memoizing :class:`CachedCompareFn`; label-level
  lookups are then O(1);
* **stochastic** comparators (``stochastic=True``) transparently bypass the
  cache: every call reaches the comparator and draws fresh resamples, which
  preserves the rank-switching behaviour Procedure 4 relies on bit for bit;
* comparators that expose **no** ``stochastic`` attribute are conservatively
  treated like stochastic ones (pass-through, never cached): freezing the
  outcomes of an unknown third-party comparator with hidden per-call
  randomness would silently corrupt Procedure 4, whereas not caching a
  deterministic one merely forgoes the speedup.

The engine is itself a :data:`~repro.core.types.CompareFn`, so it plugs
directly into :func:`~repro.core.sorting.three_way_bubble_sort`,
:func:`~repro.core.clustering.relative_scores` and friends;
:func:`~repro.core.types.bind_comparator` is a thin shim over it.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from .types import CompareFn, Comparison, Label

__all__ = ["CachedCompareFn", "ComparisonEngine", "coerce_measurements"]


def coerce_measurements(measurements) -> dict[Label, np.ndarray]:
    """Normalise a measurement table to ``label -> 1-D float array``.

    Accepts a plain mapping or anything exposing ``as_dict()`` (e.g.
    :class:`~repro.measurement.dataset.MeasurementSet`).
    """
    if hasattr(measurements, "as_dict"):
        measurements = measurements.as_dict()
    if not isinstance(measurements, Mapping):
        raise TypeError("measurements must be a mapping of label -> array of measurements")
    coerced: dict[Label, np.ndarray] = {}
    for label, values in measurements.items():
        arr = np.asarray(values, dtype=float).ravel()
        if arr.size == 0:
            raise ValueError(f"algorithm {label!r} has no measurements")
        coerced[label] = arr
    if not coerced:
        raise ValueError("at least one algorithm is required")
    return coerced


class CachedCompareFn:
    """Memoizing wrapper around a label-level :data:`CompareFn`.

    The first evaluation of a pair stores both directions (the reverse via
    :meth:`Comparison.flipped`), so the wrapped function is invoked at most
    once per unordered pair and the cached relation is antisymmetric by
    construction.  Only meaningful for deterministic comparison functions --
    a stochastic function must not be wrapped, since caching would freeze the
    outcome of borderline pairs.

    The inner function must itself be antisymmetric (every bundled comparator
    is), so the flip-store is an optimisation, not a behaviour change.
    """

    def __init__(self, inner: CompareFn):
        self.inner = inner
        self._cache: dict[tuple[Label, Label], Comparison] = {}
        #: Total label-level calls served (hits + misses).
        self.calls = 0
        #: Calls that reached the wrapped function.
        self.misses = 0

    @property
    def hits(self) -> int:
        return self.calls - self.misses

    def __call__(self, a: Label, b: Label) -> Comparison:
        self.calls += 1
        key = (a, b)
        outcome = self._cache.get(key)
        if outcome is None:
            outcome = self.inner(a, b)
            self.misses += 1
            self._cache[key] = outcome
            self._cache[(b, a)] = outcome.flipped()
        return outcome

    def seed_cache(self, outcomes: Mapping[tuple[Label, Label], Comparison]) -> None:
        """Pre-fill the cache with already-known outcomes (both directions as given)."""
        self._cache.update(outcomes)


class ComparisonEngine:
    """Serve label-level three-way comparisons over one measurement table.

    Parameters
    ----------
    measurements:
        Mapping ``label -> measurements`` (or anything with ``as_dict()``).
    comparator:
        Array-level comparator implementing ``compare(a, b)``.  Caching is
        opt-in via the deterministic contract: only comparators whose
        ``stochastic`` attribute is explicitly ``False`` (declared by every
        deterministic built-in) are cached.  A truthy value -- or no
        attribute at all, including :class:`~repro.core.comparison.Comparator`
        subclasses that never declared the contract -- puts the engine in
        pass-through mode, so comparators with hidden per-call randomness are
        never silently frozen.
    precompute:
        Force (``True``) or suppress (``False``) the eager matrix
        precomputation.  The default (``None``) precomputes whenever the
        comparator is cacheable and exposes a batched ``outcome_matrix``;
        other cacheable comparators fall back to lazy memoization, which
        still evaluates each pair at most once.

    Attributes
    ----------
    stochastic:
        Whether the engine is in pass-through (cache-bypass) mode.
    comparator_calls:
        Number of pair evaluations that reached the underlying comparator,
        counting a precomputed matrix as one evaluation per unordered pair.
    """

    def __init__(
        self,
        measurements,
        comparator,
        *,
        precompute: bool | None = None,
    ) -> None:
        if not hasattr(comparator, "compare"):
            raise TypeError("comparator must expose a compare(a, b) method")
        self.arrays = coerce_measurements(measurements)
        self.labels: list[Label] = list(self.arrays)
        self.comparator = comparator
        # Tri-state deterministic contract: cache only on an explicit False.
        self.stochastic = getattr(comparator, "stochastic", True) is not False
        self.comparator_calls = 0
        self._precomputed = False
        self._cached: CachedCompareFn | None = None
        if self.stochastic:
            if precompute:
                raise ValueError(
                    "cannot precompute an outcome matrix: the comparator does not declare "
                    "the deterministic contract (stochastic=False), so every call must "
                    "reach it directly"
                )
            self._compare: CompareFn = self._evaluate
        else:
            self._cached = CachedCompareFn(self._evaluate)
            self._compare = self._cached
            if precompute is None:
                precompute = hasattr(comparator, "outcome_matrix")
            if precompute:
                self.precompute()

    # ------------------------------------------------------------------
    def _evaluate(self, a: Label, b: Label) -> Comparison:
        """Resolve labels to arrays and invoke the underlying comparator."""
        try:
            va, vb = self.arrays[a], self.arrays[b]
        except KeyError as exc:
            raise KeyError(f"no measurements recorded for algorithm {exc.args[0]!r}") from exc
        self.comparator_calls += 1
        return self.comparator.compare(va, vb)

    def precompute(self) -> None:
        """Eagerly fill the cache from the comparator's vectorized outcome matrix.

        Idempotent: repeated calls are no-ops once the matrix has been computed.
        """
        if self._cached is None:
            raise ValueError("cannot precompute outcomes for a stochastic comparator")
        if self._precomputed:
            return
        if not hasattr(self.comparator, "outcome_matrix"):
            raise ValueError(
                f"{type(self.comparator).__name__} does not implement the batched "
                "outcome_matrix(arrays) protocol required for eager precomputation; "
                "omit precompute=True to use lazy memoization instead"
            )
        matrix = self.comparator.outcome_matrix([self.arrays[label] for label in self.labels])
        outcomes: dict[tuple[Label, Label], Comparison] = {}
        for i, a in enumerate(self.labels):
            for j, b in enumerate(self.labels):
                outcomes[(a, b)] = matrix[i][j]
        self._cached.seed_cache(outcomes)
        p = len(self.labels)
        self.comparator_calls += p * (p - 1) // 2
        self._precomputed = True

    # ------------------------------------------------------------------
    def compare(self, a: Label, b: Label) -> Comparison:
        """Label-level three-way comparison (cached unless the comparator is stochastic).

        Unknown labels raise ``KeyError`` (they can never be cache hits, so the
        lookup always reaches :meth:`_evaluate`, which resolves the labels).
        """
        return self._compare(a, b)

    __call__ = compare

    def as_compare_fn(self) -> CompareFn:
        """The engine viewed through the :data:`CompareFn` protocol (it is one)."""
        return self

    # ------------------------------------------------------------------
    @property
    def lookups(self) -> int:
        """Label-level comparisons served so far."""
        if self._cached is not None:
            return self._cached.calls
        return self.comparator_calls

    def outcome_table(self) -> dict[tuple[Label, Label], Comparison]:
        """Full ordered-pair outcome table (forces precomputation of missing pairs).

        Raises for stochastic comparators, whose outcomes are not a fixed table.
        """
        if self._cached is None:
            raise ValueError("a stochastic comparator has no fixed outcome table")
        return {
            (a, b): self._compare(a, b)
            for a in self.labels
            for b in self.labels
        }
