"""Vectorised bootstrap resampling utilities.

The comparator of Section III quantifies the overlap of two measurement
distributions by *bootstrapping*: statistics are repeatedly evaluated on data
resampled (with replacement) from the ``N`` raw measurements, instead of being
summarised once into a single number.  This module provides the resampling
primitives used by :mod:`repro.core.comparison`.

Following the HPC guide, resampling is fully vectorised: a single
``(n_resamples, n)`` index matrix is drawn and statistics are evaluated along
an axis, avoiding Python-level loops over bootstrap rounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

__all__ = [
    "bootstrap_indices",
    "bootstrap_samples",
    "bootstrap_statistic",
    "bootstrap_quantiles",
    "batched_quantile_profiles",
    "percentile_interval",
    "BootstrapInterval",
]


def _as_1d_float(data: np.ndarray | Sequence[float], name: str = "data") -> np.ndarray:
    arr = np.asarray(data, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must contain at least one measurement")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite values")
    return arr


def _validate_quantiles(quantiles: Sequence[float]) -> np.ndarray:
    q = np.asarray(quantiles, dtype=float)
    if q.ndim != 1 or q.size == 0:
        raise ValueError("quantiles must be a non-empty 1-D sequence")
    if np.any((q < 0.0) | (q > 1.0)):
        raise ValueError("quantiles must lie in [0, 1]")
    return q


def bootstrap_indices(
    n: int,
    n_resamples: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw a ``(n_resamples, n)`` matrix of resampling indices with replacement."""
    if n <= 0:
        raise ValueError("n must be positive")
    if n_resamples <= 0:
        raise ValueError("n_resamples must be positive")
    return rng.integers(0, n, size=(n_resamples, n))


def bootstrap_samples(
    data: np.ndarray | Sequence[float],
    n_resamples: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Return a ``(n_resamples, n)`` matrix of bootstrap resamples of ``data``."""
    arr = _as_1d_float(data)
    idx = bootstrap_indices(arr.size, n_resamples, rng)
    return arr[idx]


def bootstrap_statistic(
    data: np.ndarray | Sequence[float],
    statistic: Callable[[np.ndarray], np.ndarray],
    n_resamples: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Evaluate ``statistic`` on every bootstrap resample.

    ``statistic`` must accept a 2-D array and an ``axis`` keyword is *not*
    assumed; instead it is called on the full resample matrix and must reduce
    the last axis (e.g. ``lambda m: np.mean(m, axis=-1)``).  For the common
    cases prefer :func:`bootstrap_quantiles`.
    """
    samples = bootstrap_samples(data, n_resamples, rng)
    out = np.asarray(statistic(samples))
    if out.ndim == 0 or out.shape[0] != n_resamples:
        raise ValueError(
            "statistic must preserve the resample axis: expected leading dimension "
            f"{n_resamples}, got shape {out.shape}"
        )
    return out


def bootstrap_quantiles(
    data: np.ndarray | Sequence[float],
    quantiles: Sequence[float],
    n_resamples: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Quantile profile of every bootstrap resample.

    Returns an array of shape ``(n_resamples, len(quantiles))`` where row ``r``
    holds the requested quantiles of the ``r``-th resample.
    """
    q = _validate_quantiles(quantiles)
    samples = bootstrap_samples(data, n_resamples, rng)
    # np.quantile with axis=-1 returns shape (len(q), n_resamples); transpose once.
    return np.quantile(samples, q, axis=-1).T


def batched_quantile_profiles(
    sample_matrices: Sequence[np.ndarray],
    quantiles: Sequence[float],
) -> np.ndarray:
    """Quantile profiles of many ``(n_resamples, n)`` resample matrices at once.

    The comparison engine stacks the resample matrices of *all* algorithm pairs
    and evaluates ``np.quantile`` on the stacked batch instead of once per
    matrix, which is where the per-call overhead of the pairwise bootstrap
    goes.  Matrices are grouped by sample width ``n`` (measurement vectors of
    different lengths cannot share a stack), so the number of ``np.quantile``
    evaluations equals the number of distinct widths, not the number of pairs.

    Returns an array of shape ``(len(sample_matrices), n_resamples, len(quantiles))``
    whose slice ``k`` is bitwise identical to
    ``np.quantile(sample_matrices[k], quantiles, axis=-1).T`` (the quantile of
    each slice of a batch is computed independently, with the same arithmetic
    as the unbatched call).
    """
    q = _validate_quantiles(quantiles)
    matrices = list(sample_matrices)
    if not matrices:
        return np.empty((0, 0, q.size))
    n_resamples = matrices[0].shape[0]
    for m in matrices:
        if m.ndim != 2 or m.shape[0] != n_resamples:
            raise ValueError(
                f"all resample matrices must share the shape ({n_resamples}, n), got {m.shape}"
            )
    out = np.empty((len(matrices), n_resamples, q.size))
    by_width: dict[int, list[int]] = {}
    for index, m in enumerate(matrices):
        by_width.setdefault(m.shape[1], []).append(index)
    for indices in by_width.values():
        stacked = np.stack([matrices[i] for i in indices])
        # (len(q), group, n_resamples) -> (group, n_resamples, len(q))
        profiles = np.quantile(stacked, q, axis=-1).transpose(1, 2, 0)
        for slot, index in enumerate(indices):
            out[index] = profiles[slot]
    return out


@dataclass(frozen=True)
class BootstrapInterval:
    """A two-sided percentile confidence interval for a bootstrapped statistic."""

    low: float
    high: float
    confidence: float

    @property
    def width(self) -> float:
        return self.high - self.low

    def overlaps(self, other: "BootstrapInterval") -> bool:
        """True if the two intervals share at least one point."""
        return self.low <= other.high and other.low <= self.high

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


def percentile_interval(
    samples: np.ndarray | Sequence[float],
    confidence: float = 0.95,
) -> BootstrapInterval:
    """Percentile confidence interval of a vector of bootstrapped statistics."""
    arr = _as_1d_float(samples, "samples")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must lie strictly between 0 and 1")
    alpha = 1.0 - confidence
    low, high = np.quantile(arr, [alpha / 2.0, 1.0 - alpha / 2.0])
    return BootstrapInterval(low=float(low), high=float(high), confidence=confidence)
