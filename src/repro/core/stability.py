"""Stability metrics for rankings and clusterings.

These metrics back the ablation benchmarks: the paper's central claim for the
relative-performance methodology is that, under measurement noise, a ranking
obtained from single summary statistics "might not be consistent when the
performance measurements are repeated", whereas merging statistically
indistinguishable algorithms into one class is robust.  The functions here
quantify consistency between two ranking outcomes and across many repeated
measurement rounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Callable, Mapping, Sequence

import numpy as np

from .types import Label

__all__ = [
    "pairwise_order_agreement",
    "kendall_tau_distance",
    "cluster_partition_agreement",
    "StabilityReport",
    "stability_across_rounds",
]


def _relation(rank_a: int, rank_b: int) -> int:
    """-1, 0, +1 relation between two ranks (smaller rank = better)."""
    if rank_a < rank_b:
        return -1
    if rank_a > rank_b:
        return 1
    return 0


def pairwise_order_agreement(
    ranks_a: Mapping[Label, int],
    ranks_b: Mapping[Label, int],
) -> float:
    """Fraction of unordered label pairs whose relation (better / worse / tied) agrees.

    Both mappings must rank exactly the same label set.  Returns 1.0 for a
    single label (no pairs to disagree on).
    """
    if set(ranks_a) != set(ranks_b):
        raise ValueError("both rankings must cover the same algorithms")
    labels = sorted(ranks_a, key=str)
    pairs = list(combinations(labels, 2))
    if not pairs:
        return 1.0
    agreements = sum(
        _relation(ranks_a[x], ranks_a[y]) == _relation(ranks_b[x], ranks_b[y]) for x, y in pairs
    )
    return agreements / len(pairs)


def kendall_tau_distance(
    ranks_a: Mapping[Label, int],
    ranks_b: Mapping[Label, int],
) -> float:
    """Normalised Kendall tau distance between two rankings (0 = identical order, 1 = reversed).

    Ties are handled by counting a pair as discordant only when the two
    rankings order it in strictly opposite directions.
    """
    if set(ranks_a) != set(ranks_b):
        raise ValueError("both rankings must cover the same algorithms")
    labels = sorted(ranks_a, key=str)
    pairs = list(combinations(labels, 2))
    if not pairs:
        return 0.0
    discordant = sum(
        _relation(ranks_a[x], ranks_a[y]) * _relation(ranks_b[x], ranks_b[y]) < 0 for x, y in pairs
    )
    return discordant / len(pairs)


def cluster_partition_agreement(
    clusters_a: Mapping[Label, int],
    clusters_b: Mapping[Label, int],
) -> float:
    """Rand-index-style agreement between two clusterings (fraction of pairs co-/separately clustered alike)."""
    if set(clusters_a) != set(clusters_b):
        raise ValueError("both clusterings must cover the same algorithms")
    labels = sorted(clusters_a, key=str)
    pairs = list(combinations(labels, 2))
    if not pairs:
        return 1.0
    same = sum(
        (clusters_a[x] == clusters_a[y]) == (clusters_b[x] == clusters_b[y]) for x, y in pairs
    )
    return same / len(pairs)


@dataclass(frozen=True)
class StabilityReport:
    """Aggregate stability of a ranking strategy across repeated measurement rounds."""

    #: Mean pairwise order agreement between all pairs of rounds.
    mean_order_agreement: float
    #: Mean Rand-style partition agreement between all pairs of rounds.
    mean_partition_agreement: float
    #: Fraction of rounds in which the identity of the best class/algorithm set is identical to the modal one.
    best_class_consistency: float
    #: Number of rounds compared.
    n_rounds: int

    def summary(self) -> str:
        return (
            f"rounds={self.n_rounds}  order-agreement={self.mean_order_agreement:.3f}  "
            f"partition-agreement={self.mean_partition_agreement:.3f}  "
            f"best-class-consistency={self.best_class_consistency:.3f}"
        )


def stability_across_rounds(
    rank_rounds: Sequence[Mapping[Label, int]],
) -> StabilityReport:
    """Compute pairwise stability metrics over the outcomes of repeated measurement rounds.

    Parameters
    ----------
    rank_rounds:
        One ``label -> rank`` mapping per measurement round (every round must
        cover the same algorithms).
    """
    if len(rank_rounds) < 2:
        raise ValueError("at least two rounds are required to measure stability")
    order_scores = []
    partition_scores = []
    best_sets = []
    for ranks in rank_rounds:
        best_rank = min(ranks.values())
        best_sets.append(frozenset(label for label, rank in ranks.items() if rank == best_rank))
    for a, b in combinations(range(len(rank_rounds)), 2):
        order_scores.append(pairwise_order_agreement(rank_rounds[a], rank_rounds[b]))
        partition_scores.append(cluster_partition_agreement(rank_rounds[a], rank_rounds[b]))
    # modal best-class set
    counts: dict[frozenset, int] = {}
    for best in best_sets:
        counts[best] = counts.get(best, 0) + 1
    modal = max(counts.values())
    return StabilityReport(
        mean_order_agreement=float(np.mean(order_scores)),
        mean_partition_agreement=float(np.mean(partition_scores)),
        best_class_consistency=modal / len(best_sets),
        n_rounds=len(rank_rounds),
    )
