"""Fundamental types shared across the relative-performance core.

The paper's methodology revolves around a *three-way comparison*: instead of
reducing two measurement distributions to single numbers and comparing those,
a comparison between two algorithms evaluates to one of three outcomes --
``BETTER``, ``WORSE`` or ``EQUIVALENT``.  Every other component of the core
(the bubble sort of Procedure 1, the relative-score clustering of Procedure 4)
is written against this outcome type and a small comparison-function protocol,
so that comparators can be swapped freely (bootstrap, Mann-Whitney, fixed
oracles for tests, ...).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Hashable, Mapping, Protocol, Sequence

import numpy as np

__all__ = [
    "Comparison",
    "Label",
    "CompareFn",
    "ArrayComparator",
    "PairwiseOracle",
    "ComparisonCounter",
]


Label = Hashable
"""Type alias for an algorithm identifier (typically a short string such as ``"DDA"``)."""


class Comparison(enum.Enum):
    """Outcome of a three-way comparison between two algorithms ``a`` and ``b``.

    The outcome is expressed from the point of view of the *first* argument:
    ``BETTER`` means the first algorithm performs better (e.g. runs faster),
    ``WORSE`` means it performs worse, and ``EQUIVALENT`` means the two
    measurement distributions overlap too much to call a winner.
    """

    BETTER = "better"
    WORSE = "worse"
    EQUIVALENT = "equivalent"

    def flipped(self) -> "Comparison":
        """Return the outcome from the point of view of the second argument."""
        if self is Comparison.BETTER:
            return Comparison.WORSE
        if self is Comparison.WORSE:
            return Comparison.BETTER
        return Comparison.EQUIVALENT

    @property
    def symbol(self) -> str:
        """Paper-style symbol: ``>`` (better), ``<`` (worse), ``~`` (equivalent)."""
        return {"better": ">", "worse": "<", "equivalent": "~"}[self.value]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


CompareFn = Callable[[Label, Label], Comparison]
"""A label-level comparison function, as consumed by the sorting/clustering procedures."""


class ArrayComparator(Protocol):
    """Protocol for comparators that operate directly on measurement arrays."""

    def compare(self, a: np.ndarray, b: np.ndarray) -> Comparison:
        """Compare two 1-D arrays of measurements and return a three-way outcome."""
        ...


@dataclass
class PairwiseOracle:
    """A label-level comparison function backed by a table of known outcomes.

    This is the comparison used to reproduce the worked example of Figure 2,
    where the paper fixes the pairwise outcomes (``AD`` beats everything,
    ``DD ~ DA``, ...) and then walks through the sort by hand.  It is also the
    natural comparator for unit tests, because it removes all randomness.

    Parameters
    ----------
    outcomes:
        Mapping from an ordered pair of labels to the outcome *of the first
        element of the pair*.  Only one direction needs to be specified; the
        reverse direction is derived by flipping the outcome.
    default:
        Outcome returned for pairs that are present in neither direction.  If
        ``None`` (the default) an unknown pair raises ``KeyError``.
    """

    outcomes: Mapping[tuple[Label, Label], Comparison]
    default: Comparison | None = None
    #: Number of comparisons served, useful to assert complexity in tests.
    calls: int = field(default=0, init=False)

    def __call__(self, a: Label, b: Label) -> Comparison:
        self.calls += 1
        if a == b:
            return Comparison.EQUIVALENT
        if (a, b) in self.outcomes:
            return self.outcomes[(a, b)]
        if (b, a) in self.outcomes:
            return self.outcomes[(b, a)].flipped()
        if self.default is not None:
            return self.default
        raise KeyError(f"no recorded outcome for pair ({a!r}, {b!r})")


@dataclass
class ComparisonCounter:
    """Wrap a :data:`CompareFn` and count how many times it is invoked.

    The paper notes that the sorting procedure "is not optimized for
    performance"; the counter makes the O(p^2) comparison count observable in
    tests and benchmarks without touching the procedures themselves.
    """

    inner: CompareFn
    calls: int = 0

    def __call__(self, a: Label, b: Label) -> Comparison:
        self.calls += 1
        return self.inner(a, b)


def bind_comparator(
    comparator: ArrayComparator,
    measurements: Mapping[Label, np.ndarray] | Mapping[Label, Sequence[float]],
) -> CompareFn:
    """Turn an array-level comparator plus a measurement table into a label-level compare function.

    The sorting and clustering procedures only ever see labels; this binder is
    the single place where labels are resolved to their measurement arrays.
    Arrays are passed to the comparator exactly as given (shape preserved, no
    validation).

    Comparators that declare the deterministic contract (``stochastic``
    attribute explicitly ``False``, declared by every deterministic built-in)
    are additionally wrapped in the engine layer's lazily memoizing
    :class:`repro.core.engine.CachedCompareFn`, so each unique pair is
    evaluated at most once while binding itself stays O(1).  The cache serves
    the reverse direction of a pair as the flip of the first-evaluated
    direction, so the contract also requires antisymmetry (every built-in
    comparator satisfies it); comparators that do not declare the contract
    have every call forwarded verbatim.  (The analyzer's
    own :class:`~repro.core.engine.ComparisonEngine` instances go further and
    precompute the full outcome matrix in one vectorized batch, where all
    pairs are known to be needed.)  ``stochastic=True`` comparators, and
    comparators exposing no ``stochastic`` attribute at all, keep their
    call-by-call behaviour untouched.
    """
    arrays = {label: np.asarray(values, dtype=float) for label, values in measurements.items()}

    def compare(a: Label, b: Label) -> Comparison:
        try:
            va, vb = arrays[a], arrays[b]
        except KeyError as exc:
            raise KeyError(f"no measurements recorded for algorithm {exc.args[0]!r}") from exc
        return comparator.compare(va, vb)

    if getattr(comparator, "stochastic", True) is not False:
        return compare
    from .engine import CachedCompareFn  # deferred: engine builds on these types

    return CachedCompareFn(compare)
