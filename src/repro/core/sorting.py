"""Bubble sort with three-way comparison and positional rank merging (Procedures 1-3).

The paper sorts the algorithm set with a bubble-sort whose comparison is not a
binary relation but the three-way outcome of :class:`~repro.core.types.Comparison`.
Alongside the sequence of algorithms, the procedure maintains a vector of
*positional ranks*: ``rank[j]`` is the performance class of the algorithm
currently sitting at position ``j``.  Ranks always form a non-decreasing
staircase ``1 = rank[0] <= rank[1] <= ... <= rank[p-1]`` with unit steps.

Update rules (Section III of the paper, update rules 1, 2a and 2b):

* **Swap rule** -- if the algorithm at position ``j`` is *worse* than its
  successor, the two algorithms swap positions (ranks stay attached to the
  positions, not to the algorithms).
* **Equivalence merge (2a)** -- if the two algorithms are *equivalent* but
  their positional ranks differ, the ranks of positions ``j+1 .. p-1`` are
  decreased by one, merging the two performance classes.
* **Post-swap split/merge (2b)** -- after a swap, if the winner now shares the
  rank of its *predecessor* but not of its *successor*, the successor ranks
  are decreased by one (the loser joins the winner's class); if instead the
  winner shares the rank of its *successor* but not of its predecessor, the
  successor ranks are increased by one (the winner "reached the top of its
  performance class" and is promoted above the algorithms it defeated).
* A *better* outcome without a swap leaves the ranks untouched (rule 2a).

The module also records an optional step-by-step trace, which is used to
regenerate the Figure 2 walk-through of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from .types import CompareFn, Comparison, Label

__all__ = [
    "SortStep",
    "SortResult",
    "three_way_bubble_sort",
    "ranks_are_valid",
]


@dataclass(frozen=True)
class SortStep:
    """One adjacent comparison of the bubble sort, for tracing / Figure 2."""

    #: 1-based index of the outer bubble-sort pass.
    pass_index: int
    #: 0-based position of the left element of the compared pair.
    position: int
    #: Label sitting at ``position`` *before* the step.
    left: Label
    #: Label sitting at ``position + 1`` *before* the step.
    right: Label
    #: Outcome of comparing ``left`` against ``right``.
    outcome: Comparison
    #: Whether the two algorithms swapped positions.
    swapped: bool
    #: Human-readable description of the rank update that was applied.
    rank_update: str
    #: Snapshot of the label sequence after the step.
    sequence_after: tuple[Label, ...]
    #: Snapshot of the positional ranks after the step.
    ranks_after: tuple[int, ...]

    def describe(self) -> str:
        """Single-line description in the style of the paper's Figure 2 captions."""
        action = "swap" if self.swapped else "keep"
        return (
            f"pass {self.pass_index}, pos {self.position}: "
            f"{self.left} {self.outcome.symbol} {self.right} -> {action}; {self.rank_update}"
        )


@dataclass(frozen=True)
class SortResult:
    """Outcome of :func:`three_way_bubble_sort`.

    Attributes
    ----------
    sequence:
        Algorithm labels in sorted order (best first).
    ranks:
        Positional ranks aligned with ``sequence`` (``ranks[0] == 1``).
    trace:
        Recorded :class:`SortStep` objects (empty unless tracing was enabled).
    n_comparisons:
        Total number of pairwise comparisons performed.
    """

    sequence: tuple[Label, ...]
    ranks: tuple[int, ...]
    trace: tuple[SortStep, ...] = field(default=())
    n_comparisons: int = 0

    def __post_init__(self) -> None:
        if len(self.sequence) != len(self.ranks):
            raise ValueError("sequence and ranks must have the same length")

    @property
    def n_classes(self) -> int:
        """Number of distinct performance classes."""
        return self.ranks[-1] if self.ranks else 0

    def rank_of(self, label: Label) -> int:
        """Rank (performance class, 1 = best) assigned to ``label``."""
        return self.as_mapping()[label]

    def as_mapping(self) -> dict[Label, int]:
        """Mapping label -> rank."""
        return dict(zip(self.sequence, self.ranks))

    def clusters(self) -> dict[int, list[Label]]:
        """Mapping rank -> labels in that performance class (sequence order preserved)."""
        out: dict[int, list[Label]] = {}
        for label, rank in zip(self.sequence, self.ranks):
            out.setdefault(rank, []).append(label)
        return out

    def pairs(self) -> list[tuple[Label, int]]:
        """The paper's output format: ``[(alg_s[1], rank_1), ..., (alg_s[p], rank_p)]``."""
        return list(zip(self.sequence, self.ranks))


def ranks_are_valid(ranks: Sequence[int]) -> bool:
    """Check the positional-rank invariant: starts at 1, non-decreasing, unit steps."""
    if len(ranks) == 0:
        return True
    if ranks[0] != 1:
        return False
    for previous, current in zip(ranks, ranks[1:]):
        if current - previous not in (0, 1):
            return False
    return True


def _apply_equivalent(ranks: list[int], j: int) -> str:
    """Rule 2a (equivalent, no swap): merge the class of ``j+1`` into the class of ``j``."""
    if ranks[j] != ranks[j + 1]:
        for k in range(j + 1, len(ranks)):
            ranks[k] -= 1
        return f"merge: ranks of positions {j + 1}.. decreased by 1"
    return "no rank update (already same class)"


def _apply_post_swap(ranks: list[int], j: int) -> str:
    """Rule 2b (after a swap placed the winner at position ``j``)."""
    has_predecessor = j > 0
    same_as_predecessor = has_predecessor and ranks[j] == ranks[j - 1]
    same_as_successor = ranks[j] == ranks[j + 1]
    if same_as_predecessor and not same_as_successor:
        for k in range(j + 1, len(ranks)):
            ranks[k] -= 1
        return f"merge: ranks of positions {j + 1}.. decreased by 1"
    if same_as_successor and not same_as_predecessor:
        for k in range(j + 1, len(ranks)):
            ranks[k] += 1
        return f"split: ranks of positions {j + 1}.. increased by 1"
    return "no rank update"


def three_way_bubble_sort(
    labels: Iterable[Label],
    compare: CompareFn,
    record_trace: bool = False,
) -> SortResult:
    """Sort algorithms with a three-way comparison and cluster them by rank (Procedure 1).

    Parameters
    ----------
    labels:
        Algorithm identifiers in their initial (arbitrary) order.  The initial
        order matters when the comparison is noisy, which is exactly why the
        clustering of Procedure 4 re-runs this sort over shuffled inputs.
    compare:
        Label-level three-way comparison function; ``compare(a, b)`` must
        return the outcome *for a* (``BETTER`` means ``a`` outperforms ``b``).
    record_trace:
        If True, a :class:`SortStep` is recorded for every comparison.

    Returns
    -------
    SortResult
        The sorted sequence, positional ranks, optional trace and comparison count.
    """
    sequence: list[Label] = list(labels)
    if len(set(sequence)) != len(sequence):
        raise ValueError("algorithm labels must be unique")
    p = len(sequence)
    ranks = list(range(1, p + 1))
    trace: list[SortStep] = []
    n_comparisons = 0

    for pass_index in range(1, p):  # p-1 bubble passes
        for j in range(0, p - pass_index):
            left, right = sequence[j], sequence[j + 1]
            outcome = compare(left, right)
            if not isinstance(outcome, Comparison):
                raise TypeError(
                    f"compare({left!r}, {right!r}) returned {outcome!r}, expected a Comparison"
                )
            n_comparisons += 1
            swapped = False
            if outcome is Comparison.WORSE:
                sequence[j], sequence[j + 1] = sequence[j + 1], sequence[j]
                swapped = True
                update = _apply_post_swap(ranks, j)
            elif outcome is Comparison.EQUIVALENT:
                update = _apply_equivalent(ranks, j)
            else:  # BETTER without swap: rule 2a, ranks untouched
                update = "no rank update"
            if record_trace:
                trace.append(
                    SortStep(
                        pass_index=pass_index,
                        position=j,
                        left=left,
                        right=right,
                        outcome=outcome,
                        swapped=swapped,
                        rank_update=update,
                        sequence_after=tuple(sequence),
                        ranks_after=tuple(ranks),
                    )
                )

    assert ranks_are_valid(ranks), f"internal error: invalid rank staircase {ranks}"
    return SortResult(
        sequence=tuple(sequence),
        ranks=tuple(ranks),
        trace=tuple(trace),
        n_comparisons=n_comparisons,
    )
