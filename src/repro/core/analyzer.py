"""High-level entry point: cluster a table of measurements into performance classes.

:class:`RelativePerformanceAnalyzer` wires together the pieces of the
methodology -- a three-way comparator, the bubble sort of Procedure 1 and the
relative-score clustering of Procedure 4 -- behind a single call::

    analyzer = RelativePerformanceAnalyzer(seed=0)
    analysis = analyzer.analyze({"DD": times_dd, "DA": times_da, ...})
    analysis.score_table        # rank -> {algorithm: relative score}
    analysis.final              # deterministic clusters (Table I style)
    analysis.best_algorithms()  # the fastest performance class

Every analysis is served through a per-table
:class:`~repro.core.engine.ComparisonEngine`, so a deterministic comparator
bootstraps each pair of algorithms exactly once no matter how many times
Procedure 4 repeats the sort.  Whole sweeps of measurement tables (several
chains, platforms or metrics) run as one campaign through
:meth:`RelativePerformanceAnalyzer.analyze_many`, optionally across processes.

The analyzer makes no assumption about what the measurements are (execution
time, energy, ...); it only assumes that smaller is better unless the
comparator says otherwise.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from .clustering import final_assignment, relative_scores
from .comparison import BootstrapComparator
from .engine import ComparisonEngine, coerce_measurements
from .scores import FinalClustering, ScoreTable
from .sorting import SortResult, three_way_bubble_sort
from .types import ArrayComparator, Label

__all__ = ["RelativePerformanceAnalyzer", "AnalysisResult"]


MeasurementsLike = Mapping[Label, "np.ndarray | Sequence[float]"]


@dataclass(frozen=True)
class AnalysisResult:
    """Full output of one relative-performance analysis."""

    #: Measurements the analysis was run on (label -> 1-D array).
    measurements: Mapping[Label, np.ndarray] = field(repr=False)
    #: Relative scores per rank (Procedure 4 output).
    score_table: ScoreTable
    #: Deterministic final assignment derived from the score table.
    final: FinalClustering
    #: A single canonical sort of the algorithms in their given order (Procedure 1).
    canonical_sort: SortResult
    #: Number of Procedure-4 repetitions used.
    repetitions: int

    @property
    def n_clusters(self) -> int:
        return self.final.n_clusters

    def cluster_of(self, label: Label) -> int:
        return self.final.cluster_of(label)

    def best_algorithms(self) -> list[Label]:
        """Algorithms in the fastest performance class (cluster 1)."""
        return self.final.best_cluster()

    def clusters(self) -> dict[int, list[Label]]:
        return {cluster: [e.label for e in entries] for cluster, entries in self.final}

    def summary(self) -> str:
        """Paper-style cluster table as a multi-line string (see Table I)."""
        lines = ["Cluster  Algorithm  Relative Score"]
        for cluster, entries in self.final:
            for i, entry in enumerate(entries):
                prefix = f"C{cluster}" if i == 0 else "  "
                lines.append(f"{prefix:<8} {str(entry.label):<10} {entry.score:.2f}")
        return "\n".join(lines)


def _analyze_campaign(
    analyzer: "RelativePerformanceAnalyzer", key, data: Mapping[Label, np.ndarray]
):
    """Process-pool worker: analyze one campaign entry (module-level for pickling)."""
    return key, analyzer.analyze(data)


@dataclass
class RelativePerformanceAnalyzer:
    """Cluster equivalent algorithms into performance classes from their measurements.

    Parameters
    ----------
    comparator:
        Array-level three-way comparator.  Defaults to the bootstrap
        quantile-profile comparator with the seed below.
    repetitions:
        Number of shuffled repetitions of the sorting procedure (``Rep``).
    seed:
        Seed for the shuffling generator (and the default comparator).
    shuffle:
        Whether to shuffle the algorithm order before each repetition.
    """

    comparator: ArrayComparator | None = None
    repetitions: int = 100
    seed: int | None = 0
    shuffle: bool = True

    def __post_init__(self) -> None:
        if self.repetitions <= 0:
            raise ValueError("repetitions must be positive")
        if self.comparator is None:
            self.comparator = BootstrapComparator(seed=self.seed if self.seed is not None else 0)
        if not hasattr(self.comparator, "compare"):
            raise TypeError("comparator must expose a compare(a, b) method")

    # ------------------------------------------------------------------
    def engine_for(self, measurements: MeasurementsLike) -> ComparisonEngine:
        """Comparison engine bound to this analyzer's comparator and one measurement table."""
        return ComparisonEngine(measurements, self.comparator)

    def _score_with(self, labels: Sequence[Label], engine: ComparisonEngine) -> ScoreTable:
        return relative_scores(
            labels,
            engine,
            repetitions=self.repetitions,
            rng=self.seed,
            shuffle=self.shuffle,
        )

    def rank_once(
        self,
        measurements: MeasurementsLike,
        order: Sequence[Label] | None = None,
        record_trace: bool = False,
    ) -> SortResult:
        """Run a single three-way bubble sort (Procedure 1) over the measurements."""
        data = coerce_measurements(measurements)
        labels = list(order) if order is not None else list(data)
        missing = [label for label in labels if label not in data]
        if missing:
            raise KeyError(f"no measurements for algorithms {missing!r}")
        # A single sort over a subset of the table touches few pairs; keep the
        # engine lazy there instead of precomputing the full p x p matrix.
        subset = len(labels) < len(data)
        engine = ComparisonEngine(
            data, self.comparator, precompute=False if subset else None
        )
        return three_way_bubble_sort(labels, engine, record_trace=record_trace)

    def score(self, measurements: MeasurementsLike) -> ScoreTable:
        """Relative scores per rank (Procedure 4) without the final assignment."""
        engine = self.engine_for(measurements)
        return self._score_with(engine.labels, engine)

    def analyze(self, measurements: MeasurementsLike) -> AnalysisResult:
        """Full pipeline: canonical sort, relative scores and final clustering.

        One :class:`~repro.core.engine.ComparisonEngine` backs the whole
        analysis, so measurements are coerced and the comparator bound exactly
        once; with a deterministic comparator every pair of algorithms is
        bootstrapped at most once across all ``repetitions`` sorts *and* the
        canonical sort.
        """
        engine = self.engine_for(measurements)
        table = self._score_with(engine.labels, engine)
        final = final_assignment(table)
        canonical = three_way_bubble_sort(engine.labels, engine)
        return AnalysisResult(
            measurements=engine.arrays,
            score_table=table,
            final=final,
            canonical_sort=canonical,
            repetitions=self.repetitions,
        )

    # Backwards-friendly alias matching the paper's terminology.
    cluster = analyze

    # ------------------------------------------------------------------
    def analyze_many(
        self,
        campaigns: Mapping[Label, MeasurementsLike],
        *,
        parallel: bool = False,
        max_workers: int | None = None,
    ) -> dict[Label, AnalysisResult]:
        """Analyze several measurement tables as one (optionally parallel) campaign.

        Each campaign entry is analyzed by an *independent copy* of this
        analyzer, so the result of every key equals
        ``copy.deepcopy(analyzer).analyze(measurements)`` regardless of dict
        order, of the other entries, or of how many workers run -- this
        matters for stochastic comparators, whose internal generator would
        otherwise thread state from one campaign into the next.

        Parameters
        ----------
        campaigns:
            Mapping from a campaign key (any hashable: scenario name, loop
            size, metric, platform, ...) to its measurement table.
        parallel:
            Analyze campaigns in a :class:`concurrent.futures.ProcessPoolExecutor`.
            Requires the comparator to be picklable (all built-in comparators
            are).
        max_workers:
            Worker-process cap for the parallel mode (``None`` = executor
            default).

        Returns
        -------
        dict
            ``key -> AnalysisResult`` in the input key order.
        """
        coerced = {key: coerce_measurements(m) for key, m in campaigns.items()}
        if not coerced:
            raise ValueError("at least one campaign is required")
        if parallel and len(coerced) > 1:
            import os
            from concurrent.futures import ProcessPoolExecutor

            # Never more workers than campaigns, and by default never more
            # than cores: each worker is a full interpreter importing numpy.
            workers = max_workers if max_workers is not None else (os.cpu_count() or 1)
            results: dict[Label, AnalysisResult] = {}
            with ProcessPoolExecutor(max_workers=min(workers, len(coerced))) as pool:
                futures = [
                    pool.submit(_analyze_campaign, self, key, data)
                    for key, data in coerced.items()
                ]
                for future in futures:
                    key, analysis = future.result()
                    results[key] = analysis
            return {key: results[key] for key in coerced}
        return {
            key: copy.deepcopy(self).analyze(data)
            for key, data in coerced.items()
        }
