"""High-level entry point: cluster a table of measurements into performance classes.

:class:`RelativePerformanceAnalyzer` wires together the pieces of the
methodology -- a three-way comparator, the bubble sort of Procedure 1 and the
relative-score clustering of Procedure 4 -- behind a single call::

    analyzer = RelativePerformanceAnalyzer(seed=0)
    analysis = analyzer.analyze({"DD": times_dd, "DA": times_da, ...})
    analysis.score_table        # rank -> {algorithm: relative score}
    analysis.final              # deterministic clusters (Table I style)
    analysis.best_algorithms()  # the fastest performance class

The analyzer makes no assumption about what the measurements are (execution
time, energy, ...); it only assumes that smaller is better unless the
comparator says otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from .clustering import final_assignment, relative_scores
from .comparison import BootstrapComparator, Comparator
from .scores import FinalClustering, ScoreTable
from .sorting import SortResult, three_way_bubble_sort
from .types import ArrayComparator, Label, bind_comparator

__all__ = ["RelativePerformanceAnalyzer", "AnalysisResult"]


MeasurementsLike = Mapping[Label, "np.ndarray | Sequence[float]"]


def _coerce_measurements(measurements) -> dict[Label, np.ndarray]:
    """Accept a plain mapping or anything exposing ``as_dict()`` (e.g. MeasurementSet)."""
    if hasattr(measurements, "as_dict"):
        measurements = measurements.as_dict()
    if not isinstance(measurements, Mapping):
        raise TypeError("measurements must be a mapping of label -> array of measurements")
    coerced: dict[Label, np.ndarray] = {}
    for label, values in measurements.items():
        arr = np.asarray(values, dtype=float).ravel()
        if arr.size == 0:
            raise ValueError(f"algorithm {label!r} has no measurements")
        coerced[label] = arr
    if not coerced:
        raise ValueError("at least one algorithm is required")
    return coerced


@dataclass(frozen=True)
class AnalysisResult:
    """Full output of one relative-performance analysis."""

    #: Measurements the analysis was run on (label -> 1-D array).
    measurements: Mapping[Label, np.ndarray] = field(repr=False)
    #: Relative scores per rank (Procedure 4 output).
    score_table: ScoreTable
    #: Deterministic final assignment derived from the score table.
    final: FinalClustering
    #: A single canonical sort of the algorithms in their given order (Procedure 1).
    canonical_sort: SortResult
    #: Number of Procedure-4 repetitions used.
    repetitions: int

    @property
    def n_clusters(self) -> int:
        return self.final.n_clusters

    def cluster_of(self, label: Label) -> int:
        return self.final.cluster_of(label)

    def best_algorithms(self) -> list[Label]:
        """Algorithms in the fastest performance class (cluster 1)."""
        return self.final.best_cluster()

    def clusters(self) -> dict[int, list[Label]]:
        return {cluster: [e.label for e in entries] for cluster, entries in self.final}

    def summary(self) -> str:
        """Paper-style cluster table as a multi-line string (see Table I)."""
        lines = ["Cluster  Algorithm  Relative Score"]
        for cluster, entries in self.final:
            for i, entry in enumerate(entries):
                prefix = f"C{cluster}" if i == 0 else "  "
                lines.append(f"{prefix:<8} {str(entry.label):<10} {entry.score:.2f}")
        return "\n".join(lines)


@dataclass
class RelativePerformanceAnalyzer:
    """Cluster equivalent algorithms into performance classes from their measurements.

    Parameters
    ----------
    comparator:
        Array-level three-way comparator.  Defaults to the bootstrap
        quantile-profile comparator with the seed below.
    repetitions:
        Number of shuffled repetitions of the sorting procedure (``Rep``).
    seed:
        Seed for the shuffling generator (and the default comparator).
    shuffle:
        Whether to shuffle the algorithm order before each repetition.
    """

    comparator: ArrayComparator | None = None
    repetitions: int = 100
    seed: int | None = 0
    shuffle: bool = True

    def __post_init__(self) -> None:
        if self.repetitions <= 0:
            raise ValueError("repetitions must be positive")
        if self.comparator is None:
            self.comparator = BootstrapComparator(seed=self.seed if self.seed is not None else 0)
        if not hasattr(self.comparator, "compare"):
            raise TypeError("comparator must expose a compare(a, b) method")

    # ------------------------------------------------------------------
    def rank_once(
        self,
        measurements: MeasurementsLike,
        order: Sequence[Label] | None = None,
        record_trace: bool = False,
    ) -> SortResult:
        """Run a single three-way bubble sort (Procedure 1) over the measurements."""
        data = _coerce_measurements(measurements)
        labels = list(order) if order is not None else list(data)
        missing = [label for label in labels if label not in data]
        if missing:
            raise KeyError(f"no measurements for algorithms {missing!r}")
        compare = bind_comparator(self.comparator, data)
        return three_way_bubble_sort(labels, compare, record_trace=record_trace)

    def score(self, measurements: MeasurementsLike) -> ScoreTable:
        """Relative scores per rank (Procedure 4) without the final assignment."""
        data = _coerce_measurements(measurements)
        compare = bind_comparator(self.comparator, data)
        return relative_scores(
            list(data),
            compare,
            repetitions=self.repetitions,
            rng=self.seed,
            shuffle=self.shuffle,
        )

    def analyze(self, measurements: MeasurementsLike) -> AnalysisResult:
        """Full pipeline: canonical sort, relative scores and final clustering."""
        data = _coerce_measurements(measurements)
        compare = bind_comparator(self.comparator, data)
        table = relative_scores(
            list(data),
            compare,
            repetitions=self.repetitions,
            rng=self.seed,
            shuffle=self.shuffle,
        )
        final = final_assignment(table)
        canonical = three_way_bubble_sort(list(data), compare)
        return AnalysisResult(
            measurements=data,
            score_table=table,
            final=final,
            canonical_sort=canonical,
            repetitions=self.repetitions,
        )

    # Backwards-friendly alias matching the paper's terminology.
    cluster = analyze
