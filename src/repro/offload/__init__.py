"""Algorithm space induced by splitting a task chain among devices."""

from .algorithm import OffloadedAlgorithm
from .execution import AlgorithmProfile, measure_algorithms, profile_algorithms
from .placement import Placement
from .space import enumerate_algorithms, enumerate_placements, sample_algorithms

__all__ = [
    "Placement",
    "OffloadedAlgorithm",
    "enumerate_placements",
    "enumerate_algorithms",
    "sample_algorithms",
    "measure_algorithms",
    "profile_algorithms",
    "AlgorithmProfile",
]
