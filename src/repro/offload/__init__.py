"""Algorithm space induced by splitting a task chain among devices."""

from .algorithm import OffloadedAlgorithm
from .execution import (
    AlgorithmProfile,
    measure_algorithms,
    profile_algorithms,
    profiles_from_batch,
)
from .placement import Placement
from .space import (
    MAX_ENUMERABLE_INDEX,
    enumerate_algorithms,
    enumerate_placements,
    indices_to_matrix,
    iter_placement_batches,
    placement_matrix,
    sample_algorithms,
    space_size,
)

__all__ = [
    "Placement",
    "OffloadedAlgorithm",
    "enumerate_placements",
    "enumerate_algorithms",
    "sample_algorithms",
    "placement_matrix",
    "indices_to_matrix",
    "iter_placement_batches",
    "space_size",
    "MAX_ENUMERABLE_INDEX",
    "measure_algorithms",
    "profile_algorithms",
    "profiles_from_batch",
    "AlgorithmProfile",
]
