"""Enumeration of the algorithm space induced by splitting a chain over devices.

With ``k`` tasks and ``m`` devices there are ``m**k`` placements (the paper's
Figure 1a shows the ``2**2 = 4`` splits of the two-loop code; Table I uses the
``2**3 = 8`` splits of the three-task code).  The space can be filtered, e.g.
to bound how many tasks may be offloaded, or sub-sampled when it explodes
combinatorially (the situation discussed in the paper's conclusion).
"""

from __future__ import annotations

from itertools import product
from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from ..devices.platform import Platform
from ..tasks.chain import TaskChain
from .algorithm import OffloadedAlgorithm
from .placement import Placement

__all__ = [
    "enumerate_placements",
    "enumerate_algorithms",
    "sample_algorithms",
    "placement_matrix",
    "indices_to_matrix",
    "iter_placement_batches",
    "space_size",
    "MAX_ENUMERABLE_INDEX",
]

#: Largest placement index representable by the ``np.int64`` encoding the
#: matrix enumeration uses.  Spaces may be (astronomically) larger -- only the
#: *slice actually enumerated* must stay below this bound.
MAX_ENUMERABLE_INDEX = 2**63 - 1


def space_size(n_tasks: int, n_devices: int) -> int:
    """Number of placements of an ``n_tasks`` chain over ``n_devices`` (``m**k``)."""
    if n_tasks <= 0:
        raise ValueError("n_tasks must be positive")
    if n_devices <= 0:
        raise ValueError("n_devices must be positive")
    return n_devices**n_tasks


def placement_matrix(
    n_tasks: int, n_devices: int, start: int = 0, stop: int | None = None
) -> np.ndarray:
    """Device-index matrix of the placement space, in lexicographic order.

    Row ``i`` holds the base-``n_devices`` digits of ``start + i`` (most
    significant digit first), so the rows enumerate placements in exactly the
    order of :func:`enumerate_placements` -- but as a compact integer matrix
    the batch execution engine consumes directly, without materialising
    ``m**k`` :class:`Placement` objects.  ``start``/``stop`` select a
    half-open slice of the space (used by :func:`iter_placement_batches` to
    stream huge spaces in bounded memory).
    """
    total = space_size(n_tasks, n_devices)
    if stop is None:
        stop = total
    if not 0 <= start <= stop <= total:
        raise ValueError(f"invalid slice [{start}, {stop}) of a space of {total} placements")
    if stop > start and stop - 1 > MAX_ENUMERABLE_INDEX:
        # int64 enumeration would silently wrap (or overflow, depending on the
        # NumPy version); fail loudly with the usable range instead.
        raise ValueError(
            f"slice [{start}, {stop}) of the {n_devices}**{n_tasks} = {total} placement "
            f"space exceeds the int64 index range: only indices up to "
            f"{MAX_ENUMERABLE_INDEX} (2**63 - 1) can be enumerated.  Restrict the "
            f"slice (start/stop), or sample the space instead of enumerating it."
        )
    if stop == start:
        # Empty slices are valid at any offset, even past the int64 range
        # (iter_placement_batches yields nothing for them).
        return indices_to_matrix(np.empty(0, dtype=np.int64), n_tasks, n_devices)
    # Build the index vector as offset + arange(length): `stop` itself may
    # equal 2**63, which does not fit the C long np.arange(start, stop) expects.
    indices = np.arange(stop - start, dtype=np.int64) + np.int64(start)
    return indices_to_matrix(indices, n_tasks, n_devices)


def indices_to_matrix(indices: np.ndarray, n_tasks: int, n_devices: int) -> np.ndarray:
    """Decode placement indices into rows of base-``n_devices`` device digits.

    The inverse of the lexicographic encoding: row ``r`` holds the digits of
    ``indices[r]``, most significant first, so
    ``indices_to_matrix(np.arange(m**k), k, m)`` equals the full
    :func:`placement_matrix`.  Used by the streaming search layer to decode
    winning placement indices without enumerating anything around them.
    """
    if n_tasks <= 0:
        raise ValueError("n_tasks must be positive")
    if n_devices <= 0:
        raise ValueError("n_devices must be positive")
    indices = np.asarray(indices)
    if indices.dtype.kind not in "iu" or indices.ndim != 1:
        raise ValueError("indices must be a 1-D integer array")
    total = space_size(n_tasks, n_devices)
    if indices.size and (indices.min() < 0 or int(indices.max()) >= total):
        raise ValueError(
            f"placement indices must lie in [0, {total}) for a "
            f"{n_devices}**{n_tasks} space"
        )
    if indices.size and int(indices.max()) > MAX_ENUMERABLE_INDEX:
        # uint64 inputs above 2**63 - 1 pass the range check in >int64 spaces
        # but would wrap negative in the int64 cast below -- same failure mode
        # placement_matrix guards against on the encode path.
        raise ValueError(
            f"placement indices above {MAX_ENUMERABLE_INDEX} (2**63 - 1) cannot "
            f"be decoded: the int64 digit extraction would wrap"
        )
    remaining = indices.astype(np.int64, copy=True)
    dtype = np.int8 if n_devices <= 127 else np.intp
    matrix = np.empty((indices.size, n_tasks), dtype=dtype)
    for column in range(n_tasks - 1, -1, -1):
        matrix[:, column] = remaining % n_devices
        remaining //= n_devices
    return matrix


def iter_placement_batches(
    n_tasks: int,
    n_devices: int,
    batch_size: int = 65536,
    start: int = 0,
    stop: int | None = None,
) -> Iterator[np.ndarray]:
    """Stream a placement-space range as lexicographic chunks of the matrix.

    Yields matrices of at most ``batch_size`` rows whose vertical
    concatenation equals ``placement_matrix(n_tasks, n_devices, start, stop)``;
    peak memory stays bounded no matter how combinatorially the space
    explodes.  ``start``/``stop`` default to the whole space and let several
    workers shard one sweep into disjoint contiguous ranges.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    total = space_size(n_tasks, n_devices)
    if stop is None:
        stop = total
    if not 0 <= start <= stop <= total:
        raise ValueError(f"invalid slice [{start}, {stop}) of a space of {total} placements")
    for chunk_start in range(start, stop, batch_size):
        yield placement_matrix(
            n_tasks, n_devices, chunk_start, min(chunk_start + batch_size, stop)
        )


def enumerate_placements(
    n_tasks: int,
    device_aliases: Sequence[str],
    predicate: Callable[[Placement], bool] | None = None,
) -> list[Placement]:
    """All placements of ``n_tasks`` over the given devices, in lexicographic order.

    Parameters
    ----------
    n_tasks:
        Number of tasks in the chain.
    device_aliases:
        Candidate devices for every task (e.g. ``["D", "A"]``).
    predicate:
        Optional filter; only placements for which it returns True are kept.
    """
    if n_tasks <= 0:
        raise ValueError("n_tasks must be positive")
    aliases = list(device_aliases)
    if not aliases:
        raise ValueError("at least one device alias is required")
    if len(set(aliases)) != len(aliases):
        raise ValueError("device aliases must be unique")
    placements = [Placement(combo) for combo in product(aliases, repeat=n_tasks)]
    if predicate is not None:
        placements = [p for p in placements if predicate(p)]
    return placements


def enumerate_algorithms(
    chain: TaskChain,
    platform: Platform,
    devices: Sequence[str] | None = None,
    max_offloaded: int | None = None,
) -> list[OffloadedAlgorithm]:
    """The full set ``A`` of equivalent algorithms for a chain on a platform.

    Parameters
    ----------
    chain:
        The scientific code.
    platform:
        The platform providing the candidate devices.
    devices:
        Restrict the candidate devices (defaults to every device of the platform,
        host first -- giving the paper's ``D``/``A`` labels on the CPU+GPU platform).
    max_offloaded:
        If given, keep only placements that offload at most this many tasks away
        from the host (granularity control).
    """
    aliases = list(devices) if devices is not None else platform.aliases
    platform.validate_aliases(aliases)

    predicate = None
    if max_offloaded is not None:
        if max_offloaded < 0:
            raise ValueError("max_offloaded must be non-negative")
        predicate = lambda p: p.n_offloaded(platform.host) <= max_offloaded  # noqa: E731

    placements = enumerate_placements(len(chain), aliases, predicate)
    return [OffloadedAlgorithm(chain=chain, placement=placement) for placement in placements]


def sample_algorithms(
    algorithms: Iterable[OffloadedAlgorithm],
    k: int,
    rng: np.random.Generator | int | None = None,
    always_include: Sequence[str] = (),
) -> list[OffloadedAlgorithm]:
    """Sub-sample ``k`` algorithms from a (possibly huge) algorithm space.

    The paper's conclusion notes that with an exponential number of equivalent
    implementations the methodology "can still be applied on a subset of
    possible solutions"; this helper draws such a subset uniformly at random
    while optionally pinning some labels (e.g. the all-on-device baseline).
    """
    pool = list(algorithms)
    if k <= 0:
        raise ValueError("k must be positive")
    if k > len(pool):
        raise ValueError(f"cannot sample {k} algorithms from a space of {len(pool)}")
    by_label = {algorithm.label: algorithm for algorithm in pool}
    chosen: dict[str, OffloadedAlgorithm] = {}
    for label in always_include:
        if label not in by_label:
            raise KeyError(f"label {label!r} is not in the algorithm space")
        chosen[label] = by_label[label]
    if len(chosen) > k:
        raise ValueError("always_include contains more labels than the requested sample size")
    generator = np.random.default_rng(rng)
    remaining = [algorithm for algorithm in pool if algorithm.label not in chosen]
    n_extra = k - len(chosen)
    indices = generator.choice(len(remaining), size=n_extra, replace=False) if n_extra else []
    for index in indices:
        algorithm = remaining[int(index)]
        chosen[algorithm.label] = algorithm
    return list(chosen.values())
