"""Bind algorithm spaces to executors and produce measurement sets.

This is the glue between the offload layer (which defines *what* can run
where) and the executors (which determine *how long* it takes): given a list
of :class:`~repro.offload.algorithm.OffloadedAlgorithm` and an executor
(simulated or host-based), produce the :class:`~repro.measurement.dataset.MeasurementSet`
that the relative-performance analyzer consumes, plus the per-algorithm
execution records used by the selection policies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Protocol, Sequence

import numpy as np

from ..devices.batch import BatchExecutionResult
from ..devices.simulator import ExecutionRecord, SimulatedExecutor
from ..measurement.dataset import MeasurementSet
from ..tasks.chain import TaskChain
from .algorithm import OffloadedAlgorithm

__all__ = [
    "ChainExecutor",
    "measure_algorithms",
    "profile_algorithms",
    "profiles_from_batch",
    "AlgorithmProfile",
]


class ChainExecutor(Protocol):
    """Anything that can measure a placed task chain (simulated or host executor)."""

    def measure(
        self, chain: TaskChain, placement: Sequence[str] | str, repetitions: int = ...
    ) -> np.ndarray:  # pragma: no cover - protocol
        ...


def measure_algorithms(
    algorithms: Iterable[OffloadedAlgorithm],
    executor: ChainExecutor,
    repetitions: int = 30,
    metric: str = "time",
) -> MeasurementSet:
    """Measure every algorithm ``repetitions`` times with the given executor.

    ``metric`` selects what is measured: ``"time"`` (default, via
    ``executor.measure``) or ``"energy"`` (via ``executor.energy_measure``,
    provided by the simulated executor).

    When every algorithm shares one chain and the executor provides the batch
    engine (``measure_all_batch``), the whole space is evaluated in a single
    vectorized pass; the noise is still drawn per algorithm in the same RNG
    order, so the resulting set is bit-for-bit identical to the per-algorithm
    loop.
    """
    algorithm_list = list(algorithms)
    if not algorithm_list:
        raise ValueError("at least one algorithm is required")
    labels = [algorithm.label for algorithm in algorithm_list]
    if len(set(labels)) != len(labels):
        raise ValueError(f"algorithm labels must be unique, got {labels}")
    if metric not in ("time", "energy"):
        raise ValueError(f"unknown metric {metric!r}; choose 'time' or 'energy'")
    chain = algorithm_list[0].chain
    if (
        hasattr(executor, "measure_all_batch")
        and all(algorithm.chain is chain for algorithm in algorithm_list)
        and not (metric == "energy" and not hasattr(executor, "energy_measure"))
    ):
        placements = [algorithm.placement.devices for algorithm in algorithm_list]
        return executor.measure_all_batch(
            chain, placements, repetitions=repetitions, metric=metric
        )
    if metric == "time":
        measure = executor.measure
        measurements = MeasurementSet(metric="execution time", unit="s")
    elif metric == "energy":
        if not hasattr(executor, "energy_measure"):
            raise ValueError(
                f"{type(executor).__name__} cannot measure energy: it does not "
                "provide an energy_measure(chain, placement, repetitions) method"
            )
        measure = executor.energy_measure
        measurements = MeasurementSet(metric="energy", unit="J")
    else:
        raise ValueError(f"unknown metric {metric!r}; choose 'time' or 'energy'")
    for algorithm in algorithm_list:
        values = measure(algorithm.chain, algorithm.placement.devices, repetitions)
        measurements.add(algorithm.label, values)
    return measurements


@dataclass(frozen=True)
class AlgorithmProfile:
    """Static (noise-free) profile of one algorithm on a simulated platform.

    Combines the quantities the selection policies of Section IV reason about:
    predicted execution time, FLOPs per device, transferred bytes, energy and
    operating cost.
    """

    algorithm: OffloadedAlgorithm
    record: ExecutionRecord

    @property
    def label(self) -> str:
        return self.algorithm.label

    @property
    def time_s(self) -> float:
        return self.record.total_time_s

    @property
    def energy_j(self) -> float:
        return self.record.energy.total_j

    @property
    def operating_cost(self) -> float:
        return self.record.operating_cost

    def flops_on(self, alias: str) -> float:
        return self.algorithm.flops_on(alias)

    def device_energy(self, alias: str) -> float:
        return self.record.energy.device_total(alias)


def profile_algorithms(
    algorithms: Iterable[OffloadedAlgorithm],
    executor: SimulatedExecutor,
) -> Mapping[str, AlgorithmProfile]:
    """Noise-free profiles of every algorithm, keyed by label.

    Records come from the executor's shared execution cache, so profiling a
    space that was already measured does not re-execute any chain.
    """
    profiles: dict[str, AlgorithmProfile] = {}
    for algorithm in algorithms:
        record = executor.execute(algorithm.chain, algorithm.placement.devices)
        profiles[algorithm.label] = AlgorithmProfile(algorithm=algorithm, record=record)
    if not profiles:
        raise ValueError("at least one algorithm is required")
    return profiles


def profiles_from_batch(
    algorithms: Sequence[OffloadedAlgorithm],
    batch: BatchExecutionResult,
) -> Mapping[str, AlgorithmProfile]:
    """Profiles materialised from one vectorized batch execution.

    ``batch`` must hold one row per algorithm, in order (e.g. produced by
    ``executor.execute_batch(chain, [a.placement.devices for a in algorithms])``);
    the materialised records are bitwise identical to the sequential
    :meth:`~repro.devices.simulator.SimulatedExecutor.execute`.
    """
    algorithm_list = list(algorithms)
    if not algorithm_list:
        raise ValueError("at least one algorithm is required")
    if len(algorithm_list) != len(batch):
        raise ValueError(
            f"got {len(algorithm_list)} algorithms for a batch of {len(batch)} placements"
        )
    profiles: dict[str, AlgorithmProfile] = {}
    for index, algorithm in enumerate(algorithm_list):
        if batch.placement(index) != tuple(algorithm.placement.devices):
            raise ValueError(
                f"batch row {index} is placement {batch.label(index)!r}, "
                f"but algorithm {index} is {algorithm.label!r}"
            )
        profiles[algorithm.label] = AlgorithmProfile(
            algorithm=algorithm, record=batch.record(index)
        )
    return profiles
