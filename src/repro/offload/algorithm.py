"""An offloaded algorithm: a task chain bound to one particular placement.

The paper's set ``A`` of "mathematically equivalent algorithms" is exactly the
set of :class:`OffloadedAlgorithm` objects obtained by enumerating all
placements of a chain over the platform's devices: every member computes the
same quantity, but distributes the work differently and therefore has its own
performance and energy profile.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..devices.platform import Platform
from ..tasks.chain import TaskChain
from .placement import Placement

__all__ = ["OffloadedAlgorithm"]


@dataclass(frozen=True)
class OffloadedAlgorithm:
    """A task chain together with the devices each task runs on."""

    chain: TaskChain
    placement: Placement

    def __post_init__(self) -> None:
        if len(self.placement) != len(self.chain):
            raise ValueError(
                f"placement {self.placement.label!r} does not match chain with {len(self.chain)} tasks"
            )

    @property
    def label(self) -> str:
        """Algorithm name in the paper's notation (``"DDA"`` etc.)."""
        return self.placement.label

    # -- FLOP accounting (the paper's energy proxy) -------------------------------
    def flops_on(self, alias: str) -> float:
        """FLOPs this algorithm executes on the given device."""
        return float(
            sum(
                task.flops
                for task, device in zip(self.chain, self.placement)
                if device == alias
            )
        )

    def flops_by_device(self) -> dict[str, float]:
        """FLOPs per device alias actually used by this algorithm."""
        out: dict[str, float] = {}
        for task, device in zip(self.chain, self.placement):
            out[device] = out.get(device, 0.0) + task.flops
        return out

    @property
    def total_flops(self) -> float:
        return self.chain.total_flops

    def offloaded_fraction(self, host: str) -> float:
        """Fraction of the code's FLOPs shipped away from the host device."""
        total = self.total_flops
        if total == 0:
            return 0.0
        return 1.0 - self.flops_on(host) / total

    def transferred_bytes(self, host: str) -> float:
        """Bytes that cross the interconnect when running this algorithm."""
        return float(
            sum(
                task.cost().transferred_bytes
                for task, device in zip(self.chain, self.placement)
                if device != host
            )
        )

    def validate(self, platform: Platform) -> None:
        """Check the placement against a platform (raises on unknown aliases)."""
        self.placement.validate(self.chain, platform)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"alg{self.label}"
