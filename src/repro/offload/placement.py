"""Placements: the assignment of every task of a chain to a device.

A placement is written as a string of device aliases, one per task, in task
order -- exactly the paper's notation: ``"DDA"`` runs L1 and L2 on the edge
device and offloads L3 to the accelerator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from ..devices.platform import Platform
from ..tasks.chain import TaskChain

__all__ = ["Placement"]


@dataclass(frozen=True)
class Placement:
    """An immutable tuple of device aliases, one per task of a chain."""

    devices: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.devices:
            raise ValueError("a placement needs at least one device assignment")
        if not all(isinstance(alias, str) and alias for alias in self.devices):
            raise ValueError("device aliases must be non-empty strings")

    # -- constructors -------------------------------------------------------------
    @classmethod
    def from_string(cls, text: str) -> "Placement":
        """Parse the paper's compact notation (one character per task), e.g. ``"DDA"``."""
        if not text:
            raise ValueError("placement string must be non-empty")
        return cls(tuple(text))

    @classmethod
    def uniform(cls, alias: str, n_tasks: int) -> "Placement":
        """All tasks on the same device (e.g. ``Placement.uniform("D", 3)`` -> ``DDD``)."""
        if n_tasks <= 0:
            raise ValueError("n_tasks must be positive")
        return cls(tuple(alias for _ in range(n_tasks)))

    # -- behaviour ----------------------------------------------------------------
    def __str__(self) -> str:
        return "".join(self.devices)

    def __len__(self) -> int:
        return len(self.devices)

    def __iter__(self) -> Iterator[str]:
        return iter(self.devices)

    def __getitem__(self, index: int) -> str:
        return self.devices[index]

    @property
    def label(self) -> str:
        """The algorithm label used throughout the paper (``"DDA"``, ``"AD"``, ...)."""
        return str(self)

    def count(self, alias: str) -> int:
        """How many tasks are placed on the given device."""
        return self.devices.count(alias)

    def tasks_on(self, alias: str) -> list[int]:
        """Indices of the tasks placed on the given device."""
        return [i for i, a in enumerate(self.devices) if a == alias]

    def uses(self, alias: str) -> bool:
        return alias in self.devices

    def n_offloaded(self, host: str) -> int:
        """Number of tasks placed away from the host device."""
        return sum(1 for alias in self.devices if alias != host)

    def validate(self, chain: TaskChain, platform: Platform) -> None:
        """Raise if the placement does not fit the chain or references unknown devices."""
        if len(self.devices) != len(chain):
            raise ValueError(
                f"placement {self.label!r} has {len(self.devices)} entries, "
                f"but chain {chain.name!r} has {len(chain)} tasks"
            )
        platform.validate_aliases(self.devices)

    def with_task_on(self, index: int, alias: str) -> "Placement":
        """A copy of this placement with one task reassigned."""
        if not 0 <= index < len(self.devices):
            raise IndexError(f"task index {index} out of range for {self.label!r}")
        devices = list(self.devices)
        devices[index] = alias
        return Placement(tuple(devices))
